"""Figs. 18-19 (Appendix D) — all-to-all latency characterization vs scale.

Paper shape: mean all-to-all latency grows from 8 to 32 GPUs, stays
relatively stable from 32 to 256 GPUs (one rack), and rises sharply beyond
256 GPUs where cross-rack Dragonfly traffic suffers congestion; at 512 and
1024 GPUs a visible fraction of runs are outliers far above the median.
This motivates the paper's choice to cap EP size at 256.
"""

import numpy as np
import pytest

from conftest import print_table

from repro.analysis import characterize_alltoall_latency, mean_latency_by_scale

GPU_COUNTS = (8, 32, 64, 128, 256, 512, 1024)


def run_characterization():
    return characterize_alltoall_latency(
        gpu_counts=GPU_COUNTS, num_runs=200, payload_mb_per_rank=64.0, seed=0
    )


def test_fig18_19_alltoall_latency(benchmark):
    samples = benchmark.pedantic(run_characterization, rounds=1, iterations=1)
    by_count = {s.num_gpus: s for s in samples}
    rows = [
        {
            "GPUs": s.num_gpus,
            "mean_ms": s.mean_ms,
            "p99_ms": s.p99_ms,
            "outliers_>3x_median_%": 100
            * float((s.latencies_ms > 3 * np.median(s.latencies_ms)).mean()),
        }
        for s in samples
    ]
    print_table("Figs. 18-19 — all-to-all latency vs GPU count", rows)

    means = mean_latency_by_scale(samples)
    # Latency grows from the smallest scales...
    assert means[32] >= means[8]
    # ...is relatively stable within a rack (32 -> 256 within ~2.5x)...
    assert means[256] < 2.5 * means[32]
    # ...and rises sharply beyond one rack.
    assert means[512] > 1.5 * means[256]
    assert means[1024] >= means[512] * 0.9
    # Outliers appear only beyond one rack.
    threshold = 3 * by_count[256].mean_ms
    assert by_count[512].outlier_fraction(threshold) > 0.0
    assert by_count[1024].outlier_fraction(threshold) > 0.0
    assert by_count[128].outlier_fraction(threshold) == pytest.approx(0.0)
