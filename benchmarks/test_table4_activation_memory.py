"""Table 4 — per-MoE-layer activation memory (Large model, 256 GPUs, EP=64).

Paper values: DeepSpeed-MoE 2.81 GB, Tutel 1.95 GB, X-MoE 1.21 GB,
theoretical minimum 1.125 GB.  Expected shape: the same strict ordering,
with X-MoE within ~10% of the theoretical minimum and Tutel inflated by its
capacity padding plus the float32 combine buffer.
"""

import pytest

from conftest import print_table

from repro.config import ParallelConfig, paper_config
from repro.xmoe.memory_model import MoEMemoryModel, SystemKind

PAPER_GB = {
    SystemKind.DEEPSPEED_MOE: 2.81,
    SystemKind.TUTEL: 1.95,
    SystemKind.XMOE: 1.21,
    SystemKind.THEORETICAL: 1.125,
}


def activation_table():
    model = paper_config("large")
    parallel = ParallelConfig(
        world_size=256, ep_size=64, micro_batch_size=1, global_batch_size=1024
    )
    mm = MoEMemoryModel(model, parallel)
    return {kind: mm.moe_layer_activations(kind) for kind in PAPER_GB}


def test_table4_activation_memory(benchmark):
    breakdowns = benchmark(activation_table)
    rows = []
    for kind, breakdown in breakdowns.items():
        row = {"system": kind.value, "paper_GB": PAPER_GB[kind], "measured_GB": breakdown.total() / 2**30}
        row.update({k: v / 2**30 for k, v in breakdown.as_dict().items()})
        rows.append(row)
    print_table("Table 4 — per-MoE-layer activation memory (GB)", rows)

    measured = {kind: b.total() / 2**30 for kind, b in breakdowns.items()}
    # Strict ordering as in the paper.
    assert (
        measured[SystemKind.DEEPSPEED_MOE]
        > measured[SystemKind.TUTEL]
        > measured[SystemKind.XMOE]
        > measured[SystemKind.THEORETICAL]
    )
    # Absolute values land close to the paper for the well-determined rows.
    assert measured[SystemKind.THEORETICAL] == pytest.approx(1.125, rel=0.02)
    assert measured[SystemKind.XMOE] == pytest.approx(1.21, rel=0.10)
    assert measured[SystemKind.TUTEL] == pytest.approx(1.95, rel=0.10)
    assert measured[SystemKind.DEEPSPEED_MOE] == pytest.approx(2.81, rel=0.30)
