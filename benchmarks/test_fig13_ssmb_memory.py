"""Fig. 13 — maximum per-device memory with and without SSMB, TP in {1, 2, 4}.

Paper shape: enabling SSMB lowers memory at every TP degree > 1 and the gap
widens as TP grows (sequence sharding removes the duplicated
A_dispatch/A_combine copies that TP alone cannot reduce).
"""

import pytest

from conftest import print_table

from repro.config import ParallelConfig, ZeroStage, paper_config
from repro.xmoe.memory_model import MoEMemoryModel, SystemKind


def memory_by_tp():
    model = paper_config("large")
    out = {}
    for tp in (1, 2, 4):
        base = ParallelConfig(
            world_size=256,
            ep_size=64,
            tp_size=tp,
            zero_stage=ZeroStage.OPTIMIZER,
            micro_batch_size=1,
            global_batch_size=1024,
        )
        with_ssmb = MoEMemoryModel(model, base.with_overrides(use_ssmb=True)).report(
            SystemKind.XMOE
        )
        without = MoEMemoryModel(model, base.with_overrides(use_ssmb=False)).report(
            SystemKind.XMOE
        )
        out[tp] = (with_ssmb.total_gb, without.total_gb)
    return out


def test_fig13_ssmb_memory_saving(benchmark):
    results = benchmark(memory_by_tp)
    rows = [
        {
            "TP": tp,
            "X-MoE w/ SSMB (GB)": with_ssmb,
            "X-MoE w/o SSMB (GB)": without,
            "saving (GB)": without - with_ssmb,
        }
        for tp, (with_ssmb, without) in results.items()
    ]
    print_table("Fig. 13 — max allocated memory w/ and w/o SSMB", rows)

    # TP=1: SSMB is a no-op.
    assert results[1][0] == pytest.approx(results[1][1])
    # TP>1: SSMB saves memory and the saving grows with the TP degree.
    savings = []
    for tp in (2, 4):
        with_ssmb, without = results[tp]
        assert with_ssmb < without
        savings.append(without - with_ssmb)
    assert savings[1] > savings[0]
    # Memory with SSMB decreases as TP grows.
    assert results[4][0] < results[2][0] < results[1][0]
