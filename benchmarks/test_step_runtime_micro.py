"""Step-runtime micro-benchmark: per-rank drive loop vs batched runtime.

The :class:`repro.runtime.StepRuntime` replaces the per-rank
``policy.route()`` Python loops every driver used to carry.  This benchmark
measures exactly what that refactor bought: the wall-clock of the routing
front half (``route`` + PFT construction for all ranks, the stages the
runtime batches) under the sequential per-rank loop vs the rank-batched
path, at EP group sizes 8 and 32 (one and four Frontier nodes), plus the
full ``run_step`` time (plan + dispatch + combine included) for context.

Outputs are checked **bit-identical** between the two paths before any
timing is trusted, and the batched path must beat the per-rank loop by
>= 2x at 32 ranks (tunable via ``STEP_RUNTIME_MIN_SPEEDUP`` for throttled
CI runners).

Each run (re)writes a machine-local JSON record
(``benchmarks/results/step_runtime_micro.json``, gitignored — the same
schema family as ``dispatch_plan_micro.json``) so the repo tracks a
step-level perf trajectory; :func:`repro.tuner.load_calibration` folds the
measured per-assignment routing cost into tuner scoring.
"""

import gc
import os
import time

import numpy as np
from conftest import print_table, write_record

from repro.comm import CommWorld
from repro.routing import make_dispatcher, make_policy
from repro.routing.policies import skewed_router_tokens
from repro.runtime import StepRuntime

EP_SIZES = (8, 32)  # 1 and 4 Frontier nodes (8 GCDs each)
# One expert per rank (the dispatch-plan micro-benchmark's convention) and
# the validation drivers' per-rank batch: S=64 tokens of hidden 32, top-4.
EXPERTS_PER_RANK, TOP_K = 1, 4
TOKENS_PER_RANK, HIDDEN = 64, 32
SKEW, SEED, STEPS = 1.2, 0, 3
ROUTER = "softmax-topk"

MIN_SPEEDUP = float(os.environ.get("STEP_RUNTIME_MIN_SPEEDUP", "2.0"))


def _time(fn, repeats=9):
    best, result = float("inf"), None
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return best, result


def _workload(ep: int):
    num_experts = ep * EXPERTS_PER_RANK
    policy = make_policy(
        ROUTER,
        HIDDEN,
        num_experts,
        TOP_K,
        rng=np.random.default_rng(SEED),
        seed=SEED,
    )
    capacity = StepRuntime.capacity_for(TOKENS_PER_RANK, TOP_K, num_experts, 1.25)
    hidden = [
        skewed_router_tokens(
            np.random.default_rng((SEED, 0, rank)),
            TOKENS_PER_RANK,
            policy.weight,
            skew=SKEW,
        )
        for rank in range(ep)
    ]
    return policy, capacity, hidden


def _per_rank_loop(policy, capacity, hidden, step=0):
    """The drive loop every workload used before the step runtime."""
    decisions, pfts = [], []
    for batch in hidden:
        decision = policy.route(batch, step=step)
        decisions.append(decision)
        pfts.append(decision.to_pft(capacity))
    return decisions, pfts


def _assert_bit_identical(seq, bat):
    seq_decisions, seq_pfts = seq
    bat_decisions, bat_pfts = bat
    for a, b in zip(seq_decisions, bat_decisions):
        assert np.array_equal(a.token_ids, b.token_ids)
        assert np.array_equal(a.expert_ids, b.expert_ids)
        assert np.array_equal(a.scores, b.scores)
        assert np.array_equal(a.dropped, b.dropped)
        assert a.aux_loss == b.aux_loss and a.z_loss == b.z_loss
    for a, b in zip(seq_pfts, bat_pfts):
        assert np.array_equal(a.token_ids, b.token_ids)
        assert np.array_equal(a.expert_ids, b.expert_ids)
        assert np.array_equal(a.tokens_per_expert, b.tokens_per_expert)
        assert np.array_equal(a.combine_weights, b.combine_weights)
        assert a.dropped_assignments == b.dropped_assignments


def test_step_runtime_micro():
    rows, seconds_record, speedups = [], {}, {}
    for ep in EP_SIZES:
        policy, capacity, hidden = _workload(ep)
        num_experts = ep * EXPERTS_PER_RANK
        world = CommWorld(num_ranks=ep)
        dispatcher = make_dispatcher(world.world_group(), num_experts, kind="flat")
        runtime = StepRuntime(policy, dispatcher, capacity=capacity)

        # Correctness first: the batched path must be bit-identical.
        _assert_bit_identical(
            _per_rank_loop(policy, capacity, hidden), runtime.route(hidden, step=0)
        )

        runtime.route(hidden, step=0)  # warm the workspace buffers
        loop_s, _ = _time(lambda: _per_rank_loop(policy, capacity, hidden))
        batched_s, _ = _time(lambda: runtime.route(hidden, step=0))
        step_s, _ = _time(lambda: runtime.run_step(hidden, step=0), repeats=3)

        assignments = ep * TOKENS_PER_RANK * TOP_K
        speedup = loop_s / batched_s
        speedups[ep] = speedup
        seconds_record[f"per_rank_route_pft_ep{ep}"] = round(loop_s, 6)
        seconds_record[f"batched_route_pft_ep{ep}"] = round(batched_s, 6)
        seconds_record[f"full_step_ep{ep}"] = round(step_s, 6)
        rows.append(
            {
                "ep": ep,
                "experts": num_experts,
                "assignments": assignments,
                "per_rank_ms": loop_s * 1e3,
                "batched_ms": batched_s * 1e3,
                "speedup": speedup,
                "full_step_ms": step_s * 1e3,
            }
        )

    print_table(
        f"Step-runtime micro-benchmark (S={TOKENS_PER_RANK}/rank, H={HIDDEN}, "
        f"k={TOP_K}, E/rank={EXPERTS_PER_RANK}, router={ROUTER})",
        rows,
    )

    record = {
        "workload": {
            "router": ROUTER,
            "tokens_per_rank": TOKENS_PER_RANK,
            "hidden": HIDDEN,
            "top_k": TOP_K,
            "experts_per_rank": EXPERTS_PER_RANK,
            "ep_sizes": list(EP_SIZES),
            "skew": SKEW,
            # The per-assignment routing rate the tuner's calibration reads:
            # measured at the largest EP, over all (token, expert) pairs.
            "assignments": max(EP_SIZES) * TOKENS_PER_RANK * TOP_K,
        },
        "seconds": {
            **seconds_record,
            "batched_route_pft": seconds_record[f"batched_route_pft_ep{max(EP_SIZES)}"],
        },
        "speedup_vs_per_rank_loop": {str(ep): round(s, 2) for ep, s in speedups.items()},
    }
    write_record("step_runtime_micro", record)

    # The acceptance bar: batching must pay off where it matters most.
    assert speedups[32] >= MIN_SPEEDUP, (
        f"batched route+PFT only {speedups[32]:.2f}x faster than the per-rank "
        f"loop at 32 ranks (need >= {MIN_SPEEDUP}x)"
    )
