"""Serving benchmark: continuous batching vs fixed-batch under heavy traffic.

Drives the :mod:`repro.serving` engine through synthetic open-loop traffic
— Poisson arrivals at two intensities plus an adversarial bursty trace —
twice per trace: once with continuous-batching FCFS admission and once
with the static fixed-batch baseline (:class:`StaticBatchAdmission`, which
only forms a new batch when every slot has drained).  Both runs serve the
*identical* request list through identically-seeded engines, so every
difference in the SLO table is pure scheduling.

Expected shape (the continuous-batching result every serving system
reports): fewer engine steps for the same token work, hence higher
tokens/sec and uniformly lower queue/TTFT/latency percentiles.  The
acceptance bar asserts the step advantage deterministically and the
wall-clock tokens/sec speedup > ``SERVING_MIN_TPS_SPEEDUP`` at every
intensity, plus an absolute continuous-path throughput floor via
``SERVING_MIN_TPS`` (both env-tunable for throttled CI runners).  Wall
clocks are best-of-``REPEATS`` — serves are bit-deterministic, so repeats
only strip OS-scheduler noise from the timing.

Each run (re)writes ``benchmarks/results/serving_bench.json`` with a
``speedup_tokens_per_sec`` block (higher-is-better, regression-gated by
``scripts/bench_summary.py --check``) and ``latency_p50_steps`` /
``latency_p99_steps`` blocks (lower-is-better, gated in the rising
direction).  The step-denominated latencies are deterministic per seed, so
their trajectory is noise-free.
"""

import os

import numpy as np
from conftest import print_table, write_record

from repro.serving import (
    StaticBatchAdmission,
    bursty_arrivals,
    make_serving_engine,
    poisson_arrivals,
    run_trace,
    synth_requests,
)

SLOTS, HIDDEN, TOP_K = 8, 32, 2
NUM_REQUESTS, SEED = 48, 7
PROMPT_LEN, MAX_NEW_TOKENS = (4, 12), (4, 16)
DEADLINE_STEPS = 80

#: the three traffic intensities; each must show a continuous-batching win.
TRACES = ("poisson-lo", "poisson-hi", "bursty")

MIN_TPS = float(os.environ.get("SERVING_MIN_TPS", "200.0"))
MIN_TPS_SPEEDUP = float(os.environ.get("SERVING_MIN_TPS_SPEEDUP", "1.0"))

#: wall-clock repeats per (trace, admission) pair; the fastest run is kept.
#: Every repeat serves bit-identically (see tests/test_serving_determinism.py),
#: so min-of-N only strips scheduler noise from the timing, never the result.
REPEATS = 3


def _requests(trace: str):
    """The trace's request list (same seed → same list every call)."""
    rng = np.random.default_rng(SEED)
    if trace == "poisson-lo":
        arrivals = poisson_arrivals(rng, NUM_REQUESTS, 0.6)
    elif trace == "poisson-hi":
        arrivals = poisson_arrivals(rng, NUM_REQUESTS, 1.6)
    else:
        arrivals = bursty_arrivals(NUM_REQUESTS, burst_size=12, gap_steps=20)
    return synth_requests(
        rng,
        arrivals,
        HIDDEN,
        prompt_len=PROMPT_LEN,
        max_new_tokens=MAX_NEW_TOKENS,
        deadline_steps=DEADLINE_STEPS,
    )


def _serve_once(trace: str, *, static: bool):
    engine = make_serving_engine(
        num_slots=SLOTS,
        top_k=TOP_K,
        hidden_size=HIDDEN,
        seed=SEED,
        admission=StaticBatchAdmission() if static else None,
    )
    return run_trace(engine, _requests(trace))


def _serve(trace: str, *, static: bool):
    """Best-of-``REPEATS`` serve: identical results, fastest wall clock."""
    reports = [_serve_once(trace, static=static) for _ in range(REPEATS)]
    return min(reports, key=lambda report: report.wall_seconds)


def test_bucket_quantiles_match_exact():
    """The report's bucketed percentiles agree with the exact oracle.

    ``ServeReport`` reads p50/p99 off the registry's log-bucketed
    histograms; adjacent bucket bounds are ~10% apart (24 buckets per
    decade), so the estimate must sit within that relative resolution —
    plus one step of absolute slack for the smallest latencies — of the
    exact percentile over the raw per-request values that
    ``traffic._percentile`` computes.
    """
    from repro.serving.request import RequestStatus
    from repro.serving.traffic import _percentile

    for trace in TRACES:
        engine = make_serving_engine(
            num_slots=SLOTS, top_k=TOP_K, hidden_size=HIDDEN, seed=SEED
        )
        report = run_trace(engine, _requests(trace))
        finished = [
            s
            for s in engine.states.values()
            if s.status is RequestStatus.COMPLETED
        ]
        assert finished
        for attr, p50_est, p99_est in (
            ("latency_steps", report.latency_p50, report.latency_p99),
            ("ttft_steps", report.ttft_p50, report.ttft_p99),
        ):
            values = [getattr(s, attr) for s in finished]
            for q, estimate in ((50.0, p50_est), (99.0, p99_est)):
                exact = _percentile(values, q)
                tolerance = 0.12 * exact + 1.0
                assert abs(estimate - exact) <= tolerance, (
                    f"{trace} {attr} p{q:.0f}: bucketed {estimate} vs exact "
                    f"{exact} (tolerance {tolerance:.3f})"
                )


def test_serving_bench():
    # Warm the process (imports, allocator, BLAS) outside any timed run so
    # the first measured engine is not charged for one-time costs.
    _serve("poisson-lo", static=False)

    rows = []
    speedups, p50s, p99s, tps_block = {}, {}, {}, {}
    for trace in TRACES:
        continuous = _serve(trace, static=False)
        static = _serve(trace, static=True)
        for report in (continuous, static):
            rows.append({"trace": trace, **report.slo_row()})

        # Same requests, same engines: every request completes both ways.
        assert continuous.completed == NUM_REQUESTS
        assert static.completed == NUM_REQUESTS
        assert continuous.tokens == static.tokens

        # The deterministic core of the win: continuous batching drains the
        # identical token work in strictly fewer engine steps, and no
        # latency percentile gets worse.
        assert continuous.steps < static.steps, (
            f"{trace}: continuous ran {continuous.steps} steps vs static "
            f"{static.steps} — no batching advantage"
        )
        assert continuous.latency_p50 <= static.latency_p50
        assert continuous.latency_p99 <= static.latency_p99
        assert continuous.ttft_p99 <= static.ttft_p99

        speedup = continuous.tokens_per_second / max(
            static.tokens_per_second, 1e-12
        )
        speedups[trace] = round(speedup, 3)
        tps_block[trace] = round(continuous.tokens_per_second, 1)
        p50s[trace] = continuous.latency_p50
        p99s[trace] = continuous.latency_p99

    print_table(
        f"Serving: continuous vs static (slots={SLOTS}, H={HIDDEN}, "
        f"k={TOP_K}, {NUM_REQUESTS} requests/trace, seed={SEED})",
        rows,
    )

    record = {
        "workload": {
            "slots": SLOTS,
            "hidden": HIDDEN,
            "top_k": TOP_K,
            "requests": NUM_REQUESTS,
            "prompt_len": list(PROMPT_LEN),
            "max_new_tokens": list(MAX_NEW_TOKENS),
            "deadline_steps": DEADLINE_STEPS,
            "traces": list(TRACES),
            "seed": SEED,
        },
        "tokens_per_sec": tps_block,
        "speedup_tokens_per_sec": speedups,
        "latency_p50_steps": p50s,
        "latency_p99_steps": p99s,
    }
    write_record("serving_bench", record)

    # Acceptance: the wall-clock throughput win must hold at every
    # intensity, and the continuous path must clear the absolute floor.
    for trace in TRACES:
        assert speedups[trace] > MIN_TPS_SPEEDUP, (
            f"{trace}: continuous tokens/sec only {speedups[trace]:.2f}x the "
            f"static baseline (need > {MIN_TPS_SPEEDUP})"
        )
        assert tps_block[trace] >= MIN_TPS, (
            f"{trace}: continuous throughput {tps_block[trace]:.0f} tokens/s "
            f"below floor {MIN_TPS:.0f} (SERVING_MIN_TPS)"
        )
