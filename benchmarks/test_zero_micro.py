"""ZeRO gradient-reduction micro-benchmark: bucketed+overlapped vs naive.

Prices one backward pass's gradient reduction on the costed timeline two
ways, at data-parallel group sizes 8 and 16 (one and two Frontier nodes):

* **naive** — one ``reduce_scatter`` per parameter, none of them started
  before backward finishes: every tiny collective pays the full per-message
  latency term and all of it is exposed.
* **bucketed+overlapped** — :class:`repro.dist.ZeroGradReducer` packs
  gradients into flat 1 MiB buckets as backward produces them and reduces
  each bucket the moment it fills, so per-message latency amortizes over
  whole buckets and the schedule (one serial comm channel, bucket-level
  dependencies via :func:`repro.comm.cost_model.overlap_schedule`) hides
  comm under the remaining backward compute.

Both paths execute the *same* collectives through the same simulated
:class:`~repro.comm.ProcessGroup` — correctness of the reduced shards is
asserted bit-exactly against a ``np.stack(...).sum(0) / R`` oracle before
any timing is trusted.  Backward compute time is modeled from the GPU
spec's achievable FLOP rate for a transformer-shaped parameter set.

The bucketed step must beat the naive step by >= 1.5x at DP >= 8 (tunable
via ``ZERO_MIN_SPEEDUP`` for throttled CI runners).  Each run (re)writes
``benchmarks/results/zero_micro.json`` — ``speedup_vs_naive_reduce`` is
regression-gated by ``scripts/bench_summary.py --check``, and the ``zero``
payload (exposed/overlap seconds per gradient byte) feeds
:func:`repro.tuner.load_calibration` into evaluator step-time pricing.
"""

import os

import numpy as np
from conftest import print_table, write_record

from repro.comm import CommWorld
from repro.config.parallel_config import ZeroStage
from repro.dist import ZeroGradReducer
from repro.tensor import Tensor

DP_SIZES = (8, 16)  # 1 and 2 Frontier nodes (8 GCDs each)
HIDDEN, FFN_MULT, LAYERS = 128, 4, 8
TOKENS_PER_RANK = 4096
BUCKET_BYTES = 1 << 20
SEED = 0

MIN_SPEEDUP = float(os.environ.get("ZERO_MIN_SPEEDUP", "1.5"))


def _param_shapes() -> list[tuple[int, ...]]:
    """A transformer-shaped parameter list (attention + FFN + norms)."""
    shapes: list[tuple[int, ...]] = [(256, HIDDEN)]  # embedding
    for _ in range(LAYERS):
        shapes += [
            (HIDDEN, 3 * HIDDEN),  # fused QKV
            (HIDDEN, HIDDEN),  # attention out
            (HIDDEN,),
            (HIDDEN,),  # norms
            (HIDDEN, FFN_MULT * HIDDEN),  # FFN up
            (FFN_MULT * HIDDEN, HIDDEN),  # FFN down
            (HIDDEN,),
            (HIDDEN,),  # norms
        ]
    return shapes


def _grads(shapes, dp: int) -> list[list[np.ndarray]]:
    rng = np.random.default_rng(SEED)
    return [[rng.normal(size=s) for s in shapes] for _ in range(dp)]


def _run_reduction(dp: int, shapes, grads, *, bucket_bytes: int):
    """Feed one backward's gradients through a reducer; return it + world."""
    world = CommWorld(num_ranks=dp)
    replicas = [
        [Tensor(np.zeros(s), requires_grad=True) for s in shapes] for _ in range(dp)
    ]
    reducer = ZeroGradReducer(
        replicas,
        world.world_group(),
        stage=ZeroStage.GRADIENTS,
        bucket_bytes=bucket_bytes,
        charge_memory=False,
    )
    # Backward produces gradients in reverse registration order, one rank
    # after another (the simulator's sequential-replica convention).
    for rank in range(dp):
        for index in reversed(range(len(shapes))):
            reducer.ingest(rank, index, grads[rank][index])
    reducer.flush()
    return reducer, world


def _assert_bit_identical(reducer, grads, dp: int) -> None:
    """Reduced shards must equal the stack-sum oracle bit for bit."""
    store = reducer.store
    for bucket_index, bucket in enumerate(store.buckets):
        oracle = np.zeros(bucket.padded_numel)
        for slot in bucket.slots:
            stacked = np.stack([grads[r][slot.param_index] for r in range(dp)])
            oracle[slot.offset : slot.offset + slot.numel] = (
                stacked.sum(axis=0).reshape(-1)
            )
        oracle = oracle / dp
        for rank in range(dp):
            shard = reducer.grad_shards(rank)[bucket_index]
            lo = rank * bucket.shard_numel
            assert np.array_equal(shard, oracle[lo : lo + bucket.shard_numel])


def _backward_seconds(world, num_params: int) -> float:
    """Modeled backward compute: ~4 FLOPs per parameter per token."""
    gpu = world.system.node.gpu
    flops = 4.0 * num_params * TOKENS_PER_RANK
    return flops / (gpu.peak_tflops * 1e12 * gpu.achievable_fraction)


def test_zero_micro():
    shapes = _param_shapes()
    num_params = int(sum(np.prod(s) for s in shapes))
    rows, seconds_record, speedups, zero_payload = [], {}, {}, {}
    for dp in DP_SIZES:
        grads = _grads(shapes, dp)

        bucketed, world = _run_reduction(dp, shapes, grads, bucket_bytes=BUCKET_BYTES)
        _assert_bit_identical(bucketed, grads, dp)
        naive, _ = _run_reduction(dp, shapes, grads, bucket_bytes=1)
        _assert_bit_identical(naive, grads, dp)

        backward_s = _backward_seconds(world, num_params)
        overlapped = bucketed.timeline(backward_s, overlap=True)
        serial = naive.timeline(backward_s, overlap=False)

        speedup = serial.total_seconds / overlapped.total_seconds
        speedups[dp] = speedup
        grad_bytes = bucketed.store.padded_numel_total * 8
        seconds_record[f"naive_step_dp{dp}"] = serial.total_seconds
        seconds_record[f"bucketed_step_dp{dp}"] = overlapped.total_seconds
        zero_payload = {
            "dp": dp,
            "grad_bytes": grad_bytes,
            "buckets": bucketed.store.num_buckets,
            "backward_seconds": backward_s,
            "comm_seconds": overlapped.comm_seconds,
            "exposed_seconds": overlapped.exposed_seconds,
            "overlap_ratio": overlapped.overlap_ratio,
        }
        rows.append(
            {
                "dp": dp,
                "params": len(shapes),
                "buckets": bucketed.store.num_buckets,
                "naive_ms": serial.total_seconds * 1e3,
                "bucketed_ms": overlapped.total_seconds * 1e3,
                "overlap": f"{overlapped.overlap_ratio:.0%}",
                "speedup": speedup,
            }
        )

    print_table(
        f"ZeRO-2 gradient reduction ({num_params:,} params, "
        f"{BUCKET_BYTES >> 10} KiB buckets, S={TOKENS_PER_RANK}/rank)",
        rows,
    )

    record = {
        "workload": {
            "hidden": HIDDEN,
            "layers": LAYERS,
            "params": num_params,
            "tokens_per_rank": TOKENS_PER_RANK,
            "bucket_bytes": BUCKET_BYTES,
            "dp_sizes": list(DP_SIZES),
        },
        "seconds": seconds_record,
        "speedup_vs_naive_reduce": {str(dp): round(s, 2) for dp, s in speedups.items()},
        # Measured at the largest DP — what the tuner's calibration reads.
        "zero": zero_payload,
    }
    write_record("zero_micro", record)

    # The acceptance bar: bucketing + overlap must pay off at scale.
    worst = min(speedups.values())
    assert worst >= MIN_SPEEDUP, (
        f"bucketed+overlapped reduce only {worst:.2f}x faster than naive "
        f"per-param reduction (need >= {MIN_SPEEDUP}x at DP >= 8)"
    )
