"""Fig. 3 — per-MoE-layer memory distribution of M_conv vs M_spec.

Paper shape: for the size-equivalent pair built from a 6.7B base model
(e=16, m=8) on 256 GPUs, the conventional MoE's per-layer footprint is
dominated by model states, while the expert-specialized MoE's footprint is
dominated by the A_dispatch / A_combine activations (the memory bottleneck
shifts from parameters to activations).
"""

import pytest

from conftest import print_table

from repro.config import ParallelConfig, make_equivalent_pair
from repro.xmoe.memory_model import MoEMemoryModel, SystemKind


def build_pair():
    # A 6.7B-style base: H=4096, H_FFN=16384, 16 base experts, m=8.
    return make_equivalent_pair(
        base_hidden=4096,
        base_ffn_hidden=16384,
        num_base_experts=16,
        fine_grained_factor=8,
        seq_length=2048,
        num_layers=1,
    )


def layer_memory_rows():
    pair = build_pair()
    parallel = ParallelConfig(
        world_size=256, ep_size=128, micro_batch_size=1, global_batch_size=1024
    )
    rows = []
    for label, model in (("M_conv", pair.conventional), ("M_spec", pair.specialized)):
        cfg = model.scaled(num_experts=128) if model.num_experts != 128 else model
        mm = MoEMemoryModel(cfg, parallel)
        act = mm.moe_layer_activations(SystemKind.XMOE)
        states_gb = (
            cfg.moe_layer_expert_params() / parallel.ep_size * 16 / 2**30
        )
        rows.append(
            {
                "model": label,
                "model_states_GB": states_gb,
                "A_dispatch_GB": act.a_dispatch / 2**30,
                "A_combine_GB": act.a_combine / 2**30,
                "A_interm0_GB": act.a_interm0 / 2**30,
                "A_interm1_GB": act.a_interm1 / 2**30,
            }
        )
    return rows


def test_fig3_bottleneck_shift(benchmark):
    rows = benchmark(layer_memory_rows)
    print_table("Fig. 3 — MoE layer memory distribution (per device)", rows)
    conv, spec = rows
    # In M_spec the dispatch/combine activations dominate the activations...
    spec_act = sum(v for k, v in spec.items() if k.startswith("A_"))
    conv_act = sum(v for k, v in conv.items() if k.startswith("A_"))
    assert spec["A_dispatch_GB"] + spec["A_combine_GB"] > 0.5 * spec_act
    # ...and grow ~m-fold relative to M_conv while the intermediates do not.
    assert spec["A_dispatch_GB"] == pytest.approx(8 * conv["A_dispatch_GB"], rel=0.05)
    assert spec["A_interm0_GB"] == pytest.approx(conv["A_interm0_GB"], rel=0.05)
    # The activation share of the total footprint rises sharply in M_spec.
    assert spec_act / (spec_act + spec["model_states_GB"]) > conv_act / (
        conv_act + conv["model_states_GB"]
    )
