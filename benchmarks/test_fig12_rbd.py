"""Fig. 12 — dispatch time breakdown with and without RBD.

Paper shape: single MoE layer of the Large model on 32 GPUs with EP=32,
measured redundancy 54.8%.  Inter-node all-to-all dominates the padding-free
dispatch; RBD cuts the inter-node communication time by ~52% and wins
overall (~1.55x) despite adding an intra-node exchange and reconstruction
work.

This benchmark reports both the analytic model (paper configuration) and a
functional measurement on the simulated cluster (scaled-down layer), where
the actual inter-node bytes with and without RBD are counted.
"""

import numpy as np
import pytest

from conftest import print_table

from repro.cluster.topology import LinkTier
from repro.comm import CommWorld
from repro.config import ParallelConfig, frontier_system, paper_config
from repro.moe import TopKGate
from repro.tensor import Tensor
from repro.xmoe import DistributedMoEDispatcher, RBDDispatcher, build_pft
from repro.xmoe.memory_model import SystemKind
from repro.xmoe.perf_model import MoEPerformanceModel


def analytic_breakdown():
    model = paper_config("large")
    parallel = ParallelConfig(
        world_size=32, ep_size=32, micro_batch_size=1, global_batch_size=64, use_rbd=True
    )
    perf = MoEPerformanceModel(model, parallel, frontier_system(num_nodes=4), SystemKind.XMOE)
    return {
        "redundancy": perf.redundancy(),
        "without": perf.dispatch_breakdown(use_rbd=False),
        "with": perf.dispatch_breakdown(use_rbd=True),
    }


def functional_inter_node_bytes(num_ranks=16, num_experts=32, top_k=8, tokens=32, hidden=16):
    """Measured inter-node dispatch bytes with the flat vs RBD dispatchers."""
    rng = np.random.default_rng(0)
    gate = TopKGate(hidden, num_experts, top_k, rng=np.random.default_rng(1))
    tokens_list, pfts = [], []
    for _ in range(num_ranks):
        toks = rng.normal(size=(tokens, hidden))
        g = gate(Tensor(toks))
        pfts.append(build_pft(10**6, g.top_experts, g.top_scores, num_experts))
        tokens_list.append(toks)

    def inter_bytes(world, ops):
        total = 0.0
        for e in world.stats.events:
            if e.op in ops:
                total += e.bytes_by_tier.get(LinkTier.INTER_NODE, 0.0)
                total += e.bytes_by_tier.get(LinkTier.CROSS_RACK, 0.0)
        return total

    world_flat = CommWorld(num_ranks=num_ranks)
    DistributedMoEDispatcher(world_flat.world_group(), num_experts).dispatch(
        tokens_list, pfts
    )
    world_rbd = CommWorld(num_ranks=num_ranks)
    rbd = RBDDispatcher(world_rbd.world_group(), num_experts, seed=3)
    rbd.dispatch(tokens_list, pfts)
    return (
        inter_bytes(world_flat, {"dispatch_a2a"}),
        inter_bytes(world_rbd, {"rbd_s1_a2a"}),
        rbd.last_stats["redundancy_rate"],
    )


def run_all():
    return analytic_breakdown(), functional_inter_node_bytes()


def test_fig12_rbd_dispatch_breakdown(benchmark):
    analytic, functional = benchmark.pedantic(run_all, rounds=1, iterations=1)

    without, with_rbd = analytic["without"], analytic["with"]
    rows = [
        {
            "variant": "w/o RBD",
            "buffer_ms": without.buffer_instantiation * 1e3,
            "inter_node_a2a_ms": without.inter_node_a2a * 1e3,
            "s2_instantiation_ms": without.stage2_instantiation * 1e3,
            "intra_node_a2a_ms": without.intra_node_a2a * 1e3,
            "reconstruction_ms": without.input_reconstruction * 1e3,
            "total_ms": without.total() * 1e3,
        },
        {
            "variant": "w/ RBD",
            "buffer_ms": with_rbd.buffer_instantiation * 1e3,
            "inter_node_a2a_ms": with_rbd.inter_node_a2a * 1e3,
            "s2_instantiation_ms": with_rbd.stage2_instantiation * 1e3,
            "intra_node_a2a_ms": with_rbd.intra_node_a2a * 1e3,
            "reconstruction_ms": with_rbd.input_reconstruction * 1e3,
            "total_ms": with_rbd.total() * 1e3,
        },
    ]
    print_table(
        f"Fig. 12 — dispatch breakdown (analytic, redundancy={analytic['redundancy']:.1%})",
        rows,
    )

    # Redundancy close to the paper's measured 54.8% for this configuration.
    assert analytic["redundancy"] == pytest.approx(0.548, abs=0.05)
    # Inter-node time reduced by roughly the redundancy rate (paper: 52.5%).
    reduction = 1.0 - with_rbd.inter_node_a2a / without.inter_node_a2a
    assert 0.35 < reduction < 0.7
    # Overall dispatch faster despite the extra stages.  The paper measures
    # 1.55x; our network model charges the intra-node stage more
    # conservatively, so the modelled end-to-end gain is smaller but the
    # direction and the inter-node saving match.
    assert without.total() / with_rbd.total() > 1.1

    flat_bytes, rbd_bytes, measured_redundancy = functional
    print_table(
        "Fig. 12 — functional inter-node dispatch bytes (simulated cluster)",
        [
            {"variant": "flat a2a", "inter_node_MB": flat_bytes / 2**20},
            {"variant": "RBD stage-1", "inter_node_MB": rbd_bytes / 2**20},
            {"variant": "measured redundancy", "inter_node_MB": measured_redundancy},
        ],
    )
    assert rbd_bytes < flat_bytes
    assert 1.0 - rbd_bytes / flat_bytes == pytest.approx(measured_redundancy, abs=0.15)
