"""Plan-cache micro-benchmark: steady-state warm steps vs cold rebuilds.

Between consecutive training steps the routing assignment multiset barely
moves, and :class:`repro.routing.plan_cache.PlanCache` exploits exactly
that: fingerprint the step, reuse (or patch) the previous PFTs + plan, and
run the back half through the fused executor.  This benchmark measures the
steady-state payoff under the scenario the cache is built for — a fixed
batch whose gate scores drift a tiny amount each step (every step re-routes
**zero** assignments; the measured per-step reroute rate is asserted ≤ 5%)
— for all three dispatch kinds at EP 8 and 32.

Before any timing is trusted, warm cached steps (exact hits, weight
patches, *and* incremental structural patches) are checked bit-identical
to a cache-less runtime for every kind.  The acceptance bar: the cached
steady-state full step must beat the cache-less full step by >= 2x at
EP=32 (tunable via ``PLAN_CACHE_MIN_SPEEDUP`` for throttled CI runners).

Each run (re)writes ``benchmarks/results/plan_cache_micro.json``
(gitignored, same schema family as ``step_runtime_micro.json``) including
a ``plan_cache`` block — the measured steady-state hit rate and the warm
resolve cost relative to a cold PFT+plan build — which
:func:`repro.tuner.load_calibration` folds into tuner scoring so
steady-state workloads stop being over-charged for plan builds.
"""

import gc
import os
import time

import numpy as np
from conftest import print_table, write_record

from repro.comm import CommWorld
from repro.routing import PlanCache, make_dispatcher, make_policy
from repro.routing.plan_cache import StepSignature
from repro.routing.policies import RoutingDecision, skewed_router_tokens
from repro.runtime import StepRuntime

EP_SIZES = (8, 32)  # 1 and 4 Frontier nodes (8 GCDs each)
KINDS = ("flat", "rbd", "hier")
EXPERTS_PER_RANK, TOP_K = 1, 4
TOKENS_PER_RANK, HIDDEN = 64, 32
SKEW, SEED = 1.2, 0
ROUTER = "softmax-topk"
#: fraction of each rank's token rows nudged by ~1e-9 every step — enough
#: to drift every perturbed token's gate scores bitwise (forcing a real
#: weight patch, not an exact hit) without flipping any expert choice.
PERTURB_FRACTION = 0.03
#: distinct perturbed steps in the steady-state cycle.
CYCLE = 8

MIN_SPEEDUP = float(os.environ.get("PLAN_CACHE_MIN_SPEEDUP", "2.0"))


def _time(fn, repeats=9):
    best, result = float("inf"), None
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return best, result


def _runtimes(ep: int, kind: str, *, cached: bool):
    num_experts = ep * EXPERTS_PER_RANK
    policy = make_policy(
        ROUTER, HIDDEN, num_experts, TOP_K,
        rng=np.random.default_rng(SEED), seed=SEED,
    )
    world = CommWorld(num_ranks=ep)
    dispatcher = make_dispatcher(world.world_group(), num_experts, kind=kind, seed=SEED)
    cache = PlanCache(maxsize=2 * CYCLE) if cached else None
    # capacity=None: the paper's padding-free pipeline needs no per-expert
    # cap, and it keeps every steady-state step weight-patchable.
    return StepRuntime(policy, dispatcher, plan_cache=cache), policy


def _base_batches(ep: int, policy):
    return [
        skewed_router_tokens(
            np.random.default_rng((SEED, 0, rank)),
            TOKENS_PER_RANK,
            policy.weight,
            skew=SKEW,
        )
        for rank in range(ep)
    ]


def _perturbed_cycle(base, rng):
    """CYCLE steady-state variants: tiny score drift on ≤5% of each batch."""
    out = []
    rows = max(1, int(PERTURB_FRACTION * TOKENS_PER_RANK))
    for _ in range(CYCLE):
        arrs = [b.copy() for b in base]
        for a in arrs:
            sel = rng.choice(TOKENS_PER_RANK, size=rows, replace=False)
            a[sel] += 1e-9 * rng.normal(size=(rows, HIDDEN))
        out.append(arrs)
    return out


def _reroute_rate(policy, previous, current):
    """Fraction of kept assignments whose (rank, token, expert) changed."""
    shape = [a.shape[0] for a in previous]
    sig_a = StepSignature.from_decisions(policy.route_batch(previous), shape)
    sig_b = StepSignature.from_decisions(policy.route_batch(current), shape)
    keys_a = np.sort(sig_a.keys[~sig_a.dropped])
    keys_b = np.sort(sig_b.keys[~sig_b.dropped])
    total = max(1, max(keys_a.size, keys_b.size))
    common = np.intersect1d(keys_a, keys_b, assume_unique=True).size
    return (keys_a.size - common + keys_b.size - common) / (2 * total)


def _assert_bit_identical(warm_result, cold_result, context):
    for a, b in zip(warm_result.outputs, cold_result.outputs):
        assert np.array_equal(a, b), f"{context}: combined outputs differ"
    for a, b in zip(warm_result.expert_inputs, cold_result.expert_inputs):
        assert np.array_equal(a, b), f"{context}: expert inputs differ"
    for a, b in zip(warm_result.pfts, cold_result.pfts):
        assert np.array_equal(a.combine_weights, b.combine_weights), context
        assert np.array_equal(a.token_ids, b.token_ids), context
        assert np.array_equal(a.expert_ids, b.expert_ids), context


def _check_identity(ep: int, kind: str, steady):
    """Warm hits, weight patches, and structural patches vs cold builds."""
    warm, policy = _runtimes(ep, kind, cached=True)
    cold, _ = _runtimes(ep, kind, cached=False)
    step_arg = None if kind == "rbd" else 0
    outcomes = []
    flipped = [a.copy() for a in steady[0]]
    flipped[1][:2] *= -1.0  # re-route a couple of tokens: structural patch
    for arrs in [steady[0], steady[0], steady[1], flipped, steady[0]]:
        warm_result = warm.run_step([a.copy() for a in arrs], step=step_arg)
        cold_result = cold.run_step([a.copy() for a in arrs], step=step_arg)
        outcomes.append(warm_result.trace.cache_outcome)
        _assert_bit_identical(warm_result, cold_result, f"{kind} ep={ep}")
    assert outcomes[0] == "miss" and outcomes[1] == "hit", outcomes
    assert "weight_patch" in outcomes, outcomes
    assert "patch" in outcomes, outcomes
    return warm, step_arg


def test_plan_cache_micro():
    rows, seconds_record, speedups = [], {}, {}
    cache_block = {}
    for ep in EP_SIZES:
        for kind in KINDS:
            warm, _ = _runtimes(ep, kind, cached=True)
            cold, policy = _runtimes(ep, kind, cached=False)
            base = _base_batches(ep, policy)
            steady = _perturbed_cycle(base, np.random.default_rng((SEED, 1)))
            step_arg = None if kind == "rbd" else 0

            # Correctness before timing: every cache tier is bit-identical.
            _check_identity(ep, kind, steady)

            # The scenario's honesty check: the steady-state workload must
            # actually be a low-reroute workload (the bar the tentpole
            # targets is <= 5% per step; score drift alone re-routes 0%).
            rate = _reroute_rate(policy, steady[0], steady[1])
            assert rate <= 0.05, f"steady-state reroute rate {rate:.3f} > 5%"

            # Prime the cache (cold miss + fused-executor compile), then
            # time warm steady-state steps vs the cache-less runtime on the
            # identical perturbed inputs.
            warm.run_step(steady[0], step=step_arg)
            warm.run_step(steady[0], step=step_arg)
            counter = {"i": 0}

            def next_arrs():
                arrs = steady[counter["i"] % CYCLE]
                counter["i"] += 1
                return arrs

            warm_s, _ = _time(lambda: warm.run_step(next_arrs(), step=step_arg))
            counter["i"] = 0
            cold_s, _ = _time(lambda: cold.run_step(next_arrs(), step=step_arg))

            speedup = cold_s / warm_s
            speedups[(ep, kind)] = speedup
            seconds_record[f"{kind}_cold_step_ep{ep}"] = round(cold_s, 6)
            seconds_record[f"{kind}_warm_step_ep{ep}"] = round(warm_s, 6)
            rows.append(
                {
                    "ep": ep,
                    "kind": kind,
                    "reroute_rate": round(rate, 4),
                    "cold_ms": cold_s * 1e3,
                    "warm_ms": warm_s * 1e3,
                    "speedup": speedup,
                    "hit_rate": warm.plan_cache.stats()["hit_rate"],
                }
            )

            if ep == max(EP_SIZES) and kind == "flat":
                # Calibration inputs: the steady-state hit rate and the
                # cost of a warm resolve relative to a cold PFT+plan build.
                decisions = policy.route_batch(base, step=step_arg)
                cache = warm.plan_cache
                resolve = lambda: cache.resolve(  # noqa: E731
                    decisions,
                    dispatcher=warm.dispatcher,
                    capacity=None,
                    tokens_per_rank=[TOKENS_PER_RANK] * ep,
                    row_signature=(HIDDEN, "<f8"),
                    step=step_arg,
                )
                resolve()  # ensure the entry exists: timed resolves hit
                warm_resolve_s, _ = _time(resolve)
                cold_build_s, _ = _time(
                    lambda: warm.dispatcher.plan(
                        RoutingDecision.to_pfts(decisions, None), step=step_arg
                    )
                )
                cache_block = {
                    "hit_rate": warm.plan_cache.stats()["hit_rate"],
                    "warm_cost_ratio": round(
                        min(1.0, warm_resolve_s / max(cold_build_s, 1e-12)), 4
                    ),
                }

    print_table(
        f"Plan-cache micro-benchmark (S={TOKENS_PER_RANK}/rank, H={HIDDEN}, "
        f"k={TOP_K}, E/rank={EXPERTS_PER_RANK}, router={ROUTER}, "
        f"perturb={PERTURB_FRACTION:.0%}/step)",
        rows,
    )

    record = {
        "workload": {
            "router": ROUTER,
            "tokens_per_rank": TOKENS_PER_RANK,
            "hidden": HIDDEN,
            "top_k": TOP_K,
            "experts_per_rank": EXPERTS_PER_RANK,
            "ep_sizes": list(EP_SIZES),
            "kinds": list(KINDS),
            "skew": SKEW,
            "perturb_fraction": PERTURB_FRACTION,
            "assignments": max(EP_SIZES) * TOKENS_PER_RANK * TOP_K,
        },
        "seconds": seconds_record,
        "speedup_warm_vs_cold": {
            f"{kind}_ep{ep}": round(s, 2) for (ep, kind), s in speedups.items()
        },
        "plan_cache": cache_block,
    }
    write_record("plan_cache_micro", record)

    # The acceptance bar: warm steady-state steps must pay off at scale for
    # every dispatch kind.
    for kind in KINDS:
        assert speedups[(32, kind)] >= MIN_SPEEDUP, (
            f"cached steady-state step only {speedups[(32, kind)]:.2f}x faster "
            f"than cold builds for kind={kind} at EP=32 (need >= {MIN_SPEEDUP}x)"
        )
