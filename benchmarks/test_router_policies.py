"""Router-policy sweep: load balance / drops / dispatch bytes per policy.

Every registered router policy (softmax top-k, switch top-1 with
exploration noise + capacity dropping, noisy top-k, expert-choice) drives
the full dispatch/combine pipeline over the simulated cluster, under both
the flat all-to-all planner and the two-stage RBD planner, on a Zipf-skewed
token distribution.  The printed table compares, per (policy, dispatch)
pair, the accumulated load-balance entropy, max/mean load imbalance, drop
rate, and stage-1/stage-2 dispatch megabytes.

Expected shape:

* expert-choice routing achieves strictly better load-balance entropy than
  switch top-1 under the skewed distribution (balance by construction vs
  capacity-truncated token choice) — asserted;
* switch top-1 is the only policy with a non-zero policy-level drop rate
  under skew (its capacity factor bites when tokens pile up);
* RBD moves strictly fewer stage-1 (inter-node) bytes than flat dispatch
  for every policy, and the routing regime itself (entropy, drops) is
  identical across the two dispatch paths.
"""

from conftest import print_table

from repro.routing import ROUTER_POLICY_NAMES
from repro.xmoe.trainer import run_routing_validation

RANKS, EXPERTS, TOP_K = 16, 16, 2  # 2 Frontier nodes, one expert per rank
TOKENS_PER_RANK, HIDDEN = 64, 32
STEPS, SKEW, SEED = 3, 1.2, 0


def test_router_policy_sweep():
    assert len(ROUTER_POLICY_NAMES) >= 4
    rows = []
    summaries: dict[tuple[str, str], dict] = {}
    telemetries: dict[tuple[str, str], object] = {}
    for name in ROUTER_POLICY_NAMES:
        for use_rbd in (False, True):
            telemetry = run_routing_validation(
                name,
                num_ranks=RANKS,
                num_experts=EXPERTS,
                top_k=TOP_K,
                hidden_size=HIDDEN,
                tokens_per_rank=TOKENS_PER_RANK,
                steps=STEPS,
                use_rbd=use_rbd,
                seed=SEED,
                skew=SKEW,
            )
            key = (name, "rbd" if use_rbd else "flat")
            summary = telemetry.summary()
            summaries[key] = summary
            telemetries[key] = telemetry
            rows.append({"policy": name, "dispatch": key[1], **summary})
    print_table(
        f"Router-policy sweep ({RANKS} ranks, E={EXPERTS}, k={TOP_K}, "
        f"S={TOKENS_PER_RANK}/rank, skew={SKEW})",
        rows,
    )

    # Acceptance: expert-choice beats switch-top-1 on load-balance entropy
    # under the skewed token distribution, on both dispatch paths.
    for dispatch in ("flat", "rbd"):
        ec = summaries[("expert-choice", dispatch)]
        sw = summaries[("switch-top1", dispatch)]
        assert ec["balance_entropy"] > sw["balance_entropy"], (
            f"expert-choice entropy {ec['balance_entropy']} not better than "
            f"switch-top1 {sw['balance_entropy']} under {dispatch} dispatch"
        )

    for name in ROUTER_POLICY_NAMES:
        flat, rbd = summaries[(name, "flat")], summaries[(name, "rbd")]
        # The routing regime is a property of the policy, not the dispatch
        # path: identical decisions feed both planners.
        assert flat["balance_entropy"] == rbd["balance_entropy"]
        assert flat["drop_rate"] == rbd["drop_rate"]
        assert flat["assignments"] == rbd["assignments"]
        # RBD's whole point: fewer stage-1 all-to-all rows, made up with
        # intra-node stage-2 replica traffic (compare raw byte counters —
        # the table rounds to MB).  Top-1 routing is the degenerate case:
        # a token never targets two experts on one node, so RBD finds no
        # redundancy to bypass and matches flat traffic exactly.
        t_flat, t_rbd = telemetries[(name, "flat")], telemetries[(name, "rbd")]
        assert t_flat.stage2_bytes == 0.0
        if name == "switch-top1":
            assert t_rbd.stage1_bytes == t_flat.stage1_bytes
            assert t_rbd.stage2_bytes == 0.0
            assert t_rbd.redundancy == 0.0
        else:
            assert t_rbd.stage1_bytes < t_flat.stage1_bytes
            assert t_rbd.stage2_bytes > 0.0
            assert t_rbd.redundancy > 0.0

    # Expert-choice load balance holds by construction: perfect entropy and
    # at most one token between the most and least loaded experts.
    assert summaries[("expert-choice", "flat")]["balance_entropy"] >= 0.999
    # Switch-top-1's capacity factor bites under skew.
    assert summaries[("switch-top1", "flat")]["policy_dropped"] > 0
