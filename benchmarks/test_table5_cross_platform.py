"""Table 5 — cross-platform results on 8 × NVIDIA A100-40GB.

Paper shape: at the full Small configuration (2k sequence, 28 layers) the
padded baselines run out of the A100's 40 GB while X-MoE sustains training;
on the reduced configurations (Small-SR: 1k sequence, Small-LR: 14 layers)
every system trains with broadly comparable throughput.

Known deviation (recorded in EXPERIMENTS.md): in our simulated memory
accounting the baselines sit close to — but not always above — the 40 GB
limit at the full Small configuration, so this benchmark asserts the robust
part of the shape: X-MoE always trains, X-MoE's activation footprint is the
smallest, and all systems train the SR/LR variants.
"""


from conftest import print_table

from repro.config import ParallelConfig, dgx_cluster, paper_config
from repro.xmoe.memory_model import MoEMemoryModel, SystemKind
from repro.xmoe.trainer import sweep_best_config

SYSTEMS = [SystemKind.DEEPSPEED_MOE, SystemKind.TUTEL, SystemKind.XMOE]


def run_table5():
    dgx = dgx_cluster(1)
    results = {}
    for name in ("small", "small-sr", "small-lr"):
        model = paper_config(name)
        results[name] = {
            kind: sweep_best_config(model, 8, kind, dgx, global_batch_size=64)
            for kind in SYSTEMS
        }
    return results


def test_table5_cross_platform(benchmark):
    results = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    rows = []
    for model_name, by_system in results.items():
        row = {"model": model_name}
        for kind, res in by_system.items():
            row[kind.value] = "OOM" if res.oom else f"{res.tflops_per_gpu:.1f}"
        rows.append(row)
    print_table("Table 5 — TFLOPs on 8 x A100-40GB", rows)

    # X-MoE trains every configuration, including the full Small model.
    for name in results:
        assert not results[name][SystemKind.XMOE].oom
    # The reduced configurations train under every system.
    for name in ("small-sr", "small-lr"):
        for kind in SYSTEMS:
            assert not results[name][kind].oom
    # X-MoE needs the least memory at the full Small configuration.
    parallel = ParallelConfig(world_size=8, ep_size=8, micro_batch_size=1, global_batch_size=64)
    mm = MoEMemoryModel(paper_config("small"), parallel, dgx_cluster(1).node.gpu)
    xmoe_mem = mm.report(SystemKind.XMOE).total_gb
    for kind in (SystemKind.DEEPSPEED_MOE, SystemKind.TUTEL):
        assert mm.report(kind).total_gb > xmoe_mem
