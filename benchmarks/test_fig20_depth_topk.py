"""Fig. 20 (Appendix E) — scaling by model depth and by top-k on 256 GPUs.

Paper shape: (left) increasing the number of layers of the Large base
config, the padded baselines OOM beyond ~16 layers while X-MoE keeps
training with stable (>22 TFLOPs) throughput from 8 to 24 layers;
(right) increasing top-k from 4 to 16, X-MoE's advantage over Tutel grows
(1.12x at k=4 up to 1.64x at k=16) because all-to-all volume scales with k
and X-MoE removes padding and redundant inter-node copies.
"""


from conftest import print_table

from repro.config import frontier_system, paper_config
from repro.xmoe.memory_model import SystemKind
from repro.xmoe.trainer import sweep_best_config

SYS256 = frontier_system(num_nodes=32)
LAYERS = (8, 12, 16, 20, 24)
TOPKS = (4, 8, 12, 16)


def run_depth_sweep():
    out = {}
    for layers in LAYERS:
        model = paper_config("large").scaled(name=f"large-{layers}L", num_layers=layers)
        out[layers] = {
            kind: sweep_best_config(model, 256, kind, SYS256)
            for kind in (SystemKind.DEEPSPEED_MOE, SystemKind.TUTEL, SystemKind.XMOE)
        }
    return out


def run_topk_sweep():
    out = {}
    for k in TOPKS:
        model = paper_config("large").scaled(name=f"large-k{k}", top_k=k, num_layers=16)
        out[k] = {
            kind: sweep_best_config(model, 256, kind, SYS256)
            for kind in (SystemKind.TUTEL, SystemKind.XMOE)
        }
    return out


def test_fig20_left_depth_scaling(benchmark):
    results = benchmark.pedantic(run_depth_sweep, rounds=1, iterations=1)
    rows = []
    for layers, by_system in results.items():
        row = {"layers": layers}
        for kind, res in by_system.items():
            row[kind.value] = "OOM" if res.oom else f"{res.tflops_per_gpu:.1f}"
        rows.append(row)
    print_table("Fig. 20 (left) — throughput vs number of layers", rows)

    # X-MoE trains every depth with healthy throughput.
    xmoe = [results[layers][SystemKind.XMOE] for layers in LAYERS]
    assert all(not r.oom for r in xmoe)
    assert min(r.tflops_per_gpu for r in xmoe) > 10.0
    # Baselines hit OOM as depth grows.
    assert results[24][SystemKind.DEEPSPEED_MOE].oom
    assert results[24][SystemKind.TUTEL].oom


def test_fig20_right_topk_scaling(benchmark):
    results = benchmark.pedantic(run_topk_sweep, rounds=1, iterations=1)
    rows = []
    ratios = {}
    for k, by_system in results.items():
        xm, tu = by_system[SystemKind.XMOE], by_system[SystemKind.TUTEL]
        ratio = (
            xm.tflops_per_gpu / tu.tflops_per_gpu
            if (not xm.oom and not tu.oom)
            else float("nan")
        )
        ratios[k] = ratio
        rows.append(
            {
                "top_k": k,
                "X-MoE": "OOM" if xm.oom else f"{xm.tflops_per_gpu:.1f}",
                "Tutel": "OOM" if tu.oom else f"{tu.tflops_per_gpu:.1f}",
                "speedup": ratio,
            }
        )
    print_table("Fig. 20 (right) — throughput vs top-k", rows)

    # X-MoE never OOMs and always wins where both run.
    for k in TOPKS:
        assert not results[k][SystemKind.XMOE].oom
    comparable = [k for k in TOPKS if not results[k][SystemKind.TUTEL].oom]
    assert comparable, "Tutel should train at least the smallest top-k"
    for k in comparable:
        assert ratios[k] > 1.0
    # The advantage grows with k (paper: 1.12x at k=4 -> 1.64x at k=16).
    if len(comparable) >= 2:
        assert ratios[comparable[-1]] > ratios[comparable[0]]
