"""Observability overhead micro-benchmark: tracing must be ~free when off.

The ``repro.obs`` span instrumentation lives permanently inside the hot
step path (``StepRuntime.run_step`` phases, ``PlanCache.resolve`` tiers,
every ``ProcessGroup`` collective), so its disabled fast path — one
module-global load returning a shared no-op singleton — is a standing tax
on every step ever run.  This benchmark holds three bars:

1. **Disabled-path unit cost**: a ``span()`` enter/exit with no tracer
   attached is timed directly, and the per-warm-step span budget
   (span calls x unit cost) must stay under 3% of the warm-step baseline
   — a deterministic bound that cannot be blamed on timer noise.
2. **End-to-end overhead**: a warm cached EP=32 flat step (the exact
   steady-state workload of ``test_plan_cache_micro.py``) with no
   collector attached must stay within ``OBS_MAX_OVERHEAD`` (default
   1.2x) of the ``flat_warm_step_ep32`` figure in the plan-cache
   benchmark's JSON record, when that record exists on this machine.
   This bar compares floors measured by *different processes*, so it is
   deliberately looser than bar 1: run-to-run scheduler noise on shared
   runners swings a 4 ms step by ~10%, while the instrumentation's true
   cost — bounded deterministically above — is ~0.05%.
3. **Tracing-on fidelity**: with a tracer attached, the per-step phase
   spans must account for >= 95% of each step span's wall time, the
   plan-cache resolution tier and comm per-tier byte splits must be
   visible as span attributes, and the Chrome-trace export must be
   structurally loadable by Perfetto (trace-event JSON, complete events
   with µs timestamps, per-rank comm tracks).

Each run writes ``benchmarks/results/obs_overhead_micro.json`` (plus its
``.history.jsonl`` trajectory) with the measured unit cost, step times,
and overhead ratio.
"""

import gc
import json
import os
import time

import numpy as np
from conftest import RESULTS_DIR, print_table, write_record

from repro.comm import CommWorld
from repro.obs import Tracer, chrome_trace, use_tracer
from repro.obs import tracer as obs
from repro.routing import PlanCache, make_dispatcher, make_policy
from repro.routing.policies import skewed_router_tokens
from repro.runtime import StepRuntime

EP, KIND = 32, "flat"
EXPERTS_PER_RANK, TOP_K = 1, 4
TOKENS_PER_RANK, HIDDEN = 64, 32
SKEW, SEED = 1.2, 0
ROUTER = "softmax-topk"
PERTURB_FRACTION = 0.03
CYCLE = 8

#: allowed instrumented/baseline warm-step ratio across processes (noise
#: bar; the span-budget bound below is the hard instrumentation-cost one).
MAX_OVERHEAD = float(os.environ.get("OBS_MAX_OVERHEAD", "1.2"))
#: the disabled span budget may cost at most this fraction of a warm step.
SPAN_BUDGET_FRACTION = 0.03

BASELINE_RECORD = RESULTS_DIR / "plan_cache_micro.json"


def _time(fn, repeats=9):
    best, result = float("inf"), None
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return best, result


def _runtime():
    num_experts = EP * EXPERTS_PER_RANK
    policy = make_policy(
        ROUTER, HIDDEN, num_experts, TOP_K,
        rng=np.random.default_rng(SEED), seed=SEED,
    )
    world = CommWorld(num_ranks=EP)
    dispatcher = make_dispatcher(world.world_group(), num_experts, kind=KIND, seed=SEED)
    return StepRuntime(policy, dispatcher, plan_cache=PlanCache(maxsize=2 * CYCLE)), policy


def _steady_batches(policy):
    base = [
        skewed_router_tokens(
            np.random.default_rng((SEED, 0, rank)),
            TOKENS_PER_RANK,
            policy.weight,
            skew=SKEW,
        )
        for rank in range(EP)
    ]
    rng = np.random.default_rng((SEED, 1))
    rows = max(1, int(PERTURB_FRACTION * TOKENS_PER_RANK))
    steady = []
    for _ in range(CYCLE):
        arrs = [b.copy() for b in base]
        for a in arrs:
            sel = rng.choice(TOKENS_PER_RANK, size=rows, replace=False)
            a[sel] += 1e-9 * rng.normal(size=(rows, HIDDEN))
        steady.append(arrs)
    return steady


def _disabled_span_cost():
    """Best-of per-call seconds of a span enter/exit with tracing off."""
    assert not obs.enabled(), "tracing must be off for the disabled-path timing"
    n = 50_000
    span = obs.span

    def burn():
        for _ in range(n):
            with span("bench", "bench"):
                pass

    best, _ = _time(burn, repeats=5)
    return best / n


def _validate_chrome_trace(doc):
    """Structural checks on the trace-event document Perfetto would load."""
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    json.dumps(doc)  # serializable end to end
    comm_tids = set()
    for event in events:
        assert event["ph"] in ("X", "M"), event
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
            assert isinstance(event["dur"], float) and event["dur"] >= 0.0
            if event["cat"] == "comm":
                comm_tids.add(event["tid"])
    # comm spans were duplicated onto per-rank tracks with name metadata.
    assert comm_tids, "expected comm events on per-rank tracks"
    named = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    for tid in comm_tids:
        assert named.get(tid, "").startswith("rank "), (tid, named.get(tid))


def test_obs_overhead_micro():
    per_call = _disabled_span_cost()

    warm, policy = _runtime()
    steady = _steady_batches(policy)
    warm.run_step(steady[0], step=0)  # cold miss
    warm.run_step(steady[0], step=0)  # fused compile happened; now warm
    counter = {"i": 0}

    def next_arrs():
        arrs = steady[counter["i"] % CYCLE]
        counter["i"] += 1
        return arrs

    # Warm every cache tier and the CPU caches before trusting the timer,
    # then take the best over several timing windows: the comparison below
    # is against a figure recorded by a different process, so the estimate
    # must be the workload's floor, not one window's draw.
    for _ in range(2 * CYCLE):
        warm.run_step(next_arrs(), step=0)
    warm_s = min(
        _time(lambda: warm.run_step(next_arrs(), step=0), repeats=11)[0]
        for _ in range(3)
    )

    # --- tracing-on fidelity on a fresh runtime ----------------------------
    traced, traced_policy = _runtime()
    tracer = Tracer()
    with use_tracer(tracer):
        for i in range(4):
            traced.run_step(steady[i % CYCLE], step=0)
    step_spans = tracer.named("step")
    assert len(step_spans) == 4
    tiers = [s.attrs.get("cache_tier") for s in step_spans]
    assert tiers[0] == "miss" and set(tiers[1:]) <= {"hit", "weight_patch"}, tiers
    coverages = []
    for span in step_spans:
        children = tracer.children(span)
        assert children, "step span has no phase children"
        coverages.append(sum(c.seconds for c in children) / span.seconds)
    # Aggregate across the recording: phase spans must account for >= 95%
    # of step wall time (aggregating keeps one preempted step from failing
    # an otherwise airtight decomposition).
    total_coverage = sum(
        c.seconds for s in step_spans for c in tracer.children(s)
    ) / sum(s.seconds for s in step_spans)
    assert total_coverage >= 0.95, (
        f"phase spans cover only {total_coverage:.1%} of step wall time"
    )
    resolve_tiers = {
        s.attrs.get("cache_tier") for s in tracer.named("plan_resolve")
    }
    assert "miss" in resolve_tiers and resolve_tiers & {"hit", "weight_patch"}
    comm_spans = [s for s in tracer.spans if s.category == "comm"]
    assert comm_spans, "cold step must record comm spans"
    for span in comm_spans:
        assert span.attrs["bytes"] > 0
        assert isinstance(span.attrs["bytes_by_tier"], dict) and span.attrs[
            "bytes_by_tier"
        ], span.attrs
    _validate_chrome_trace(chrome_trace(tracer))

    # spans per warm step, counted from an actual traced warm step.
    warm_span = step_spans[-1]
    spans_per_step = 1 + sum(
        1 for s in tracer.spans if s is not warm_span and s.start >= warm_span.start
    )

    # --- the bars ----------------------------------------------------------
    span_budget = spans_per_step * per_call
    assert span_budget <= SPAN_BUDGET_FRACTION * warm_s, (
        f"{spans_per_step} disabled span calls cost {span_budget * 1e6:.2f} µs "
        f"— more than {SPAN_BUDGET_FRACTION:.0%} of a {warm_s * 1e3:.3f} ms warm step"
    )

    baseline_s = None
    ratio = None
    if BASELINE_RECORD.exists():
        try:
            baseline_s = json.loads(BASELINE_RECORD.read_text())["seconds"][
                f"{KIND}_warm_step_ep{EP}"
            ]
        except (ValueError, KeyError, OSError):
            baseline_s = None
    if baseline_s:
        ratio = warm_s / baseline_s
        assert ratio <= MAX_OVERHEAD, (
            f"instrumented warm step {warm_s * 1e3:.3f} ms is {ratio:.3f}x the "
            f"plan-cache baseline {baseline_s * 1e3:.3f} ms (max {MAX_OVERHEAD}x)"
        )
    else:
        print("note: no plan_cache_micro.json baseline — ratio bar skipped")

    print_table(
        f"Observability overhead (EP={EP}, {KIND}, warm cached steps)",
        [
            {
                "disabled_span_ns": per_call * 1e9,
                "spans_per_step": spans_per_step,
                "span_budget_us": span_budget * 1e6,
                "warm_step_ms": warm_s * 1e3,
                "baseline_ms": (baseline_s or 0.0) * 1e3,
                "overhead_ratio": ratio if ratio is not None else float("nan"),
                "min_coverage": min(coverages),
            }
        ],
    )

    write_record(
        "obs_overhead_micro",
        {
            "workload": {
                "router": ROUTER,
                "ep": EP,
                "kind": KIND,
                "tokens_per_rank": TOKENS_PER_RANK,
                "hidden": HIDDEN,
                "top_k": TOP_K,
                "perturb_fraction": PERTURB_FRACTION,
            },
            "seconds": {
                "disabled_span_call": per_call,
                "warm_step_instrumented": round(warm_s, 6),
                "warm_step_baseline": baseline_s,
            },
            "spans_per_warm_step": spans_per_step,
            "overhead_ratio": None if ratio is None else round(ratio, 4),
            "min_step_span_coverage": round(min(coverages), 4),
        },
    )
