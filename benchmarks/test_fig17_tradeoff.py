"""Fig. 17 (Appendix C.2) — SSMB vs TED advantage regions.

Paper shape: on the (H_FFN, top-k) plane with borders drawn for sequence
lengths 2048/4096/8192, the DeepSeek family lies in SSMB's advantage zone,
the Mixtral family in TED's, and Arctic flips from TED to SSMB as the
sequence length grows.
"""


from conftest import print_table

from repro.analysis import KNOWN_MOE_MODELS, advantage_border_topk, tradeoff_table


def run_tradeoff():
    return tradeoff_table(seq_lengths=(2048, 4096, 8192), capacity_factor=1.0)


def test_fig17_advantage_regions(benchmark):
    table = benchmark(run_tradeoff)
    rows = []
    for name, verdicts in table.items():
        point = KNOWN_MOE_MODELS[name]
        rows.append(
            {
                "model": name,
                "H_FFN": point.ffn_hidden_size,
                "top_k": point.top_k,
                "S=2048": "SSMB" if verdicts[2048] else "TED",
                "S=4096": "SSMB" if verdicts[4096] else "TED",
                "S=8192": "SSMB" if verdicts[8192] else "TED",
            }
        )
    print_table("Fig. 17 — SSMB vs TED advantage zones", rows)
    borders = [
        {"S": s, "border_topk_at_HFFN=2048": advantage_border_topk(2048, s)}
        for s in (2048, 4096, 8192)
    ]
    print_table("Fig. 17 — advantage border (top-k at H_FFN=2048)", borders)

    for s in (2048, 4096, 8192):
        assert table["deepseek-moe"][s] and table["deepseek-v3"][s]
        assert not table["mixtral-8x7b"][s] and not table["mixtral-8x22b"][s]
    # Arctic flips with sequence length.
    assert not table["arctic"][2048]
    assert table["arctic"][8192]
    # Longer sequences push the border down (SSMB zone grows).
    assert (
        advantage_border_topk(2048, 8192)
        < advantage_border_topk(2048, 4096)
        < advantage_border_topk(2048, 2048)
    )
