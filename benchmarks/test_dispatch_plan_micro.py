"""Dispatch-plan micro-benchmark: vectorized planner vs seed bookkeeping.

Workload (the acceptance configuration of the routing-plan refactor):
S=4096 routed sequence positions, top-k=8, 64 experts, 8 Frontier nodes
(64 ranks, one expert per rank) — 32768 (token, expert) assignments.

Three measurements:

* ``plan_build`` — compiling all dispatch/combine bookkeeping into a
  :class:`~repro.routing.plan.DispatchPlan`, for the flat and RBD planners.
* ``legacy_bookkeeping`` — a faithful distillation of the seed
  ``RBDDispatcher``'s bookkeeping: Python list building per destination,
  dict slot-maps, per-row replica-request loops with ``members.index``, and
  the O(B²) linear pilot-slot scan the combine stage performed per replica.
* ``dispatch`` / ``combine`` — executing the plan with real (hidden=64)
  buffers over the simulated cluster, flat vs RBD.

Each run (re)writes a machine-local JSON record
(``benchmarks/results/dispatch_plan_micro.json``, gitignored) so future PRs
can track the perf trajectory on a fixed machine, and asserts the
vectorized planner beats the seed bookkeeping by >= 10x (tunable via
``DISPATCH_PLAN_MIN_SPEEDUP`` for throttled CI runners).
"""

import gc
import os
import time

import numpy as np

from conftest import print_table, write_record

from repro.comm import CommWorld
from repro.routing import make_dispatcher
from repro.routing.planner import select_pilots
from repro.xmoe import build_pft

S, K, E, NODES, HIDDEN = 4096, 8, 64, 8, 64
RANKS = E  # one expert per rank, 8 ranks per Frontier node
TOKENS_PER_RANK = S // RANKS



def build_workload(seed=0):
    rng = np.random.default_rng(seed)
    tokens, pfts = [], []
    for _ in range(RANKS):
        top_experts = np.argsort(rng.random((TOKENS_PER_RANK, E)), axis=1)[:, :K]
        weights = rng.uniform(0.05, 1.0, size=(TOKENS_PER_RANK, K))
        pfts.append(build_pft(10**6, top_experts, weights, E))
        tokens.append(rng.normal(size=(TOKENS_PER_RANK, HIDDEN)))
    return tokens, pfts


def legacy_bookkeeping(pfts, expert_to_rank, rank_to_node, seed=0):
    """The seed RBDDispatcher's bookkeeping, loops and dicts included.

    Kept here (not in the library) purely as the baseline the vectorized
    planner is measured against: per-destination Python list building, dict
    slot-maps, per-replica request loops with ``members.index`` inner calls,
    per-row expert/weight lookups, and the combine stage's O(B²) linear
    pilot-slot scan.
    """
    size = len(pfts)
    num_nodes = int(rank_to_node.max()) + 1
    rng = np.random.default_rng(seed)
    plans = []
    for pft in pfts:
        dest = expert_to_rank[pft.expert_ids]
        plans.append(select_pilots(pft, dest, rank_to_node[dest], num_nodes, rng))

    s1_send_rows, s1_send_splits = [], []
    for r in range(size):
        plan = plans[r]
        pilot_rows = np.flatnonzero(plan.pilot_mask)
        pilot_dest = plan.dest_rank[pilot_rows]
        order = np.lexsort((pilot_rows, pilot_dest))
        s1_send_rows.append(pilot_rows[order])
        s1_send_splits.append(np.bincount(pilot_dest, minlength=size).astype(np.int64))

    # Per-destination pilot metadata, built row by row.
    pilot_src = [[] for _ in range(size)]
    pilot_row = [[] for _ in range(size)]
    for r in range(size):
        offsets = np.concatenate([[0], np.cumsum(s1_send_splits[r])])
        for d in range(size):
            rows = s1_send_rows[r][offsets[d] : offsets[d + 1]]
            pilot_src[d].extend([r] * rows.size)
            pilot_row[d].extend(rows.tolist())
    slot_maps = [
        {(pilot_src[d][i], pilot_row[d][i]): i for i in range(len(pilot_src[d]))}
        for d in range(size)
    ]

    # Replica requests keyed by the pilot-holding rank.
    replica_requests = [[] for _ in range(size)]
    for r in range(size):
        plan = plans[r]
        for row in np.flatnonzero(~plan.pilot_mask):
            pilot = int(plan.pilot_of[row])
            pr = int(plan.dest_rank[pilot])
            dr = int(plan.dest_rank[row])
            slot = slot_maps[pr][(r, pilot)]
            replica_requests[pr].append((slot, dr, r, int(row)))

    # Intra-node send programs with members.index inner loops.
    arrival_src = [list(v) for v in pilot_src]
    arrival_row = [list(v) for v in pilot_row]
    for n in sorted(set(rank_to_node.tolist())):
        members = [int(m) for m in np.flatnonzero(rank_to_node == n)]
        send_meta, splits = [], []
        for member in members:
            reqs = sorted(
                replica_requests[member], key=lambda t: (members.index(t[1]), t[0])
            )
            dest_local = np.array([members.index(t[1]) for t in reqs], dtype=np.int64)
            splits.append(np.bincount(dest_local, minlength=len(members)))
            send_meta.append([(t[2], t[3]) for t in reqs])
        for j, _receiver in enumerate(members):
            for i, _sender in enumerate(members):
                offs = np.concatenate([[0], np.cumsum(splits[i])])
                for (src, row) in send_meta[i][offs[j] : offs[j + 1]]:
                    arrival_src[members[j]].append(src)
                    arrival_row[members[j]].append(row)

    # Per-row expert/weight/pilot-slot metadata (seed dispatch tail).
    arr_experts, arr_weights, sort_orders = [], [], []
    for d in range(size):
        experts = np.array(
            [pfts[s].expert_ids[i] for s, i in zip(arrival_src[d], arrival_row[d])],
            dtype=np.int64,
        )
        arr_experts.append(experts)
        arr_weights.append(
            np.array(
                [
                    pfts[s].combine_weights[i]
                    for s, i in zip(arrival_src[d], arrival_row[d])
                ]
            )
        )
        pslot = np.full(len(arrival_src[d]), -1, dtype=np.int64)
        for idx in range(len(arrival_src[d])):
            if idx < len(pilot_src[d]):
                pslot[idx] = idx
        sort_orders.append(np.argsort(experts, kind="stable"))

    # Combine stage C1 bookkeeping: per-replica dests/slots with the O(B²)
    # linear pilot-slot scan and members.index, then the per-member-pair
    # target-slot rebuild — exactly the seed's combine-side loops.
    resolved = 0
    for n in sorted(set(rank_to_node.tolist())):
        members = [int(m) for m in np.flatnonzero(rank_to_node == n)]
        splits, send_slots = [], []
        for member in members:
            rep_idx = list(range(len(pilot_src[member]), len(arrival_src[member])))
            dests, slots = [], []
            for idx in rep_idx:
                src, row = arrival_src[member][idx], arrival_row[member][idx]
                pilot = int(plans[src].pilot_of[row])
                pr = int(plans[src].dest_rank[pilot])
                slot = None
                for cand in range(len(pilot_src[pr])):  # the O(B²) scan
                    if pilot_src[pr][cand] == src and pilot_row[pr][cand] == pilot:
                        slot = cand
                        break
                dests.append(members.index(pr))
                slots.append(slot)
                resolved += 1
            dests_arr = np.array(dests, dtype=np.int64)
            order = np.argsort(dests_arr, kind="stable")
            splits.append(np.bincount(dests_arr[order], minlength=len(members)))
            send_slots.append([slots[i] for i in order])
        for j, _member in enumerate(members):
            target_slots = []
            for i, _sender in enumerate(members):
                offs = np.concatenate([[0], np.cumsum(splits[i])])
                target_slots.extend(send_slots[i][offs[j] : offs[j + 1]])
    total_arrivals = sum(len(a) for a in arrival_src)
    return resolved, total_arrivals, arr_experts, arr_weights


def _time(fn, repeats=3):
    best, result = float("inf"), None
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return best, result


def test_dispatch_plan_micro():
    tokens, pfts = build_workload()
    world = CommWorld(num_ranks=RANKS)
    group = world.world_group()
    flat = make_dispatcher(group, E, use_rbd=False)
    rbd = make_dispatcher(group, E, use_rbd=True, seed=0)

    # ---- plan construction ------------------------------------------
    for _ in range(2):  # warm-up
        rbd.plan(pfts)
    flat_build_s, flat_plan = _time(lambda: flat.plan(pfts), repeats=5)
    rbd_build_s, rbd_plan = _time(lambda: rbd.plan(pfts), repeats=5)
    legacy_s, legacy_out = _time(
        lambda: legacy_bookkeeping(pfts, rbd.expert_to_rank, rbd.rank_to_node),
        repeats=2,
    )
    # Both sides account for the same assignment population.
    assert legacy_out[1] == rbd_plan.total_assignments
    assert legacy_out[0] == rbd_plan.num_replicas

    # ---- execution (dispatch + combine) over the simulated cluster --
    flat_dispatch_s, _ = _time(lambda: flat.dispatch(tokens, pfts, plan=flat_plan))
    rbd_dispatch_s, _ = _time(lambda: rbd.dispatch(tokens, pfts, plan=rbd_plan))
    flat_inputs, _ = flat.dispatch(tokens, pfts, plan=flat_plan)
    rbd_inputs, _ = rbd.dispatch(tokens, pfts, plan=rbd_plan)
    flat_combine_s, _ = _time(
        lambda: flat.combine(
            [i.copy() for i in flat_inputs], flat_plan, [TOKENS_PER_RANK] * RANKS
        )
    )
    rbd_combine_s, _ = _time(
        lambda: rbd.combine(
            [i.copy() for i in rbd_inputs], rbd_plan, [TOKENS_PER_RANK] * RANKS
        )
    )

    speedup = legacy_s / rbd_build_s
    record = {
        "workload": {
            "sequence_positions": S,
            "top_k": K,
            "num_experts": E,
            "num_nodes": NODES,
            "num_ranks": RANKS,
            "hidden": HIDDEN,
            "assignments": int(rbd_plan.total_assignments),
            "pilots": int(rbd_plan.total_pilots),
            "replicas": int(rbd_plan.num_replicas),
            "redundancy_rate": round(rbd_plan.redundancy, 4),
        },
        "seconds": {
            "legacy_rbd_bookkeeping": round(legacy_s, 6),
            "flat_plan_build": round(flat_build_s, 6),
            "rbd_plan_build": round(rbd_build_s, 6),
            "flat_dispatch": round(flat_dispatch_s, 6),
            "rbd_dispatch": round(rbd_dispatch_s, 6),
            "flat_combine": round(flat_combine_s, 6),
            "rbd_combine": round(rbd_combine_s, 6),
        },
        "speedup_vs_seed_bookkeeping": round(speedup, 2),
    }
    write_record("dispatch_plan_micro", record)

    print_table(
        f"Dispatch-plan micro-benchmark (S={S}, k={K}, E={E}, {NODES} nodes)",
        [
            {"stage": "legacy RBD bookkeeping (seed)", "seconds": legacy_s},
            {"stage": "RBD plan build (vectorized)", "seconds": rbd_build_s},
            {"stage": "flat plan build", "seconds": flat_build_s},
            {"stage": "RBD dispatch (plan given)", "seconds": rbd_dispatch_s},
            {"stage": "flat dispatch (plan given)", "seconds": flat_dispatch_s},
            {"stage": "RBD combine", "seconds": rbd_combine_s},
            {"stage": "flat combine", "seconds": flat_combine_s},
            {"stage": f"plan-build speedup: {speedup:.0f}x", "seconds": ""},
        ],
    )

    # Acceptance criterion of the routing-plan refactor (>=10x locally;
    # CI sets DISPATCH_PLAN_MIN_SPEEDUP lower because shared runners are
    # throttled and wall-clock ratios get noisy).
    min_speedup = float(os.environ.get("DISPATCH_PLAN_MIN_SPEEDUP", "10.0"))
    assert speedup >= min_speedup, (
        f"vectorized planner only {speedup:.1f}x faster than seed bookkeeping"
    )
