"""Fig. 14 — SSMB vs activation checkpointing.

Paper shape: under similar memory savings, X-MoE with SSMB reaches higher
throughput (24.14 vs 16.44 TFLOPs, ~1.47x) because checkpointing pays for
recomputation plus two extra all-to-alls per MoE layer in the backward pass.
"""


from conftest import print_table

from repro.analysis import compare_ssmb_vs_checkpointing
from repro.config import ParallelConfig, frontier_system, paper_config


def run_comparison():
    parallel = ParallelConfig(
        world_size=256,
        ep_size=64,
        tp_size=2,
        micro_batch_size=1,
        global_batch_size=1024,
        use_rbd=True,
    )
    return compare_ssmb_vs_checkpointing(
        paper_config("large"), parallel, frontier_system(num_nodes=32)
    )


def test_fig14_ssmb_vs_checkpointing(benchmark):
    result = benchmark(run_comparison)
    print_table(
        "Fig. 14 — SSMB vs activation checkpointing",
        [
            {
                "strategy": "SSMB",
                "TFLOPs": result.ssmb_tflops,
                "activation_GB": result.ssmb_activation_gb,
            },
            {
                "strategy": "Act. Ckpt.",
                "TFLOPs": result.checkpointing_tflops,
                "activation_GB": result.checkpointing_activation_gb,
            },
        ],
    )
    # SSMB wins on throughput (paper: 1.47x) with comparable memory savings.
    assert result.ssmb_tflops > result.checkpointing_tflops
    assert 1.2 < result.speedup < 4.0
    assert result.checkpointing_activation_gb < 2.5 * result.ssmb_activation_gb
