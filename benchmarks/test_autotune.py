"""Auto-tuner acceptance benchmark (this repo's own experiment).

Reference scenario: the 201B "Large" model on a 32-node Frontier partition
(256 GCDs), searching the full plan space — EP/TP/ZeRO degrees × dispatch
∈ {flat, rbd, hier} × router policy × capacity factor × placement order.

Assertions (the acceptance criteria of the tuner subsystem):

* the space holds >= 200 candidates and the memoized evaluation ranks it
  in seconds, with the cache serving the bulk of the lookups;
* memory pruning bites (the Large model OOMs in many layouts) and every
  *ranked* plan fits in device HBM — the tuner can never recommend an OOM;
* the #1 plan strictly dominates at least the worst feasible candidate on
  modeled step time;
* the winning plan is runnable end to end through the functional substrate
  via ``dispatcher_for_config`` + ``policy_for_config``, driven by the
  shared rank-batched :class:`repro.runtime.StepRuntime`.
"""

import time

import numpy as np

from conftest import print_table

from repro.comm import CommWorld
from repro.config import frontier_system, paper_config
from repro.runtime import StepRuntime
from repro.tuner import tune
from repro.xmoe import dispatcher_for_config, policy_for_config

NODES = 32  # 256 GCDs: the paper's Fig. 9 scale
WALL_CLOCK_BUDGET_S = 30.0  # "ranks the space in seconds", CI-safe


def test_autotune_large_on_frontier():
    model = paper_config("large")
    system = frontier_system(num_nodes=NODES)

    start = time.perf_counter()
    report = tune(model, system)
    elapsed = time.perf_counter() - start

    # ---- scale and speed --------------------------------------------
    assert report.num_enumerated >= 200
    assert elapsed < WALL_CLOCK_BUDGET_S, (
        f"tuning took {elapsed:.1f}s for {report.num_enumerated} candidates"
    )
    assert report.evaluator_stats["hit_rate"] > 0.5, (
        "memoization is not pulling its weight"
    )

    # ---- memory safety ----------------------------------------------
    assert report.num_infeasible > 0, (
        "the Large model should OOM in part of the space"
    )
    capacity_gb = system.node.gpu.memory_bytes / 2**30
    for score in report.ranked:
        assert score.peak_memory_gb <= capacity_gb

    # ---- ranking quality --------------------------------------------
    best, worst = report.best, report.worst
    assert best.step_seconds < worst.step_seconds, (
        "the #1 plan must dominate at least the worst feasible candidate"
    )
    assert best in report.pareto or any(
        best.step_seconds == p.step_seconds for p in report.pareto
    )

    # ---- the winner is runnable -------------------------------------
    plan = report.best_parallel_config()
    tuned_model = report.best_model_config()
    ep = plan.ep_size
    hidden, tokens_per_rank = 32, 16
    world = CommWorld(num_ranks=ep, system=system)
    dispatcher = dispatcher_for_config(
        world.world_group(), tuned_model.num_experts, plan
    )
    policy = policy_for_config(
        tuned_model.scaled(hidden_size=hidden), plan, rng=np.random.default_rng(0)
    )
    tokens = [
        np.random.default_rng(r).normal(size=(tokens_per_rank, hidden))
        for r in range(ep)
    ]
    result = StepRuntime(policy, dispatcher).run_step(tokens, step=0)
    assert result.plan.kind == plan.dispatch_kind
    assert all(o.shape == (tokens_per_rank, hidden) for o in result.outputs)

    # ---- report ------------------------------------------------------
    rows = report.table_rows(8)
    rows.append(
        {
            "rank": f"... of {report.num_feasible} feasible "
            f"({report.num_infeasible} pruned, {elapsed:.2f}s)",
        }
    )
    print_table(
        f"Auto-tune: Large on {NODES * 8} GCDs "
        f"(hit rate {report.evaluator_stats['hit_rate']:.0%})",
        rows,
    )
