"""Fig. 4 — dispatch redundancy rate vs EP size.

Paper shape (256 experts, top-8, Frontier nodes of 8 GCDs): the redundant
share of dispatched tokens is 75.1% at EP=16 and falls monotonically to
9.2% at EP=256.
"""

import pytest

from conftest import print_table

from repro.analysis import redundancy_by_ep_size, sample_redundancy_rate

PAPER_SERIES = {16: 0.751, 32: 0.548, 64: 0.338, 128: 0.185, 256: 0.092}


def analytic_and_sampled():
    analytic = redundancy_by_ep_size()
    sampled = {
        ep: sample_redundancy_rate(256, 8, ep, num_tokens=2048, seed=0)
        for ep in analytic
    }
    return analytic, sampled


def test_fig4_redundancy_by_ep_size(benchmark):
    analytic, sampled = benchmark(analytic_and_sampled)
    rows = [
        {
            "EP size": ep,
            "paper_redundant_%": 100 * PAPER_SERIES[ep],
            "analytic_%": 100 * analytic[ep],
            "sampled_%": 100 * sampled[ep],
        }
        for ep in sorted(analytic)
    ]
    print_table("Fig. 4 — redundancy rate of dispatched tokens", rows)
    for ep, paper_value in PAPER_SERIES.items():
        assert analytic[ep] == pytest.approx(paper_value, abs=0.03)
        assert sampled[ep] == pytest.approx(paper_value, abs=0.05)
    values = [analytic[ep] for ep in sorted(analytic)]
    assert all(a > b for a, b in zip(values, values[1:]))
