"""Tables 1-2 (analytic) — size-equivalent M_conv vs M_spec scaling laws.

Paper shape: for size-equivalent models, total and activated parameters are
identical, while A_dispatch and A_combine grow linearly with the
fine-grained factor m and the expert-FFN intermediates stay constant.
"""

import pytest

from conftest import print_table

from repro.config import ParallelConfig, make_equivalent_pair
from repro.xmoe.memory_model import MoEMemoryModel, SystemKind


def run_scaling(ms=(1, 2, 4, 8)):
    rows = []
    parallel = ParallelConfig(world_size=64, ep_size=16, global_batch_size=64)
    for m in ms:
        pair = make_equivalent_pair(
            base_hidden=2048,
            base_ffn_hidden=8192,
            num_base_experts=16,
            fine_grained_factor=m,
            seq_length=2048,
            num_layers=1,
        )
        model = pair.specialized
        act = MoEMemoryModel(model, parallel).moe_layer_activations(SystemKind.THEORETICAL)
        rows.append(
            {
                "m": m,
                "experts": model.num_experts,
                "top_k": model.top_k,
                "total_params_B": model.total_params() / 1e9,
                "activated_params_B": model.activated_params() / 1e9,
                "A_dispatch_MB": act.a_dispatch / 2**20,
                "A_interm_MB": act.a_interm0 / 2**20,
            }
        )
    return rows


def test_table2_activation_scaling(benchmark):
    rows = benchmark(run_scaling)
    print_table("Tables 1-2 — size-equivalent scaling with fine-grained factor m", rows)

    base = rows[0]
    for row in rows[1:]:
        # Size-equivalence: totals and activated counts are constant in m.
        assert row["total_params_B"] == pytest.approx(base["total_params_B"], rel=0.01)
        assert row["activated_params_B"] == pytest.approx(
            base["activated_params_B"], rel=0.01
        )
        # A_dispatch grows linearly with m, the intermediates do not.
        assert row["A_dispatch_MB"] == pytest.approx(
            base["A_dispatch_MB"] * row["m"], rel=0.01
        )
        assert row["A_interm_MB"] == pytest.approx(base["A_interm_MB"], rel=0.01)
