"""§4.1 micro-benchmarks — padding-free kernels vs the padded einsum pipeline.

These measure the *functional* numpy implementations (wall-clock via
pytest-benchmark) and check the analytic cost model's qualitative claims:
the PFT gather/scatter path touches only real tokens, while the padded
einsum path pays for the [S, E, C] mask and capacity-sized buffers.
"""

import numpy as np
import pytest

from repro.baselines import PaddedMoELayer
from repro.baselines.deepspeed_moe import compute_capacity
from repro.config import MI250X_GCD
from repro.moe import ExpertBank, TopKGate
from repro.tensor import Tensor
from repro.xmoe import KernelCostModel, PaddingFreeMoELayer, build_pft, gather_kernel, scatter_kernel, sequential_gemm

S, H, F, E, K = 512, 128, 64, 32, 4


@pytest.fixture(scope="module")
def routed(rng=np.random.default_rng(0)):
    gate = TopKGate(H, E, K, rng=np.random.default_rng(1))
    tokens = rng.normal(size=(S, H))
    gate_out = gate(Tensor(tokens))
    pft = build_pft(10**6, gate_out.top_experts, gate_out.top_scores, E)
    w1 = rng.normal(size=(E, H, F))
    w2 = rng.normal(size=(E, F, H))
    return tokens, pft, w1, w2


def test_bench_gather_kernel(benchmark, routed):
    tokens, pft, _, _ = routed
    result = benchmark(gather_kernel, tokens, pft.token_ids)
    assert result.shape == (pft.num_routed_tokens, H)


def test_bench_scatter_kernel(benchmark, routed):
    tokens, pft, _, _ = routed
    rows = np.random.default_rng(2).normal(size=(pft.num_routed_tokens, H))
    result = benchmark(scatter_kernel, rows, pft.token_ids, pft.combine_weights, S)
    assert result.shape == (S, H)


def test_bench_sequential_gemm(benchmark, routed):
    tokens, pft, w1, w2 = routed
    gathered = gather_kernel(tokens, pft.token_ids)
    result = benchmark(sequential_gemm, gathered, w1, w2, pft.tokens_per_expert)
    assert result.shape == gathered.shape


def test_bench_padding_free_layer_forward(benchmark):
    gate = TopKGate(H, E, K, rng=np.random.default_rng(1))
    experts = ExpertBank(E, H, F, rng=np.random.default_rng(2))
    layer = PaddingFreeMoELayer(gate, experts)
    tokens = Tensor(np.random.default_rng(3).normal(size=(S, H)))
    out, _ = benchmark(layer, tokens)
    assert out.shape == (S, H)


def test_bench_padded_layer_forward(benchmark):
    gate = TopKGate(H, E, K, rng=np.random.default_rng(1))
    experts = ExpertBank(E, H, F, rng=np.random.default_rng(2))
    layer = PaddedMoELayer(gate, experts)
    tokens = Tensor(np.random.default_rng(3).normal(size=(S, H)))
    out, _ = benchmark(layer, tokens)
    assert out.shape == (S, H)


def test_cost_model_predicts_padding_free_advantage(benchmark):
    """The analytic kernel model agrees with the paper's Fig. 11 claims."""

    def evaluate():
        model = KernelCostModel(MI250X_GCD)
        tokens, e, k, h, f = 4096, 256, 8, 7168, 2048
        capacity = compute_capacity(tokens, k, e, 1.25)
        return {
            "einsum_dispatch": model.einsum_dispatch_time(tokens, e, capacity, h),
            "pft_gather": model.gather_time(k * tokens, h),
            "mask_construction": model.mask_construction_time(tokens, e, capacity),
            "padded_gemm": model.padded_expert_gemm_time(e // 64, capacity, h, f),
            "sequential_gemm": model.sequential_gemm_time(
                np.full(e // 64, k * tokens / e), h, f
            ),
        }

    costs = benchmark(evaluate)
    assert costs["pft_gather"] < costs["einsum_dispatch"] / 5
    assert costs["mask_construction"] > costs["pft_gather"]
    # Expert compute is in the same ballpark for both: the sequential GEMM
    # avoids the 1.25x padded FLOPs but runs smaller, less efficient GEMMs
    # (Fig. 11 shows X-MoE's expert time slightly higher at small scale).
    assert costs["sequential_gemm"] < 2.0 * costs["padded_gemm"]
