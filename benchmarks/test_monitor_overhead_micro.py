"""Monitoring overhead micro-benchmark: the monitor must ride along ~free.

The online monitor (:class:`repro.obs.Monitor`) runs once per serving
engine step — a registry instrument diff, a handful of detector updates,
and ring-buffer appends — strictly after the step's tokens are already
streamed.  Its cost is therefore pure overhead on the serving hot loop,
and this benchmark holds the bar the ISSUE sets: the monitoring-on warm
serving *step* must stay within ``MONITOR_MAX_OVERHEAD`` (default 1.1x)
of the monitoring-off step.

Both arms serve the *identical* request trace through identically-seeded
engines (the determinism suite proves the streams are bit-identical), so
the only difference between the timed runs is the monitor's
``observe_step`` work.  The compared statistic is the **median per-step
wall time pooled across repeats**, with the arms interleaved and their
within-pair order alternated: serves are bit-deterministic, so repeats
never change the result, and the median over ~750 step samples per arm
is robust to the bursty preemption a total-wall ratio would inhale on a
busy host.  The cyclic GC is paused around each timed serve — a
collection pass costs proportionally to the whole process's live-object
count, which would charge this micro-benchmark for every other test's
surviving objects.

Each run writes ``benchmarks/results/monitor_overhead_micro.json`` with a
``speedup_monitoring`` figure (off/on median step ratio,
higher-is-better, regression-gated by ``scripts/bench_summary.py
--check``) plus the raw per-arm seconds and per-step costs.
"""

import gc
import os
import statistics
import time

import numpy as np
from conftest import print_table, write_record

from repro.obs import default_serving_monitor
from repro.serving import (
    make_serving_engine,
    poisson_arrivals,
    synth_requests,
)
from repro.serving.traffic import ServeReport

SLOTS, HIDDEN, TOP_K = 8, 64, 2
NUM_REQUESTS, SEED = 48, 7
RATE = 1.2
PROMPT_LEN, MAX_NEW_TOKENS = (4, 12), (8, 16)
DEADLINE_STEPS = 80

#: allowed monitored/unmonitored median-step wall ratio.
MAX_OVERHEAD = float(os.environ.get("MONITOR_MAX_OVERHEAD", "1.1"))

#: timed serves per arm; every step of every repeat feeds the pooled
#: median, so more repeats tighten the statistic without changing it.
REPEATS = 8


def _requests():
    rng = np.random.default_rng(SEED)
    arrivals = poisson_arrivals(rng, NUM_REQUESTS, RATE)
    return synth_requests(
        rng,
        arrivals,
        HIDDEN,
        prompt_len=PROMPT_LEN,
        max_new_tokens=MAX_NEW_TOKENS,
        deadline_steps=DEADLINE_STEPS,
    )


def _serve_once(*, monitored: bool):
    """One full serve, timing every engine step individually."""
    engine = make_serving_engine(
        num_slots=SLOTS, top_k=TOP_K, hidden_size=HIDDEN, seed=SEED
    )
    if monitored:
        engine.monitor = default_serving_monitor(
            engine.registry, telemetry=engine.runtime.telemetry
        )
    requests = _requests()
    ordered = sorted(
        range(len(requests)), key=lambda i: (requests[i].arrival, i)
    )
    cursor = 0
    step_times = []
    gc.collect()
    gc.disable()
    try:
        while cursor < len(ordered) or engine.has_work:
            while cursor < len(ordered):
                request = requests[ordered[cursor]]
                if request.arrival > engine.step_index:
                    break
                engine.submit(request)
                cursor += 1
            t0 = time.perf_counter()
            engine.step()
            step_times.append(time.perf_counter() - t0)
    finally:
        gc.enable()
    report = ServeReport.from_engine(
        engine, steps=engine.step_index, wall_seconds=sum(step_times)
    )
    return report, engine, step_times


def test_monitor_overhead_micro():
    # Warm the process (imports, allocator, BLAS) outside any timed run.
    _serve_once(monitored=True)

    # Interleave the arms, alternating which goes first in each pair, so
    # neither slow drift (thermal, background load) nor periodic
    # interference aliased to the pair period can systematically charge
    # one arm.
    offs, ons = [], []
    for i in range(REPEATS):
        if i % 2:
            ons.append(_serve_once(monitored=True))
            offs.append(_serve_once(monitored=False))
        else:
            offs.append(_serve_once(monitored=False))
            ons.append(_serve_once(monitored=True))
    off, _, _ = offs[0]
    on, engine, _ = ons[0]

    # Identical work both ways — the timing compares like with like.
    assert on.completed == off.completed == NUM_REQUESTS
    assert on.tokens == off.tokens
    assert on.steps == off.steps
    assert (on.latency_p50, on.latency_p99) == (off.latency_p50, off.latency_p99)

    # The monitor actually observed the run it rode along with.
    monitor = engine.monitor
    assert monitor.steps_observed == on.steps
    assert monitor.sampler.series, "monitor sampled no series"

    step_off = statistics.median(t for _, _, times in offs for t in times)
    step_on = statistics.median(t for _, _, times in ons for t in times)
    ratio = step_on / max(step_off, 1e-12)
    wall_off = min(report.wall_seconds for report, _, _ in offs)
    wall_on = min(report.wall_seconds for report, _, _ in ons)

    print_table(
        f"Monitoring overhead (slots={SLOTS}, H={HIDDEN}, k={TOP_K}, "
        f"{NUM_REQUESTS} requests, seed={SEED}, median step of "
        f"{REPEATS}x{on.steps})",
        [
            {
                "arm": "monitor off",
                "step_us": round(step_off * 1e6, 1),
                "best_wall_ms": round(wall_off * 1e3, 3),
                "steps": off.steps,
            },
            {
                "arm": "monitor on",
                "step_us": round(step_on * 1e6, 1),
                "best_wall_ms": round(wall_on * 1e3, 3),
                "steps": on.steps,
            },
        ],
    )

    write_record(
        "monitor_overhead_micro",
        {
            "workload": {
                "slots": SLOTS,
                "hidden": HIDDEN,
                "top_k": TOP_K,
                "requests": NUM_REQUESTS,
                "rate": RATE,
                "seed": SEED,
            },
            "seconds": {
                "serve_unmonitored": round(wall_off, 6),
                "serve_monitored": round(wall_on, 6),
                "step_unmonitored": round(step_off, 9),
                "step_monitored": round(step_on, 9),
            },
            "series_sampled": len(monitor.sampler.series),
            "speedup_monitoring": round(1.0 / ratio, 4),
            "overhead_ratio": round(ratio, 4),
        },
    )

    assert ratio <= MAX_OVERHEAD, (
        f"monitored median step {step_on * 1e6:.1f} us is {ratio:.3f}x the "
        f"unmonitored {step_off * 1e6:.1f} us (max {MAX_OVERHEAD}x, env "
        f"MONITOR_MAX_OVERHEAD)"
    )
