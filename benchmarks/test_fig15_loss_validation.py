"""Fig. 15 — loss-curve validation: X-MoE vs DeepSpeed-MoE.

Paper shape: training the same MoE LM with the DeepSpeed-MoE pipeline and
with X-MoE's padding-free pipeline produces loss curves that closely track
each other; the small residual gap comes from the different token-dropping
rules (DeepSpeed drops negative-score assignments, X-MoE drops only above
capacity, so X-MoE retains more tokens and ends slightly lower).

The experiment is scaled down (a tiny MoE transformer on synthetic data) but
uses exactly the two pipeline implementations under test.
"""

import numpy as np

from conftest import print_table

from repro.baselines import PaddedMoELayer
from repro.moe import DropPolicy, MoETransformerLM, SyntheticLMDataset, TransformerConfig
from repro.tensor import Adam
from repro.xmoe import PaddingFreeMoELayer

STEPS = 40


def make_config(drop_policy):
    return TransformerConfig(
        vocab_size=128,
        hidden_size=32,
        ffn_hidden_size=16,
        num_experts=8,
        top_k=2,
        num_layers=2,
        seq_length=64,
        capacity_factor=1.5,
        drop_policy=drop_policy,
    )


def train_curve(model, seed):
    dataset = SyntheticLMDataset(128, 64, seed=seed)
    opt = Adam(model.parameters(), lr=3e-3)
    losses = []
    for _ in range(STEPS):
        seq = dataset.sample_sequence()
        opt.zero_grad()
        loss, lm_loss = model.loss(seq)
        loss.backward()
        opt.step()
        losses.append(lm_loss)
    return np.array(losses)


def run_validation():
    ds_model = MoETransformerLM(
        make_config(DropPolicy.SCORE_THRESHOLD),
        lambda g, e, c: PaddedMoELayer(g, e, c),
        seed=21,
    )
    xmoe_model = MoETransformerLM(
        make_config(DropPolicy.CAPACITY_ONLY),
        lambda g, e, c: PaddingFreeMoELayer(g, e, c),
        seed=21,
    )
    return train_curve(ds_model, seed=5), train_curve(xmoe_model, seed=5)


def test_fig15_loss_validation(benchmark):
    ds_losses, xmoe_losses = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    rows = [
        {"step": i, "DeepSpeed-MoE": ds_losses[i], "X-MoE": xmoe_losses[i]}
        for i in range(0, STEPS, 5)
    ]
    print_table("Fig. 15 — LM loss over iterations", rows)

    # Both pipelines learn: the loss drops substantially.
    assert xmoe_losses[-5:].mean() < xmoe_losses[:5].mean() - 0.3
    assert ds_losses[-5:].mean() < ds_losses[:5].mean() - 0.3
    # The two curves closely track each other...
    assert np.corrcoef(ds_losses, xmoe_losses)[0, 1] > 0.95
    assert np.abs(ds_losses - xmoe_losses).mean() < 0.3
    # ...and X-MoE (which retains more tokens) is not worse at the end.
    assert xmoe_losses[-10:].mean() <= ds_losses[-10:].mean() + 0.05
