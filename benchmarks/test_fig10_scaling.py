"""Fig. 10 — weak and strong scaling.

Paper shape:
  (a) Weak scaling (Small model, EP=8, 16→256 GPUs, batch grows with GPUs):
      X-MoE stays above Tutel at every scale, with only a small throughput
      drop as the GPU count grows (48.3 → 44.5 TFLOPs for X-MoE).
  (b) Strong scaling (Medium model, fixed global batch 2048, 128→1024 GPUs):
      X-MoE's iteration time keeps decreasing as GPUs are added, with
      diminishing returns at 1024 GPUs where all-to-all latency dominates.
"""


from conftest import print_table

from repro.config import ParallelConfig, frontier_system, paper_config
from repro.xmoe.memory_model import SystemKind
from repro.xmoe.perf_model import MoEPerformanceModel

WEAK_POINTS = [(16, 256), (32, 512), (64, 1024), (128, 2048), (256, 4096)]
STRONG_POINTS = [128, 256, 512, 1024]


def run_weak_scaling():
    out = {}
    model = paper_config("small")
    for world, gbs in WEAK_POINTS:
        system = frontier_system(num_nodes=max(2, world // 8))
        row = {}
        for kind in (SystemKind.XMOE, SystemKind.TUTEL):
            parallel = ParallelConfig(
                world_size=world,
                ep_size=8,
                micro_batch_size=1,
                global_batch_size=gbs,
                use_rbd=kind is SystemKind.XMOE,
            )
            perf = MoEPerformanceModel(model, parallel, system, kind)
            row[kind] = perf.throughput_tflops_per_gpu()
        out[world] = row
    return out


def run_strong_scaling():
    out = {}
    model = paper_config("medium")
    for world in STRONG_POINTS:
        system = frontier_system(num_nodes=max(2, world // 8))
        parallel = ParallelConfig(
            world_size=world,
            ep_size=64,
            micro_batch_size=1,
            global_batch_size=2048,
            use_rbd=True,
        )
        out[world] = MoEPerformanceModel(
            model, parallel, system, SystemKind.XMOE
        ).iteration_time()
    return out


def test_fig10a_weak_scaling(benchmark):
    results = benchmark(run_weak_scaling)
    rows = [
        {
            "GPUs": world,
            "X-MoE_TFLOPs": results[world][SystemKind.XMOE],
            "Tutel_TFLOPs": results[world][SystemKind.TUTEL],
        }
        for world, _ in WEAK_POINTS
    ]
    print_table("Fig. 10(a) — weak scaling (Small model, EP=8)", rows)
    xmoe = [results[w][SystemKind.XMOE] for w, _ in WEAK_POINTS]
    tutel = [results[w][SystemKind.TUTEL] for w, _ in WEAK_POINTS]
    assert all(x > t for x, t in zip(xmoe, tutel))
    # Mild degradation only: the largest scale keeps >= 70% of the smallest.
    assert xmoe[-1] > 0.7 * xmoe[0]
    assert xmoe[0] >= xmoe[-1]


def test_fig10b_strong_scaling(benchmark):
    results = benchmark(run_strong_scaling)
    rows = [
        {"GPUs": world, "iteration_s": results[world]} for world in STRONG_POINTS
    ]
    print_table("Fig. 10(b) — strong scaling (Medium model, batch 2048)", rows)
    times = [results[w] for w in STRONG_POINTS]
    assert all(a > b for a, b in zip(times, times[1:]))
    # Diminishing returns at the largest scale: speedup from 512 to 1024 is
    # no better than the speedup from 128 to 256.
    assert times[2] / times[3] <= times[0] / times[1] + 0.2
