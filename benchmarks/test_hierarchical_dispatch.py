"""Hierarchical two-hop dispatch vs flat and RBD: per-tier bytes and time.

Sweeps the three dispatch strategies ({flat, rbd, hier}) over EP group
sizes (one, two, and four Frontier nodes) and two router policies
(softmax top-k and expert-choice), driving the identical routed workload
through the full dispatch/combine pipeline each time.  The printed table
reports, per (EP, policy, dispatch) cell, the bytes the dispatch hops moved
on each link tier (from ``CommStats.bytes_by_tier``), the functional
simulator's summed collective time, and the analytic two-hop estimate from
:func:`repro.comm.cost_model.hierarchical_dispatch_time`.

Expected shape:

* hierarchical dispatch moves **strictly fewer inter-node bytes than flat**
  on every topology with more than one GPU per node and more than one node
  (each (token, destination node) group crosses the slow links exactly
  once) — asserted;
* hierarchical and RBD inter-node bytes are identical (same
  deduplication), but hier pays for it with aggregated leader traffic while
  RBD scatters pilots directly;
* on a single node every strategy's inter-node bytes are zero, and the
  hierarchical gather/scatter hops ride the fast intra-node tiers only.
"""

import numpy as np
from conftest import print_table

from repro.cluster.network import NetworkModel
from repro.cluster.topology import LinkTier, Topology
from repro.comm.cost_model import hierarchical_alltoall_time, hierarchical_dispatch_time
from repro.config.hardware import frontier_system
from repro.routing import DISPATCH_KINDS, DISPATCH_OPS
from repro.xmoe.trainer import sweep_dispatch_validation

EP_SIZES = (8, 16, 32)  # 1, 2, and 4 Frontier nodes (8 GCDs each)
POLICIES = ("softmax-topk", "expert-choice")
EXPERTS_PER_RANK, TOP_K = 2, 4
TOKENS_PER_RANK, HIDDEN, STEPS, SEED = 64, 32, 2, 0


def tier_bytes(stats, kind: str) -> dict:
    """Bytes the named dispatch path's ops moved, keyed by link tier."""
    out: dict = {}
    for event in stats.events:
        if event.op in DISPATCH_OPS[kind]:
            for tier, nbytes in event.bytes_by_tier.items():
                out[tier] = out.get(tier, 0.0) + nbytes
    return out


def sim_seconds(stats, kind: str) -> float:
    """Summed functional-simulator time of the dispatch hops."""
    return sum(e.seconds for e in stats.events if e.op in DISPATCH_OPS[kind])


def analytic_seconds(system, num_ranks: int, kind: str, by_tier: dict) -> float:
    """Analytic alpha-beta estimate for the recorded per-tier traffic."""
    network = NetworkModel(Topology(system, num_ranks))
    ranks = np.arange(num_ranks)
    inter = by_tier.get(LinkTier.INTER_NODE, 0.0) + by_tier.get(LinkTier.CROSS_RACK, 0.0)
    intra = by_tier.get(LinkTier.INTRA_NODE, 0.0) + by_tier.get(
        LinkTier.INTRA_PACKAGE, 0.0
    )
    if kind == "hier":
        # Gather and scatter each carry roughly half the intra traffic.
        gather, inter_est, scatter = hierarchical_dispatch_time(
            network,
            ranks,
            inter_node_bytes_per_rank=inter / num_ranks,
            gather_bytes_per_rank=intra / (2 * num_ranks),
            scatter_bytes_per_rank=intra / (2 * num_ranks),
            congestion=False,
        )
        return gather.seconds + inter_est.seconds + scatter.seconds
    inter_est, intra_est = hierarchical_alltoall_time(
        network, ranks, inter / num_ranks, intra / num_ranks, congestion=False
    )
    return inter_est.seconds + intra_est.seconds


def test_hierarchical_dispatch_sweep():
    system_cache = {}
    rows = []
    inter_bytes: dict[tuple, float] = {}
    for ep in EP_SIZES:
        num_nodes = max(1, -(-ep // 8))
        system = system_cache.setdefault(ep, frontier_system(num_nodes=num_nodes))
        for policy in POLICIES:
            sweep = sweep_dispatch_validation(
                policy,
                num_ranks=ep,
                num_experts=ep * EXPERTS_PER_RANK,
                top_k=TOP_K,
                hidden_size=HIDDEN,
                tokens_per_rank=TOKENS_PER_RANK,
                steps=STEPS,
                seed=SEED,
                system=system,
            )
            for kind in DISPATCH_KINDS:
                telemetry = sweep[kind]
                by_tier = tier_bytes(telemetry.comm_stats, kind)
                inter = by_tier.get(LinkTier.INTER_NODE, 0.0) + by_tier.get(
                    LinkTier.CROSS_RACK, 0.0
                )
                intra = by_tier.get(LinkTier.INTRA_NODE, 0.0) + by_tier.get(
                    LinkTier.INTRA_PACKAGE, 0.0
                )
                inter_bytes[(ep, policy, kind)] = inter
                rows.append(
                    {
                        "ep": ep,
                        "nodes": num_nodes,
                        "policy": policy,
                        "dispatch": kind,
                        "inter_mb": inter / 1e6,
                        "intra_mb": intra / 1e6,
                        "self_mb": by_tier.get(LinkTier.SELF, 0.0) / 1e6,
                        "sim_ms": sim_seconds(telemetry.comm_stats, kind) * 1e3,
                        "est_ms": analytic_seconds(system, ep, kind, by_tier) * 1e3,
                    }
                )
                # Telemetry's plan-derived tier bytes agree with the bytes
                # the collectives actually recorded.
                assert telemetry.inter_node_bytes == inter
                assert telemetry.intra_node_bytes == intra
    print_table(
        f"Dispatch strategies x EP x policy (E/rank={EXPERTS_PER_RANK}, "
        f"k={TOP_K}, S={TOKENS_PER_RANK}/rank, {STEPS} steps)",
        rows,
    )

    for ep in EP_SIZES:
        for policy in POLICIES:
            flat = inter_bytes[(ep, policy, "flat")]
            rbd = inter_bytes[(ep, policy, "rbd")]
            hier = inter_bytes[(ep, policy, "hier")]
            if ep <= 8:  # single node: nothing crosses the inter-node tier
                assert flat == rbd == hier == 0.0
                continue
            # The headline claim: on every multi-GPU-per-node topology the
            # two-hop plan moves strictly fewer inter-node bytes than flat.
            assert hier < flat, (
                f"ep={ep} policy={policy}: hier inter bytes {hier} "
                f"not below flat {flat}"
            )
            # Same deduplication as RBD: one row per (token, dest node).
            assert hier == rbd
