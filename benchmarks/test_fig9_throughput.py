"""Fig. 9 — trainability and throughput of Small/Medium/Large on 256 GPUs
and Super on 1024 GPUs.

Paper shape: DeepSpeed-MoE OOMs beyond the Small model; DeepSpeed-TED and
Tutel OOM on Large; only X-MoE trains the Large (201B) model on 256 GPUs and
the Super (545B) model on 1024 GPUs, while also having the highest
throughput on the configurations every system can train (paper: 1.42x over
Tutel and 5.15x over TED on Medium).
"""


from conftest import print_table

from repro.config import frontier_system, paper_config
from repro.xmoe.memory_model import SystemKind
from repro.xmoe.trainer import sweep_best_config

SYSTEMS = [
    SystemKind.DEEPSPEED_MOE,
    SystemKind.DEEPSPEED_TED,
    SystemKind.TUTEL,
    SystemKind.XMOE,
]


def run_fig9():
    results = {}
    sys256 = frontier_system(num_nodes=32)
    for name in ("small", "medium", "large"):
        model = paper_config(name)
        results[name] = {
            kind: sweep_best_config(model, 256, kind, sys256) for kind in SYSTEMS
        }
    sys1024 = frontier_system(num_nodes=128)
    results["super"] = {
        kind: sweep_best_config(paper_config("super"), 1024, kind, sys1024)
        for kind in (SystemKind.TUTEL, SystemKind.XMOE)
    }
    return results


def test_fig9_trainability_and_throughput(benchmark):
    results = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    rows = []
    for model_name, by_system in results.items():
        row = {"model": model_name}
        for kind, res in by_system.items():
            row[kind.value] = "OOM" if res.oom else f"{res.tflops_per_gpu:.1f}"
        rows.append(row)
    print_table("Fig. 9 — TFLOPs per GPU (OOM = not trainable)", rows)

    # Trainability verdicts.
    assert results["medium"][SystemKind.DEEPSPEED_MOE].oom
    for kind in (SystemKind.DEEPSPEED_MOE, SystemKind.DEEPSPEED_TED, SystemKind.TUTEL):
        assert results["large"][kind].oom
    assert not results["large"][SystemKind.XMOE].oom
    assert results["super"][SystemKind.TUTEL].oom
    assert not results["super"][SystemKind.XMOE].oom

    # Throughput ordering where everyone trains (Small / Medium).
    small = results["small"]
    assert (
        small[SystemKind.XMOE].tflops_per_gpu
        > small[SystemKind.TUTEL].tflops_per_gpu
        > 0
    )
    medium = results["medium"]
    assert (
        medium[SystemKind.XMOE].tflops_per_gpu
        > medium[SystemKind.TUTEL].tflops_per_gpu
        > medium[SystemKind.DEEPSPEED_TED].tflops_per_gpu
    )
    # Speedup factors in the ballpark the paper reports (1.42x / 5.15x).
    assert medium[SystemKind.XMOE].tflops_per_gpu / medium[SystemKind.TUTEL].tflops_per_gpu > 1.2
    assert medium[SystemKind.XMOE].tflops_per_gpu / medium[SystemKind.DEEPSPEED_TED].tflops_per_gpu > 2.5

    # Super model sustains a multi-PFLOPs aggregate.
    assert results["super"][SystemKind.XMOE].aggregated_pflops > 1.0
