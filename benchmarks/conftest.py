"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
and prints the rows/series the paper reports (run with ``-s`` to see them).
Absolute numbers come from the simulated substrate, so only the *shape*
(ordering, rough ratios, crossovers) is expected to match the paper; each
module's docstring states the expected shape.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:  # pragma: no cover
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))


def print_table(title: str, rows: list[dict]) -> None:
    """Pretty-print a list of dict rows as an aligned table."""
    if not rows:
        print(f"\n== {title} == (no rows)")
        return
    keys: list = []
    for row in rows:
        for k in row:
            if k not in keys:
                keys.append(k)
    widths = {
        k: max(len(str(k)), max(len(_fmt(r.get(k, ""))) for r in rows)) for k in keys
    }
    print(f"\n== {title} ==")
    print(" | ".join(str(k).ljust(widths[k]) for k in keys))
    print("-+-".join("-" * widths[k] for k in keys))
    for r in rows:
        print(" | ".join(_fmt(r.get(k, "")).ljust(widths[k]) for k in keys))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
