"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
and prints the rows/series the paper reports (run with ``-s`` to see them).
Absolute numbers come from the simulated substrate, so only the *shape*
(ordering, rough ratios, crossovers) is expected to match the paper; each
module's docstring states the expected shape.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

try:  # pragma: no cover
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_record(name: str, record: dict) -> None:
    """Persist one benchmark record: newest snapshot + trajectory history.

    Writes ``results/<name>.json`` (what ``scripts/bench_summary.py``
    tabulates and the tuner calibrates from) and appends the same record to
    ``results/<name>.history.jsonl`` — the per-machine trajectory that
    ``bench_summary.py --check`` compares new runs against.  Best-effort:
    an unwritable results dir (sandboxed CI) must not fail the benchmark.
    """
    entry = dict(record)
    entry.setdefault("recorded_unix", round(time.time(), 3))
    try:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(entry, indent=2, sort_keys=True) + "\n"
        )
        with (RESULTS_DIR / f"{name}.history.jsonl").open("a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
    except OSError:  # pragma: no cover - sandboxed runners
        pass


def print_table(title: str, rows: list[dict]) -> None:
    """Pretty-print a list of dict rows as an aligned table."""
    if not rows:
        print(f"\n== {title} == (no rows)")
        return
    keys: list = []
    for row in rows:
        for k in row:
            if k not in keys:
                keys.append(k)
    widths = {
        k: max(len(str(k)), max(len(_fmt(r.get(k, ""))) for r in rows)) for k in keys
    }
    print(f"\n== {title} ==")
    print(" | ".join(str(k).ljust(widths[k]) for k in keys))
    print("-+-".join("-" * widths[k] for k in keys))
    for r in rows:
        print(" | ".join(_fmt(r.get(k, "")).ljust(widths[k]) for k in keys))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
