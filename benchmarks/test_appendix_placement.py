"""Appendix C.1 — EP-first vs DP-first placement on a hierarchical network.

Paper shape: for small MoEs the EP all-to-all dominates so locality-aware
EP-first placement is competitive, but for large MoEs the DP gradient
synchronization volume dominates and DP-first placement (replicas of the
same expert co-located within a node) wins on Frontier's 25 GB/s inter-node
links.
"""


from conftest import print_table

from repro.cluster import Topology
from repro.config import ParallelConfig, PlacementOrder, frontier_system, paper_config
from repro.xmoe import plan_placement


def run_placement_analysis():
    topo = Topology(frontier_system(num_nodes=8), 64)
    results = {}
    for name in ("small", "large"):
        model = paper_config(name)
        parallel = ParallelConfig(world_size=64, ep_size=8, global_batch_size=64)
        results[name] = plan_placement(model, parallel, topo)
    return results


def test_appendix_c1_placement(benchmark):
    results = benchmark(run_placement_analysis)
    rows = []
    for name, (ep_first, dp_first, recommended) in results.items():
        rows.append(
            {
                "model": name,
                "EP-first a2a (s)": ep_first.ep_alltoall_seconds,
                "EP-first allreduce (s)": ep_first.dp_allreduce_seconds,
                "DP-first a2a (s)": dp_first.ep_alltoall_seconds,
                "DP-first allreduce (s)": dp_first.dp_allreduce_seconds,
                "recommended": recommended.value,
            }
        )
    print_table("Appendix C.1 — placement trade-off (64 GPUs, EP=8)", rows)

    for name, (ep_first, dp_first, _) in results.items():
        # The structural trade-off: EP-first has cheaper all-to-all,
        # DP-first has cheaper gradient synchronization.
        assert ep_first.ep_alltoall_seconds <= dp_first.ep_alltoall_seconds
        assert dp_first.dp_allreduce_seconds <= ep_first.dp_allreduce_seconds
    # For the large MoE the gradient volume dominates: DP-first wins.
    assert results["large"][2] == PlacementOrder.DP_FIRST
