"""Fig. 11 — forward MoE-layer time breakdown, DeepSpeed-MoE vs X-MoE.

Paper shape: for the Small model (EP=8) the baseline's time is dominated by
gating / buffer dispatch / buffer combine, which X-MoE accelerates by large
factors (5.7x / 35.7x / 8.1x), cutting total layer time by ~62%; expert
compute is slightly *higher* for X-MoE (sequential GEMM overhead).  For the
Large model (EP=64) the all-to-alls dominate and X-MoE roughly halves them
by eliminating zero padding.
"""


from conftest import print_table

from repro.config import ParallelConfig, frontier_system, paper_config
from repro.xmoe.memory_model import SystemKind
from repro.xmoe.perf_model import MoEPerformanceModel

SYS256 = frontier_system(num_nodes=32)


def breakdowns(model_name: str, ep: int):
    model = paper_config(model_name)
    out = {}
    for kind in (SystemKind.DEEPSPEED_MOE, SystemKind.XMOE):
        parallel = ParallelConfig(
            world_size=256, ep_size=ep, micro_batch_size=1, global_batch_size=1024
        )
        perf = MoEPerformanceModel(model, parallel, SYS256, kind)
        out[kind] = perf.moe_layer_breakdown(use_rbd=False)
    return out


def run_both():
    return {"small": breakdowns("small", 8), "large": breakdowns("large", 64)}


def test_fig11_layer_time_breakdown(benchmark):
    results = benchmark(run_both)
    for model_name, by_kind in results.items():
        rows = []
        for kind, breakdown in by_kind.items():
            row = {"system": kind.value}
            row.update({k: v * 1e3 for k, v in breakdown.as_dict().items()})
            row["total_ms"] = breakdown.total() * 1e3
            rows.append(row)
        print_table(f"Fig. 11 — {model_name} model forward MoE layer (ms)", rows)

    small_ds = results["small"][SystemKind.DEEPSPEED_MOE]
    small_xm = results["small"][SystemKind.XMOE]
    # Large speedups on the gating / buffer stages.
    assert small_ds.gate / small_xm.gate > 3.0
    assert small_ds.dispatch_buffer / small_xm.dispatch_buffer > 5.0
    assert small_ds.combine_buffer / small_xm.combine_buffer > 5.0
    # Overall layer time cut by more than 40% (paper: 62.3%).
    assert small_xm.total() < 0.6 * small_ds.total()

    large_ds = results["large"][SystemKind.DEEPSPEED_MOE]
    large_xm = results["large"][SystemKind.XMOE]
    # For the Large model the all-to-all dominates and shrinks substantially.
    assert large_ds.dispatch_a2a + large_ds.combine_a2a > 0.3 * large_ds.total()
    a2a_reduction = 1.0 - large_xm.dispatch_a2a / large_ds.dispatch_a2a
    assert 0.3 < a2a_reduction < 0.7
    assert large_xm.total() < large_ds.total()
