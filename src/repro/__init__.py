"""repro — reproduction of X-MoE (SC 2025).

X-MoE is a training system for emerging expert-specialized
Mixture-of-Experts models (DeepSeek-style: many fine-grained experts, large
top-k routing) on HPC platforms with hierarchical networks.  This package
re-implements the system and every substrate it needs — a simulated
Frontier-like cluster, a communication layer, a numpy autograd engine, the
MoE model components, and the baseline systems it is compared against — so
that every table and figure of the paper's evaluation can be regenerated.

Top-level layout (see DESIGN.md for the experiment index):

* :mod:`repro.config` — model / parallelism / hardware configurations.
* :mod:`repro.cluster` — simulated devices, topology, and network model.
* :mod:`repro.comm` — process groups and functional + costed collectives.
* :mod:`repro.tensor` — minimal reverse-mode autograd over numpy.
* :mod:`repro.moe` — gating, experts, transformer blocks, synthetic data.
* :mod:`repro.baselines` — DeepSpeed-MoE, Tutel, DeepSpeed-TED, Megablocks.
* :mod:`repro.routing` — the vectorized routing-plan engine: one dispatch
  abstraction (plan → dispatch → run_experts → combine) behind which flat
  all-to-all and RBD are two planners producing numpy DispatchPlans.
* :mod:`repro.xmoe` — the X-MoE contribution: PFT, padding-free pipeline,
  RBD, SSMB, parallelism planning, memory and performance models, trainer.
* :mod:`repro.analysis` — redundancy / trade-off / sensitivity analyses.
* :mod:`repro.tuner` — offline auto-tuner: topology-aware parallel-plan
  search over the cost/memory models, ranked with a Pareto frontier.
"""

from repro import (
    analysis,
    baselines,
    cluster,
    comm,
    config,
    moe,
    routing,
    tensor,
    tuner,
    xmoe,
)

__version__ = "0.2.0"

__all__ = [
    "config",
    "cluster",
    "comm",
    "tensor",
    "moe",
    "baselines",
    "routing",
    "xmoe",
    "analysis",
    "tuner",
    "__version__",
]
