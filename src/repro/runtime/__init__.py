"""repro.runtime — the shared, rank-batched step execution layer.

One :class:`StepRuntime` drives ``route → to_pft → plan → dispatch →
run_experts → combine`` for **all ranks of an EP group at once**, replacing
the per-rank ``policy.route()`` Python loops that every workload previously
re-implemented.  Validation (:func:`repro.xmoe.trainer.run_routing_validation`
and :meth:`~repro.xmoe.trainer.SimulatedTrainer.validate_routing`), the
dispatch/router benchmarks, the tuner's end-to-end acceptance leg, and the
training examples are all thin consumers of this one loop.

The batched stages live next to the objects they batch —
:meth:`repro.routing.policies.RouterPolicy.route_batch` (one stacked
projection + vectorized top-k) and
:func:`repro.xmoe.pft.build_pft_flat_batched` (all ranks' PFTs in one
argsort/bincount pass) — and are bit-identical to the sequential per-rank
path, so the runtime changes wall-clock, never outputs.
:class:`StepWorkspace` reuses the stacked buffers across steps, and
:class:`StepTrace` hooks give telemetry and byte accounting one uniform
attachment point.  ``benchmarks/test_step_runtime_micro.py`` records the
per-rank-loop vs batched wall-clock trajectory.
"""

from repro.runtime.step import (
    StepResult,
    StepRuntime,
    StepTrace,
    StepWorkspace,
    TraceHook,
)

__all__ = [
    "StepResult",
    "StepRuntime",
    "StepTrace",
    "StepWorkspace",
    "TraceHook",
]
