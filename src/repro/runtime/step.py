"""The rank-batched step runtime: one vectorized drive loop for every workload.

Before this module existed, every workload that wanted to push tokens
through ``route → to_pft → plan → dispatch → run_experts → combine``
re-implemented the same per-rank Python loop: call ``policy.route()`` once
per rank, build each rank's PFT from scratch, then hand the lists to the
dispatcher.  :class:`StepRuntime` replaces all of those loops with a single
shared driver that executes the whole pipeline **for all ranks at once**:

* routing runs through :meth:`~repro.routing.policies.RouterPolicy.route_batch`
  — one stacked ``(num_ranks * tokens, hidden)`` projection plus one
  vectorized top-k instead of ``num_ranks`` separate calls;
* PFT construction runs through
  :meth:`~repro.routing.policies.RoutingDecision.to_pfts` — every rank's
  capacity rule and canonical ordering in one argsort/bincount pass;
* the plan build, dispatch, expert execution, and combine stages drive the
  :class:`~repro.routing.engine.Dispatcher` protocol exactly as before.

Both batched stages are bit-identical to the sequential per-rank loop
(property-tested in ``tests/test_step_runtime.py``), so swapping a driver
onto the runtime changes its wall-clock, never its outputs.

:class:`StepWorkspace` owns the reusable stacked buffers (hidden block,
router logits, and named scratch arenas) so steady-state steps stop
re-allocating them, and :class:`StepTrace` is the uniform attachment point
for telemetry, byte accounting, and future tracing consumers: every
executed step emits one trace object to every registered hook.

With a :class:`~repro.routing.plan_cache.PlanCache` attached
(``plan_cache=``), the runtime additionally skips the PFT build + plan
compile on warm steps and — once a cache entry's fused
:class:`~repro.routing.plan_cache.ExecProgram` has been compiled from its
first cold execution — runs the whole dispatch/experts/combine back half
through a handful of whole-array gathers and strided folds, bit-identical
to the engine path (comm accounting is replayed from the captured event
templates).  The fused path only engages for float64 payloads on worlds
without memory tracking; anything else transparently runs the engine.
"""

from __future__ import annotations

import logging
import math
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.obs import tracer as obs
from repro.routing.engine import Dispatcher
from repro.routing.plan_cache import PlanCache, Resolution
from repro.routing.policies import RouterPolicy, RoutingDecision, _PolicyBase
from repro.routing.telemetry import RoutingTelemetry

logger = logging.getLogger(__name__)


class StepWorkspace:
    """Reusable stacked buffers for the rank-batched route path.

    The runtime routes through one ``(num_ranks * tokens, hidden)`` block
    and one matching logits block per step; this workspace keeps both
    allocations alive across steps (they are re-used in place whenever the
    requested shape matches, and transparently re-grown when it does not),
    so a steady-state drive loop performs no per-step buffer allocation for
    the stacked route stage.
    """

    def __init__(self) -> None:
        self._hidden: np.ndarray | None = None
        self._logits: np.ndarray | None = None
        self._scratch: dict[str, np.ndarray] = {}
        self.hidden_reuses = 0
        self.logits_reuses = 0
        self.scratch_reuses = 0

    def _buffer(self, current: np.ndarray | None, rows: int, cols: int):
        shape = (rows, cols)
        if current is not None and current.shape == shape:
            return current, True
        return np.empty(shape, dtype=np.float64), False

    def stacked_hidden(self, rows: int, cols: int) -> np.ndarray:
        """The ``(rows, cols)`` stacked hidden-state buffer (reused)."""
        self._hidden, reused = self._buffer(self._hidden, rows, cols)
        self.hidden_reuses += int(reused)
        return self._hidden

    def stacked_logits(self, rows: int, cols: int) -> np.ndarray:
        """The ``(rows, cols)`` stacked router-logits buffer (reused)."""
        self._logits, reused = self._buffer(self._logits, rows, cols)
        self.logits_reuses += int(reused)
        return self._logits

    def scratch(self, name: str, shape: tuple, dtype=np.float64) -> np.ndarray:
        """A named reusable scratch arena (re-grown on shape/dtype change).

        The fused plan-cache execution path parks its per-step intermediate
        blocks here (stacked tokens, expert-output stack, fold values) so
        warm steps stop re-allocating them; contents are unspecified until
        the caller fills the array.
        """
        buf = self._scratch.get(name)
        if buf is not None and buf.shape == tuple(shape) and buf.dtype == dtype:
            self.scratch_reuses += 1
            return buf
        buf = np.empty(shape, dtype=dtype)
        self._scratch[name] = buf
        return buf


@dataclass
class StepTrace:
    """Everything one executed step exposes to tracing consumers.

    Emitted by :meth:`StepRuntime.run_step` to every registered trace hook
    (and embedded in the returned :class:`StepResult`), so telemetry, byte
    accounting, and future tracing consumers all attach through the same
    object instead of re-deriving step state from scratch.
    """

    step: int | None
    num_ranks: int
    tokens_per_rank: list[int]
    row_bytes: int
    decisions: list[RoutingDecision]
    pfts: list
    plan: object  # DispatchPlan
    seconds: float
    #: plan-cache resolution for this step ("hit" / "weight_patch" /
    #: "patch" / "miss"), or None when the runtime has no cache attached.
    cache_outcome: str | None = None
    #: snapshot of the cache's cumulative counters after this step.
    cache_stats: dict = field(default_factory=dict)
    #: whether the back half ran through the fused ExecProgram.
    fused: bool = False

    @property
    def dispatched_rows(self) -> int:
        """Surviving routed assignments entering the dispatch stage.

        This counts the assignment population, not wire traffic: RBD moves
        fewer rows (dedup) and hierarchical dispatch moves rows over
        several hops — read ``plan.sent_rows()`` / ``plan.stats_dict()``
        for what the collectives actually carried.
        """
        return int(sum(pft.num_routed_tokens for pft in self.pfts))

    @property
    def dispatch_bytes(self) -> int:
        """Payload bytes of the surviving assignments (``row_bytes`` each)."""
        return self.dispatched_rows * self.row_bytes

    def policy_drops_by_rank(self) -> list[int]:
        """Assignments the router policy dropped, per rank.

        Rank-granular so consumers that map ranks to higher-level units —
        the serving engine maps one request per rank slot — can attribute
        drops to the unit that suffered them instead of a step-wide total.
        """
        return [int(d.num_dropped) for d in self.decisions]

    def capacity_drops_by_rank(self) -> list[int]:
        """Assignments PFT capacity truncation dropped, per rank."""
        return [int(p.dropped_assignments) for p in self.pfts]


#: a trace consumer: called once per executed step with the step's trace.
TraceHook = Callable[[StepTrace], None]


@dataclass
class StepResult:
    """The outputs of one runtime step, plus its :class:`StepTrace`."""

    trace: StepTrace
    expert_inputs: list[np.ndarray]
    expert_outputs: list[np.ndarray]
    outputs: list[np.ndarray]

    @property
    def plan(self):
        """The step's :class:`~repro.routing.plan.DispatchPlan`."""
        return self.trace.plan

    @property
    def decisions(self) -> list[RoutingDecision]:
        """Per-rank routing decisions (batched route, bit-identical)."""
        return self.trace.decisions

    @property
    def pfts(self) -> list:
        """Per-rank PFTs compiled by the batched builder."""
        return self.trace.pfts


class StepRuntime:
    """Executes one MoE step for every rank of an EP group at once.

    Parameters
    ----------
    policy:
        The :class:`~repro.routing.policies.RouterPolicy` that routes each
        step (must carry its own router weight).
    dispatcher:
        Any :class:`~repro.routing.engine.Dispatcher` — flat, RBD, or
        hierarchical; the runtime is agnostic.
    capacity:
        Per-expert token cap applied during PFT construction, or ``None``
        for no cap.  :meth:`capacity_for` computes the standard
        ``ceil(capacity_factor * S * k / E)`` rule.
    expert_weights:
        Optional ``(per_rank_w1, per_rank_w2)`` expert parameter lists; when
        given, :meth:`run_step` executes the real grouped expert GEMMs.
        Without them the runtime runs *identity experts* (each expert
        returns its input), which is exactly what the validation drivers
        need to exercise dispatch + combine.
    telemetry:
        Optional :class:`~repro.routing.telemetry.RoutingTelemetry`; the
        runtime records every step into it (decisions, PFTs, plan, payload
        bytes derived from the actual token dtype).
    trace_hooks:
        Iterable of callables invoked with the :class:`StepTrace` of every
        executed step.
    plan_cache:
        Optional :class:`~repro.routing.plan_cache.PlanCache`.  When given,
        each step's routing decisions are fingerprinted and resolved
        through the cache (exact hit / weight patch / incremental patch /
        cold build) instead of always rebuilding PFTs and the plan, and
        warm steps with a compiled fused executor skip the engine's
        dispatch/combine entirely — bit-identically.
    """

    def __init__(
        self,
        policy: RouterPolicy,
        dispatcher: Dispatcher,
        *,
        capacity: int | None = None,
        expert_weights: tuple[list[np.ndarray], list[np.ndarray]] | None = None,
        activation: str = "silu",
        telemetry: RoutingTelemetry | None = None,
        trace_hooks: tuple[TraceHook, ...] = (),
        plan_cache: PlanCache | None = None,
    ):
        self.policy = policy
        self.dispatcher = dispatcher
        self.capacity = capacity
        self.expert_weights = expert_weights
        self.activation = activation
        self.telemetry = telemetry
        self.trace_hooks: list[TraceHook] = list(trace_hooks)
        self.plan_cache = plan_cache
        self.workspace = StepWorkspace()
        self.steps_run = 0

    # ------------------------------------------------------------------
    @staticmethod
    def capacity_for(
        tokens_per_rank: int, top_k: int, num_experts: int, capacity_factor: float
    ) -> int:
        """The standard per-expert cap: ``ceil(c * S * k / E)``, at least 1."""
        return max(
            1, math.ceil(capacity_factor * tokens_per_rank * top_k / num_experts)
        )

    def add_trace_hook(self, hook: TraceHook) -> None:
        """Register another per-step trace consumer."""
        self.trace_hooks.append(hook)

    # ------------------------------------------------------------------
    def route(
        self, per_rank_hidden: list[np.ndarray], *, step: int | None = None
    ) -> tuple[list[RoutingDecision], list]:
        """The batched front half of a step: decisions and PFTs, all ranks.

        Useful on its own when a caller only needs the routing artifacts
        (the telemetry/trace hooks do **not** fire — they observe full
        steps).
        """
        with obs.span("route_batch", "step"):
            decisions = self.policy.route_batch(
                per_rank_hidden, step=step, workspace=self.workspace
            )
        with obs.span("to_pfts", "step"):
            pfts = RoutingDecision.to_pfts(decisions, self.capacity)
        return decisions, pfts

    def run_step(
        self, per_rank_hidden: list[np.ndarray], *, step: int | None = None
    ) -> StepResult:
        """Execute route → to_pft → plan → dispatch → experts → combine.

        ``per_rank_hidden`` holds one ``[S, H]`` batch per EP-group rank.
        Returns the per-rank combined outputs along with every intermediate
        artifact, records the step into the attached telemetry, and emits a
        :class:`StepTrace` to every registered hook.
        """
        start = time.perf_counter()
        with obs.span("step", "step", step=step) as step_span:
            # The payload keeps its own dtype (routing casts to float64
            # internally): byte accounting below must see what actually moves.
            arrays = [np.asarray(h) for h in per_rank_hidden]
            if not arrays:
                raise ValueError("need at least one rank's hidden states")

            resolution: Resolution | None = None
            if self.plan_cache is None:
                decisions, pfts = self.route(arrays, step=step)
                with obs.span("plan_build", "step"):
                    plan = self.dispatcher.plan(pfts, step=step)
            else:
                with obs.span("route_batch", "step"):
                    decisions = self.policy.route_batch(
                        arrays, step=step, workspace=self.workspace
                    )
                with obs.span("plan_resolve", "step") as resolve_span:
                    resolution = self.plan_cache.resolve(
                        decisions,
                        dispatcher=self.dispatcher,
                        capacity=self.capacity,
                        tokens_per_rank=[int(h.shape[0]) for h in arrays],
                        row_signature=(int(arrays[0].shape[1]), arrays[0].dtype.str),
                        step=step,
                    )
                    resolve_span.set(cache_tier=resolution.outcome)
                pfts, plan = resolution.pfts, resolution.plan

            fusable = resolution is not None and self._fusable(arrays)
            if fusable and resolution.exec_program is not None:
                with obs.span("fused_replay", "step"):
                    expert_inputs, expert_outputs, outputs = self._run_fused(
                        resolution.exec_program, arrays, plan
                    )
                fused = True
            else:
                stats = self.dispatcher.group.world.stats
                events_before = len(stats.events)
                with obs.span("dispatch", "step"):
                    expert_inputs, _ = self.dispatcher.dispatch(
                        arrays, pfts, plan=plan, step=step
                    )
                with obs.span("experts", "step"):
                    if self.expert_weights is not None:
                        per_rank_w1, per_rank_w2 = self.expert_weights
                        expert_outputs = self.dispatcher.run_experts(
                            expert_inputs, plan, per_rank_w1, per_rank_w2,
                            activation=self.activation,
                        )
                    else:
                        # Identity experts: exercises dispatch + combine with
                        # the dispatched rows (the validation drivers' mode).
                        expert_outputs = [buf.copy() for buf in expert_inputs]
                with obs.span("combine", "step"):
                    outputs = self.dispatcher.combine(
                        expert_outputs, plan, [h.shape[0] for h in arrays]
                    )
                fused = False
                if fusable and resolution.exec_program is None:
                    # First engine-path execution of this cache entry: compile
                    # the fused program and capture the step's comm events as
                    # replay templates for future warm runs.
                    with obs.span("fused_compile", "step"):
                        self.plan_cache.attach_exec(
                            resolution.entry,
                            tokens_per_rank=[int(h.shape[0]) for h in arrays],
                            comm_events=tuple(stats.events[events_before:]),
                        )

            with obs.span("finalize", "step"):
                # Payload sizing derives from the actual token dtype — a
                # float32 payload halves the byte accounting instead of
                # silently lying.
                row_bytes = int(arrays[0].shape[1] * arrays[0].dtype.itemsize)
                trace = StepTrace(
                    step=step,
                    num_ranks=len(arrays),
                    tokens_per_rank=[int(h.shape[0]) for h in arrays],
                    row_bytes=row_bytes,
                    decisions=decisions,
                    pfts=pfts,
                    plan=plan,
                    seconds=time.perf_counter() - start,
                    cache_outcome=(
                        resolution.outcome if resolution is not None else None
                    ),
                    cache_stats=(
                        self.plan_cache.stats() if self.plan_cache is not None else {}
                    ),
                    fused=fused,
                )
                step_span.set(
                    num_ranks=trace.num_ranks,
                    fused=fused,
                    cache_tier=trace.cache_outcome,
                    dispatched_rows=trace.dispatched_rows,
                    dispatch_bytes=trace.dispatch_bytes,
                )
                if self.telemetry is not None:
                    self.telemetry.record(
                        decisions,
                        pfts=pfts,
                        plan=plan,
                        row_bytes=row_bytes,
                        cache_outcome=trace.cache_outcome,
                    )
                for hook in self.trace_hooks:
                    # Hooks are observers: a broken one must not abort the
                    # step (or starve the hooks registered after it).
                    try:
                        hook(trace)
                    except Exception:
                        logger.exception(
                            "trace hook %r failed on step %r; continuing", hook, step
                        )
        self.steps_run += 1
        return StepResult(
            trace=trace,
            expert_inputs=expert_inputs,
            expert_outputs=expert_outputs,
            outputs=outputs,
        )

    # ------------------------------------------------------------------
    def _fusable(self, arrays: list[np.ndarray]) -> bool:
        """Whether this step may run through the fused cached executor.

        The fused path gathers float64 rows verbatim and replays comm
        accounting from event templates, so it requires a float64 payload
        (routing's internal dtype — anything else would change what the
        engine dispatches) and a world without memory tracking (replay does
        not charge simulated device buffers).
        """
        return all(a.dtype == np.float64 for a in arrays) and not (
            self.dispatcher.group.world.track_memory
        )

    def _stacked_tokens(self, arrays: list[np.ndarray]) -> np.ndarray:
        """The step's ``(total_tokens, hidden)`` stack for the fused gather.

        When this step's batched route just filled the workspace's stacked
        hidden buffer (shipped policies with uniform batches), that buffer
        *is* the stack and is reused as-is; otherwise the rows are
        concatenated into a scratch arena.
        """
        rows = sum(int(a.shape[0]) for a in arrays)
        cols = int(arrays[0].shape[1])
        uniform = all(a.shape[0] == arrays[0].shape[0] for a in arrays)
        hidden = self.workspace._hidden
        if (
            uniform
            and hidden is not None
            and hidden.shape == (rows, cols)
            and type(self.policy).route_batch is _PolicyBase.route_batch
        ):
            return hidden
        stacked = self.workspace.scratch("fused_stacked_tokens", (rows, cols))
        np.concatenate(arrays, axis=0, out=stacked)
        return stacked

    def _run_fused(self, program, arrays: list[np.ndarray], plan):
        """Drive one warm step through the cached fused executor."""
        expert_inputs, big = program.run_dispatch(self._stacked_tokens(arrays))
        if self.expert_weights is not None:
            per_rank_w1, per_rank_w2 = self.expert_weights
            expert_outputs = self.dispatcher.run_experts(
                expert_inputs, plan, per_rank_w1, per_rank_w2,
                activation=self.activation,
            )
            stacked_out = self.workspace.scratch("fused_expert_outputs", big.shape)
            for d, buf in enumerate(expert_outputs):
                stacked_out[program.dest_off[d] : program.dest_off[d + 1]] = buf
        else:
            stacked_out = big.copy()
            expert_outputs = [
                stacked_out[program.dest_off[d] : program.dest_off[d + 1]]
                for d in range(len(arrays))
            ]
        outputs = program.run_combine(stacked_out, workspace=self.workspace)
        program.replay_comm(self.dispatcher.group.world.stats)
        return expert_inputs, expert_outputs, outputs
