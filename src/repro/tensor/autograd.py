"""A small reverse-mode automatic differentiation engine.

Tensors wrap a numpy array and remember how they were produced; calling
:meth:`Tensor.backward` on a scalar walks the tape in reverse topological
order and accumulates gradients into every tensor created with
``requires_grad=True``.  Broadcasting is handled by summing gradients back
to the original shape.  Only what the MoE transformer needs is implemented,
but the engine itself is generic.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (like torch.no_grad)."""
    global _grad_enabled
    prev = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = prev


def grad_enabled() -> bool:
    """Whether new operations record themselves on the tape."""
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over broadcast dimensions of size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class GradHookHandle:
    """Removable registration of a gradient hook on one tensor."""

    __slots__ = ("_tensor", "_fn")

    def __init__(self, tensor: "Tensor", fn: Callable[[np.ndarray], None]):
        self._tensor = tensor
        self._fn = fn

    def remove(self) -> None:
        """Unregister the hook; safe to call more than once."""
        hooks = self._tensor._grad_hooks
        if hooks is not None and self._fn in hooks:
            hooks.remove(self._fn)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_grad_hooks",
        "name",
    )
    __array_priority__ = 100  # so ndarray + Tensor defers to Tensor

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64 if np.asarray(data).dtype.kind == "f" else None)
        if self.data.dtype.kind not in "fiu":
            raise TypeError(f"unsupported dtype {self.data.dtype}")
        if self.data.dtype.kind in "iu" and requires_grad:
            raise TypeError("integer tensors cannot require grad")
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._grad_hooks: list[Callable[[np.ndarray], None]] | None = None
        self.name = name

    def register_grad_hook(self, fn: Callable[[np.ndarray], None]) -> GradHookHandle:
        """Register ``fn(grad)`` to observe this tensor's finalized gradient.

        During :meth:`backward`, once a tensor's gradient contribution is
        fully accumulated (its position in reverse topological order), every
        registered hook is called with that gradient array.  Hooks observe —
        they cannot replace the gradient — so registration never changes what
        ``backward`` computes.  For a leaf, ``.grad`` is already updated when
        its hooks fire.  Returns a handle whose ``remove()`` unregisters.
        """
        if not self.requires_grad:
            raise RuntimeError("cannot register a grad hook on a tensor without grad")
        if self._grad_hooks is None:
            self._grad_hooks = []
        self._grad_hooks.append(fn)
        return GradHookHandle(self, fn)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(np.asarray(other, dtype=np.float64))

    @classmethod
    def from_op(
        cls,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor of an op, wiring the tape if enabled."""
        parents = tuple(parents)
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def numpy(self) -> np.ndarray:
        """The underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # Autograd engine
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        If this tensor is not a scalar, ``grad`` (an array of the same
        shape) must be provided.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological sort of the reachable graph.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None or not node._parents:
                # Leaf: accumulate into .grad
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
            else:
                parent_grads = node._backward(node_grad)
                if not isinstance(parent_grads, tuple):
                    parent_grads = (parent_grads,)
                if len(parent_grads) != len(node._parents):
                    raise RuntimeError(
                        f"backward returned {len(parent_grads)} grads for "
                        f"{len(node._parents)} parents"
                    )
                for parent, pgrad in zip(node._parents, parent_grads):
                    if pgrad is None or not parent.requires_grad:
                        continue
                    if id(parent) in grads:
                        grads[id(parent)] = grads[id(parent)] + pgrad
                    else:
                        grads[id(parent)] = pgrad
                # Interior nodes also expose .grad if they were marked leaf-like
                if node.grad is not None:
                    node.grad = node.grad + node_grad
            # The gradient reaching this node is final here (reverse topo
            # order guarantees every consumer has contributed), so observe
            # hooks fire now — this is what ZeRO's bucketed reducer keys on.
            if node._grad_hooks:
                for hook in tuple(node._grad_hooks):
                    hook(node_grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data + other.data

        def backward(grad):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(grad, other.shape),
            )

        return Tensor.from_op(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return (-grad,)

        return Tensor.from_op(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data * other.data

        def backward(grad):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return Tensor.from_op(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data / other.data

        def backward(grad):
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data**2), other.shape),
            )

        return Tensor.from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._wrap(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor.from_op(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data @ other.data

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                ga = grad * b
                gb = grad * a
            elif a.ndim == 1:
                ga = grad @ np.swapaxes(b, -1, -2)
                gb = np.outer(a, grad)
            elif b.ndim == 1:
                ga = np.outer(grad, b) if a.ndim == 2 else grad[..., None] * b
                gb = np.swapaxes(a, -1, -2) @ grad
            else:
                ga = grad @ np.swapaxes(b, -1, -2)
                gb = np.swapaxes(a, -1, -2) @ grad
            return (_unbroadcast(ga, self.shape), _unbroadcast(gb, other.shape))

        return Tensor.from_op(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        orig_shape = self.shape

        def backward(grad):
            return (grad.reshape(orig_shape),)

        return Tensor.from_op(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor.from_op(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        input_shape = self.shape

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, input_shape).copy(),)

        return Tensor.from_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        input_shape = self.shape

        def backward(grad):
            full = np.zeros(input_shape, dtype=grad.dtype)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor.from_op(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            return (grad * out_data,)

        return Tensor.from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            return (grad / self.data,)

        return Tensor.from_op(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - out_data**2),)

        return Tensor.from_op(out_data, (self,), backward)

    def clip_min(self, minimum: float) -> "Tensor":
        """Elementwise maximum with a constant (used for numerical floors)."""
        out_data = np.maximum(self.data, minimum)
        mask = (self.data >= minimum).astype(self.data.dtype)

        def backward(grad):
            return (grad * mask,)

        return Tensor.from_op(out_data, (self,), backward)
