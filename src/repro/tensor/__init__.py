"""Minimal reverse-mode autograd over numpy.

This is the training substrate standing in for PyTorch: enough of an
autodiff engine to train the tiny MoE transformer used for the loss-curve
validation experiment (Fig. 15) and to exercise the forward/backward of the
padded and padding-free MoE pipelines end to end.

Public API:

* :class:`repro.tensor.autograd.Tensor` plus free functions in
  :mod:`repro.tensor.ops` (matmul, softmax, layernorm, silu, gelu,
  embedding, cross-entropy, top-k, gather/scatter rows, ...).
* :mod:`repro.tensor.optim` — SGD and Adam.
* :mod:`repro.tensor.init` — parameter initializers.
"""

from repro.tensor.autograd import GradHookHandle, Tensor, no_grad
from repro.tensor import ops
from repro.tensor.ops import (
    matmul,
    relu,
    silu,
    gelu,
    softmax,
    log_softmax,
    layer_norm,
    embedding,
    cross_entropy,
    gather_rows,
    scatter_rows,
    concat,
    stack,
)
from repro.tensor.optim import SGD, Adam, ShardedAdam
from repro.tensor.init import normal_init, scaled_init, zeros_init

__all__ = [
    "Tensor",
    "GradHookHandle",
    "no_grad",
    "ops",
    "matmul",
    "relu",
    "silu",
    "gelu",
    "softmax",
    "log_softmax",
    "layer_norm",
    "embedding",
    "cross_entropy",
    "gather_rows",
    "scatter_rows",
    "concat",
    "stack",
    "SGD",
    "Adam",
    "ShardedAdam",
    "normal_init",
    "scaled_init",
    "zeros_init",
]
