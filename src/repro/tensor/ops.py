"""Neural-network operations on :class:`~repro.tensor.autograd.Tensor`.

These free functions build the pieces of the MoE transformer: activations,
normalization, embeddings, the cross-entropy loss, and the row gather /
scatter primitives the MoE dispatch and combine stages are built from.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.autograd import Tensor


def _as_tensor(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float64))


# ----------------------------------------------------------------------
# Linear algebra / activations
# ----------------------------------------------------------------------
def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product ``a @ b``."""
    return _as_tensor(a) @ _as_tensor(b)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    x = _as_tensor(x)
    mask = (x.data > 0).astype(x.data.dtype)

    def backward(grad):
        return (grad * mask,)

    return Tensor.from_op(x.data * mask, (x,), backward)


def silu(x: Tensor) -> Tensor:
    """SiLU / swish activation, the FFN activation used by DeepSeek models."""
    x = _as_tensor(x)
    sig = 1.0 / (1.0 + np.exp(-x.data))
    out = x.data * sig

    def backward(grad):
        return (grad * (sig * (1.0 + x.data * (1.0 - sig))),)

    return Tensor.from_op(out, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Tanh-approximated GeLU."""
    x = _as_tensor(x)
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x.data + 0.044715 * x.data**3)
    tanh_inner = np.tanh(inner)
    out = 0.5 * x.data * (1.0 + tanh_inner)

    def backward(grad):
        sech2 = 1.0 - tanh_inner**2
        d_inner = c * (1.0 + 3 * 0.044715 * x.data**2)
        d = 0.5 * (1.0 + tanh_inner) + 0.5 * x.data * sech2 * d_inner
        return (grad * d,)

    return Tensor.from_op(out, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad):
        dot = (grad * out).sum(axis=axis, keepdims=True)
        return (out * (grad - dot),)

    return Tensor.from_op(out, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - logsumexp
    soft = np.exp(out)

    def backward(grad):
        return (grad - soft * grad.sum(axis=axis, keepdims=True),)

    return Tensor.from_op(out, (x,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension."""
    x = _as_tensor(x)
    weight = _as_tensor(weight)
    bias = _as_tensor(bias)
    mean = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean) * inv_std
    out = x_hat * weight.data + bias.data
    n = x.data.shape[-1]

    def backward(grad):
        g_weight = (grad * x_hat).reshape(-1, n).sum(axis=0)
        g_bias = grad.reshape(-1, n).sum(axis=0)
        g_xhat = grad * weight.data
        g_x = (
            inv_std
            / n
            * (
                n * g_xhat
                - g_xhat.sum(axis=-1, keepdims=True)
                - x_hat * (g_xhat * x_hat).sum(axis=-1, keepdims=True)
            )
        )
        return (g_x, g_weight.reshape(weight.shape), g_bias.reshape(bias.shape))

    return Tensor.from_op(out, (x, weight, bias), backward)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with gradient scatter-add."""
    weight = _as_tensor(weight)
    indices = np.asarray(indices, dtype=np.int64)
    out = weight.data[indices]

    def backward(grad):
        g = np.zeros_like(weight.data)
        np.add.at(g, indices, grad)
        return (g,)

    return Tensor.from_op(out, (weight,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean token-level cross entropy.

    ``logits`` is ``[N, V]`` (or any leading shape flattened to N) and
    ``targets`` an integer array of shape ``[N]``.
    """
    logits = _as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64).reshape(-1)
    flat = logits.data.reshape(-1, logits.data.shape[-1])
    n, v = flat.shape
    if targets.shape[0] != n:
        raise ValueError(f"targets has {targets.shape[0]} entries, expected {n}")
    shifted = flat - flat.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - logsumexp
    nll = -log_probs[np.arange(n), targets]
    loss = nll.mean()
    probs = np.exp(log_probs)

    def backward(grad):
        g = probs.copy()
        g[np.arange(n), targets] -= 1.0
        g *= float(grad) / n
        return (g.reshape(logits.shape),)

    return Tensor.from_op(np.asarray(loss), (logits,), backward)


# ----------------------------------------------------------------------
# Routing primitives (row gather / scatter, top-k)
# ----------------------------------------------------------------------
def gather_rows(x: Tensor, row_ids: np.ndarray) -> Tensor:
    """``out[i, :] = x[row_ids[i], :]`` — the dispatch gather.

    The gradient scatters (adds) back into the source rows, which is exactly
    the behaviour the Triton gather kernel's backward needs.
    """
    x = _as_tensor(x)
    row_ids = np.asarray(row_ids, dtype=np.int64)
    out = x.data[row_ids]

    def backward(grad):
        g = np.zeros_like(x.data)
        np.add.at(g, row_ids, grad)
        return (g,)

    return Tensor.from_op(out, (x,), backward)


def scatter_rows(
    x: Tensor,
    row_ids: np.ndarray,
    num_rows: int,
    weights: np.ndarray | Tensor | None = None,
) -> Tensor:
    """``out[row_ids[i], :] += weights[i] * x[i, :]`` — the combine scatter.

    ``weights`` (optional, per-source-row scalars) are the combine weights;
    gradients flow to both ``x`` and ``weights``.
    """
    x = _as_tensor(x)
    row_ids = np.asarray(row_ids, dtype=np.int64)
    if row_ids.ndim != 1 or row_ids.shape[0] != x.data.shape[0]:
        raise ValueError("row_ids must be a 1-D array matching x's first dimension")
    if weights is None:
        weighted = x.data
        out = np.zeros((num_rows,) + x.data.shape[1:], dtype=x.data.dtype)
        np.add.at(out, row_ids, weighted)

        def backward(grad):
            return (grad[row_ids],)

        return Tensor.from_op(out, (x,), backward)

    w = weights if isinstance(weights, Tensor) else Tensor(np.asarray(weights, dtype=np.float64))
    w_col = w.data.reshape(-1, *([1] * (x.data.ndim - 1)))
    weighted = x.data * w_col
    out = np.zeros((num_rows,) + x.data.shape[1:], dtype=x.data.dtype)
    np.add.at(out, row_ids, weighted)

    def backward(grad):
        gx = grad[row_ids] * w_col
        gw = (grad[row_ids] * x.data).reshape(x.data.shape[0], -1).sum(axis=1)
        return (gx, gw.reshape(w.shape))

    return Tensor.from_op(out, (x, w), backward)


def topk(x: np.ndarray | Tensor, k: int, axis: int = -1) -> tuple[np.ndarray, np.ndarray]:
    """Non-differentiable top-k: returns ``(values, indices)`` sorted by
    descending value along ``axis`` (only the last axis is supported)."""
    data = x.data if isinstance(x, Tensor) else np.asarray(x)
    if axis not in (-1, data.ndim - 1):
        raise ValueError("topk only supports the last axis")
    if not (1 <= k <= data.shape[-1]):
        raise ValueError(f"k={k} out of range for axis size {data.shape[-1]}")
    idx = np.argpartition(-data, kth=k - 1, axis=-1)[..., :k]
    part = np.take_along_axis(data, idx, axis=-1)
    order = np.argsort(-part, axis=-1, kind="stable")
    idx_sorted = np.take_along_axis(idx, order, axis=-1)
    vals_sorted = np.take_along_axis(part, order, axis=-1)
    return vals_sorted, idx_sorted


# ----------------------------------------------------------------------
# Concatenation / stacking
# ----------------------------------------------------------------------
def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [_as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    split_points = np.cumsum(sizes)[:-1]

    def backward(grad):
        pieces = np.split(grad, split_points, axis=axis)
        return tuple(pieces)

    return Tensor.from_op(out, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [_as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(p.squeeze(axis=axis) for p in pieces)

    return Tensor.from_op(out, tuple(tensors), backward)
