"""Parameter initializers.

All initializers take an explicit :class:`numpy.random.Generator` so that
two pipelines (e.g. the padded baseline and the padding-free X-MoE pipeline
in the loss-validation experiment) can be initialized bit-identically.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.autograd import Tensor


def normal_init(
    rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02
) -> Tensor:
    """Gaussian-initialized trainable parameter."""
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def scaled_init(rng: np.random.Generator, shape: tuple[int, ...]) -> Tensor:
    """Fan-in scaled Gaussian init (1/sqrt(fan_in)), for projection matrices."""
    fan_in = shape[0] if len(shape) >= 1 else 1
    std = 1.0 / np.sqrt(max(1, fan_in))
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def zeros_init(shape: tuple[int, ...]) -> Tensor:
    """Zero-initialized trainable parameter (biases, layer-norm offsets)."""
    return Tensor(np.zeros(shape), requires_grad=True)


def ones_init(shape: tuple[int, ...]) -> Tensor:
    """One-initialized trainable parameter (layer-norm scales)."""
    return Tensor(np.ones(shape), requires_grad=True)
