"""Optimizers operating on lists of :class:`~repro.tensor.autograd.Tensor`.

Adam mirrors the DeepSpeed default hyperparameters; both optimizers expose a
``state_bytes`` property used by the memory model to account for optimizer
states (the quantity ZeRO-1 partitions across data-parallel ranks).
"""

from __future__ import annotations

import numpy as np

from repro.tensor.autograd import Tensor


class Optimizer:
    """Base class: holds parameters and implements zero_grad."""

    def __init__(self, params: list[Tensor]):
        params = list(params)
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        for p in params:
            if not p.requires_grad:
                raise ValueError("all optimized parameters must require grad")
        self.params = params

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.params)

    @property
    def state_bytes(self) -> int:
        """Bytes of optimizer state held by this optimizer."""
        return 0


class SGD(Optimizer):
    """Plain SGD with optional momentum."""

    def __init__(self, params: list[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params] if momentum else None

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            update = p.grad
            if self._velocity is not None:
                self._velocity[i] = self.momentum * self._velocity[i] + update
                update = self._velocity[i]
            p.data -= self.lr * update

    @property
    def state_bytes(self) -> int:
        if self._velocity is None:
            return 0
        return sum(v.nbytes for v in self._velocity)


class Adam(Optimizer):
    """Adam with bias correction (DeepSpeed/Megatron default settings)."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.95),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0 <= betas[0] < 1 and 0 <= betas[1] < 1):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._step = 0

    def step(self) -> None:
        self._step += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._step
        bias2 = 1.0 - b2**self._step
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = b1 * self._m[i] + (1 - b1) * grad
            self._v[i] = b2 * self._v[i] + (1 - b2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    @property
    def state_bytes(self) -> int:
        return sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v))


class ShardedAdam:
    """Adam over the rank-local shards of flat ZeRO parameter partitions.

    Each data-parallel rank owns one contiguous 1-D shard per gradient
    bucket and holds exp-avg/exp-avg-sq state *only* for those shards —
    the optimizer-state partitioning of ZeRO-1 (the quantity
    :data:`repro.xmoe.memory_model.OPTIMIZER_BYTES` divides by the DP
    size).  The update formula is the same elementwise arithmetic as
    :class:`Adam`, evaluated in the same order, so updating a flat shard
    is bit-identical to updating the corresponding region of the
    unsharded parameters.

    Unlike :class:`Adam` this operates on raw numpy shards handed in per
    step (by :class:`repro.dist.ZeroOptimizer`), not on ``Tensor``
    parameters, because the shards are views into flat bucket buffers
    rather than model tensors.
    """

    def __init__(
        self,
        shard_numels: list[int],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.95),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0 <= betas[0] < 1 and 0 <= betas[1] < 1):
            raise ValueError("betas must be in [0, 1)")
        shard_numels = [int(n) for n in shard_numels]
        if not shard_numels or any(n < 0 for n in shard_numels):
            raise ValueError("shard_numels must be non-empty and non-negative")
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros(n) for n in shard_numels]
        self._v = [np.zeros(n) for n in shard_numels]
        self._step = 0

    def step_shards(
        self, param_shards: list[np.ndarray], grad_shards: list[np.ndarray]
    ) -> None:
        """Apply one Adam update in place to every local shard.

        ``param_shards[i]`` and ``grad_shards[i]`` must be 1-D arrays of
        the shard size declared at construction.  Parameters are updated
        in place; gradients are not modified.
        """
        if len(param_shards) != len(self._m) or len(grad_shards) != len(self._m):
            raise ValueError(
                f"expected {len(self._m)} shards, got "
                f"{len(param_shards)} params / {len(grad_shards)} grads"
            )
        self._step += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._step
        bias2 = 1.0 - b2**self._step
        for i, (param, grad) in enumerate(zip(param_shards, grad_shards)):
            if param.shape != self._m[i].shape or grad.shape != self._m[i].shape:
                raise ValueError(
                    f"shard {i} shape mismatch: param {param.shape}, grad "
                    f"{grad.shape}, state {self._m[i].shape}"
                )
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            self._m[i] = b1 * self._m[i] + (1 - b1) * grad
            self._v[i] = b2 * self._v[i] + (1 - b2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    @property
    def num_shard_elements(self) -> int:
        """Total parameter elements owned by this rank's partition."""
        return sum(m.size for m in self._m)

    @property
    def state_bytes(self) -> int:
        """Bytes of optimizer state held by this rank (local shards only)."""
        return sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v))
