"""Dispatch redundancy analysis (Fig. 4).

The paper measures, for a DeepSeek-style configuration (256 experts, top-8
routing) under DeepSpeed-MoE, what fraction of all dispatched token copies
are *redundant* — i.e. a copy of a token already travelling to the same
destination node for another expert.  The redundancy shrinks as the EP group
grows (experts spread over more nodes), from ~75% at EP=16 down to ~9% at
EP=256 on Frontier's 8-GCD nodes.

Two estimators are provided: the closed-form expectation under uniform
routing (:func:`repro.xmoe.rbd.expected_redundancy_rate`) and an empirical
sample using real top-k gating over random tokens, which also captures
non-uniform routing distributions.
"""

from __future__ import annotations

import numpy as np

from repro.xmoe.parallelism import expert_to_rank_map
from repro.xmoe.rbd import expected_redundancy_rate, redundancy_rate


def redundancy_by_ep_size(
    num_experts: int = 256,
    top_k: int = 8,
    ep_sizes: tuple[int, ...] = (16, 32, 64, 128, 256),
    gpus_per_node: int = 8,
) -> dict[int, float]:
    """Analytic redundancy rate for each EP size (the Fig. 4 series)."""
    out: dict[int, float] = {}
    for ep in ep_sizes:
        if ep % gpus_per_node:
            nodes = max(1, ep // gpus_per_node)
        else:
            nodes = ep // gpus_per_node
        nodes = max(1, nodes)
        out[ep] = expected_redundancy_rate(num_experts, top_k, nodes)
    return out


def sample_redundancy_rate(
    num_experts: int,
    top_k: int,
    ep_size: int,
    *,
    num_tokens: int = 4096,
    gpus_per_node: int = 8,
    seed: int = 0,
    skew: float = 0.0,
) -> float:
    """Empirical redundancy rate from sampled routing decisions.

    ``skew`` > 0 makes some experts more popular (Zipf-weighted routing),
    which is what real gating distributions look like mid-training; the
    redundancy rises slightly with skew because popular experts concentrate
    tokens on fewer nodes.
    """
    rng = np.random.default_rng(seed)
    if skew > 0:
        weights = (np.arange(1, num_experts + 1, dtype=np.float64)) ** (-skew)
        weights /= weights.sum()
    else:
        weights = np.full(num_experts, 1.0 / num_experts)
    top_experts = np.empty((num_tokens, top_k), dtype=np.int64)
    for t in range(num_tokens):
        top_experts[t] = rng.choice(num_experts, size=top_k, replace=False, p=weights)
    expert_to_rank = expert_to_rank_map(num_experts, ep_size)
    num_nodes = max(1, ep_size // gpus_per_node)
    rank_to_node = np.arange(ep_size) // max(1, gpus_per_node)
    rank_to_node = np.minimum(rank_to_node, num_nodes - 1)
    return redundancy_rate(top_experts, expert_to_rank, rank_to_node)
