"""Analysis utilities backing the paper's motivation and appendix figures.

* :mod:`repro.analysis.redundancy` — dispatch redundancy rate vs EP size
  (Fig. 4), both analytic and empirically sampled.
* :mod:`repro.analysis.tradeoff` — SSMB vs TED advantage regions over the
  (H_FFN, top-k) plane for popular MoE models (Fig. 17).
* :mod:`repro.analysis.sensitivity` — all-to-all latency characterization
  across GPU scale, with cross-rack congestion outliers (Figs. 18–19).
* :mod:`repro.analysis.checkpointing` — activation-checkpointing vs SSMB
  comparison (Fig. 14).
* :mod:`repro.analysis.load_balance` — per-policy load-balance comparison
  over skewed token distributions (router-policy subsystem).
"""

from repro.analysis.redundancy import (
    redundancy_by_ep_size,
    sample_redundancy_rate,
)
from repro.analysis.tradeoff import (
    KNOWN_MOE_MODELS,
    advantage_border_topk,
    ssmb_advantage,
    tradeoff_table,
)
from repro.analysis.sensitivity import (
    AllToAllSample,
    characterize_alltoall_latency,
    mean_latency_by_scale,
)
from repro.analysis.checkpointing import compare_ssmb_vs_checkpointing
from repro.analysis.load_balance import policy_load_balance_table

__all__ = [
    "redundancy_by_ep_size",
    "sample_redundancy_rate",
    "KNOWN_MOE_MODELS",
    "advantage_border_topk",
    "ssmb_advantage",
    "tradeoff_table",
    "AllToAllSample",
    "characterize_alltoall_latency",
    "mean_latency_by_scale",
    "compare_ssmb_vs_checkpointing",
    "policy_load_balance_table",
]
