"""SSMB vs activation checkpointing (Fig. 14).

Activation checkpointing also shrinks the activation footprint, but in MoE
training with expert parallelism the dispatch/combine activations are the
*outputs of all-to-all collectives*: recomputing them in the backward pass
requires two additional all-to-alls per layer (6 instead of 4) on top of the
recomputation FLOPs.  SSMB achieves comparable savings by sharding, without
either cost, which is why the paper measures 24.14 vs 16.44 TFLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.hardware import SystemSpec
from repro.config.model_config import MoEModelConfig
from repro.config.parallel_config import ParallelConfig
from repro.xmoe.memory_model import SystemKind
from repro.xmoe.perf_model import MoEPerformanceModel


@dataclass
class SSMBvsCheckpointing:
    """Throughput and memory of the two activation-reduction strategies."""

    ssmb_tflops: float
    checkpointing_tflops: float
    ssmb_activation_gb: float
    checkpointing_activation_gb: float

    @property
    def speedup(self) -> float:
        return self.ssmb_tflops / self.checkpointing_tflops


def compare_ssmb_vs_checkpointing(
    model: MoEModelConfig,
    base_parallel: ParallelConfig,
    system: SystemSpec | None = None,
) -> SSMBvsCheckpointing:
    """Evaluate X-MoE with SSMB against X-MoE with activation checkpointing.

    Both variants start from ``base_parallel``; the SSMB variant enables
    sequence sharding (requires ``tp_size > 1``), the checkpointing variant
    disables SSMB and enables recomputation instead.
    """
    if base_parallel.tp_size < 2:
        raise ValueError("the SSMB comparison requires tp_size >= 2")
    ssmb_cfg = base_parallel.with_overrides(use_ssmb=True, activation_checkpointing=False)
    ckpt_cfg = base_parallel.with_overrides(use_ssmb=False, activation_checkpointing=True)

    ssmb_perf = MoEPerformanceModel(model, ssmb_cfg, system, SystemKind.XMOE)
    ckpt_perf = MoEPerformanceModel(model, ckpt_cfg, system, SystemKind.XMOE)

    return SSMBvsCheckpointing(
        ssmb_tflops=ssmb_perf.throughput_tflops_per_gpu(),
        checkpointing_tflops=ckpt_perf.throughput_tflops_per_gpu(),
        ssmb_activation_gb=ssmb_perf.memory.activation_bytes_per_device(SystemKind.XMOE)
        / 2**30,
        checkpointing_activation_gb=ckpt_perf.memory.activation_bytes_per_device(
            SystemKind.XMOE
        )
        / 2**30,
    )
