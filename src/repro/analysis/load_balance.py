"""Router-policy load-balance analysis.

Single-process comparison of the registered router policies over the same
(optionally Zipf-skewed) token batch: per-expert load entropy, max/mean
imbalance, and drop rates — the analytic companion to the cluster-level
sweep in ``benchmarks/test_router_policies.py``.  Token-choice routers
concentrate load on popular experts as the skew grows; expert-choice
routing stays at entropy 1.0 by construction.
"""

from __future__ import annotations

import numpy as np

from repro.routing.policies import (
    ROUTER_POLICY_NAMES,
    make_policy,
    skewed_router_tokens,
)


def policy_load_balance_table(
    *,
    num_tokens: int = 512,
    hidden_size: int = 32,
    num_experts: int = 16,
    top_k: int = 2,
    capacity_factor: float = 1.25,
    skew: float = 1.2,
    seed: int = 0,
    policies: tuple[str, ...] = ROUTER_POLICY_NAMES,
) -> list[dict]:
    """One row per policy: how it balances a skewed token distribution.

    All policies share the same router weight and see the same tokens, so
    the rows differ only by routing regime.
    """
    rng = np.random.default_rng(seed)
    std = 1.0 / np.sqrt(hidden_size)
    weight = rng.normal(0.0, std, size=(hidden_size, num_experts))
    hidden = skewed_router_tokens(rng, num_tokens, weight, skew=skew)

    rows: list[dict] = []
    for name in policies:
        policy = make_policy(
            name,
            hidden_size,
            num_experts,
            top_k,
            capacity_factor=capacity_factor,
            weight=weight,
            seed=seed,
        )
        decision = policy.route(hidden, step=0)
        load = decision.expert_load()
        mean = max(1e-12, float(load.mean()))
        rows.append(
            {
                "policy": name,
                "assignments": decision.num_assignments,
                "balance_entropy": round(decision.balance_entropy(), 4),
                "load_imbalance": round(float(load.max()) / mean, 3),
                "drop_rate": round(decision.drop_rate, 4),
                "aux_loss": round(decision.aux_loss, 6),
                "z_loss": round(decision.z_loss, 6),
            }
        )
    return rows
