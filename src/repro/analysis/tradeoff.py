"""SSMB vs TED memory-saving trade-off (Appendix C.2, Fig. 17).

SSMB saves activation memory proportional to ``c * k * S * H`` per device
but keeps the expert model states that TED would have sliced by TP.  The
break-even condition derived in the paper is

``r = k / H_FFN  >  2 / (c * S)``  →  SSMB saves more memory than TED.

Fig. 17 places popular MoE models on the (H_FFN, top-k) plane together with
the break-even border for several sequence lengths: the DeepSeek family
falls in SSMB's advantage region, the Mixtral family in TED's, and Arctic
sits near the border (its verdict flips with the sequence length).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MoEModelPoint:
    """A published MoE model's position on the (H_FFN, top-k) plane."""

    name: str
    ffn_hidden_size: int
    top_k: int


#: The models the paper plots in Fig. 17.
KNOWN_MOE_MODELS: dict[str, MoEModelPoint] = {
    "mixtral-8x7b": MoEModelPoint("mixtral-8x7b", ffn_hidden_size=14336, top_k=2),
    "mixtral-8x22b": MoEModelPoint("mixtral-8x22b", ffn_hidden_size=16384, top_k=2),
    "deepseek-moe": MoEModelPoint("deepseek-moe", ffn_hidden_size=1408, top_k=6),
    "deepseek-v3": MoEModelPoint("deepseek-v3", ffn_hidden_size=2048, top_k=8),
    "arctic": MoEModelPoint("arctic", ffn_hidden_size=4864, top_k=2),
}


def ssmb_advantage(
    ffn_hidden_size: int,
    top_k: int,
    seq_length: int,
    capacity_factor: float = 1.0,
) -> bool:
    """True when SSMB saves more memory than TED for this configuration."""
    if min(ffn_hidden_size, top_k, seq_length) <= 0 or capacity_factor <= 0:
        raise ValueError("all arguments must be positive")
    r = top_k / ffn_hidden_size
    return r > 2.0 / (capacity_factor * seq_length)


def advantage_border_topk(
    ffn_hidden_size: int, seq_length: int, capacity_factor: float = 1.0
) -> float:
    """The top-k value on the SSMB/TED border for a given ``H_FFN`` and ``S``.

    Points above this line (larger top-k) are in SSMB's advantage zone.
    """
    if ffn_hidden_size <= 0 or seq_length <= 0 or capacity_factor <= 0:
        raise ValueError("all arguments must be positive")
    return 2.0 * ffn_hidden_size / (capacity_factor * seq_length)


def tradeoff_table(
    seq_lengths: tuple[int, ...] = (2048, 4096, 8192),
    capacity_factor: float = 1.0,
) -> dict[str, dict[int, bool]]:
    """For every known model and sequence length: does SSMB win?

    Reproduces the qualitative content of Fig. 17: DeepSeek models always in
    the SSMB zone, Mixtral models always in the TED zone, Arctic flipping
    with sequence length.
    """
    table: dict[str, dict[int, bool]] = {}
    for name, point in KNOWN_MOE_MODELS.items():
        table[name] = {
            s: ssmb_advantage(point.ffn_hidden_size, point.top_k, s, capacity_factor)
            for s in seq_lengths
        }
    return table
