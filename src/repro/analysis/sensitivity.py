"""All-to-all latency characterization across scale (Appendix D, Figs. 18–19).

The paper profiles the all-to-all collective on Frontier from 8 to 1024
GCDs over 1000 runs and observes three regimes: latency grows from 8 to 32
GPUs, stays flat from 32 to 256 GPUs (one rack), and beyond 256 GPUs —
where the collective crosses racks on the Dragonfly global links — frequent
outliers above 500 ms appear due to congestion with other jobs.  Based on
that, the paper caps EP at 256.

:func:`characterize_alltoall_latency` reproduces the experiment against the
simulated network: repeated all-to-all cost samples with the congestion
sampler enabled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.network import NetworkModel
from repro.cluster.topology import Topology
from repro.config.hardware import SystemSpec, frontier_system


@dataclass
class AllToAllSample:
    """Latency samples for one GPU count."""

    num_gpus: int
    latencies_ms: np.ndarray

    @property
    def mean_ms(self) -> float:
        return float(self.latencies_ms.mean())

    @property
    def p99_ms(self) -> float:
        return float(np.percentile(self.latencies_ms, 99))

    def outlier_fraction(self, threshold_ms: float = 500.0) -> float:
        """Fraction of runs slower than ``threshold_ms`` (Fig. 18 outliers)."""
        return float((self.latencies_ms > threshold_ms).mean())


def characterize_alltoall_latency(
    gpu_counts: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1024),
    *,
    payload_mb_per_rank: float = 64.0,
    num_runs: int = 1000,
    system: SystemSpec | None = None,
    seed: int = 0,
) -> list[AllToAllSample]:
    """Sample all-to-all completion times for each GPU count."""
    if num_runs <= 0:
        raise ValueError("num_runs must be positive")
    samples: list[AllToAllSample] = []
    for idx, gpus in enumerate(gpu_counts):
        sys_spec = system or frontier_system(num_nodes=max(1, -(-gpus // 8)))
        topo = Topology(sys_spec, gpus)
        network = NetworkModel(topo, seed=seed + idx)
        per_pair = payload_mb_per_rank * 2**20 / max(1, gpus - 1)
        traffic = np.full((gpus, gpus), per_pair)
        np.fill_diagonal(traffic, 0.0)
        ranks = np.arange(gpus)
        lat = np.empty(num_runs)
        for run in range(num_runs):
            est = network.alltoall_time(traffic, ranks, sample_congestion=True)
            lat[run] = est.seconds * 1e3
        samples.append(AllToAllSample(num_gpus=gpus, latencies_ms=lat))
    return samples


def mean_latency_by_scale(samples: list[AllToAllSample]) -> dict[int, float]:
    """Mean all-to-all latency (ms) keyed by GPU count (Fig. 19)."""
    return {s.num_gpus: s.mean_ms for s in samples}
