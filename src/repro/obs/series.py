"""Bounded, step-indexed time series sampled off the metrics registry.

The registry (:mod:`repro.obs.metrics`) is cumulative by design — one
number per counter for the whole run.  Online monitoring needs the *time
dimension* back: how much did each counter move **this step**, what is the
latency p99 **over the recent window**, how imbalanced was the routing
load **right now**.  This module recovers it without touching any
instrumentation site:

* :class:`Series` — a bounded ring buffer of ``(step, value)`` points
  (``collections.deque`` with ``maxlen``), the storage unit every detector
  and the dashboard read;
* :class:`MetricsSampler` — reads the registry's instruments directly
  once per engine step and diffs them against the previous step, into one
  :class:`Series` per metric series: counters become per-step deltas
  (rates in the step clock), gauges become sampled values, histograms
  become windowed ``.count`` / ``.mean`` deltas plus — when bucketed —
  windowed ``.p50`` / ``.p99`` estimates from the bucket deltas.  With a
  :class:`~repro.routing.telemetry.RoutingTelemetry` attached, the
  sampler also derives the per-step expert-load imbalance
  (``routing_load_imbalance``) by diffing the cumulative load histogram.
  The read path deliberately builds no snapshot dicts and skips all
  bucket work on steps where a histogram saw no observations — the
  monitor rides the serving hot loop, and
  ``benchmarks/test_monitor_overhead_micro.py`` holds its cost under 10%
  of an unmonitored serve.

Everything is indexed by the caller-supplied step number, never the wall
clock, so two runs of the same workload produce bit-identical series —
the property that makes drift alerts replayable.  Wall-clock stamps may be
*recorded* alongside (``sample(..., wall=...)``) but are used only to
place counter-track events on exported traces.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.obs.metrics import MetricsRegistry, _series_key

__all__ = ["MetricsSampler", "Series"]

#: series name the sampler derives from the telemetry's load histogram.
LOAD_IMBALANCE_SERIES = "routing_load_imbalance"


class Series:
    """A bounded ring buffer of ``(step, value)`` samples for one signal."""

    __slots__ = ("name", "points")

    def __init__(self, name: str, *, maxlen: int = 512):
        self.name = name
        self.points: deque[tuple[int, float]] = deque(maxlen=maxlen)

    def append(self, step: int, value: float) -> None:
        """Record one sample (evicting the oldest when the buffer is full)."""
        self.points.append((int(step), float(value)))

    def __len__(self) -> int:
        return len(self.points)

    @property
    def last(self) -> float | None:
        """The most recent value (None while empty)."""
        if not self.points:
            return None
        return self.points[-1][1]

    def steps(self) -> list[int]:
        """The retained sample steps, oldest first."""
        return [s for s, _ in self.points]

    def values(self) -> list[float]:
        """The retained sample values, oldest first."""
        return [v for _, v in self.points]

    def window(self, n: int) -> list[float]:
        """The most recent ``n`` values (fewer while the buffer is short)."""
        if n <= 0:
            return []
        return [v for _, v in list(self.points)[-n:]]

    def summary(self) -> dict:
        """Headline stats: count, last, min, mean, max (dashboard row)."""
        values = self.values()
        if not values:
            return {"count": 0}
        return {
            "count": len(values),
            "last": values[-1],
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
        }


def _series_name(metric: str, key: str) -> str:
    return f"{metric}{{{key}}}" if key else metric


def _windowed_quantile(
    bounds: list[float], deltas: list[int], lo: float, hi: float, q: float
) -> float:
    """Interpolated quantile over one window's bucket-count deltas."""
    return _windowed_quantiles(bounds, deltas, lo, hi, (q,))[0]


def _windowed_quantiles(
    bounds: list[float],
    deltas,
    lo: float,
    hi: float,
    qs: tuple[float, ...],
) -> list[float]:
    """Interpolated quantiles over one window's bucket-count deltas.

    One ``cumsum`` + a binary search per quantile instead of a Python walk
    over every bucket — this runs on the monitor's per-step path.
    """
    cumulative = np.cumsum(deltas)
    count = int(cumulative[-1]) if len(cumulative) else 0
    if count <= 0:
        return [0.0] * len(qs)
    n_bounds = len(bounds)
    results = []
    for q in qs:
        target = q * (count - 1) + 1.0
        i = int(np.searchsorted(cumulative, target, side="left"))
        before = int(cumulative[i - 1]) if i > 0 else 0
        bucket_count = int(cumulative[i]) - before
        lower = max(bounds[i - 1] if i > 0 else 0.0, lo)
        upper = min(bounds[i] if i < n_bounds else hi, hi)
        fraction = (target - before) / bucket_count
        results.append(min(max(lower + fraction * (upper - lower), lo), hi))
    return results


class _HistogramState:
    """Per-histogram diff + windowing state (one per sampled series)."""

    __slots__ = (
        "prev_count", "prev_sum", "prev_buckets",
        "window", "totals", "bounds", "zeros", "p50", "p99", "sinks",
    )

    def __init__(self, histogram, quantile_window: int):
        self.prev_count = 0
        self.prev_sum = 0.0
        self.prev_buckets: np.ndarray | None = None
        self.window: deque | None = None
        self.totals: np.ndarray | None = None
        self.bounds: list[float] | None = None
        self.zeros: np.ndarray | None = None
        if histogram.buckets is not None:
            self.window = deque(maxlen=quantile_window)
            self.totals = np.zeros(len(histogram.buckets) + 1, dtype=np.int64)
            self.bounds = list(histogram.buckets)
            #: shared immutable row for zero-observation steps (identity-
            #: checked on eviction so idle steps never touch the totals).
            self.zeros = np.zeros(len(histogram.buckets) + 1, dtype=np.int64)
        self.p50 = 0.0
        self.p99 = 0.0
        #: ((derived name, Series), ...) for .count/.mean[/.p50/.p99] —
        #: formatted once here, not once per step.
        self.sinks: tuple = ()


class MetricsSampler:
    """Per-step registry differ: cumulative metrics → step-indexed series.

    Call :meth:`sample` once per engine step (the serving engine does this
    when a monitor is attached).  Each call reads every registered
    instrument, diffs it against the previous call, and appends one point
    per metric series:

    * counter ``m`` → series ``m`` holding the per-step delta;
    * gauge ``m`` → series ``m`` holding the sampled value;
    * histogram ``m`` → ``m.count`` (observations this step) and ``m.mean``
      (mean of this step's observations); bucketed histograms add
      ``m.p50`` / ``m.p99`` over the trailing ``quantile_window`` steps'
      bucket deltas.

    Labeled series sample independently as ``m{label=value}``.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        telemetry=None,
        maxlen: int = 512,
        quantile_window: int = 64,
    ):
        if maxlen < 2:
            raise ValueError("maxlen must be >= 2")
        self.registry = registry
        self.telemetry = telemetry
        self.maxlen = maxlen
        self.quantile_window = quantile_window
        self.series: dict[str, Series] = {}
        #: (step, wall) stamps mirroring the samples, for trace export only.
        self.walls: deque[tuple[int, float]] = deque(maxlen=maxlen)
        self._previous_load: list | None = (
            telemetry.load.tolist() if telemetry is not None else None
        )
        #: previous cumulative value per counter series name (authoritative
        #: only across plan rebuilds; the live value rides the plan entry).
        self._prev_counters: dict[str, float] = {}
        #: per-histogram diff/window state, keyed by series name.
        self._hist_states: dict[str, _HistogramState] = {}
        #: the sampling plan: one [kind, child, name, sink, ...] row per
        #: registry series, rebuilt only when a new series appears — the
        #: per-step loop does no name formatting and no dict lookups.
        self._plan: list[list] = []
        self._plan_size = -1

    def get(self, name: str) -> Series:
        """The series called ``name`` (created empty on first use)."""
        series = self.series.get(name)
        if series is None:
            series = Series(name, maxlen=self.maxlen)
            self.series[name] = series
        return series

    # ------------------------------------------------------------------
    def sample(self, step: int, *, wall: float | None = None) -> dict[str, float]:
        """Diff the registry against the previous call; append one point each.

        Returns the freshly appended ``{series name: value}`` mapping (what
        the monitor feeds its detectors).  ``wall`` is stored next to the
        step for exporters; it never influences any value.
        """
        step = int(step)
        appended: dict[str, float] = {}
        # The registry's families/children dicts only ever grow, so the
        # total series count is a sound staleness signal for the plan.
        families = self.registry._families
        total = 0
        for family in families.values():
            total += len(family._children)
        plan = self._plan
        if total != self._plan_size:
            plan = self._rebuild_plan(families, total)
        for entry in plan:
            kind = entry[0]
            if kind == 0:  # counter: per-step delta
                value = entry[1].value
                delta = float(value - entry[4])
                entry[4] = value
                appended[entry[2]] = delta
                entry[3].append((step, delta))
            elif kind == 1:  # gauge: sampled value
                value = float(entry[1].value)
                appended[entry[2]] = value
                entry[3].append((step, value))
            else:  # histogram: windowed derived series
                self._sample_histogram(entry[1], entry[3], appended, step)
        if self.telemetry is not None:
            imbalance = self._load_imbalance_delta()
            self.get(LOAD_IMBALANCE_SERIES).append(step, imbalance)
            appended[LOAD_IMBALANCE_SERIES] = imbalance
        if wall is not None:
            self.walls.append((step, float(wall)))
        return appended

    def _rebuild_plan(self, families: dict, total: int) -> list[list]:
        """Recompile the per-series sampling plan (new series appeared)."""
        # Persist live counter baselines so rebuilt entries keep diffing
        # against the right previous value.
        for entry in self._plan:
            if entry[0] == 0:
                self._prev_counters[entry[2]] = entry[4]
        plan: list[list] = []
        for metric, family in families.items():
            kind = family.kind
            label_names = family.label_names
            for key, child in family._children.items():
                name = _series_name(metric, _series_key(label_names, key))
                if kind == "counter":
                    previous = self._prev_counters.get(name, 0.0)
                    plan.append([0, child, name, self.get(name).points, previous])
                elif kind == "gauge":
                    plan.append([1, child, name, self.get(name).points])
                else:
                    state = self._hist_states.get(name)
                    if state is None:
                        state = _HistogramState(child, self.quantile_window)
                        derived = [f"{name}.count", f"{name}.mean"]
                        if state.window is not None:
                            derived += [f"{name}.p50", f"{name}.p99"]
                        state.sinks = tuple(
                            (d, self.get(d).points) for d in derived
                        )
                        self._hist_states[name] = state
                    plan.append([2, child, name, state])
        self._plan = plan
        self._plan_size = total
        return plan

    def _sample_histogram(self, histogram, state, out: dict, step: int) -> None:
        count_delta = histogram.count - state.prev_count
        sum_delta = histogram.total - state.prev_sum
        state.prev_count = histogram.count
        state.prev_sum = histogram.total
        count_name, count_points = state.sinks[0]
        mean_name, mean_points = state.sinks[1]
        count_value = float(count_delta)
        mean_value = sum_delta / count_delta if count_delta else 0.0
        out[count_name] = count_value
        count_points.append((step, count_value))
        out[mean_name] = mean_value
        mean_points.append((step, mean_value))
        window = state.window
        if window is None:
            return
        totals = state.totals
        # Maintain the window's column-sums incrementally: subtract the
        # evicted step, add the new one, and represent no-observation steps
        # by a shared zero row so idle/decode-heavy steps cost O(1).
        changed = False
        if len(window) == window.maxlen:
            evicted = window[0]
            if evicted is not state.zeros:
                totals -= evicted
                changed = True
        if count_delta:
            counts = np.asarray(histogram.bucket_counts, dtype=np.int64)
            prior = state.prev_buckets
            deltas = counts if prior is None else counts - prior
            state.prev_buckets = counts
            window.append(deltas)
            totals += deltas
            changed = True
        else:
            window.append(state.zeros)
        if changed:
            lo = histogram.min if histogram.count else 0.0
            hi = histogram.max if histogram.count else 0.0
            state.p50, state.p99 = _windowed_quantiles(
                state.bounds, totals, lo, hi, (0.50, 0.99)
            )
        p50_name, p50_points = state.sinks[2]
        p99_name, p99_points = state.sinks[3]
        out[p50_name] = state.p50
        p50_points.append((step, state.p50))
        out[p99_name] = state.p99
        p99_points.append((step, state.p99))

    def _load_imbalance_delta(self) -> float:
        # Max-over-mean of this step's per-expert load delta — the same
        # definition as repro.routing.telemetry.load_imbalance_of, computed
        # in plain Python: the loads are (small) integers, so sums and the
        # final float division are bit-identical to the numpy path without
        # paying per-step array-conversion overhead.
        current = self.telemetry.load.tolist()
        previous = self._previous_load
        self._previous_load = current
        delta = [a - b for a, b in zip(current, previous)]
        total = sum(delta)
        if total <= 0:
            return 1.0
        return max(delta) / (total / len(delta))
