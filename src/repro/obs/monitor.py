"""The online monitor: series sampling, detector wiring, health, re-tune.

:class:`Monitor` is the piece that turns the passive observability stack
into a control loop.  Attached to a serving engine (``monitor=`` on
:class:`~repro.serving.engine.ServingEngine` or ``--monitor`` on the CLI),
it runs once per engine step, strictly after the step's tokens are
already streamed — it *reads* the registry and telemetry, never the
runtime — so served outputs are bit-identical with monitoring on or off
(``tests/test_serving_determinism.py`` proves it).

Per step it: samples every registry metric into bounded series
(:class:`~repro.obs.series.MetricsSampler`); feeds each watched series
into its detector (:mod:`repro.obs.detect`); appends anything that fired
to the :class:`~repro.obs.detect.AlertLog`; and — on a *critical drift*
alert — invokes the :class:`ReTuneHook`, the ROADMAP's elasticity
trigger: the hook asks :func:`repro.tuner.tune` for a replacement
parallel plan and the monitor records the resulting
:class:`TuningRecommendation` (recommendation only; nothing reconfigures
mid-run yet — that is the future failure-injection PR's job).

:meth:`Monitor.health` folds the run into a :class:`HealthReport` whose
``status`` (healthy / warning / critical) maps onto the ``repro monitor``
CLI's exit code, and :func:`default_serving_monitor` wires the standard
watch list: CUSUM on per-step load imbalance, EWMA on drops, threshold
rules on windowed latency/TTFT p99, and a burn-rate rule on deadline
misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.detect import (
    SEVERITIES,
    Alert,
    AlertLog,
    BurnRateRule,
    CusumDetector,
    EwmaDetector,
    ThresholdRule,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.series import LOAD_IMBALANCE_SERIES, MetricsSampler

__all__ = [
    "HealthReport",
    "Monitor",
    "MonitorConfig",
    "ReTuneHook",
    "TunerReTuneHook",
    "TuningRecommendation",
    "default_serving_monitor",
]


@dataclass(frozen=True)
class TuningRecommendation:
    """What the re-tune hook proposed in response to one drift alert."""

    step: int
    alert: Alert
    #: the replacement :class:`~repro.config.ParallelConfig` the tuner ranked best.
    plan: object
    #: whether the proposal actually differs from the active plan.
    differs: bool
    reason: str

    def summary(self) -> dict:
        """JSON-ready row for reports and the CLI."""
        plan = self.plan
        return {
            "step": self.step,
            "source": self.alert.source,
            "differs": self.differs,
            "reason": self.reason,
            "plan": {
                "ep_size": getattr(plan, "ep_size", None),
                "tp_size": getattr(plan, "tp_size", None),
                "dispatch_kind": getattr(plan, "dispatch_kind", None),
            },
        }


class ReTuneHook:
    """Pluggable elasticity trigger: react to a sustained-drift alert.

    The base class is a recording no-op — it keeps the alerts it was
    poked with (useful in tests) and proposes nothing.  Subclass and
    override :meth:`propose` to actually consult a tuner.
    """

    #: steps to wait between consecutive proposals (drift alerts latch,
    #: but distinct sources can fire in quick succession).
    cooldown_steps: int = 64

    def __init__(self) -> None:
        self.triggered: list[Alert] = []
        self._last_step: int | None = None

    def ready(self, step: int) -> bool:
        """Whether the cooldown since the last proposal has elapsed."""
        return self._last_step is None or step - self._last_step >= self.cooldown_steps

    def notify(self, alert: Alert) -> TuningRecommendation | None:
        """Called by the monitor on a critical drift alert; maybe propose."""
        self.triggered.append(alert)
        if not self.ready(alert.step):
            return None
        recommendation = self.propose(alert)
        if recommendation is not None:
            self._last_step = alert.step
        return recommendation

    def propose(self, alert: Alert) -> TuningRecommendation | None:
        """Produce a recommendation for the drift alert (base: none)."""
        return None


class TunerReTuneHook(ReTuneHook):
    """Re-tune hook backed by :func:`repro.tuner.tune`.

    Holds the model/system description and the currently *active*
    :class:`~repro.config.ParallelConfig`; on a sustained-drift alert it
    searches the (optionally constrained — pass ``space`` for a fast
    online search) plan space and records whether the winner differs from
    the active plan.  The tuner is deterministic and analytic, so the
    recommendation is a pure function of the drift alert's step — the
    property the determinism suite asserts.
    """

    def __init__(
        self,
        model,
        system,
        active_plan,
        *,
        space=None,
        world_size=None,
        tokens_per_step=None,
        cooldown_steps: int = 64,
    ):
        super().__init__()
        self.model = model
        self.system = system
        self.active_plan = active_plan
        self.space = space
        self.world_size = world_size
        self.tokens_per_step = tokens_per_step
        self.cooldown_steps = cooldown_steps
        self.recommendations: list[TuningRecommendation] = []

    def propose(self, alert: Alert) -> TuningRecommendation | None:
        """Run the plan search and record the replacement proposal."""
        from repro.tuner import tune  # lazy: tuner imports repro.obs

        report = tune(
            self.model,
            self.system,
            world_size=self.world_size,
            tokens_per_step=self.tokens_per_step,
            space=self.space,
        )
        if not report.ranked:
            return None
        best = report.best_parallel_config()
        differs = best != self.active_plan
        recommendation = TuningRecommendation(
            step=alert.step,
            alert=alert,
            plan=best,
            differs=differs,
            reason=alert.message,
        )
        self.recommendations.append(recommendation)
        return recommendation


@dataclass
class MonitorConfig:
    """Knobs for :func:`default_serving_monitor`'s standard watch list."""

    #: ring-buffer length for every sampled series.
    maxlen: int = 512
    #: calibration samples before the drift detectors may fire.
    warmup: int = 16
    #: CUSUM decision threshold on the load-imbalance series.
    cusum_h: float = 8.0
    #: EWMA z-score threshold on the drop series.
    ewma_threshold: float = 4.0
    #: SLO bound on the windowed latency p99 (None disables the rule).
    latency_p99_slo: float | None = None
    #: SLO bound on the windowed TTFT p99 (None disables the rule).
    ttft_p99_slo: float | None = None
    #: tolerated deadline-miss fraction (None disables the burn-rate rule).
    deadline_budget: float | None = None


@dataclass(frozen=True)
class HealthReport:
    """One-look rollup of a monitored run (the CLI's primary output)."""

    status: str
    steps_observed: int
    alert_counts: dict[str, int]
    series_summaries: dict[str, dict]
    recommendations: tuple[TuningRecommendation, ...] = ()

    @property
    def exit_code(self) -> int:
        """Process exit code for the status: 0 healthy, 2 warning, 3 critical."""
        return {"healthy": 0, "warning": 2, "critical": 3}[self.status]

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"health: {self.status.upper()} after {self.steps_observed} steps",
            "alerts: "
            + (
                ", ".join(
                    f"{severity}={count}"
                    for severity, count in sorted(self.alert_counts.items())
                )
                or "none"
            ),
        ]
        for recommendation in self.recommendations:
            row = recommendation.summary()
            lines.append(
                f"re-tune @ step {row['step']}: plan {row['plan']} "
                f"({'differs from' if row['differs'] else 'matches'} active plan)"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-ready report document."""
        return {
            "status": self.status,
            "steps_observed": self.steps_observed,
            "alert_counts": dict(self.alert_counts),
            "series": {
                name: dict(summary)
                for name, summary in sorted(self.series_summaries.items())
            },
            "recommendations": [r.summary() for r in self.recommendations],
        }


@dataclass
class _Watch:
    """One wired (series → detector) binding."""

    series: str
    detector: object
    source: str


class Monitor:
    """Step-driven monitoring loop over one registry (+ optional telemetry).

    Construct, :meth:`watch` series, hand to the serving engine.  The
    engine calls :meth:`observe_step` once per step after streaming; the
    monitor never mutates anything the step computation reads.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        telemetry=None,
        retune_hook: ReTuneHook | None = None,
        maxlen: int = 512,
    ):
        self.sampler = MetricsSampler(registry, telemetry=telemetry, maxlen=maxlen)
        self.alerts = AlertLog()
        self.retune_hook = retune_hook
        self.recommendations: list[TuningRecommendation] = []
        self.steps_observed = 0
        self._watches: list[_Watch] = []
        self._burn_watches: list[tuple[str, str, BurnRateRule, str]] = []

    # ------------------------------------------------------------------
    def watch(self, series: str, detector, *, source: str | None = None) -> None:
        """Feed every new sample of ``series`` into ``detector``."""
        self._watches.append(_Watch(series, detector, source or series))

    def watch_burn_rate(
        self, bad_series: str, total_series: str, rule: BurnRateRule, *, source: str
    ) -> None:
        """Feed per-step (bad, total) event deltas into a burn-rate rule."""
        self._burn_watches.append((bad_series, total_series, rule, source))

    # ------------------------------------------------------------------
    def observe_step(self, step: int, *, wall: float | None = None) -> list[Alert]:
        """Sample the registry and run every watched detector for one step."""
        appended = self.sampler.sample(step, wall=wall)
        fired: list[Alert] = []
        for watch in self._watches:
            if watch.series not in appended:
                continue
            alert = watch.detector.update(
                step, appended[watch.series], source=watch.source
            )
            if alert is not None:
                fired.append(alert)
        for bad_series, total_series, rule, source in self._burn_watches:
            if bad_series not in appended and total_series not in appended:
                continue
            alert = rule.update_pair(
                step,
                appended.get(bad_series, 0.0),
                appended.get(total_series, 0.0),
                source=source,
            )
            if alert is not None:
                fired.append(alert)
        for alert in fired:
            self.alerts.append(alert)
            if (
                self.retune_hook is not None
                and alert.kind == "drift"
                and alert.severity == "critical"
            ):
                recommendation = self.retune_hook.notify(alert)
                if recommendation is not None:
                    self.recommendations.append(recommendation)
        self.steps_observed += 1
        return fired

    # ------------------------------------------------------------------
    def health(self) -> HealthReport:
        """Fold the observed run into one :class:`HealthReport`."""
        worst = self.alerts.max_severity()
        if worst is None or SEVERITIES.index(worst) < SEVERITIES.index("warning"):
            status = "healthy"
        else:
            status = worst
        interesting = {
            name: series.summary()
            for name, series in sorted(self.sampler.series.items())
            if len(series) and any(v != 0.0 for v in series.values())
        }
        return HealthReport(
            status=status,
            steps_observed=self.steps_observed,
            alert_counts=self.alerts.counts(),
            series_summaries=interesting,
            recommendations=tuple(self.recommendations),
        )


def default_serving_monitor(
    registry: MetricsRegistry,
    *,
    telemetry=None,
    config: MonitorConfig | None = None,
    retune_hook: ReTuneHook | None = None,
) -> Monitor:
    """A :class:`Monitor` wired with the standard serving watch list.

    Drift: CUSUM on the per-step routing load imbalance (the skew signal
    the re-tune hook reacts to) and EWMA on the per-step capacity-drop
    count.  SLO: threshold rules on the windowed latency/TTFT p99 series
    and a burn-rate rule on deadline misses vs completions, per the
    thresholds in ``config``.
    """
    config = config if config is not None else MonitorConfig()
    monitor = Monitor(
        registry,
        telemetry=telemetry,
        retune_hook=retune_hook,
        maxlen=config.maxlen,
    )
    if telemetry is not None:
        monitor.watch(
            LOAD_IMBALANCE_SERIES,
            CusumDetector(h=config.cusum_h, warmup=config.warmup),
            source="load_imbalance",
        )
    monitor.watch(
        "routing_capacity_dropped",
        EwmaDetector(threshold=config.ewma_threshold, warmup=config.warmup),
        source="capacity_drops",
    )
    if config.latency_p99_slo is not None:
        monitor.watch(
            "serving_latency_steps.p99",
            ThresholdRule(config.latency_p99_slo, severity="warning"),
            source="latency_p99",
        )
    if config.ttft_p99_slo is not None:
        monitor.watch(
            "serving_ttft_steps.p99",
            ThresholdRule(config.ttft_p99_slo, severity="warning"),
            source="ttft_p99",
        )
    if config.deadline_budget is not None:
        monitor.watch_burn_rate(
            "serving_slo_events{cause=deadline}",
            "serving_requests_completed",
            BurnRateRule(budget=config.deadline_budget),
            source="deadline_burn",
        )
    return monitor
