"""Exporters: Perfetto-loadable Chrome trace JSON, metrics JSON, text tables.

Three ways out of a recording window:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``{"traceEvents": [...]}``, complete ``"ph": "X"``
  events with microsecond ``ts``/``dur``), which Perfetto's UI
  (https://ui.perfetto.dev) loads directly.  Runtime/step spans land on
  the main track (tid 0); **comm spans are duplicated onto one track per
  participating rank** (tid ``1 + global rank``), so the timeline shows
  which ranks each collective touched, with op, bytes, and per-tier byte
  splits in the event ``args``; **request spans** (the serving engine's
  per-request lifecycle) get one track per request, and a
  :class:`~repro.obs.monitor.Monitor`'s sampled series can ride along as
  Perfetto counter tracks (``monitor=``).
* :func:`metrics_json` / :func:`write_metrics_json` — the registry
  snapshot plus a schema tag, one JSON document.
* :func:`summary_table` — an aligned text table attributing recorded
  wall-clock to span names (count / total / mean / share of the recording
  window), the ``repro obs`` CLI's default output.

Span attributes are sanitized for JSON (numpy scalars unwrapped, enums
named, arrays summarized) by :func:`_json_safe`, so instrumentation sites
can attach whatever they have without worrying about serializability.
"""

from __future__ import annotations

import enum
import json
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "metrics_json",
    "summary_table",
    "write_chrome_trace",
    "write_metrics_json",
]

#: tid of the main (runtime/step/tuner/trainer) track.
MAIN_TID = 0
#: comm spans land on tid = COMM_TID_BASE + global rank.
COMM_TID_BASE = 1
#: request-category spans land on tid = REQUEST_TID_BASE + request index.
REQUEST_TID_BASE = 10_000
#: counter-track events from sampled series land on this tid.
COUNTER_TID = 9_999


def _json_safe(value):
    """Best-effort conversion of a span attribute to a JSON-safe value."""
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, dict):
        return {str(_json_safe(k)): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    for caster in (float, str):
        try:
            return caster(value)
        except (TypeError, ValueError):  # pragma: no cover - str() rarely fails
            continue
    return repr(value)  # pragma: no cover


def _event(span: Span, origin: float, tid: int) -> dict:
    return {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": round((span.start - origin) * 1e6, 3),
        "dur": round(span.seconds * 1e6, 3),
        "pid": 0,
        "tid": tid,
        "args": {k: _json_safe(v) for k, v in span.attrs.items()},
    }


def chrome_trace(tracer: Tracer, *, process_name: str = "repro", monitor=None) -> dict:
    """The tracer's spans as a Chrome trace-event JSON document.

    Comm-category spans carrying a ``ranks`` attribute are emitted once
    per participating rank on that rank's own track; request-category
    spans (the serving engine's per-request lifecycle spans) land on one
    track per request id, so Perfetto shows each request's QUEUED →
    PREFILL → DECODE window as its own lane beneath the step timeline;
    every other span goes on the main track.  Thread-name metadata events
    label the tracks.

    Pass a :class:`~repro.obs.monitor.Monitor` as ``monitor`` to also
    emit its sampled series as Chrome counter-track events (``"ph": "C"``)
    — one counter lane per series, timestamped from the sampler's
    wall-clock stamps (series samples without a stamp are skipped; the
    stamps never affect the sampled values themselves).
    """
    origin = tracer.origin
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": MAIN_TID,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": MAIN_TID,
            "args": {"name": "main"},
        },
    ]
    comm_tids: set[int] = set()
    request_tids: dict[str, int] = {}
    for span in sorted(tracer.spans, key=lambda s: s.start):
        ranks = span.attrs.get("ranks")
        if span.category == "comm" and ranks is not None:
            for rank in ranks:
                tid = COMM_TID_BASE + int(rank)
                comm_tids.add(tid)
                events.append(_event(span, origin, tid))
        elif span.category == "request" and span.attrs.get("request") is not None:
            request = str(span.attrs["request"])
            tid = request_tids.setdefault(request, REQUEST_TID_BASE + len(request_tids))
            events.append(_event(span, origin, tid))
        else:
            events.append(_event(span, origin, MAIN_TID))
    for tid in sorted(comm_tids):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"rank {tid - COMM_TID_BASE} comm"},
            }
        )
    for request, tid in request_tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"req {request}"},
            }
        )
    if monitor is not None:
        events.extend(_counter_events(monitor, origin))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _counter_events(monitor, origin: float) -> list[dict]:
    """Counter-track events from a monitor's sampled series."""
    walls = dict(monitor.sampler.walls)
    events: list[dict] = []
    for name, series in sorted(monitor.sampler.series.items()):
        if all(v == 0.0 for v in series.values()):
            continue
        for step, value in series.points:
            wall = walls.get(step)
            if wall is None:
                continue
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": round((wall - origin) * 1e6, 3),
                    "pid": 0,
                    "tid": COUNTER_TID,
                    "args": {"value": value},
                }
            )
    return events


def write_chrome_trace(
    path, tracer: Tracer, *, process_name: str = "repro", monitor=None
) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(tracer, process_name=process_name, monitor=monitor))
        + "\n"
    )
    return path


def metrics_json(registry: MetricsRegistry) -> dict:
    """The registry snapshot wrapped with a schema tag."""
    return {"schema": "repro.obs.metrics/v1", "metrics": registry.snapshot()}


def write_metrics_json(path, registry: MetricsRegistry) -> Path:
    """Serialize :func:`metrics_json` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(metrics_json(registry), indent=2, sort_keys=True) + "\n")
    return path


def summary_table(tracer: Tracer) -> str:
    """Wall-clock attribution by span name, as an aligned text table.

    One row per distinct span name: call count, total / mean milliseconds,
    and the share of the recording window (first span start → last span
    end).  Comm spans additionally show their total bytes when the
    instrumentation attached a ``bytes`` attribute.
    """
    if not tracer.spans:
        return "(no spans recorded)"
    totals: dict[str, dict] = {}
    for span in tracer.spans:
        row = totals.setdefault(
            span.name, {"category": span.category, "count": 0, "seconds": 0.0, "bytes": 0.0}
        )
        row["count"] += 1
        row["seconds"] += span.seconds
        row["bytes"] += float(span.attrs.get("bytes", 0.0) or 0.0)
    window = max(
        s.end for s in tracer.spans if s.end is not None
    ) - min(s.start for s in tracer.spans)
    window = max(window, 1e-12)

    headers = ("span", "cat", "count", "total ms", "mean ms", "share", "bytes")
    rows = []
    for name in sorted(totals, key=lambda n: -totals[n]["seconds"]):
        row = totals[name]
        rows.append(
            (
                name,
                row["category"],
                str(row["count"]),
                f"{row['seconds'] * 1e3:.3f}",
                f"{row['seconds'] * 1e3 / row['count']:.3f}",
                f"{row['seconds'] / window:.1%}",
                f"{row['bytes'] / 1e6:.2f} MB" if row["bytes"] else "-",
            )
        )
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(len(headers))]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines += [" | ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    return "\n".join(lines)
