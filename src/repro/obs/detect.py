"""Drift detectors, SLO rules, and the typed alert log they fire into.

Detection is deliberately classical — the two standard sequential change
detectors over a univariate series, plus two SLO rule shapes — because the
monitoring loop's value is in being *deterministic and replayable*, not
clever.  Every decision depends only on the step-indexed values a
:class:`~repro.obs.series.MetricsSampler` produced, never on the wall
clock, so the same workload yields the same alerts at the same steps on
every run (``tests/test_obs_monitor.py`` pins that down with hypothesis).

* :class:`EwmaDetector` — exponentially weighted moving average + variance;
  fires when a sample's z-score against the EWMA leaves the control band.
  Good for abrupt level shifts (drop-rate spikes).
* :class:`CusumDetector` — one-sided CUSUM of standardized excursions; the
  statistic accumulates persistent small shifts that no single sample
  would flag.  Good for slow drift (expert-load skew creeping up), the
  ROADMAP's re-tune trigger.
* :class:`ThresholdRule` — plain SLO bound (latency p99 above X steps).
* :class:`BurnRateRule` — windowed error-budget burn: the fraction of a
  window's requests that violated the SLO, relative to the budgeted
  fraction (deadline misses), in the Google SRE burn-rate idiom.

All four share the same contract — ``update(step, value) -> Alert | None``
— and hysteresis: once fired they stay *latched* (no duplicate alerts)
until the signal re-arms below a fraction of the firing level, so a noisy
crossing emits one alert, not fifty.  Warmup samples calibrate the
detectors' baselines and can never fire.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "Alert",
    "AlertLog",
    "BurnRateRule",
    "CusumDetector",
    "EwmaDetector",
    "ThresholdRule",
]

#: severity order for exit codes and report rollups.
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class Alert:
    """One detector firing: what crossed which line, when, and how badly."""

    step: int
    severity: str
    kind: str
    source: str
    value: float
    threshold: float
    message: str

    def as_dict(self) -> dict:
        """JSON-ready row (the alert-log export and CLI output)."""
        return {
            "step": self.step,
            "severity": self.severity,
            "kind": self.kind,
            "source": self.source,
            "value": round(self.value, 6),
            "threshold": round(self.threshold, 6),
            "message": self.message,
        }


class AlertLog:
    """Append-only record of every alert a monitor's detectors fired."""

    def __init__(self) -> None:
        self.alerts: list[Alert] = []

    def append(self, alert: Alert) -> None:
        """Record one alert."""
        self.alerts.append(alert)

    def __len__(self) -> int:
        return len(self.alerts)

    def __iter__(self):
        return iter(self.alerts)

    def by_severity(self, severity: str) -> list[Alert]:
        """Alerts of exactly the given severity, in firing order."""
        return [a for a in self.alerts if a.severity == severity]

    def max_severity(self) -> str | None:
        """The worst severity fired so far (None while empty)."""
        if not self.alerts:
            return None
        return max(self.alerts, key=lambda a: SEVERITIES.index(a.severity)).severity

    def counts(self) -> dict[str, int]:
        """``{severity: count}`` over every fired alert."""
        out: dict[str, int] = {}
        for alert in self.alerts:
            out[alert.severity] = out.get(alert.severity, 0) + 1
        return out

    def as_dicts(self) -> list[dict]:
        """Every alert as a JSON-ready row."""
        return [a.as_dict() for a in self.alerts]


class EwmaDetector:
    """EWMA control chart: flags samples far from the running average.

    Maintains an exponentially weighted mean and variance (smoothing
    ``alpha``); after ``warmup`` calibration samples, a sample whose
    z-score against the EWMA exceeds ``threshold`` fires a warning (and
    ``2 * threshold`` a critical).  ``direction`` limits which side of the
    band fires (``"above"`` — the default, load/drop metrics only go bad
    upward — ``"below"``, or ``"both"``).  While latched, further
    excursions are silent until the z-score falls under half the
    threshold.
    """

    kind = "drift"

    def __init__(
        self,
        *,
        alpha: float = 0.2,
        threshold: float = 4.0,
        warmup: int = 16,
        direction: str = "above",
        min_std: float = 1e-3,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if direction not in ("above", "below", "both"):
            raise ValueError(f"unknown direction {direction!r}")
        self.alpha = alpha
        self.threshold = threshold
        self.warmup = warmup
        self.direction = direction
        self.min_std = min_std
        self.mean: float | None = None
        self.variance = 0.0
        self.samples = 0
        self.latched = False

    def _excursion(self, value: float) -> float:
        std = max(math.sqrt(self.variance), self.min_std)
        z = (value - self.mean) / std
        if self.direction == "above":
            return z
        if self.direction == "below":
            return -z
        return abs(z)

    def update(self, step: int, value: float, *, source: str = "ewma") -> Alert | None:
        """Feed one sample; returns the alert it fired, if any."""
        value = float(value)
        if self.mean is None:
            self.mean = value
            self.samples = 1
            return None
        excursion = self._excursion(value)
        alert: Alert | None = None
        self.samples += 1
        if self.samples > self.warmup:
            if self.latched and excursion < self.threshold / 2.0:
                self.latched = False
            elif not self.latched and excursion > self.threshold:
                self.latched = True
                severity = "critical" if excursion > 2.0 * self.threshold else "warning"
                alert = Alert(
                    step=step,
                    severity=severity,
                    kind=self.kind,
                    source=source,
                    value=value,
                    threshold=self.threshold,
                    message=(
                        f"{source}: EWMA z-score {excursion:.2f} exceeds "
                        f"{self.threshold:.2f} (value {value:.4f}, "
                        f"baseline {self.mean:.4f})"
                    ),
                )
        # Update the running stats *after* judging the sample, and freeze
        # the baseline while latched so a sustained shift cannot absorb
        # itself into the average and mask follow-on drift.
        if not self.latched:
            delta = value - self.mean
            self.mean += self.alpha * delta
            self.variance = (1.0 - self.alpha) * (
                self.variance + self.alpha * delta * delta
            )
        return alert


class CusumDetector:
    """One-sided CUSUM over standardized excursions from a calibrated base.

    The first ``warmup`` samples only calibrate a mean/std baseline.  After
    that each sample's standardized excursion above the baseline, less the
    slack ``k``, accumulates into the statistic ``S = max(0, S + z - k)``;
    crossing ``h`` fires (warning at ``h``, critical at ``2h``).  Small
    persistent shifts — the slow skew drift a z-score test never sees —
    integrate up and cross eventually, with detection delay inversely
    proportional to the shift size.  While latched the statistic keeps
    integrating; a warning latch escalates (once) to a critical alert if
    the drift persists past ``2h`` — the hand-off that wakes the re-tune
    hook — and the latch re-arms only after draining below ``h / 2``.
    """

    kind = "drift"

    def __init__(
        self,
        *,
        k: float = 0.5,
        h: float = 8.0,
        warmup: int = 16,
        min_std: float = 1e-3,
    ):
        if warmup < 2:
            raise ValueError("warmup must be >= 2 (the baseline needs variance)")
        self.k = k
        self.h = h
        self.warmup = warmup
        self.min_std = min_std
        self.statistic = 0.0
        self.samples = 0
        self.latched = False
        self.latched_severity: str | None = None
        self._sum = 0.0
        self._sum_sq = 0.0
        self.mean = 0.0
        self.std = min_std

    def update(self, step: int, value: float, *, source: str = "cusum") -> Alert | None:
        """Feed one sample; returns the alert it fired, if any."""
        value = float(value)
        self.samples += 1
        if self.samples <= self.warmup:
            self._sum += value
            self._sum_sq += value * value
            if self.samples == self.warmup:
                self.mean = self._sum / self.warmup
                variance = max(self._sum_sq / self.warmup - self.mean**2, 0.0)
                self.std = max(math.sqrt(variance), self.min_std)
            return None
        z = (value - self.mean) / self.std
        self.statistic = max(0.0, self.statistic + z - self.k)
        if self.latched:
            if self.statistic < self.h / 2.0:
                self.latched = False
                self.latched_severity = None
                return None
            if self.latched_severity == "warning" and self.statistic > 2.0 * self.h:
                self.latched_severity = "critical"
                return self._alert(step, value, "critical", source)
            return None
        if self.statistic <= self.h:
            return None
        self.latched = True
        severity = "critical" if self.statistic > 2.0 * self.h else "warning"
        self.latched_severity = severity
        return self._alert(step, value, severity, source)

    def _alert(self, step: int, value: float, severity: str, source: str) -> Alert:
        return Alert(
            step=step,
            severity=severity,
            kind=self.kind,
            source=source,
            value=value,
            threshold=self.h,
            message=(
                f"{source}: CUSUM statistic {self.statistic:.2f} exceeds "
                f"{self.h:.2f} (value {value:.4f}, baseline "
                f"{self.mean:.4f}±{self.std:.4f})"
            ),
        )


class ThresholdRule:
    """Plain SLO bound: fire when the series crosses a fixed threshold.

    ``direction="above"`` (default) fires on ``value > threshold``;
    ``"below"`` on ``value < threshold``.  Latched until the value re-arms
    past ``threshold * (1 ∓ margin)`` — the hysteresis band that keeps a
    value oscillating around the bound from re-alerting every step.
    """

    kind = "slo"

    def __init__(
        self,
        threshold: float,
        *,
        direction: str = "above",
        severity: str = "warning",
        margin: float = 0.1,
    ):
        if direction not in ("above", "below"):
            raise ValueError(f"unknown direction {direction!r}")
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        self.threshold = float(threshold)
        self.direction = direction
        self.severity = severity
        self.margin = margin
        self.latched = False

    def update(self, step: int, value: float, *, source: str = "slo") -> Alert | None:
        """Feed one sample; returns the alert it fired, if any."""
        value = float(value)
        if self.direction == "above":
            violated = value > self.threshold
            rearmed = value <= self.threshold * (1.0 - self.margin)
        else:
            violated = value < self.threshold
            rearmed = value >= self.threshold * (1.0 + self.margin)
        if self.latched:
            if rearmed:
                self.latched = False
            return None
        if not violated:
            return None
        self.latched = True
        return Alert(
            step=step,
            severity=self.severity,
            kind=self.kind,
            source=source,
            value=value,
            threshold=self.threshold,
            message=(
                f"{source}: value {value:.4f} {self.direction} SLO threshold "
                f"{self.threshold:.4f}"
            ),
        )


@dataclass
class BurnRateRule:
    """Windowed error-budget burn rate over an event/total series pair.

    ``budget`` is the tolerated bad-event fraction (e.g. 5% of requests
    may miss their deadline); each step feeds the window with that step's
    bad-event and total-event deltas, and the rule fires when the window's
    bad fraction exceeds ``factor x budget`` — burning the error budget
    ``factor`` times faster than sustainable.  Fires only once at least
    ``min_events`` totals are in the window, and latches until the burn
    rate halves.
    """

    budget: float
    factor: float = 2.0
    window: int = 32
    min_events: int = 8
    severity: str = "critical"
    _events: list = field(default_factory=list, repr=False)
    latched: bool = False

    kind = "slo"

    def update_pair(
        self, step: int, bad: float, total: float, *, source: str = "burn"
    ) -> Alert | None:
        """Feed one step's (bad events, total events); maybe fire."""
        self._events.append((float(bad), float(total)))
        if len(self._events) > self.window:
            self._events.pop(0)
        totals = sum(t for _, t in self._events)
        if totals < self.min_events:
            return None
        rate = sum(b for b, _ in self._events) / totals
        burn = rate / self.budget if self.budget > 0 else math.inf
        if self.latched:
            if burn < self.factor / 2.0:
                self.latched = False
            return None
        if burn <= self.factor:
            return None
        self.latched = True
        return Alert(
            step=step,
            severity=self.severity,
            kind=self.kind,
            source=source,
            value=rate,
            threshold=self.factor * self.budget,
            message=(
                f"{source}: window bad-event rate {rate:.1%} burns the "
                f"{self.budget:.1%} budget at {burn:.1f}x"
            ),
        )
