"""Structured span tracing with a no-op fast path.

The tracer is the "where inside a step does time go" half of
:mod:`repro.obs`: callers wrap code regions in :func:`span` context
managers and a :class:`Tracer` — when one is attached — records each
region as a nested, wall-clock-timed :class:`Span` with typed attributes.
The instrumentation points live permanently in the hot paths
(:meth:`repro.runtime.StepRuntime.run_step` phases,
:meth:`repro.routing.plan_cache.PlanCache.resolve` internals, every
:class:`~repro.comm.process_group.ProcessGroup` collective, tuner search
phases, trainer runs), so the disabled path must cost ~nothing: with no
tracer attached, :func:`span` is one module-global load plus a shared
no-op singleton — no allocation, no clock read
(``benchmarks/test_obs_overhead_micro.py`` holds that bar).

Usage::

    tracer = Tracer()
    with use_tracer(tracer):
        runtime.run_step(batches, step=0)
    write_chrome_trace("trace.json", tracer)   # repro.obs.export

Span attributes are plain ``key=value`` pairs set at open
(``span("dispatch", rows=123)``) or later on the yielded span
(``sp.set(cache_tier="hit")``); the exporters serialize them into
Perfetto ``args``.  Spans nest by runtime call order — each span's parent
is the span open when it started — which is what lets the summary and the
overhead benchmark attribute a step's wall time to its phases.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = [
    "Span",
    "Tracer",
    "attach",
    "current",
    "detach",
    "get_tracer",
    "span",
    "use_tracer",
]

#: the process-wide active tracer (None = tracing disabled, the fast path).
_ACTIVE: "Tracer | None" = None


class _NoopSpan:
    """Shared do-nothing span returned while no tracer is attached."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        """Discard the attributes (tracing is off)."""
        return self


_NOOP = _NoopSpan()


class Span:
    """One timed, attributed region of the program.

    ``start``/``end`` are ``time.perf_counter()`` readings; ``attrs`` is a
    plain dict of typed attributes; ``parent`` is the span that was open
    when this one started (``None`` for roots).  A span is its own context
    manager: entering is a no-op (the tracer already started the clock),
    exiting stamps ``end`` and pops it from the tracer's stack.
    """

    __slots__ = ("name", "category", "start", "end", "attrs", "parent", "_tracer")

    def __init__(self, name: str, category: str, attrs: dict, parent, tracer):
        self.name = name
        self.category = category
        self.attrs = attrs
        self.parent = parent
        self._tracer = tracer
        self.end: float | None = None
        self.start = time.perf_counter()

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)
        return self

    @property
    def seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._finish(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"Span({self.name!r}, {self.seconds * 1e3:.3f} ms, attrs={self.attrs})"


class Tracer:
    """Collects finished :class:`Span` objects for one recording window.

    ``spans`` holds every finished span in finish order; ``origin`` is the
    perf-counter reading at construction (the exporters emit timestamps
    relative to it, so traces start at t=0).  The tracer keeps one open-span
    stack — spans nest by runtime call order, and :meth:`current` exposes
    the innermost open span so instrumentation deep in the call tree (the
    comm layer's ``_record``) can attach attributes to the span its caller
    opened.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.origin = time.perf_counter()
        self._stack: list[Span] = []

    def span(self, name: str, category: str = "default", attrs: dict | None = None) -> Span:
        """Open a new span nested under the innermost open span."""
        parent = self._stack[-1] if self._stack else None
        opened = Span(name, category, attrs if attrs is not None else {}, parent, self)
        self._stack.append(opened)
        return opened

    def _finish(self, span: Span) -> None:
        span.end = time.perf_counter()
        # Tolerate out-of-order exits (a caller kept a span open across a
        # generator boundary): pop through to the finished span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.spans.append(span)

    def record_span(
        self,
        name: str,
        category: str = "default",
        *,
        start: float,
        end: float,
        attrs: dict | None = None,
        parent: Span | None = None,
    ) -> Span:
        """Record an externally-timed span without touching the open stack.

        For regions whose lifetime does not nest in the current call tree —
        a served request spans many engine steps, so its QUEUED→retire
        window can only be stamped retroactively from wall-clock marks.
        ``start``/``end`` are ``time.perf_counter()`` readings on the same
        clock as live spans, so both kinds share one exported timeline.
        """
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        recorded = Span(name, category, attrs if attrs is not None else {}, parent, self)
        recorded.start = float(start)
        recorded.end = float(end)
        self.spans.append(recorded)
        return recorded

    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def children(self, parent: Span) -> list[Span]:
        """Finished spans whose direct parent is ``parent``."""
        return [s for s in self.spans if s.parent is parent]

    def roots(self) -> list[Span]:
        """Finished spans with no parent (top-level regions)."""
        return [s for s in self.spans if s.parent is None]

    def named(self, name: str) -> list[Span]:
        """Finished spans with the given name, in finish order."""
        return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        """Drop every finished span (fresh recording window)."""
        self.spans.clear()
        self._stack.clear()
        self.origin = time.perf_counter()


# ----------------------------------------------------------------------
# Module-level switchboard: the instrumentation points call these.
# ----------------------------------------------------------------------
def span(name: str, category: str = "default", **attrs):
    """Open a span on the active tracer, or return the shared no-op.

    This is THE instrumentation entry point: with no tracer attached it
    performs one global load and returns a shared singleton whose
    ``__enter__``/``__exit__``/``set`` do nothing — the disabled cost the
    overhead benchmark asserts on.  Attribute kwargs are only materialized
    into the span when tracing is on (the kwargs dict itself is built by
    the call either way; keep expensive values behind :func:`enabled`).
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer.span(name, category, attrs)


def current() -> Span | None:
    """The active tracer's innermost open span (None when disabled)."""
    tracer = _ACTIVE
    if tracer is None:
        return None
    return tracer.current()


def enabled() -> bool:
    """Whether a tracer is attached (guard for expensive attributes)."""
    return _ACTIVE is not None


def get_tracer() -> Tracer | None:
    """The currently attached tracer, if any."""
    return _ACTIVE


def attach(tracer: Tracer) -> None:
    """Make ``tracer`` the process-wide active tracer."""
    global _ACTIVE
    _ACTIVE = tracer


def detach() -> None:
    """Disable tracing (restores the no-op fast path)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def use_tracer(tracer: Tracer):
    """Attach ``tracer`` for the duration of a ``with`` block.

    Restores whatever tracer (or none) was active before, so recording
    windows compose — the ``repro obs`` CLI and the tests both record
    through this.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
