"""Counter / Gauge / Histogram metrics with label sets and mergeable snapshots.

The metrics registry is the durable-numbers half of :mod:`repro.obs`: where
the tracer answers "where did this step's time go", the registry answers
"how much, in total, across the run" — routed assignments, dropped tokens,
dispatch bytes by link tier, plan-cache resolutions by outcome, collective
seconds by op.  :class:`~repro.routing.telemetry.RoutingTelemetry` and
:class:`~repro.comm.process_group.CommStats` publish into a registry
instead of keeping private scalar tallies, so every consumer (the summary
tables, the JSON exporter, future serving/elasticity loops) reads one
surface.

Three instrument kinds, all label-aware:

* :class:`Counter` — monotonically increasing float (``inc``);
* :class:`Gauge` — last-written value (``set_value``);
* :class:`Histogram` — running count/sum/min/max (``observe``), optionally
  bucketed: pass ``buckets=`` (a sorted tuple of upper bounds, e.g. from
  :func:`log_buckets`) and the histogram additionally keeps per-bucket
  counts, making :meth:`Histogram.quantile` (interpolated p50/p99) readable
  straight off the registry — the serving SLO tables consume exactly that.

A *family* (what :meth:`MetricsRegistry.counter` returns) holds one child
instrument per label-value tuple: ``reg.counter("comm_bytes", "op",
"tier").labels(op="a2a", tier="INTER_NODE").inc(n)``.  Families with no
label names have exactly one child (the empty label tuple), and the family
itself proxies ``inc``/``set_value``/``observe``/``value`` to it, so
unlabeled metrics read naturally.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain nested dicts —
JSON-ready — and :func:`merge_snapshots` combines any two: counters and
histograms add, gauges take the right-hand (newer) value.  Merging is what
makes per-shard or per-run registries aggregable without shared state.
"""

from __future__ import annotations

import bisect
import math

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "merge_snapshots",
]


def log_buckets(lo: float, hi: float, *, per_decade: int = 24) -> tuple[float, ...]:
    """Log-spaced histogram upper bounds covering ``[lo, hi]``.

    ``per_decade`` bounds per factor of ten (ratio ``10 ** (1/per_decade)``
    between consecutive bounds), starting at ``lo`` and continuing until a
    bound reaches ``hi``.  The default 24/decade keeps adjacent bounds
    within ~10% of each other, so interpolated quantiles stay well inside
    the benchmark gate's tolerance of the exact percentiles.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi for log-spaced buckets")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    bounds: list[float] = []
    exponent = math.log10(lo)
    step = 1.0 / per_decade
    while True:
        bound = 10.0 ** exponent
        bounds.append(round(bound, 9))
        if bound >= hi:
            return tuple(bounds)
        exponent += step


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def snapshot(self) -> float:
        """The current value (a plain float)."""
        return self.value


class Gauge:
    """A last-write-wins value (current queue depth, current hit rate)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set_value(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)

    def snapshot(self) -> float:
        """The current value (a plain float)."""
        return self.value


class Histogram:
    """Running count / sum / min / max — and, when bucketed, quantiles.

    Without ``buckets`` this is the original cheap aggregate.  With
    ``buckets`` (a sorted tuple of upper bounds; the implicit last bucket
    is ``+inf``) each observation also increments a per-bucket count, and
    :meth:`quantile` estimates any percentile by linear interpolation
    within the bucket the target rank falls into, clamped to the observed
    min/max.  Bucketed snapshots stay merge-compatible as long as both
    sides share identical bounds.
    """

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max", "buckets", "bucket_counts")

    def __init__(self, buckets: tuple[float, ...] | None = None) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        if buckets is not None:
            buckets = tuple(float(b) for b in buckets)
            if list(buckets) != sorted(set(buckets)):
                raise ValueError("buckets must be strictly increasing")
            if not buckets:
                raise ValueError("buckets must be non-empty when given")
        self.buckets = buckets
        #: one count per bound plus the +inf overflow bucket.
        self.bucket_counts = (
            [0] * (len(buckets) + 1) if buckets is not None else None
        )

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.buckets is not None:
            self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0.0 before any observation)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """Interpolated quantile estimate from the bucket counts.

        ``q`` is a fraction in ``[0, 1]``.  Requires ``buckets``; returns
        0.0 before any observation.  The estimate locates the bucket
        holding rank ``q * (count - 1)`` and interpolates linearly between
        the bucket's edges (tightened to the observed min/max), so exact
        percentiles of the same samples agree to within one bucket width.
        """
        if self.buckets is None:
            raise ValueError("quantile() needs a bucketed histogram")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * (self.count - 1) + 1.0
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if not bucket_count:
                continue
            lower = self.buckets[i - 1] if i > 0 else 0.0
            upper = self.buckets[i] if i < len(self.buckets) else self.max
            lower = max(lower, self.min)
            upper = min(upper, self.max)
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                return min(max(lower + fraction * (upper - lower), self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - ranks always land in a bucket

    def snapshot(self) -> dict:
        """``{count, sum, min, max[, buckets]}`` (min/max omitted while empty)."""
        out = {"count": self.count, "sum": self.total}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        if self.buckets is not None:
            out["buckets"] = dict(zip(_bucket_labels(self.buckets), self.bucket_counts))
        return out


#: snapshot label strings per bucket-bound tuple — bounds are immutable and
#: shared across a family's children, so the repr work happens once, not
#: once per snapshot (the online sampler snapshots every step).
_BUCKET_LABEL_CACHE: dict[tuple, tuple[str, ...]] = {}


def _bucket_labels(buckets: tuple) -> tuple[str, ...]:
    labels = _BUCKET_LABEL_CACHE.get(buckets)
    if labels is None:
        labels = tuple(repr(b) for b in buckets) + ("+inf",)
        _BUCKET_LABEL_CACHE[buckets] = labels
    return labels


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric: a child instrument per label-value tuple."""

    __slots__ = ("name", "kind", "label_names", "_children", "_kwargs")

    def __init__(self, name: str, kind: str, label_names: tuple, kwargs: dict | None = None):
        self.name = name
        self.kind = kind
        self.label_names = label_names
        self._children: dict[tuple, object] = {}
        #: instrument construction kwargs (histogram bucket bounds).
        self._kwargs = dict(kwargs) if kwargs else {}

    def labels(self, **labels):
        """The child instrument for one label-value assignment."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = _KINDS[self.kind](**self._kwargs)
            self._children[key] = child
        return child

    # -- unlabeled conveniences: proxy to the single empty-tuple child --
    def _solo(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} has labels {self.label_names}; "
                "use .labels(...)"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled counter child."""
        self._solo().inc(amount)

    def set_value(self, value: float) -> None:
        """Set the unlabeled gauge child."""
        self._solo().set_value(value)

    def observe(self, value: float) -> None:
        """Observe into the unlabeled histogram child."""
        self._solo().observe(value)

    def quantile(self, q: float) -> float:
        """Interpolated quantile of the unlabeled bucketed-histogram child."""
        return self._solo().quantile(q)

    @property
    def value(self):
        """The unlabeled child's current value."""
        return self._solo().value

    def series(self) -> dict[tuple, object]:
        """Every (label tuple → child instrument) pair."""
        return dict(self._children)

    def snapshot(self) -> dict:
        """JSON-ready: kind, label names, and each series' snapshot."""
        return {
            "kind": self.kind,
            "label_names": list(self.label_names),
            "series": {
                _series_key(self.label_names, key): child.snapshot()
                for key, child in sorted(self._children.items())
            },
        }


def _series_key(label_names: tuple, values: tuple) -> str:
    if not label_names:
        return ""
    return ",".join(f"{n}={v}" for n, v in zip(label_names, values))


class MetricsRegistry:
    """A namespace of metric families with mergeable snapshots."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _family(
        self, name: str, kind: str, label_names: tuple, kwargs: dict | None = None
    ) -> _Family:
        label_names = tuple(label_names)
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, label_names, kwargs)
            self._families[name] = family
            return family
        if family.kind != kind or family.label_names != label_names:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} with "
                f"labels {family.label_names}"
            )
        if kwargs and kwargs != family._kwargs:
            raise ValueError(
                f"metric {name!r} already registered with options "
                f"{family._kwargs}, got {kwargs}"
            )
        return family

    def counter(self, name: str, *label_names: str) -> _Family:
        """The counter family called ``name`` (created on first use)."""
        return self._family(name, "counter", label_names)

    def gauge(self, name: str, *label_names: str) -> _Family:
        """The gauge family called ``name`` (created on first use)."""
        return self._family(name, "gauge", label_names)

    def histogram(
        self, name: str, *label_names: str, buckets: tuple[float, ...] | None = None
    ) -> _Family:
        """The histogram family called ``name`` (created on first use).

        ``buckets`` opts the family's children into per-bucket counts and
        :meth:`Histogram.quantile`; re-registering with *different* bounds
        is an error, while omitting ``buckets`` on a later call returns the
        existing family unchanged (readers need not know the bounds).
        """
        kwargs = {"buckets": tuple(float(b) for b in buckets)} if buckets else None
        return self._family(name, "histogram", label_names, kwargs)

    def families(self) -> dict[str, _Family]:
        """Every registered family, by name."""
        return dict(self._families)

    def snapshot(self) -> dict:
        """JSON-ready nested dict of every family's current state."""
        return {
            name: family.snapshot()
            for name, family in sorted(self._families.items())
        }


def merge_snapshots(left: dict, right: dict) -> dict:
    """Combine two :meth:`MetricsRegistry.snapshot` dicts.

    Counters and histogram count/sum (and per-bucket counts, which must
    share identical bounds) add; histogram min/max take the
    elementwise min/max; gauges are last-write-wins (the right operand is
    the newer reading).  Families present in only one snapshot pass
    through.  Merging two snapshots of disjoint shards equals one registry
    that saw both workloads — the property the unit tests pin down.
    """
    out: dict = {}
    for name in sorted(set(left) | set(right)):
        a, b = left.get(name), right.get(name)
        if a is None or b is None:
            src = a if b is None else b
            out[name] = {
                "kind": src["kind"],
                "label_names": list(src["label_names"]),
                "series": dict(src["series"]),
            }
            continue
        if a["kind"] != b["kind"] or a["label_names"] != b["label_names"]:
            raise ValueError(f"cannot merge metric {name!r}: kind/labels differ")
        series: dict = {}
        for key in sorted(set(a["series"]) | set(b["series"])):
            va, vb = a["series"].get(key), b["series"].get(key)
            if va is None or vb is None:
                series[key] = va if vb is None else vb
            elif a["kind"] == "counter":
                series[key] = va + vb
            elif a["kind"] == "gauge":
                series[key] = vb
            else:  # histogram
                merged = {"count": va["count"] + vb["count"], "sum": va["sum"] + vb["sum"]}
                if merged["count"]:
                    merged["min"] = min(va.get("min", float("inf")), vb.get("min", float("inf")))
                    merged["max"] = max(va.get("max", float("-inf")), vb.get("max", float("-inf")))
                ba, bb = va.get("buckets"), vb.get("buckets")
                if (ba is None) != (bb is None) or (
                    ba is not None and list(ba) != list(bb)
                ):
                    raise ValueError(
                        f"cannot merge metric {name!r}: bucket bounds differ"
                    )
                if ba is not None:
                    merged["buckets"] = {le: ba[le] + bb[le] for le in ba}
                series[key] = merged
        out[name] = {"kind": a["kind"], "label_names": list(a["label_names"]), "series": series}
    return out
