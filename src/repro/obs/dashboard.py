"""ASCII / Markdown dashboard rendering for a monitored run.

The terminal-grade surface over :class:`~repro.obs.monitor.Monitor`: one
sparkline row per non-trivial series (last / min / mean / max plus a
unicode braille-free sparkline of the retained window), the alert log as
a table, and the health headline.  Pure formatting — everything rendered
here is already computed and step-deterministic, so two runs of the same
workload produce byte-identical dashboards (modulo nothing: there are no
timestamps in the output).

``render_dashboard`` returns plain text by default; ``markdown=True``
emits the same content as a Markdown document (tables + fenced health
block) for CI artifacts and PR comments.
"""

from __future__ import annotations

from repro.obs.monitor import Monitor

__all__ = ["render_dashboard", "sparkline"]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], *, width: int = 32) -> str:
    """Render values as a fixed-width unicode sparkline.

    Longer series are downsampled by striding from the tail (the recent
    window is what matters); constant series render as a flat low bar.
    """
    if not values:
        return ""
    if len(values) > width:
        values = values[-width:]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _BARS[0] * len(values)
    out = []
    for value in values:
        index = int((value - lo) / span * (len(_BARS) - 1))
        out.append(_BARS[index])
    return "".join(out)


def _series_rows(
    monitor: Monitor, prefixes: tuple[str, ...] | None
) -> list[tuple[str, str, str, str, str, str]]:
    rows = []
    for name, series in sorted(monitor.sampler.series.items()):
        if prefixes is not None and not name.startswith(prefixes):
            continue
        values = series.values()
        if not values or all(v == 0.0 for v in values):
            continue
        rows.append(
            (
                name,
                f"{values[-1]:.3f}",
                f"{min(values):.3f}",
                f"{sum(values) / len(values):.3f}",
                f"{max(values):.3f}",
                sparkline(values),
            )
        )
    return rows


def _text_table(headers: tuple[str, ...], rows: list[tuple[str, ...]]) -> str:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines += [" | ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    return "\n".join(lines)


def _markdown_table(headers: tuple[str, ...], rows: list[tuple[str, ...]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines += ["| " + " | ".join(r) + " |" for r in rows]
    return "\n".join(lines)


def render_dashboard(
    monitor: Monitor,
    *,
    title: str = "serving monitor",
    markdown: bool = False,
    prefixes: tuple[str, ...] | None = None,
) -> str:
    """The monitor's series, alerts, and health as one renderable document.

    ``prefixes`` limits the series table to names starting with any of the
    given prefixes (the CLI passes ``("serving_", "routing_")`` to keep
    the per-tier comm byte series out of the terminal view); alerts and
    health always show everything.
    """
    health = monitor.health()
    series_rows = _series_rows(monitor, prefixes)
    alert_rows = [
        (
            str(a.step),
            a.severity,
            a.kind,
            a.source,
            f"{a.value:.3f}",
            f"{a.threshold:.3f}",
        )
        for a in monitor.alerts
    ]
    series_headers = ("series", "last", "min", "mean", "max", "trend")
    alert_headers = ("step", "severity", "kind", "source", "value", "threshold")
    table = _markdown_table if markdown else _text_table
    sections = []
    if markdown:
        sections.append(f"# {title}")
        sections.append(f"**health: {health.status}** after {health.steps_observed} steps")
    else:
        sections.append(f"== {title} ==")
        sections.append(health.describe())
    if series_rows:
        sections.append(("## series\n" if markdown else "") + table(series_headers, series_rows))
    if alert_rows:
        sections.append(("## alerts\n" if markdown else "") + table(alert_headers, alert_rows))
    elif markdown:
        sections.append("## alerts\n(none fired)")
    else:
        sections.append("(no alerts fired)")
    for recommendation in health.recommendations:
        row = recommendation.summary()
        sections.append(
            f"re-tune recommendation @ step {row['step']}: {row['plan']} "
            f"({'differs from' if row['differs'] else 'matches'} active plan)"
        )
    return "\n\n".join(sections) + "\n"
