"""``repro.obs`` — structured tracing + metrics for the whole runtime.

The observability subsystem unifies what used to be three disconnected
fragments (:class:`~repro.routing.telemetry.RoutingTelemetry` routing
tallies, :class:`~repro.comm.process_group.CommStats` byte accounting,
:class:`~repro.runtime.step.StepTrace` per-step hooks) behind two
primitives and their exporters:

* :mod:`repro.obs.tracer` — nested wall-clock spans with typed
  attributes and a ~free no-op path when no collector is attached.  The
  step runtime, plan cache, comm collectives, tuner, and trainer are
  permanently instrumented; attach a :class:`Tracer` (via
  :func:`use_tracer`) to record.
* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram families with label
  sets and mergeable snapshots; ``RoutingTelemetry`` and ``CommStats``
  publish here.
* :mod:`repro.obs.export` — Chrome trace-event JSON (loads in Perfetto,
  comm spans on per-rank tracks, per-request tracks, optional counter
  tracks), a metrics JSON snapshot, and a text summary table.

Since the monitoring PR the subsystem is also *online*:

* :mod:`repro.obs.series` — bounded step-indexed time series diffed off
  registry snapshots by :class:`MetricsSampler`;
* :mod:`repro.obs.detect` — EWMA/CUSUM drift detectors and SLO rules
  firing typed :class:`Alert` objects into an :class:`AlertLog`;
* :mod:`repro.obs.monitor` — the per-step :class:`Monitor` loop, its
  :class:`HealthReport`, and the :class:`ReTuneHook` elasticity trigger;
* :mod:`repro.obs.dashboard` — ASCII/Markdown rendering of a monitored
  run (``repro monitor``'s output).

Record-and-export in one call: :func:`record_routing_run` drives an
instrumented routing workload and returns ``(tracer, registry,
telemetry)`` — the ``repro obs`` CLI subcommand is a thin wrapper over it.
"""

from repro.obs.dashboard import render_dashboard, sparkline
from repro.obs.detect import (
    Alert,
    AlertLog,
    BurnRateRule,
    CusumDetector,
    EwmaDetector,
    ThresholdRule,
)
from repro.obs.export import (
    chrome_trace,
    metrics_json,
    summary_table,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    merge_snapshots,
)
from repro.obs.monitor import (
    HealthReport,
    Monitor,
    MonitorConfig,
    ReTuneHook,
    TunerReTuneHook,
    TuningRecommendation,
    default_serving_monitor,
)
from repro.obs.recording import record_routing_run
from repro.obs.series import MetricsSampler, Series
from repro.obs.tracer import Span, Tracer, attach, current, detach, span, use_tracer

__all__ = [
    "Alert",
    "AlertLog",
    "BurnRateRule",
    "Counter",
    "CusumDetector",
    "EwmaDetector",
    "Gauge",
    "HealthReport",
    "Histogram",
    "MetricsRegistry",
    "MetricsSampler",
    "Monitor",
    "MonitorConfig",
    "ReTuneHook",
    "Series",
    "Span",
    "ThresholdRule",
    "Tracer",
    "TunerReTuneHook",
    "TuningRecommendation",
    "attach",
    "chrome_trace",
    "current",
    "default_serving_monitor",
    "detach",
    "log_buckets",
    "merge_snapshots",
    "metrics_json",
    "record_routing_run",
    "render_dashboard",
    "span",
    "sparkline",
    "summary_table",
    "use_tracer",
    "write_chrome_trace",
    "write_metrics_json",
]
