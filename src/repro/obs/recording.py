"""Record one short instrumented routing run (the ``repro obs`` backend).

:func:`record_routing_run` wires the full observability stack around a
small but real workload: a :class:`~repro.runtime.StepRuntime` (with a
:class:`~repro.routing.plan_cache.PlanCache`, so warm steps exercise the
hit/patch tiers) driving router policy × dispatch kind over the simulated
cluster, with a :class:`~repro.obs.tracer.Tracer` attached, a
:class:`~repro.obs.metrics.MetricsRegistry` receiving the telemetry and
comm publishes, and the step batches replayed with tiny score drift so the
trace shows cold *and* warm resolution tiers.  Returns everything a caller
needs to export: the tracer, the registry, and the run's telemetry.

Heavy imports happen inside the function so this module can live in
``repro.obs.__init__`` without creating an import cycle with the
runtime/comm modules it drives (they import ``repro.obs.tracer`` at module
scope).
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, use_tracer

__all__ = ["record_routing_run"]


def record_routing_run(
    *,
    router: str = "softmax-topk",
    dispatch: str = "flat",
    num_ranks: int = 8,
    experts_per_rank: int = 1,
    top_k: int = 2,
    tokens_per_rank: int = 64,
    hidden_size: int = 32,
    steps: int = 4,
    skew: float = 1.0,
    capacity_factor: float | None = None,
    seed: int = 0,
):
    """Run ``steps`` instrumented steps; return (tracer, registry, telemetry).

    The first step is a cold plan-cache miss; later steps replay the same
    batches with ~1e-9 score drift, so the recorded trace contains every
    resolution tier the steady state produces (miss → fused compile →
    hit / weight-patch) plus the cold step's real collectives with their
    per-tier byte attributes.  ``capacity_factor=None`` runs the paper's
    padding-free uncapped pipeline; pass a factor to exercise capacity
    drops.  All randomness derives from ``seed``, so a recording is
    exactly reproducible.
    """
    import numpy as np

    from repro.comm import CommWorld
    from repro.routing import PlanCache, make_dispatcher, make_policy
    from repro.routing.policies import skewed_router_tokens
    from repro.routing.telemetry import RoutingTelemetry
    from repro.runtime import StepRuntime

    num_experts = num_ranks * experts_per_rank
    registry = MetricsRegistry()
    tracer = Tracer()

    world = CommWorld(num_ranks=num_ranks)
    world.stats.metrics = registry
    policy = make_policy(
        router,
        hidden_size,
        num_experts,
        top_k,
        rng=np.random.default_rng(seed),
        seed=seed,
    )
    dispatcher = make_dispatcher(
        world.world_group(), num_experts, kind=dispatch, seed=seed
    )
    telemetry = RoutingTelemetry(num_experts, metrics=registry)
    capacity = (
        None
        if capacity_factor is None
        else StepRuntime.capacity_for(tokens_per_rank, top_k, num_experts, capacity_factor)
    )
    runtime = StepRuntime(
        policy,
        dispatcher,
        capacity=capacity,
        telemetry=telemetry,
        plan_cache=PlanCache(),
    )

    base = [
        skewed_router_tokens(
            np.random.default_rng((seed, 0, rank)),
            tokens_per_rank,
            policy.weight,
            skew=skew,
        )
        for rank in range(num_ranks)
    ]
    drift_rng = np.random.default_rng((seed, 1))
    with use_tracer(tracer):
        for i in range(steps):
            # RBD pilot selection is (seed, step)-salted, so warm tiers only
            # appear within one step salt; pin the step for rbd.
            step_arg = None if dispatch == "rbd" else i
            arrs = [a.copy() for a in base]
            if i > 0:
                rows = max(1, tokens_per_rank // 32)
                for a in arrs:
                    sel = drift_rng.choice(tokens_per_rank, size=rows, replace=False)
                    a[sel] += 1e-9 * drift_rng.normal(size=(rows, hidden_size))
            runtime.run_step(arrs, step=step_arg)
    telemetry.comm_stats = world.stats
    return tracer, registry, telemetry
