"""Simulated communication substrate.

This package plays the role RCCL/NCCL plays in the real system.  It offers

* :class:`repro.comm.process_group.CommWorld` — the global communicator:
  topology + network model + per-rank devices + statistics.
* :class:`repro.comm.process_group.ProcessGroup` — a subgroup of ranks with
  *functional* collectives (they really shuffle numpy buffers between the
  per-rank slots, so dispatch/combine correctness is testable) and a *cost*
  attached to every call from the network model.
* :mod:`repro.comm.cost_model` — standalone helpers to turn traffic
  descriptions into time without materializing buffers (used for the large
  analytic configurations of Figs. 9/10).
"""

from repro.comm.process_group import CommWorld, ProcessGroup, CommStats, CommEvent
from repro.comm.cost_model import (
    alltoall_traffic_matrix,
    uniform_alltoall_time,
    hierarchical_alltoall_time,
    hierarchical_dispatch_time,
    overlap_schedule,
)

__all__ = [
    "CommWorld",
    "ProcessGroup",
    "CommStats",
    "CommEvent",
    "alltoall_traffic_matrix",
    "uniform_alltoall_time",
    "hierarchical_alltoall_time",
    "hierarchical_dispatch_time",
    "overlap_schedule",
]
