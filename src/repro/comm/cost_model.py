"""Standalone communication cost helpers.

The functional collectives in :mod:`repro.comm.process_group` are great for
correctness but require materializing every buffer, which is impossible for
the paper's 201B/545B configurations.  These helpers compute the same
alpha-beta estimates from byte counts alone and are what the throughput
model (Figs. 9, 10, 11, 12) uses.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.network import NetworkModel, TransferEstimate
from repro.cluster.topology import LinkTier


def alltoall_traffic_matrix(
    tokens_to_rank: np.ndarray, bytes_per_token: float
) -> np.ndarray:
    """Build a ``[P, P]`` traffic matrix from a token-count matrix.

    ``tokens_to_rank[i, j]`` is the number of tokens rank ``i`` sends to
    rank ``j``; the result is the byte traffic matrix.
    """
    tokens = np.asarray(tokens_to_rank, dtype=np.float64)
    if tokens.ndim != 2 or tokens.shape[0] != tokens.shape[1]:
        raise ValueError("tokens_to_rank must be a square matrix")
    return tokens * float(bytes_per_token)


def uniform_alltoall_time(
    network: NetworkModel,
    ranks: np.ndarray,
    bytes_per_rank_pair: float,
    *,
    include_self: bool = False,
    congestion: bool = True,
) -> TransferEstimate:
    """All-to-all where every rank sends the same payload to every peer.

    This models the *even* all-to-all of padded pipelines: each rank sends
    ``bytes_per_rank_pair`` to every other participant regardless of how many
    real tokens are inside (the padding travels too).
    """
    ranks = np.asarray(ranks, dtype=np.int64)
    p = ranks.size
    traffic = np.full((p, p), float(bytes_per_rank_pair))
    if not include_self:
        np.fill_diagonal(traffic, 0.0)
    est = network.alltoall_time(traffic, ranks)
    if congestion:
        factor = network.congestion_factor(p)
        est = TransferEstimate(
            seconds=est.seconds * factor,
            bottleneck_tier=est.bottleneck_tier,
            bytes_by_tier=est.bytes_by_tier,
        )
    return est


def hierarchical_alltoall_time(
    network: NetworkModel,
    ranks: np.ndarray,
    inter_node_bytes_per_rank: float,
    intra_node_bytes_per_rank: float,
    *,
    congestion: bool = True,
) -> tuple[TransferEstimate, TransferEstimate]:
    """Cost of RBD's two-stage dispatch.

    Stage 1 moves ``inter_node_bytes_per_rank`` from each rank across node
    boundaries (pilot tokens); stage 2 moves ``intra_node_bytes_per_rank``
    between the GPUs of each node (local replicas).  Returns the two
    estimates ``(inter, intra)``; the total dispatch time is their sum since
    stage 2 depends on stage 1's data.
    """
    ranks = np.asarray(ranks, dtype=np.int64)
    topo = network.topology
    p = ranks.size
    nodes = topo.nodes_of(ranks)

    # Inter-node stage: spread each rank's inter-node payload uniformly over
    # the peers living on other nodes.
    inter_traffic = np.zeros((p, p))
    for i in range(p):
        others = np.flatnonzero(nodes != nodes[i])
        if others.size:
            inter_traffic[i, others] = inter_node_bytes_per_rank / others.size
    inter_est = network.alltoall_time(inter_traffic, ranks)
    if congestion:
        factor = network.congestion_factor(p)
        inter_est = TransferEstimate(
            seconds=inter_est.seconds * factor,
            bottleneck_tier=inter_est.bottleneck_tier,
            bytes_by_tier=inter_est.bytes_by_tier,
        )

    # Intra-node stage: payload spread over same-node peers.
    intra_traffic = np.zeros((p, p))
    for i in range(p):
        peers = np.flatnonzero((nodes == nodes[i]) & (np.arange(p) != i))
        if peers.size:
            intra_traffic[i, peers] = intra_node_bytes_per_rank / peers.size
    intra_est = network.alltoall_time(intra_traffic, ranks)
    return inter_est, intra_est


def overlap_schedule(
    ready_seconds: list[float],
    comm_seconds: list[float],
) -> tuple[list[float], list[float]]:
    """Schedule dependent collectives on a single serial comm channel.

    Models ZeRO's bucket-level dependency tracking: collective ``i`` cannot
    start before its data is ready (``ready_seconds[i]``, the point in the
    backward pass where the bucket filled) nor before the previous
    collective finished (one in-flight collective at a time, matching a
    single communication stream).  Returns ``(starts, ends)`` on the
    backward pass's clock; a step whose backward takes ``B`` seconds
    finishes at ``max(B, ends[-1])``.

    The schedule is the timeline both the overlapped and the naive paths of
    ``benchmarks/test_zero_micro.py`` are priced on — the naive path simply
    passes ``ready_seconds = [compute_seconds] * n`` (no overlap: every
    reduction waits for the full backward).
    """
    if len(ready_seconds) != len(comm_seconds):
        raise ValueError("ready_seconds and comm_seconds must have equal length")
    starts: list[float] = []
    ends: list[float] = []
    free = 0.0
    for ready, comm in zip(ready_seconds, comm_seconds):
        start = max(float(ready), free)
        end = start + float(comm)
        starts.append(start)
        ends.append(end)
        free = end
    return starts, ends


def _zero_estimate() -> TransferEstimate:
    """A zero-cost transfer (nothing leaves the device)."""
    return TransferEstimate(seconds=0.0, bottleneck_tier=LinkTier.SELF, bytes_by_tier={})


def hierarchical_dispatch_time(
    network: NetworkModel,
    ranks: np.ndarray,
    *,
    inter_node_bytes_per_rank: float,
    gather_bytes_per_rank: float,
    scatter_bytes_per_rank: float,
    congestion: bool = True,
) -> tuple[TransferEstimate, TransferEstimate, TransferEstimate]:
    """Cost of the two-hop hierarchical dispatch (gather → exchange → scatter).

    Hop A moves ``gather_bytes_per_rank`` from each rank onto its node
    leader over the intra-node tier, hop B moves
    ``inter_node_bytes_per_rank`` per rank across node boundaries (modelled
    bandwidth-optimally: the aggregated leader exchange pipelines over the
    node's NICs, so the payload is spread rather than serialized through one
    rank), and hop C moves ``scatter_bytes_per_rank`` from the leader to the
    expert-owning ranks.  Returns ``(gather, inter, scatter)`` estimates;
    the hops are dependent, so the total dispatch time is their sum.  Built
    on :func:`hierarchical_alltoall_time`, which prices one inter-node and
    one intra-node stage.

    Degenerate topologies collapse to the flat estimate instead of silently
    dropping payload:

    * a **single rank** moves nothing — all three estimates are zero;
    * a **single node** has no leader hops — the dispatch payload
      (``scatter_bytes_per_rank``, one row per assignment) moves in one flat
      intra-node all-to-all, returned as the scatter estimate;
    * **one GPU per node** makes gather/scatter self-copies (zero) and the
      leader exchange *is* the flat all-to-all of the inter-node payload.
    """
    ranks = np.asarray(ranks, dtype=np.int64)
    p = ranks.size
    if p <= 1:
        return _zero_estimate(), _zero_estimate(), _zero_estimate()
    nodes = network.topology.nodes_of(ranks)
    num_nodes = int(np.unique(nodes).size)
    if num_nodes == 1:
        # No inter-node tier exists: hierarchical dispatch degenerates to the
        # flat exchange of the full per-assignment payload inside the node.
        flat_est = uniform_alltoall_time(
            network, ranks, scatter_bytes_per_rank / p, congestion=congestion
        )
        return _zero_estimate(), _zero_estimate(), flat_est
    if num_nodes == p:
        # Every rank is its own leader: the gather/scatter hops are on-device
        # copies and hop B is exactly the flat inter-node all-to-all.
        inter_est = uniform_alltoall_time(
            network, ranks, inter_node_bytes_per_rank / p, congestion=congestion
        )
        return _zero_estimate(), inter_est, _zero_estimate()
    inter_est, gather_est = hierarchical_alltoall_time(
        network,
        ranks,
        inter_node_bytes_per_rank,
        gather_bytes_per_rank,
        congestion=congestion,
    )
    _, scatter_est = hierarchical_alltoall_time(
        network, ranks, 0.0, scatter_bytes_per_rank, congestion=False
    )
    return gather_est, inter_est, scatter_est
