"""Process groups and functional collectives over the simulated cluster.

The design mirrors ``torch.distributed``: a :class:`CommWorld` owns all the
ranks; :class:`ProcessGroup` objects are subsets of ranks over which
collectives run.  Because everything lives in one Python process, a
collective is implemented as an actual data shuffle between per-rank slots,
which makes the MoE dispatch/combine pipelines exactly testable.  Every call
also asks the :class:`~repro.cluster.network.NetworkModel` for a time
estimate and records it in :class:`CommStats`, which is what the performance
benchmarks read out.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.device import SimDevice
from repro.cluster.network import NetworkModel
from repro.cluster.topology import LinkTier, Topology
from repro.config.hardware import SystemSpec, frontier_system
from repro.obs import tracer as obs
from repro.obs.metrics import MetricsRegistry


@dataclass
class CommEvent:
    """One recorded collective call."""

    op: str
    group_size: int
    total_bytes: float
    seconds: float
    bottleneck_tier: LinkTier
    bytes_by_tier: dict = field(default_factory=dict)


@dataclass
class CommStats:
    """Accumulated communication statistics.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is attached
    (``stats.metrics = registry``), every recorded event is also published
    as counters — ``comm_calls{op}``, ``comm_modeled_seconds{op}``,
    ``comm_bytes{op, tier}`` — including events replayed by the plan
    cache's fused executor, so the registry view never undercounts warm
    steps.
    """

    events: list[CommEvent] = field(default_factory=list)
    #: optional metrics sink; events are published to it as they record.
    metrics: MetricsRegistry | None = None

    def record(self, event: CommEvent) -> None:
        """Append one collective's record (and publish it, if wired)."""
        self.events.append(event)
        registry = self.metrics
        if registry is not None:
            registry.counter("comm_calls", "op").labels(op=event.op).inc()
            registry.counter("comm_modeled_seconds", "op").labels(op=event.op).inc(
                event.seconds
            )
            by_tier = registry.counter("comm_bytes", "op", "tier")
            for tier, nbytes in event.bytes_by_tier.items():
                by_tier.labels(op=event.op, tier=getattr(tier, "name", tier)).inc(
                    float(nbytes)
                )

    def merge(self, other: "CommStats") -> "CommStats":
        """A new window holding this window's events followed by ``other``'s.

        Summaries over the merged window (total seconds/bytes, per-op and
        per-tier groupings) equal the sums of the two inputs' summaries —
        the aggregation property the unit tests pin down.  The merged
        window has no metrics sink (its inputs already published).
        """
        return CommStats(events=list(self.events) + list(other.events))

    @property
    def total_seconds(self) -> float:
        """Modeled seconds across every recorded collective."""
        return sum(e.seconds for e in self.events)

    @property
    def total_bytes(self) -> float:
        """Bytes moved across every recorded collective."""
        return sum(e.total_bytes for e in self.events)

    def seconds_by_op(self) -> dict[str, float]:
        """Modeled seconds grouped by collective op name."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.op] = out.get(e.op, 0.0) + e.seconds
        return out

    def bytes_by_tier(self) -> dict[LinkTier, float]:
        """Bytes moved grouped by the link tier they crossed."""
        out: dict[LinkTier, float] = {}
        for e in self.events:
            for tier, nbytes in e.bytes_by_tier.items():
                out[tier] = out.get(tier, 0.0) + nbytes
        return out

    def clear(self) -> None:
        """Drop every recorded event (fresh accounting window)."""
        self.events.clear()


class CommWorld:
    """The global communicator over a simulated system.

    Parameters
    ----------
    system:
        Hardware description (defaults to a Frontier partition).
    num_ranks:
        Number of simulated ranks.
    seed:
        Seed for the congestion sampler.
    track_memory:
        If True, collectives charge their receive buffers to the destination
        rank's :class:`SimDevice` memory tracker.
    """

    def __init__(
        self,
        num_ranks: int,
        system: SystemSpec | None = None,
        *,
        seed: int | None = 0,
        track_memory: bool = False,
    ):
        if system is None:
            needed_nodes = max(1, -(-num_ranks // 8))
            system = frontier_system(num_nodes=needed_nodes)
        self.system = system
        self.topology = Topology(system, num_ranks)
        self.network = NetworkModel(self.topology, seed=seed)
        self.num_ranks = num_ranks
        self.devices = [SimDevice(r, system.node.gpu) for r in range(num_ranks)]
        self.stats = CommStats()
        self.track_memory = track_memory

    def group(self, ranks) -> "ProcessGroup":
        """Create a process group over the given global ranks."""
        return ProcessGroup(self, list(ranks))

    def world_group(self) -> "ProcessGroup":
        """The group containing every rank."""
        return self.group(range(self.num_ranks))

    def node_group(self, node: int) -> "ProcessGroup":
        """The group of all ranks on one node."""
        return self.group(self.topology.ranks_on_node(node))


def _comm_span(default_op: str):
    """Wrap a recording collective in a ``category="comm"`` span.

    The span is named after the effective ``op_name`` (callers relabel
    collectives — e.g. hierarchical dispatch stages — via that kwarg) and
    opens with the group's global ranks attached, which is what lets the
    Chrome-trace exporter place the event on every participating rank's
    track.  ``_record`` fills in bytes/tier attributes from inside the
    span.  Only the primitives that call ``_record`` are wrapped;
    delegating wrappers (``alltoall_single`` → ``alltoall``) inherit the
    primitive's span, so each collective traces exactly once.
    """

    def wrap(fn):
        """Decorate ``fn`` so each call runs inside its comm span."""

        @functools.wraps(fn)
        def inner(self, *args, op_name: str = default_op, **kwargs):
            """Run the collective inside an ``op_name`` comm span."""
            with obs.span(op_name, "comm", ranks=self.ranks):
                return fn(self, *args, op_name=op_name, **kwargs)

        return inner

    return wrap


class ProcessGroup:
    """A subset of ranks with functional + costed collectives.

    Collectives take *lists indexed by group-local rank* and return lists in
    the same convention.  For example ``alltoall(chunks)`` expects
    ``chunks[i][j]`` = the array local rank ``i`` sends to local rank ``j``
    and returns ``out`` with ``out[j][i] = chunks[i][j]``.
    """

    def __init__(self, world: CommWorld, ranks: list[int]):
        if len(ranks) == 0:
            raise ValueError("process group must contain at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ValueError("duplicate ranks in process group")
        for r in ranks:
            if not (0 <= r < world.num_ranks):
                raise ValueError(f"rank {r} out of range")
        self.world = world
        self.ranks = list(ranks)
        self.size = len(ranks)
        self._global = np.asarray(ranks, dtype=np.int64)

    # ------------------------------------------------------------------
    def _record(self, op: str, traffic: np.ndarray, estimate) -> None:
        event = CommEvent(
            op=op,
            group_size=self.size,
            total_bytes=float(np.asarray(traffic).sum()),
            seconds=estimate.seconds,
            bottleneck_tier=estimate.bottleneck_tier,
            bytes_by_tier=dict(estimate.bytes_by_tier),
        )
        self.world.stats.record(event)
        span = obs.current()
        if span is not None and span.category == "comm":
            span.set(
                op=op,
                bytes=event.total_bytes,
                modeled_seconds=event.seconds,
                bottleneck_tier=event.bottleneck_tier,
                bytes_by_tier={
                    getattr(tier, "name", tier): float(nbytes)
                    for tier, nbytes in event.bytes_by_tier.items()
                },
            )

    def _charge_memory(self, local_rank: int, tag: str, arrays) -> None:
        if not self.world.track_memory:
            return
        device = self.world.devices[self.ranks[local_rank]]
        nbytes = sum(int(a.nbytes) for a in arrays)
        device.alloc(tag, nbytes)

    # ------------------------------------------------------------------
    @_comm_span("alltoall")
    def alltoall(self, chunks: list[list[np.ndarray]], *, op_name: str = "alltoall"):
        """Generic all-to-all of per-destination numpy chunks.

        ``chunks[i][j]`` is what local rank ``i`` sends to local rank ``j``.
        Returns ``received`` with ``received[j][i] = chunks[i][j]``.
        """
        if len(chunks) != self.size:
            raise ValueError(
                f"expected {self.size} send lists, got {len(chunks)}"
            )
        for i, row in enumerate(chunks):
            if len(row) != self.size:
                raise ValueError(
                    f"rank {i} provided {len(row)} chunks, expected {self.size}"
                )
        traffic = np.array(
            [[float(chunks[i][j].nbytes) for j in range(self.size)] for i in range(self.size)]
        )
        estimate = self.world.network.alltoall_time(traffic, self._global)
        self._record(op_name, traffic, estimate)
        received = [[chunks[i][j] for i in range(self.size)] for j in range(self.size)]
        return received

    def alltoall_single(self, buffers: list[np.ndarray], *, op_name: str = "alltoall"):
        """Even all-to-all: each rank's buffer is split into ``size`` equal
        slices along axis 0 and slice ``j`` is delivered to rank ``j``.

        Returns per-rank arrays formed by concatenating the received slices
        in source-rank order — the semantics of ``all_to_all_single``.
        """
        if len(buffers) != self.size:
            raise ValueError(f"expected {self.size} buffers, got {len(buffers)}")
        chunks = []
        for i, buf in enumerate(buffers):
            if buf.shape[0] % self.size:
                raise ValueError(
                    f"rank {i} buffer first dim {buf.shape[0]} not divisible by "
                    f"group size {self.size}"
                )
            chunks.append(list(np.split(buf, self.size, axis=0)))
        received = self.alltoall(chunks, op_name=op_name)
        return [np.concatenate(r, axis=0) for r in received]

    def alltoallv(
        self,
        buffers: list[np.ndarray],
        send_splits: list[np.ndarray],
        *,
        op_name: str = "alltoallv",
    ):
        """Uneven all-to-all along axis 0.

        ``send_splits[i]`` is a length-``size`` integer array; rank ``i``
        sends the first ``send_splits[i][0]`` rows to rank 0, the next
        ``send_splits[i][1]`` rows to rank 1, and so on.  Returns
        ``(received_buffers, recv_splits)`` where ``recv_splits[j][i]`` is
        the number of rows rank ``j`` received from rank ``i``.
        """
        if len(buffers) != self.size or len(send_splits) != self.size:
            raise ValueError("buffers and send_splits must both have group-size entries")
        chunks: list[list[np.ndarray]] = []
        for i, (buf, splits) in enumerate(zip(buffers, send_splits)):
            splits = np.asarray(splits, dtype=np.int64)
            if splits.size != self.size:
                raise ValueError(
                    f"rank {i} send_splits has {splits.size} entries, expected {self.size}"
                )
            if splits.sum() != buf.shape[0]:
                raise ValueError(
                    f"rank {i} send_splits sum {splits.sum()} != buffer rows {buf.shape[0]}"
                )
            offsets = np.concatenate([[0], np.cumsum(splits)])
            chunks.append(
                [buf[offsets[j] : offsets[j + 1]] for j in range(self.size)]
            )
        received = self.alltoall(chunks, op_name=op_name)
        recv_splits = [
            np.array([received[j][i].shape[0] for i in range(self.size)], dtype=np.int64)
            for j in range(self.size)
        ]
        out = []
        for j in range(self.size):
            parts = [r for r in received[j]]
            if parts:
                out.append(np.concatenate(parts, axis=0))
            else:  # pragma: no cover - group of size 0 impossible
                out.append(np.empty((0,)))
        return out, recv_splits

    @_comm_span("alltoallv")
    def alltoallv_planned(
        self,
        buffers: list[np.ndarray],
        send_splits: list[np.ndarray],
        recv_splits: list[np.ndarray] | None = None,
        *,
        op_name: str = "alltoallv",
    ):
        """Uneven all-to-all whose splits come from a precomputed routing plan.

        Unlike :meth:`alltoallv`, the per-pair byte/tier accounting is
        computed directly from the plan's splits (``rows x row_bytes``)
        instead of being re-derived from per-chunk payloads.  When
        ``recv_splits`` is provided it is validated against the send-split
        transpose (catching stale plans) and returned as-is.  Semantics
        are identical: rank ``i`` sends the first ``send_splits[i][0]``
        rows of ``buffers[i]`` to rank 0, the next ``send_splits[i][1]``
        rows to rank 1, and so on.  Returns
        ``(received_buffers, recv_splits)``.
        """
        size = self.size
        if len(buffers) != size or len(send_splits) != size:
            raise ValueError("buffers and send_splits must both have group-size entries")
        splits_mat = np.stack(
            [np.asarray(s, dtype=np.int64) for s in send_splits]
        )
        if splits_mat.shape != (size, size):
            raise ValueError(
                f"send_splits must be {size} arrays of {size} entries each"
            )
        row_bytes = np.array(
            [b.itemsize * int(np.prod(b.shape[1:])) for b in buffers],
            dtype=np.float64,
        )
        row_counts = splits_mat.sum(axis=1)
        for i, buf in enumerate(buffers):
            if row_counts[i] != buf.shape[0]:
                raise ValueError(
                    f"rank {i} send_splits sum {row_counts[i]} != buffer rows {buf.shape[0]}"
                )
        if recv_splits is not None and not np.array_equal(
            np.stack([np.asarray(s, dtype=np.int64) for s in recv_splits]),
            splits_mat.T,
        ):
            raise ValueError(
                "recv_splits do not match the transpose of send_splits "
                "(stale or mismatched plan)"
            )
        traffic = splits_mat * row_bytes[:, None]
        estimate = self.world.network.alltoall_time(traffic, self._global)
        self._record(op_name, traffic, estimate)

        offsets = np.concatenate(
            [np.zeros((size, 1), dtype=np.int64), np.cumsum(splits_mat, axis=1)],
            axis=1,
        )
        received = [
            np.concatenate(
                [buffers[i][offsets[i, j] : offsets[i, j + 1]] for i in range(size)],
                axis=0,
            )
            for j in range(size)
        ]
        if recv_splits is None:
            recv_splits = [splits_mat[:, j].copy() for j in range(size)]
        return received, recv_splits

    @_comm_span("allgather")
    def allgather(self, buffers: list[np.ndarray], *, op_name: str = "allgather"):
        """All-gather along axis 0: every rank receives the concatenation of
        all ranks' buffers (in rank order)."""
        if len(buffers) != self.size:
            raise ValueError(f"expected {self.size} buffers, got {len(buffers)}")
        nbytes = max(int(b.nbytes) for b in buffers)
        estimate = self.world.network.allgather_time(nbytes, self._global)
        traffic = np.full((self.size, self.size), nbytes, dtype=np.float64)
        np.fill_diagonal(traffic, 0.0)
        self._record(op_name, traffic, estimate)
        gathered = np.concatenate(buffers, axis=0)
        return [gathered.copy() for _ in range(self.size)]

    @_comm_span("allreduce")
    def allreduce(
        self, buffers: list[np.ndarray], *, op: str = "sum", op_name: str = "allreduce"
    ):
        """All-reduce: every rank receives the elementwise reduction."""
        if len(buffers) != self.size:
            raise ValueError(f"expected {self.size} buffers, got {len(buffers)}")
        shapes = {b.shape for b in buffers}
        if len(shapes) != 1:
            raise ValueError(f"allreduce requires identical shapes, got {shapes}")
        stacked = np.stack(buffers, axis=0)
        if op == "sum":
            reduced = stacked.sum(axis=0)
        elif op == "max":
            reduced = stacked.max(axis=0)
        elif op == "mean":
            reduced = stacked.mean(axis=0)
        else:
            raise ValueError(f"unsupported allreduce op {op!r}")
        nbytes = int(buffers[0].nbytes)
        estimate = self.world.network.allreduce_time(nbytes, self._global)
        traffic = np.full((self.size, self.size), nbytes / max(1, self.size - 1))
        np.fill_diagonal(traffic, 0.0)
        self._record(op_name, traffic, estimate)
        return [reduced.copy() for _ in range(self.size)]

    @_comm_span("reduce_scatter")
    def reduce_scatter(
        self, buffers: list[np.ndarray], *, op_name: str = "reduce_scatter"
    ):
        """Reduce-scatter along axis 0: rank ``j`` gets slice ``j`` of the sum."""
        if len(buffers) != self.size:
            raise ValueError(f"expected {self.size} buffers, got {len(buffers)}")
        shapes = {b.shape for b in buffers}
        if len(shapes) != 1:
            raise ValueError(f"reduce_scatter requires identical shapes, got {shapes}")
        if buffers[0].shape[0] % self.size:
            raise ValueError("first dimension must be divisible by group size")
        total = np.stack(buffers, axis=0).sum(axis=0)
        slices = np.split(total, self.size, axis=0)
        nbytes = int(buffers[0].nbytes)
        estimate = self.world.network.reduce_scatter_time(nbytes, self._global)
        traffic = np.full((self.size, self.size), nbytes / max(1, self.size))
        np.fill_diagonal(traffic, 0.0)
        self._record(op_name, traffic, estimate)
        return [s.copy() for s in slices]

    @_comm_span("broadcast")
    def broadcast(self, buffer: np.ndarray, root: int = 0, *, op_name: str = "broadcast"):
        """Broadcast ``buffer`` (held by local rank ``root``) to every rank."""
        if not (0 <= root < self.size):
            raise ValueError(f"root {root} out of range")
        nbytes = int(buffer.nbytes)
        estimate = self.world.network.allgather_time(nbytes, self._global)
        traffic = np.zeros((self.size, self.size))
        traffic[root, :] = nbytes
        traffic[root, root] = 0.0
        self._record(op_name, traffic, estimate)
        return [buffer.copy() for _ in range(self.size)]

    # ------------------------------------------------------------------
    def node_local_subgroups(self) -> list["ProcessGroup"]:
        """Split this group into subgroups of ranks sharing a node."""
        by_node: dict[int, list[int]] = {}
        for r in self.ranks:
            by_node.setdefault(self.world.topology.node_of(r), []).append(r)
        return [ProcessGroup(self.world, rs) for _, rs in sorted(by_node.items())]

    def local_rank_of(self, global_rank: int) -> int:
        """Group-local index of a global rank."""
        return self.ranks.index(global_rank)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ProcessGroup(size={self.size}, ranks={self.ranks[:8]}{'...' if self.size > 8 else ''})"
