"""Command-line entry point: regenerate the paper's headline results.

Usage::

    python -m repro fig9        # trainability + throughput on 256/1024 GPUs
    python -m repro table4      # per-MoE-layer activation memory
    python -m repro fig4        # redundancy rate vs EP size
    python -m repro fig13       # SSMB memory saving vs TP degree
    python -m repro configs     # Table 3 model configurations
    python -m repro tune        # auto-tune a parallel plan for a cluster
    python -m repro train       # tiny ZeRO-sharded training validation run
    python -m repro obs         # record a traced run; summarize / export it
    python -m repro serve       # continuous-batching serving over a trace
    python -m repro monitor     # serve a trace with online SLO/drift monitoring

Each subcommand prints the corresponding rows; the full benchmark harness
(with assertions on the expected shapes) lives under ``benchmarks/``.
"""

from __future__ import annotations

import argparse


def _cmd_configs(_args) -> None:
    from repro.config import paper_config

    print(f"{'model':>8} | {'total (B)':>10} | {'activated (B)':>14} | experts | top-k | layers")
    for name in ("small", "medium", "large", "super"):
        cfg = paper_config(name)
        print(
            f"{name:>8} | {cfg.total_params() / 1e9:>10.1f} | "
            f"{cfg.activated_params() / 1e9:>14.1f} | {cfg.num_experts:>7} | "
            f"{cfg.top_k:>5} | {cfg.num_layers:>6}"
        )


def _cmd_fig4(_args) -> None:
    from repro.analysis import redundancy_by_ep_size

    print("EP size | redundant share of dispatched tokens")
    for ep, rate in redundancy_by_ep_size().items():
        print(f"{ep:>7} | {rate:.1%}")


def _cmd_table4(_args) -> None:
    from repro.config import ParallelConfig, paper_config
    from repro.xmoe.memory_model import MoEMemoryModel, SystemKind

    parallel = ParallelConfig(
        world_size=256, ep_size=64, micro_batch_size=1, global_batch_size=1024
    )
    memory = MoEMemoryModel(paper_config("large"), parallel)
    print("per-MoE-layer activation memory, Large model, 256 GPUs, EP=64")
    for kind in (SystemKind.DEEPSPEED_MOE, SystemKind.TUTEL, SystemKind.XMOE, SystemKind.THEORETICAL):
        total = memory.moe_layer_activations(kind).total() / 2**30
        print(f"  {kind.value:<15s}: {total:5.2f} GB")


def _cmd_fig13(_args) -> None:
    from repro.config import ParallelConfig, paper_config
    from repro.xmoe.memory_model import MoEMemoryModel, SystemKind

    model = paper_config("large")
    print("max per-device memory, Large model, 256 GPUs, EP=64")
    for tp in (1, 2, 4):
        base = ParallelConfig(
            world_size=256, ep_size=64, tp_size=tp, micro_batch_size=1, global_batch_size=1024
        )
        with_ssmb = MoEMemoryModel(model, base.with_overrides(use_ssmb=True)).report(SystemKind.XMOE)
        without = MoEMemoryModel(model, base.with_overrides(use_ssmb=False)).report(SystemKind.XMOE)
        print(f"  TP={tp}: w/o SSMB {without.total_gb:6.1f} GB | w/ SSMB {with_ssmb.total_gb:6.1f} GB")


def _cmd_fig9(args) -> None:
    from repro.config import frontier_system, paper_config
    from repro.xmoe.memory_model import SystemKind
    from repro.xmoe.trainer import sweep_best_config

    kinds = [
        SystemKind.DEEPSPEED_MOE,
        SystemKind.DEEPSPEED_TED,
        SystemKind.TUTEL,
        SystemKind.XMOE,
    ]
    models = ["small", "medium", "large"] if not args.quick else ["small"]
    sys256 = frontier_system(num_nodes=32)
    print(f"{'model':>8} | " + " | ".join(f"{k.value:>14}" for k in kinds))
    for name in models:
        cells = []
        for kind in kinds:
            result = sweep_best_config(paper_config(name), 256, kind, sys256)
            cells.append("OOM" if result.oom else f"{result.tflops_per_gpu:.1f} TF")
        print(f"{name:>8} | " + " | ".join(f"{c:>14}" for c in cells))
    if not args.quick:
        result = sweep_best_config(
            paper_config("super"), 1024, SystemKind.XMOE, frontier_system(num_nodes=128)
        )
        status = "OOM" if result.oom else (
            f"{result.tflops_per_gpu:.1f} TF/GPU, {result.aggregated_pflops:.2f} PFLOPs"
        )
        print(f"{'super':>8} | x-moe on 1024 GPUs: {status}")


def _cmd_tune(args) -> None:
    from repro.config import dgx_cluster, frontier_system, paper_config
    from repro.tuner import load_calibration, tune

    model = paper_config(args.model)
    if args.system == "frontier":
        system = frontier_system(num_nodes=args.nodes)
    else:
        system = dgx_cluster(num_nodes=args.nodes)
    tokens = args.token_budget
    if tokens is None:
        tokens = args.global_batch * model.seq_length
    calibration = load_calibration() if args.calibrate else None
    report = tune(model, system, tokens_per_step=tokens, calibration=calibration)
    print(report.describe())
    if not report.ranked:
        return
    header = (
        f"{'rank':>4} | {'ep':>4} | {'tp':>2} | {'zero':>4} | {'ssmb':>4} | "
        f"{'dispatch':>8} | {'placement':>9} | {'router':>12} | {'cap':>4} | "
        f"{'step (s)':>9} | {'TF/GPU':>6} | {'mem GB':>6} | {'pareto':>6}"
    )
    print("\n" + header)
    print("-" * len(header))
    for row in report.table_rows(args.top):
        print(
            f"{row['rank']:>4} | {row['ep']:>4} | {row['tp']:>2} | {row['zero']:>4} | "
            f"{row['ssmb']:>4} | {row['dispatch']:>8} | {row['placement']:>9} | "
            f"{row['router']:>12} | {row['cap']:>4.2f} | {row['step_s']:>9.3f} | "
            f"{row['TF/GPU']:>6.1f} | {row['mem_GB']:>6.1f} | {row['pareto']:>6}"
        )
    best = report.best_parallel_config()
    print(
        f"\nconsume the winner: dispatcher_for_config(group, {model.num_experts}, "
        f"plan) with plan.dispatch_kind={best.dispatch_kind!r}, and "
        f"policy_for_config(report.best_model_config(), plan)"
    )


def _cmd_train(args) -> None:
    from repro.xmoe.trainer import run_zero_training_validation

    result = run_zero_training_validation(
        zero_stage=args.zero_stage,
        dp_size=args.dp,
        steps=args.steps,
        bucket_bytes=args.bucket_kb << 10,
        seed=args.seed,
    )
    print(
        f"ZeRO-{int(result.stage)} training: dp={result.dp_size} "
        f"steps={result.steps} buckets={args.bucket_kb} KiB"
    )
    print("loss: " + "  ".join(f"{loss:.5f}" for loss in result.losses))
    print("\nper-rank model state (bytes)     measured    predicted")
    for key in ("param", "grad", "optimizer"):
        print(
            f"  {key:<28} {result.measured_state_bytes[key]:>10,.0f} "
            f"{result.predicted_state_bytes[key]:>12,.0f}"
        )
    predicted_total = sum(result.predicted_state_bytes.values())
    print(
        f"  rank-0 device peak           {result.device_peak_bytes:>10,} "
        f"{predicted_total:>12,.0f}"
    )
    timeline = result.timeline
    print(
        f"\ngrad reduction: comm {timeline.comm_seconds * 1e6:.1f} us, "
        f"exposed {timeline.exposed_seconds * 1e6:.1f} us, "
        f"overlap {result.overlap_ratio:.0%}"
    )
    by_op = result.comm_stats.seconds_by_op()
    print(
        "collectives: "
        + ", ".join(f"{op} {seconds * 1e6:.1f} us" for op, seconds in by_op.items())
        + f" | {result.comm_stats.total_bytes / 2**20:.2f} MiB moved"
    )


def _cmd_obs(args) -> None:
    from repro.obs import (
        record_routing_run,
        summary_table,
        write_chrome_trace,
        write_metrics_json,
    )

    tracer, registry, telemetry = record_routing_run(
        router=args.router,
        dispatch=args.dispatch,
        num_ranks=args.ranks,
        top_k=args.top_k,
        tokens_per_rank=args.tokens,
        steps=args.steps,
        skew=args.skew,
        seed=args.seed,
    )
    print(
        f"recorded {args.steps} steps: router={args.router} dispatch={args.dispatch} "
        f"ranks={args.ranks} tokens/rank={args.tokens}"
    )
    print()
    print(summary_table(tracer))
    print()
    summary = telemetry.summary()
    print("telemetry: " + ", ".join(f"{k}={v}" for k, v in summary.items()))
    if args.trace_out:
        path = write_chrome_trace(args.trace_out, tracer)
        print(f"wrote Perfetto trace: {path} (open at https://ui.perfetto.dev)")
    if args.metrics_out:
        path = write_metrics_json(args.metrics_out, registry)
        print(f"wrote metrics snapshot: {path}")


def _build_requests(args, rng):
    from repro.serving import bursty_arrivals, poisson_arrivals, synth_requests

    if args.trace == "poisson":
        arrivals = poisson_arrivals(rng, args.requests, args.rate)
    else:
        arrivals = bursty_arrivals(
            args.requests, burst_size=args.burst_size, gap_steps=args.gap_steps
        )
    return synth_requests(
        rng,
        arrivals,
        args.hidden,
        prompt_len=(2, args.max_prompt),
        max_new_tokens=(2, args.max_tokens),
        deadline_steps=args.deadline,
    )


def _cmd_serve(args) -> None:
    import numpy as np

    from repro.serving import (
        MemoryBudgetAdmission,
        StaticBatchAdmission,
        format_slo_table,
        make_serving_engine,
        run_trace,
    )

    def build_requests():
        return _build_requests(args, np.random.default_rng(args.seed))

    def build_admission(name):
        if name == "static":
            return StaticBatchAdmission()
        if name == "memory-budget":
            from repro.config import ParallelConfig, paper_config
            from repro.xmoe.memory_model import MoEMemoryModel

            parallel = ParallelConfig(
                world_size=256, ep_size=64, micro_batch_size=1,
                global_batch_size=1024,
            )
            model = MoEMemoryModel(paper_config("small"), parallel)
            return MemoryBudgetAdmission(model, max_slots=args.slots)
        return None  # FCFS default

    admissions = [args.admission]
    if args.compare and args.admission != "static":
        admissions.append("static")
    # Serves are bit-deterministic, so --compare wall clocks come from the
    # fastest of three repeats after a warm-up pass — otherwise the first
    # engine pays the process's one-time costs and the speedup lies.
    repeats = 3 if args.compare else 1
    warmed = not args.compare
    rows = []
    primary_monitor = None
    for name in admissions:
        reports = []
        for _ in range(repeats + (0 if warmed else 1)):
            engine = make_serving_engine(
                router=args.router,
                dispatch=args.dispatch,
                num_slots=args.slots,
                top_k=args.top_k,
                hidden_size=args.hidden,
                seed=args.seed,
                admission=build_admission(name),
            )
            if args.monitor:
                from repro.obs import default_serving_monitor

                engine.monitor = default_serving_monitor(
                    engine.registry, telemetry=engine.runtime.telemetry
                )
                if name == args.admission:
                    primary_monitor = engine.monitor
            reports.append(run_trace(engine, build_requests()))
            if not warmed:
                warmed = True
                reports.clear()
        report = min(reports, key=lambda r: r.wall_seconds)
        rows.append(report.slo_row())
        attribution = engine.runtime.telemetry.request_drop_attribution()
        if attribution:
            dropped = sum(sum(kinds.values()) for kinds in attribution.values())
            print(
                f"[{name}] {dropped} dropped assignments attributed across "
                f"{len(attribution)} requests"
            )
    print(
        f"served {args.requests} requests: trace={args.trace} router={args.router} "
        f"dispatch={args.dispatch} slots={args.slots}"
    )
    print()
    print(format_slo_table(rows, title="serving SLO"))
    if len(rows) == 2 and rows[1]["tokens_per_sec"] > 0:
        speedup = rows[0]["tokens_per_sec"] / rows[1]["tokens_per_sec"]
        print(f"\ncontinuous vs static tokens/sec speedup: {speedup:.2f}x")
    if primary_monitor is not None:
        from repro.obs import render_dashboard

        print()
        print(
            render_dashboard(
                primary_monitor, prefixes=("serving_", "routing_")
            )
        )


def _force_skew(engine, requests, rng, *, start_fraction: float = 0.4):
    """Rebuild the tail of a trace as prefill-heavy, expert-aligned requests.

    The first ``start_fraction`` of the trace stays balanced (the drift
    detectors calibrate on it); every later request gets a long prompt of
    :func:`~repro.routing.policies.skewed_router_tokens` rows aligned to
    the engine policy's weight columns, so routing load piles onto the
    popular experts and the load-imbalance series ramps — the deterministic
    drift the monitor must catch.
    """
    from repro.routing.policies import skewed_router_tokens
    from repro.serving import Request

    weight = engine.runtime.policy.weight
    cut = max(1, int(len(requests) * start_fraction))
    skewed = list(requests[:cut])
    for request in requests[cut:]:
        rows = max(int(request.prompt.shape[0]), 12)
        skewed.append(
            Request(
                request_id=request.request_id,
                prompt=skewed_router_tokens(rng, rows, weight, skew=3.0, boost=8.0),
                max_new_tokens=min(request.max_new_tokens, 2),
                arrival=request.arrival,
                deadline_steps=request.deadline_steps,
            )
        )
    return skewed


def _cmd_monitor(args) -> int:
    from pathlib import Path

    import numpy as np

    from repro.obs import (
        MonitorConfig,
        Tracer,
        default_serving_monitor,
        render_dashboard,
        use_tracer,
        write_chrome_trace,
        write_metrics_json,
    )
    from repro.serving import make_serving_engine, run_trace

    engine = make_serving_engine(
        router=args.router,
        dispatch=args.dispatch,
        num_slots=args.slots,
        top_k=args.top_k,
        hidden_size=args.hidden,
        seed=args.seed,
        capacity_factor=args.capacity_factor,
    )
    retune_hook = None
    if args.retune:
        from repro.config import ParallelConfig, frontier_system, paper_config
        from repro.obs import TunerReTuneHook
        from repro.tuner import SearchSpace

        model = paper_config("small")
        system = frontier_system(num_nodes=2)
        tokens = 64 * model.seq_length
        # A small axis-constrained space keeps the online re-tune fast;
        # the naive flat/EP=1 active plan is what drift should replace.
        space = SearchSpace(
            system=system,
            model=model,
            tokens_per_step=tokens,
            router_options=("softmax-topk",),
            capacity_factors=(1.0, 1.25),
        )
        retune_hook = TunerReTuneHook(
            model,
            system,
            ParallelConfig(world_size=system.total_gpus, ep_size=1, dispatch="flat"),
            space=space,
        )
    config = MonitorConfig(
        warmup=args.warmup,
        latency_p99_slo=args.latency_slo,
        ttft_p99_slo=args.ttft_slo,
        deadline_budget=args.deadline_budget,
    )
    monitor = default_serving_monitor(
        engine.registry,
        telemetry=engine.runtime.telemetry,
        config=config,
        retune_hook=retune_hook,
    )
    engine.monitor = monitor

    rng = np.random.default_rng(args.seed)
    requests = _build_requests(args, rng)
    if args.force_skew:
        requests = _force_skew(engine, requests, rng)
    tracer = Tracer()
    with use_tracer(tracer):
        report = run_trace(engine, requests)
    health = monitor.health()
    print(
        f"monitored {args.requests} requests over {report.steps} steps: "
        f"trace={args.trace} router={args.router} dispatch={args.dispatch} "
        f"slots={args.slots}"
    )
    print()
    print(render_dashboard(monitor, prefixes=("serving_", "routing_")))
    if args.metrics_out:
        path = write_metrics_json(args.metrics_out, engine.registry)
        print(f"wrote metrics snapshot: {path}")
    if args.dashboard_out:
        path = Path(args.dashboard_out)
        path.write_text(
            render_dashboard(
                monitor, markdown=True, prefixes=("serving_", "routing_")
            )
        )
        print(f"wrote dashboard: {path}")
    if args.trace_out:
        path = write_chrome_trace(args.trace_out, tracer, monitor=monitor)
        print(f"wrote Perfetto trace: {path} (open at https://ui.perfetto.dev)")
    print(f"\nexit code {health.exit_code} ({health.status})")
    return health.exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("configs", help="Table 3 model configurations").set_defaults(fn=_cmd_configs)
    sub.add_parser("fig4", help="redundancy rate vs EP size").set_defaults(fn=_cmd_fig4)
    sub.add_parser("table4", help="per-layer activation memory").set_defaults(fn=_cmd_table4)
    sub.add_parser("fig13", help="SSMB memory saving vs TP").set_defaults(fn=_cmd_fig13)
    fig9 = sub.add_parser("fig9", help="trainability and throughput sweep")
    fig9.add_argument("--quick", action="store_true", help="only the Small model")
    fig9.set_defaults(fn=_cmd_fig9)
    tune = sub.add_parser("tune", help="auto-tune a parallel plan for a cluster")
    tune.add_argument("--model", default="small", help="paper config name (Table 3)")
    tune.add_argument(
        "--system", choices=("frontier", "dgx"), default="frontier", help="cluster kind"
    )
    tune.add_argument("--nodes", type=int, default=16, help="number of nodes")
    tune.add_argument(
        "--token-budget", type=int, default=None, help="tokens per optimizer step"
    )
    tune.add_argument(
        "--global-batch", type=int, default=1024,
        help="sequences per step (used when --token-budget is omitted)",
    )
    tune.add_argument("--top", type=int, default=10, help="ranked plans to print")
    tune.add_argument(
        "--calibrate", action="store_true",
        help="fold measured micro-benchmark constants from benchmarks/results/ in",
    )
    tune.set_defaults(fn=_cmd_tune)
    train = sub.add_parser(
        "train", help="tiny ZeRO-sharded training run; memory + overlap report"
    )
    train.add_argument(
        "--zero-stage", type=int, choices=(0, 1, 2), default=2,
        help="ZeRO stage: 0 = DP baseline, 1 = sharded optimizer, 2 = + sharded grads",
    )
    train.add_argument("--dp", type=int, default=4, help="data-parallel replicas")
    train.add_argument("--steps", type=int, default=3, help="optimizer steps")
    train.add_argument(
        "--bucket-kb", type=int, default=32, help="gradient bucket size in KiB"
    )
    train.add_argument("--seed", type=int, default=0, help="model + data seed")
    train.set_defaults(fn=_cmd_train)
    obs = sub.add_parser(
        "obs", help="record one traced routing run; summarize / export it"
    )
    obs.add_argument("--router", default="softmax-topk", help="router policy name")
    obs.add_argument(
        "--dispatch", choices=("flat", "rbd", "hier"), default="flat",
        help="dispatch strategy to trace",
    )
    obs.add_argument("--ranks", type=int, default=8, help="EP group size")
    obs.add_argument("--top-k", type=int, default=2, help="experts per token")
    obs.add_argument("--tokens", type=int, default=64, help="tokens per rank per step")
    obs.add_argument("--steps", type=int, default=4, help="steps to record")
    obs.add_argument("--skew", type=float, default=1.0, help="Zipf skew of the batches")
    obs.add_argument("--seed", type=int, default=0, help="recording seed")
    obs.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Perfetto-loadable Chrome trace JSON here",
    )
    obs.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics registry snapshot JSON here",
    )
    obs.set_defaults(fn=_cmd_obs)
    serve = sub.add_parser(
        "serve", help="continuous-batching serving over a synthetic trace"
    )
    serve.add_argument("--router", default="softmax-topk", help="router policy name")
    serve.add_argument(
        "--dispatch", choices=("flat", "rbd", "hier"), default="flat",
        help="dispatch strategy to serve through",
    )
    serve.add_argument("--slots", type=int, default=8, help="serving slots (EP ranks)")
    serve.add_argument("--top-k", type=int, default=2, help="experts per token")
    serve.add_argument("--hidden", type=int, default=32, help="hidden size")
    serve.add_argument("--requests", type=int, default=32, help="requests in the trace")
    serve.add_argument(
        "--trace", choices=("poisson", "bursty"), default="poisson",
        help="arrival process",
    )
    serve.add_argument(
        "--rate", type=float, default=1.0, help="Poisson arrivals per engine step"
    )
    serve.add_argument(
        "--burst-size", type=int, default=8, help="requests per burst (bursty trace)"
    )
    serve.add_argument(
        "--gap-steps", type=int, default=16, help="steps between bursts (bursty trace)"
    )
    serve.add_argument(
        "--max-prompt", type=int, default=8, help="max prompt rows per request"
    )
    serve.add_argument(
        "--max-tokens", type=int, default=12, help="max decode tokens per request"
    )
    serve.add_argument(
        "--deadline", type=int, default=None, help="per-request SLO deadline in steps"
    )
    serve.add_argument(
        "--admission", choices=("fcfs", "static", "memory-budget"), default="fcfs",
        help="admission policy",
    )
    serve.add_argument(
        "--compare", action="store_true",
        help="also run the static fixed-batch baseline and print the speedup",
    )
    serve.add_argument("--seed", type=int, default=0, help="trace + engine seed")
    serve.add_argument(
        "--monitor", action="store_true",
        help="attach the online monitor and print its dashboard after the run",
    )
    serve.set_defaults(fn=_cmd_serve)
    monitor = sub.add_parser(
        "monitor",
        help="serve a trace with online SLO/drift monitoring; exit code = health",
    )
    monitor.add_argument("--router", default="softmax-topk", help="router policy name")
    monitor.add_argument(
        "--dispatch", choices=("flat", "rbd", "hier"), default="flat",
        help="dispatch strategy to serve through",
    )
    monitor.add_argument("--slots", type=int, default=8, help="serving slots (EP ranks)")
    monitor.add_argument("--top-k", type=int, default=2, help="experts per token")
    monitor.add_argument("--hidden", type=int, default=32, help="hidden size")
    monitor.add_argument("--requests", type=int, default=32, help="requests in the trace")
    monitor.add_argument(
        "--trace", choices=("poisson", "bursty"), default="poisson",
        help="arrival process",
    )
    monitor.add_argument(
        "--rate", type=float, default=1.0, help="Poisson arrivals per engine step"
    )
    monitor.add_argument(
        "--burst-size", type=int, default=8, help="requests per burst (bursty trace)"
    )
    monitor.add_argument(
        "--gap-steps", type=int, default=16, help="steps between bursts (bursty trace)"
    )
    monitor.add_argument(
        "--max-prompt", type=int, default=8, help="max prompt rows per request"
    )
    monitor.add_argument(
        "--max-tokens", type=int, default=12, help="max decode tokens per request"
    )
    monitor.add_argument(
        "--deadline", type=int, default=None, help="per-request SLO deadline in steps"
    )
    monitor.add_argument(
        "--capacity-factor", type=float, default=None,
        help="per-expert capacity factor (None = unbounded, no drops)",
    )
    monitor.add_argument("--seed", type=int, default=0, help="trace + engine seed")
    monitor.add_argument(
        "--warmup", type=int, default=16,
        help="calibration steps before drift detectors may fire",
    )
    monitor.add_argument(
        "--latency-slo", type=float, default=None,
        help="SLO bound on the windowed latency p99 (steps)",
    )
    monitor.add_argument(
        "--ttft-slo", type=float, default=None,
        help="SLO bound on the windowed TTFT p99 (steps)",
    )
    monitor.add_argument(
        "--deadline-budget", type=float, default=None,
        help="tolerated deadline-miss fraction for the burn-rate rule",
    )
    monitor.add_argument(
        "--force-skew", action="store_true",
        help="rebuild the trace tail as expert-aligned prompts to force drift",
    )
    monitor.add_argument(
        "--retune", action="store_true",
        help="attach the tuner-backed re-tune hook to critical drift alerts",
    )
    monitor.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Perfetto-loadable Chrome trace JSON here",
    )
    monitor.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics registry snapshot JSON here",
    )
    monitor.add_argument(
        "--dashboard-out", default=None, metavar="PATH",
        help="write the Markdown dashboard here",
    )
    monitor.set_defaults(fn=_cmd_monitor)
    args = parser.parse_args(argv)
    rc = args.fn(args)
    return rc if isinstance(rc, int) else 0


if __name__ == "__main__":
    raise SystemExit(main())
