"""Executable ZeRO data parallelism over the simulated cluster.

This package makes the memory model's ZeRO axis *real*: instead of only
dividing analytic byte counts by the DP size, it shards the functional
training stack itself —

* :mod:`repro.dist.bucket` — stable flat f64 gradient buckets
  (flatten/unflatten, padding, per-rank shard layout);
* :mod:`repro.dist.zero` — :class:`ZeroGradReducer`, which packs gradients
  via ``tensor.autograd`` backward hooks and reduce-scatters each bucket as
  it fills, with overlap accounting on the costed timeline;
* :mod:`repro.dist.sharded_optim` — :class:`ZeroOptimizer`, pairing the
  reducer with per-rank :class:`~repro.tensor.optim.ShardedAdam` partitions
  and allgathering updated parameter shards.

Training through :class:`ZeroOptimizer` at any stage is bit-identical to
the unsharded data-parallel baseline, and per-rank model-state bytes match
:func:`repro.xmoe.memory_model.zero_divisors` exactly — the property tests
in ``tests/test_dist_zero.py`` pin both down.
"""

from repro.dist.bucket import DEFAULT_BUCKET_BYTES, BucketSlot, BucketStore, GradBucket
from repro.dist.sharded_optim import ZeroOptimizer
from repro.dist.zero import BucketFlush, ReduceTimeline, ZeroGradReducer

__all__ = [
    "DEFAULT_BUCKET_BYTES",
    "BucketSlot",
    "BucketStore",
    "GradBucket",
    "BucketFlush",
    "ReduceTimeline",
    "ZeroGradReducer",
    "ZeroOptimizer",
]
