"""ZeRO-sharded Adam over simulated data-parallel replicas.

:class:`ZeroOptimizer` ties the pieces together for one data-parallel
group: a :class:`~repro.dist.zero.ZeroGradReducer` packs and reduces
gradients during backward, each rank's
:class:`~repro.tensor.optim.ShardedAdam` updates only the flat parameter
partition that rank owns, and an ``allgather`` per bucket broadcasts the
updated shards back into every replica's full parameters.  Stage semantics:

* **stage 0** — full gradients (bucketed allreduce) and full optimizer
  state on every rank; no parameter allgather is needed because every rank
  computes the identical full update.
* **stage 1** — full gradients, but optimizer state and the update are
  partitioned: rank ``r`` updates the ``r``-th slice of each bucket and the
  group allgathers the slices.
* **stage 2** — gradients are reduce-scattered too, so a rank only ever
  holds its gradient shard (plus the transient fill bucket).

Every path performs the same elementwise arithmetic in the same order, so
all three stages produce parameters — and therefore loss trajectories —
bit-identical to an unsharded data-parallel baseline that averages
gradients and applies plain :class:`~repro.tensor.optim.Adam`.

Per-rank model-state bytes (f64 params, f64 gradients, 2x f64 Adam state)
are charged to each rank's :class:`~repro.cluster.device.SimDevice` under
``zero.param_state`` / ``zero.grad_state`` / ``zero.optim_state`` tags, and
:meth:`ZeroOptimizer.predicted_state_bytes` reproduces those numbers from
:func:`repro.xmoe.memory_model.zero_divisors` — the same divisors the
analytic memory model and the tuner use — so tests assert measured peaks
against the model's prediction exactly.
"""

from __future__ import annotations

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.config.parallel_config import ZeroStage
from repro.dist.bucket import DEFAULT_BUCKET_BYTES
from repro.dist.zero import ZeroGradReducer
from repro.obs import tracer as obs
from repro.tensor.autograd import Tensor
from repro.tensor.optim import ShardedAdam
from repro.xmoe.memory_model import zero_divisors


class ZeroOptimizer:
    """Sharded data-parallel Adam driven by the bucketed gradient reducer."""

    def __init__(
        self,
        replica_params: list[list[Tensor]],
        group: ProcessGroup,
        *,
        stage: ZeroStage = ZeroStage.GRADIENTS,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.95),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        charge_memory: bool = True,
    ):
        self.group = group
        self.stage = ZeroStage(stage)
        self.reducer = ZeroGradReducer(
            replica_params,
            group,
            stage=self.stage,
            bucket_bytes=bucket_bytes,
            charge_memory=charge_memory,
        )
        store = self.reducer.store
        if self.stage >= ZeroStage.OPTIMIZER:
            shard_numels = [b.shard_numel for b in store.buckets]
        else:
            shard_numels = [b.padded_numel for b in store.buckets]
        self.optimizers = [
            ShardedAdam(
                shard_numels, lr=lr, betas=betas, eps=eps, weight_decay=weight_decay
            )
            for _ in range(group.size)
        ]
        self._replica_params = [list(params) for params in replica_params]
        self._flat_params = [b.flat_buffer() for b in store.buckets]
        self._steps = 0

        if charge_memory:
            for r in range(group.size):
                device = group.world.devices[group.ranks[r]]
                device.alloc(
                    "zero.param_state",
                    sum(p.nbytes for p in self._replica_params[r]),
                )
                device.alloc("zero.optim_state", self.optimizers[r].state_bytes)

    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear parameter gradients and reset the reducer for a new step."""
        for params in self._replica_params:
            for p in params:
                p.grad = None
        self.reducer.begin_step()

    def _pack_flat_params(self) -> None:
        """Refresh the flat parameter buffers from replica 0's tensors."""
        store = self.reducer.store
        for bucket_index, bucket in enumerate(store.buckets):
            flat = self._flat_params[bucket_index]
            for slot in bucket.slots:
                p = self._replica_params[0][slot.param_index]
                flat[slot.offset : slot.offset + slot.numel] = p.data.reshape(-1)

    def _scatter_params(self, rank: int, full_flats: list[np.ndarray]) -> None:
        """Write full flat parameter buffers back into one replica's tensors."""
        store = self.reducer.store
        for bucket_index in range(store.num_buckets):
            for index, arr in store.unflatten(bucket_index, full_flats[bucket_index]):
                np.copyto(self._replica_params[rank][index].data, arr)

    def step(self) -> None:
        """Flush gradients, update local shards, allgather parameters."""
        self._steps += 1
        with obs.span("zero.step", "zero", stage=int(self.stage), step=self._steps):
            self.reducer.flush()
            self._pack_flat_params()
            store = self.reducer.store
            size = self.group.size
            if self.stage >= ZeroStage.OPTIMIZER:
                updated: list[list[np.ndarray]] = []
                for r in range(size):
                    param_shards = [
                        self._flat_params[b.bucket_id][
                            r * b.shard_numel : (r + 1) * b.shard_numel
                        ].copy()
                        for b in store.buckets
                    ]
                    self.optimizers[r].step_shards(
                        param_shards, self.reducer.grad_shards(r)
                    )
                    updated.append(param_shards)
                for bucket_index in range(store.num_buckets):
                    gathered = self.group.allgather(
                        [updated[r][bucket_index] for r in range(size)]
                    )
                    for r in range(size):
                        for index, arr in store.unflatten(bucket_index, gathered[r]):
                            np.copyto(
                                self._replica_params[r][index].data, arr
                            )
                    self._flat_params[bucket_index] = gathered[0]
            else:
                for r in range(size):
                    full = [flat.copy() for flat in self._flat_params]
                    self.optimizers[r].step_shards(full, self.reducer.grad_shards(r))
                    self._scatter_params(r, full)

    # ------------------------------------------------------------------
    def predicted_state_bytes(self) -> dict[str, float]:
        """Model-state bytes per rank predicted by the analytic divisors.

        Uses :func:`repro.xmoe.memory_model.zero_divisors` — the same
        arithmetic :class:`~repro.xmoe.memory_model.MoEMemoryModel` and the
        tuner's pruning apply — with this engine's f64 byte constants:
        8 B/param, 8 B/grad (padded), 16 B/param of Adam state (padded).
        """
        store = self.reducer.store
        p_div, g_div, o_div = zero_divisors(self.stage, self.group.size)
        return {
            "param": store.numel_total * 8 / p_div,
            "grad": store.padded_numel_total * 8 / g_div,
            "optimizer": 2 * store.padded_numel_total * 8 / o_div,
        }

    def measured_state_bytes(self, rank: int = 0) -> dict[str, float]:
        """Model-state bytes one rank actually holds (real array sizes)."""
        return {
            "param": float(sum(p.nbytes for p in self._replica_params[rank])),
            "grad": float(self.reducer.grad_state_bytes),
            "optimizer": float(self.optimizers[rank].state_bytes),
        }
