"""Flat gradient buckets for ZeRO's bucketed reduce-scatter.

Parameters are packed — in registration order, which every data-parallel
rank shares — into fixed-size flat float64 buckets, the ColossalAI
``low_level`` ZeRO bookkeeping pattern (``gradient_store``/``bucket_store``):
each parameter owns one contiguous slot inside exactly one bucket, buckets
are padded up to a multiple of the group size so a ``reduce_scatter`` can
split them evenly, and rank ``r``'s shard of a bucket is the ``r``-th of
those equal slices.  The stable slot layout is what makes flatten/unflatten
loss-free and lets every rank agree on which elements it owns without any
extra communication.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default bucket capacity: 256 KiB of f64 gradients (32k elements) — small
#: enough that several buckets fill during one backward (overlap), large
#: enough to amortize per-collective latency.
DEFAULT_BUCKET_BYTES = 256 << 10

_F64_BYTES = 8


@dataclass(frozen=True)
class BucketSlot:
    """Where one parameter's gradient lives inside its bucket."""

    #: index into the reducer's (registration-ordered) parameter list.
    param_index: int
    #: element offset of this parameter's first value in the flat bucket.
    offset: int
    #: number of f64 elements the parameter occupies.
    numel: int


class GradBucket:
    """One fixed-size flat bucket holding a run of parameter gradients."""

    def __init__(self, bucket_id: int, slots: list[BucketSlot], group_size: int):
        if not slots:
            raise ValueError("a bucket must hold at least one parameter")
        self.bucket_id = bucket_id
        self.slots = tuple(slots)
        #: live gradient elements (excluding padding).
        self.numel = sum(s.numel for s in self.slots)
        #: elements after padding to a multiple of the group size, so the
        #: flat buffer's first dimension splits evenly in reduce_scatter.
        self.padded_numel = -(-self.numel // group_size) * group_size
        #: elements of the per-rank shard of this bucket.
        self.shard_numel = self.padded_numel // group_size

    @property
    def padded_nbytes(self) -> int:
        """Bytes of the flat f64 buffer backing this bucket."""
        return self.padded_numel * _F64_BYTES

    def flat_buffer(self) -> np.ndarray:
        """A zeroed flat f64 buffer sized for this bucket (with padding)."""
        return np.zeros(self.padded_numel, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GradBucket(id={self.bucket_id}, params={len(self.slots)}, "
            f"numel={self.numel}, padded={self.padded_numel})"
        )


class BucketStore:
    """Partition a parameter list into stable fixed-size flat buckets.

    Packing is greedy in registration order: a parameter joins the current
    bucket unless that would exceed ``bucket_bytes``, in which case the
    bucket is sealed and a new one starts.  A parameter larger than
    ``bucket_bytes`` gets a bucket of its own rather than being split —
    slots never straddle bucket boundaries.
    """

    def __init__(
        self,
        shapes: list[tuple[int, ...]],
        group_size: int,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
    ):
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if bucket_bytes < 1:
            raise ValueError("bucket_bytes must be >= 1")
        if not shapes:
            raise ValueError("cannot bucket an empty parameter list")
        self.group_size = group_size
        self.bucket_bytes = int(bucket_bytes)
        max_elems = max(1, self.bucket_bytes // _F64_BYTES)

        self.buckets: list[GradBucket] = []
        #: per parameter index: ``(bucket_index, BucketSlot)``.
        self.slot_of: list[tuple[int, BucketSlot]] = []
        self.shapes = [tuple(int(d) for d in s) for s in shapes]

        pending: list[BucketSlot] = []
        offset = 0
        for index, shape in enumerate(self.shapes):
            numel = int(np.prod(shape)) if shape else 1
            if pending and offset + numel > max_elems:
                self.buckets.append(GradBucket(len(self.buckets), pending, group_size))
                pending, offset = [], 0
            slot = BucketSlot(param_index=index, offset=offset, numel=numel)
            pending.append(slot)
            self.slot_of.append((len(self.buckets), slot))
            offset += numel
        self.buckets.append(GradBucket(len(self.buckets), pending, group_size))

    @property
    def num_buckets(self) -> int:
        """Number of buckets the parameters were packed into."""
        return len(self.buckets)

    @property
    def numel_total(self) -> int:
        """Total live gradient elements across all buckets."""
        return sum(b.numel for b in self.buckets)

    @property
    def padded_numel_total(self) -> int:
        """Total flat-buffer elements including per-bucket padding."""
        return sum(b.padded_numel for b in self.buckets)

    @property
    def max_bucket_nbytes(self) -> int:
        """Bytes of the largest flat bucket (the transient fill buffer bound)."""
        return max(b.padded_nbytes for b in self.buckets)

    def write(self, buffers: list[np.ndarray], param_index: int, grad: np.ndarray) -> int:
        """Copy one parameter's gradient into its flat slot.

        ``buffers`` is the per-bucket flat buffer list of one rank.
        Returns the bucket index written to.
        """
        bucket_index, slot = self.slot_of[param_index]
        flat = np.asarray(grad, dtype=np.float64).reshape(-1)
        if flat.size != slot.numel:
            raise ValueError(
                f"param {param_index}: gradient has {flat.size} elements, "
                f"slot holds {slot.numel}"
            )
        buffers[bucket_index][slot.offset : slot.offset + slot.numel] = flat
        return bucket_index

    def unflatten(self, bucket_index: int, flat: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """Slice one bucket's flat buffer back into per-parameter arrays.

        Returns ``(param_index, array)`` pairs with each array reshaped to
        the parameter's original shape (padding is dropped).
        """
        bucket = self.buckets[bucket_index]
        if flat.size != bucket.padded_numel:
            raise ValueError(
                f"bucket {bucket_index}: flat buffer has {flat.size} elements, "
                f"expected {bucket.padded_numel}"
            )
        out = []
        for slot in bucket.slots:
            piece = flat[slot.offset : slot.offset + slot.numel]
            out.append((slot.param_index, piece.reshape(self.shapes[slot.param_index])))
        return out
