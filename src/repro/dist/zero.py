"""ZeRO gradient reduction: hook-driven, bucketed, overlap-accounted.

:class:`ZeroGradReducer` registers per-parameter gradient hooks on every
data-parallel replica's ``tensor.autograd`` parameters.  As backward runs,
each finalized gradient is packed into its flat f64 bucket
(:mod:`repro.dist.bucket`); the moment a bucket is full on every rank, the
reducer issues the collective through :class:`~repro.comm.ProcessGroup`
*from inside the backward pass* — ``reduce_scatter`` at ZeRO-2 (each rank
keeps only its shard), ``allreduce`` at stages 0/1 (gradients stay full,
only optimizer state is later sharded).

Because the simulator executes every rank's backward in one Python process,
"inside backward" concretely means inside the last replica's backward hook
— the point where the bucket's data first exists on all ranks.  The
overlap itself lives on the *costed* timeline: each flush records how far
through backward it became ready (its fill fraction) and what the network
model charged for it, and :meth:`ZeroGradReducer.timeline` schedules those
flushes on a single serial comm channel via
:func:`repro.comm.cost_model.overlap_schedule`, yielding the exposed comm
time and a measurable overlap ratio that the ``zero_micro`` benchmark and
the tuner's calibration consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.cost_model import overlap_schedule
from repro.comm.process_group import ProcessGroup
from repro.config.parallel_config import ZeroStage
from repro.dist.bucket import DEFAULT_BUCKET_BYTES, BucketStore
from repro.obs import tracer as obs
from repro.tensor.autograd import GradHookHandle, Tensor


@dataclass(frozen=True)
class BucketFlush:
    """Record of one bucket's reduction during (or right after) backward."""

    bucket_id: int
    #: fraction of all live gradient elements already produced by backward
    #: when this bucket became ready — its earliest possible start time.
    fill_fraction: float
    #: bytes the collective moved (from the recorded :class:`CommEvent`).
    nbytes: float
    #: modeled seconds the network charged for the collective.
    comm_seconds: float
    #: True when the reduction fired from a gradient hook; False when it was
    #: issued by :meth:`ZeroGradReducer.flush` after backward (stragglers —
    #: e.g. buckets holding experts no token routed to this step).
    during_backward: bool


@dataclass(frozen=True)
class ReduceTimeline:
    """Costed-timeline verdict for one backward's bucket reductions."""

    backward_seconds: float
    #: per-flush collective start/end times on the step clock.
    starts: tuple[float, ...]
    ends: tuple[float, ...]
    #: summed modeled collective seconds.
    comm_seconds: float

    @property
    def total_seconds(self) -> float:
        """Step time: backward plus whatever comm ran past its end."""
        last_end = self.ends[-1] if self.ends else 0.0
        return max(self.backward_seconds, last_end)

    @property
    def exposed_seconds(self) -> float:
        """Comm time not hidden under backward compute."""
        return self.total_seconds - self.backward_seconds

    @property
    def overlap_ratio(self) -> float:
        """Fraction of collective time hidden under backward (0..1)."""
        if self.comm_seconds <= 0.0:
            return 1.0
        return 1.0 - self.exposed_seconds / self.comm_seconds


class ZeroGradReducer:
    """Bucketed gradient reducer over a simulated data-parallel group.

    Parameters
    ----------
    replica_params:
        ``replica_params[r]`` is rank ``r``'s parameter list; all replicas
        must declare identical shapes in identical order (the shared
        registration order that makes bucket layouts agree rank-to-rank).
    group:
        The data-parallel :class:`~repro.comm.ProcessGroup`; replica index
        ``r`` is group-local rank ``r``.
    stage:
        ZeRO stage.  Stages 0/1 keep full gradients (bucketed
        ``allreduce``); stage 2 shards them (bucketed ``reduce_scatter``).
        Stage 3 (parameter sharding) is not implemented.
    bucket_bytes:
        Flat-bucket capacity; 1 byte degenerates to one bucket per
        parameter — the naive baseline the micro-benchmark prices against.
    average:
        Divide reduced gradients by the group size (data-parallel mean).
        The division happens *after* the sum so results stay bit-identical
        to ``np.stack(grads).sum(axis=0) / R`` — the unsharded oracle.
    charge_memory:
        Charge each rank's persistent gradient state ("zero.grad_state") to
        its :class:`~repro.cluster.device.SimDevice`: full padded buckets
        at stages 0/1, only the local shards at stage 2.
    """

    def __init__(
        self,
        replica_params: list[list[Tensor]],
        group: ProcessGroup,
        *,
        stage: ZeroStage = ZeroStage.GRADIENTS,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        average: bool = True,
        charge_memory: bool = True,
    ):
        stage = ZeroStage(stage)
        if stage >= ZeroStage.PARAMS:
            raise ValueError("ZeRO-3 (parameter sharding) is not implemented")
        if len(replica_params) != group.size:
            raise ValueError(
                f"got {len(replica_params)} replicas for a group of {group.size}"
            )
        shapes = [tuple(p.shape) for p in replica_params[0]]
        for r, params in enumerate(replica_params):
            if [tuple(p.shape) for p in params] != shapes:
                raise ValueError(f"replica {r} declares different parameter shapes")
            for p in params:
                if not p.requires_grad:
                    raise ValueError("all reduced parameters must require grad")
        self.group = group
        self.stage = stage
        self.average = average
        self.store = BucketStore(shapes, group.size, bucket_bytes)
        self._replica_params = [list(params) for params in replica_params]

        size = group.size
        self._buffers = [
            [b.flat_buffer() for b in self.store.buckets] for _ in range(size)
        ]
        self._shards = (
            [
                [np.zeros(b.shard_numel) for b in self.store.buckets]
                for _ in range(size)
            ]
            if stage >= ZeroStage.GRADIENTS
            else None
        )
        self._filled = [[0] * self.store.num_buckets for _ in range(size)]
        self._ranks_full = [0] * self.store.num_buckets
        self._reduced = [False] * self.store.num_buckets
        self._elems_seen = [0] * size
        self.flushes: list[BucketFlush] = []

        self._handles: list[GradHookHandle] = []
        for r, params in enumerate(self._replica_params):
            for i, p in enumerate(params):
                self._handles.append(p.register_grad_hook(self._make_hook(r, i)))

        if charge_memory:
            for r in range(size):
                device = group.world.devices[group.ranks[r]]
                device.alloc("zero.grad_state", self.grad_state_bytes)

    # ------------------------------------------------------------------
    @property
    def grad_state_bytes(self) -> int:
        """Persistent per-rank gradient bytes at this stage (f64)."""
        if self.stage >= ZeroStage.GRADIENTS:
            return sum(b.shard_numel * 8 for b in self.store.buckets)
        return self.store.padded_numel_total * 8

    def _make_hook(self, rank: int, param_index: int):
        """A gradient hook binding one (rank, parameter) pair to its slot."""

        def hook(grad: np.ndarray) -> None:
            """Pack this parameter's finalized gradient into its bucket."""
            self.ingest(rank, param_index, grad)

        return hook

    def ingest(self, rank: int, param_index: int, grad: np.ndarray) -> None:
        """Record one parameter's gradient; reduce its bucket if now full.

        This is the hook target, exposed directly so drivers without a real
        backward pass (the micro-benchmark) can feed gradients in backward
        order themselves.
        """
        bucket_index, slot = self.store.slot_of[param_index]
        if self._reduced[bucket_index]:
            raise RuntimeError(
                f"bucket {bucket_index} was already reduced this step — "
                "call begin_step() before the next backward"
            )
        self.store.write(self._buffers[rank], param_index, grad)
        self._elems_seen[rank] += slot.numel
        self._filled[rank][bucket_index] += 1
        bucket = self.store.buckets[bucket_index]
        if self._filled[rank][bucket_index] == len(bucket.slots):
            self._ranks_full[bucket_index] += 1
            if self._ranks_full[bucket_index] == self.group.size:
                self._reduce_bucket(bucket_index, during_backward=True)

    def _reduce_bucket(self, bucket_index: int, *, during_backward: bool) -> None:
        """Issue the collective for one filled bucket and record its cost."""
        bucket = self.store.buckets[bucket_index]
        size = self.group.size
        # The slowest rank gates readiness.  In the real parallel execution
        # every replica runs backward simultaneously, so the bucket is ready
        # when the *least-progressed* rank has produced its slots; in this
        # sequential simulation that is exactly the rank whose ingest
        # triggered the reduce (earlier replicas have already finished).
        fill_fraction = min(self._elems_seen) / self.store.numel_total
        sends = [self._buffers[r][bucket_index] for r in range(size)]
        with obs.span(
            "zero.bucket_reduce",
            "zero",
            bucket=bucket_index,
            params=len(bucket.slots),
            nbytes=bucket.padded_nbytes,
            fill_fraction=fill_fraction,
            stage=int(self.stage),
        ):
            if self.stage >= ZeroStage.GRADIENTS:
                shards = self.group.reduce_scatter(sends)
                for r in range(size):
                    reduced = shards[r] if not self.average else shards[r] / size
                    self._shards[r][bucket_index][:] = reduced
            else:
                full = self.group.allreduce(sends)
                for r in range(size):
                    reduced = full[r] if not self.average else full[r] / size
                    self._buffers[r][bucket_index][:] = reduced
        event = self.group.world.stats.events[-1]
        self._reduced[bucket_index] = True
        self.flushes.append(
            BucketFlush(
                bucket_id=bucket_index,
                fill_fraction=fill_fraction,
                nbytes=event.total_bytes,
                comm_seconds=event.seconds,
                during_backward=during_backward,
            )
        )
        registry = self.group.world.stats.metrics
        if registry is not None:
            stage = str(int(self.stage))
            registry.counter("zero_bucket_reduces", "stage").labels(stage=stage).inc()
            registry.counter("zero_grad_bytes", "stage").labels(stage=stage).inc(
                event.total_bytes
            )

    def flush(self) -> None:
        """Reduce every straggler bucket after backward completes.

        Parameters that produced no gradient this step (experts no token
        was routed to) leave zeros in their slots — the zero-fill DDP
        semantics — so their buckets still reduce and the optimizer applies
        a zero-gradient update, keeping all ranks bit-identical.
        """
        for bucket_index in range(self.store.num_buckets):
            if not self._reduced[bucket_index]:
                self._reduce_bucket(bucket_index, during_backward=False)

    def begin_step(self) -> None:
        """Reset fill state for the next backward (buffers re-zeroed)."""
        size = self.group.size
        for r in range(size):
            for buf in self._buffers[r]:
                buf.fill(0.0)
        self._filled = [[0] * self.store.num_buckets for _ in range(size)]
        self._ranks_full = [0] * self.store.num_buckets
        self._reduced = [False] * self.store.num_buckets
        self._elems_seen = [0] * size
        self.flushes = []

    def detach(self) -> None:
        """Remove every registered gradient hook."""
        for handle in self._handles:
            handle.remove()
        self._handles = []

    # ------------------------------------------------------------------
    def grad_shards(self, rank: int) -> list[np.ndarray]:
        """The reduced gradient partition rank ``rank`` owns, per bucket.

        Stage 2 returns the rank's reduce-scattered shards; stages 0/1
        return the rank's slice of (stage 1) or the entire (stage 0) full
        reduced buffer.  Call after :meth:`flush`.
        """
        if not all(self._reduced):
            raise RuntimeError("gradients not reduced yet — call flush() first")
        if self.stage >= ZeroStage.GRADIENTS:
            return list(self._shards[rank])
        if self.stage >= ZeroStage.OPTIMIZER:
            return [
                self._buffers[rank][b.bucket_id][
                    rank * b.shard_numel : (rank + 1) * b.shard_numel
                ]
                for b in self.store.buckets
            ]
        return list(self._buffers[rank])

    def timeline(
        self, backward_seconds: float, *, overlap: bool = True
    ) -> ReduceTimeline:
        """Price this step's flushes on the costed timeline.

        With ``overlap=True`` each collective may start as soon as its
        bucket filled (``fill_fraction * backward_seconds`` into the step);
        with ``overlap=False`` every collective waits for the full backward
        — the naive schedule.  Flushes issued by :meth:`flush` are only
        ready once backward ends in either mode.
        """
        backward_seconds = float(backward_seconds)
        ready = [
            f.fill_fraction * backward_seconds
            if (overlap and f.during_backward)
            else backward_seconds
            for f in self.flushes
        ]
        comm = [f.comm_seconds for f in self.flushes]
        starts, ends = overlap_schedule(ready, comm)
        return ReduceTimeline(
            backward_seconds=backward_seconds,
            starts=tuple(starts),
            ends=tuple(ends),
            comm_seconds=float(sum(comm)),
        )
