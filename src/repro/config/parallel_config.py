"""Parallelism configuration: how the model is laid out across the cluster.

The paper combines

* **DP** — ZeRO-style data parallelism (stages 0–3 modelled),
* **EP** — expert parallelism: experts of an MoE layer spread over EP ranks,
* **TP** — tensor-slicing parallelism for the dense (non-MoE) blocks,
* **SSMB** — X-MoE's sequence-sharded MoE blocks: inside the MoE block the
  sequence is sharded across the TP replicas rather than duplicated,
* a **placement order** (EP-first vs DP-first, Appendix C.1) that decides
  whether different experts or replicas of the same expert are co-located
  within a node.

:class:`ParallelConfig` validates the factorization ``dp * tp == world`` and
``ep <= world`` and exposes the derived group sizes used everywhere else.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ZeroStage(enum.IntEnum):
    """ZeRO optimizer-state partitioning stage."""

    NONE = 0
    OPTIMIZER = 1  # optimizer states partitioned across DP ranks
    GRADIENTS = 2  # + gradients partitioned
    PARAMS = 3  # + parameters partitioned


#: recognized values of the MoE dispatch axis.
DISPATCH_KINDS = ("flat", "rbd", "hier")


class PlacementOrder(enum.Enum):
    """Which parallel dimension is laid out contiguously within a node.

    ``EP_FIRST`` places consecutive experts on consecutive ranks (all experts
    of one replica co-located, DP replicas across nodes); ``DP_FIRST`` places
    replicas of the same expert on consecutive ranks (DP traffic stays
    intra-node, EP alltoall crosses nodes).  Appendix C.1 of the paper argues
    DP-first wins for large MoEs on hierarchical networks like Frontier.
    """

    EP_FIRST = "ep-first"
    DP_FIRST = "dp-first"


@dataclass(frozen=True)
class ParallelConfig:
    """A complete hybrid-parallel layout.

    Attributes
    ----------
    world_size:
        Total number of (simulated) GPUs.
    ep_size:
        Expert-parallel group size for MoE blocks.
    tp_size:
        Tensor-parallel group size for dense blocks.
    zero_stage:
        ZeRO stage applied to the data-parallel dimension.
    use_ssmb:
        Enable X-MoE's sequence-sharded MoE blocks.
    use_rbd:
        Enable redundancy-bypassing dispatch (legacy boolean; equivalent to
        ``dispatch="rbd"``).
    dispatch:
        The MoE dispatch strategy: ``"flat"`` (single uneven all-to-all),
        ``"rbd"`` (two-stage redundancy-bypassing dispatch), or ``"hier"``
        (two-hop hierarchical dispatch through per-node leaders).  ``None``
        (the default) defers to the legacy ``use_rbd`` boolean; an explicit
        value that contradicts ``use_rbd=True`` raises rather than silently
        preferring one axis.  See :attr:`dispatch_kind`.
    placement:
        EP-first or DP-first rank placement.
    micro_batch_size:
        Per-rank micro batch size (sequences).
    global_batch_size:
        Global batch size (sequences).
    activation_checkpointing:
        Recompute activations in the backward pass instead of storing them.
    router_seed:
        Seed for run-time routing randomness: the router policy's
        exploration noise and the RBD planner's pilot selection both derive
        per-step generators from it, so a configuration is reproducible
        end to end.
    """

    world_size: int
    ep_size: int = 1
    tp_size: int = 1
    zero_stage: ZeroStage = ZeroStage.OPTIMIZER
    use_ssmb: bool = False
    use_rbd: bool = False
    dispatch: str | None = None
    placement: PlacementOrder = PlacementOrder.DP_FIRST
    micro_batch_size: int = 1
    global_batch_size: int = 1024
    activation_checkpointing: bool = False
    router_seed: int = 0

    def __post_init__(self) -> None:
        if self.world_size <= 0:
            raise ValueError("world_size must be positive")
        if self.tp_size <= 0 or self.world_size % self.tp_size:
            raise ValueError(
                f"tp_size={self.tp_size} must divide world_size={self.world_size}"
            )
        if self.ep_size <= 0 or self.world_size % self.ep_size:
            raise ValueError(
                f"ep_size={self.ep_size} must divide world_size={self.world_size}"
            )
        if self.micro_batch_size <= 0:
            raise ValueError("micro_batch_size must be positive")
        if self.global_batch_size <= 0:
            raise ValueError("global_batch_size must be positive")
        if self.global_batch_size % self.dp_size:
            raise ValueError(
                f"global_batch_size={self.global_batch_size} must be divisible by "
                f"dp_size={self.dp_size}"
            )
        if self.dispatch is not None and self.dispatch not in DISPATCH_KINDS:
            raise ValueError(
                f"dispatch={self.dispatch!r} must be one of {DISPATCH_KINDS}"
            )
        if self.use_rbd and self.dispatch not in (None, "rbd"):
            raise ValueError(
                f"use_rbd=True conflicts with dispatch={self.dispatch!r}; "
                "drop the legacy flag or pick dispatch='rbd'"
            )

    # ------------------------------------------------------------------
    @property
    def dispatch_kind(self) -> str:
        """The effective dispatch strategy, reconciling ``use_rbd``.

        An explicit ``dispatch`` value wins (a contradiction with
        ``use_rbd=True`` has already been rejected at construction);
        otherwise the legacy ``use_rbd=True`` still selects ``"rbd"`` so
        existing configurations keep their behaviour.
        """
        if self.dispatch is not None:
            return self.dispatch
        return "rbd" if self.use_rbd else "flat"

    @property
    def dp_size(self) -> int:
        """Data-parallel group size for the dense blocks (= world / TP)."""
        return self.world_size // self.tp_size

    @property
    def edp_size(self) -> int:
        """Expert-data-parallel size: replicas of each expert (= world / EP)."""
        return self.world_size // self.ep_size

    @property
    def moe_sequence_shard_degree(self) -> int:
        """How many ways the MoE-block sequence is sharded under SSMB."""
        return self.tp_size if self.use_ssmb else 1

    @property
    def gradient_accumulation_steps(self) -> int:
        """Micro-batches accumulated per optimizer step."""
        per_step = self.dp_size * self.micro_batch_size
        return max(1, -(-self.global_batch_size // per_step))

    def experts_per_rank(self, num_experts: int) -> int:
        """Number of experts hosted by each EP rank."""
        if num_experts % self.ep_size:
            raise ValueError(
                f"num_experts={num_experts} not divisible by ep_size={self.ep_size}"
            )
        return num_experts // self.ep_size

    def with_overrides(self, **overrides) -> "ParallelConfig":
        """Return a copy with the given fields replaced."""
        import dataclasses

        return dataclasses.replace(self, **overrides)

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"world={self.world_size} dp={self.dp_size} ep={self.ep_size} "
            f"tp={self.tp_size} zero={int(self.zero_stage)} "
            f"ssmb={'on' if self.use_ssmb else 'off'} "
            f"dispatch={self.dispatch_kind} "
            f"placement={self.placement.value}"
        )
