"""MoE model architecture configuration.

The central object is :class:`MoEModelConfig`, which describes a
transformer language model whose FFN blocks are replaced by MoE layers in
the DeepSeek / expert-specialized style: many fine-grained experts with a
large top-k routing value.

Parameter counting follows the conventions of the paper (Section 3.2 and
Table 3): an MoE layer's expert parameters are ``2 * E * H * H_FFN`` (two
projection matrices per expert, gate/up fused into the ``2``), attention
contributes ``4 * H^2`` per layer, and the router contributes ``E * H``.
The goal is not bit-exact parity with DeepSeek checkpoints but producing
total / activated parameter counts that match Table 3 closely (10.1B,
55.2B, 201.4B, 545.4B total; 1.3B, 5.2B, 11.5B, 28.7B activated).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MoEModelConfig:
    """Architecture of an expert-specialized MoE transformer.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"small"``).
    seq_length:
        Training sequence length ``S``.
    hidden_size:
        Model (residual stream) dimension ``H``.
    ffn_hidden_size:
        Per-expert FFN intermediate dimension ``H_FFN``.
    num_experts:
        Number of routed experts per MoE layer ``E``.
    top_k:
        Number of experts activated per token ``k``.
    num_layers:
        Number of transformer layers; every layer holds one MoE block.
    num_shared_experts:
        DeepSeek-style always-active shared experts (0 disables them).
    vocab_size:
        Vocabulary size used for the embedding / LM head.
    capacity_factor:
        Expert capacity factor ``c`` used by capacity-based dispatchers.
    dtype_bytes:
        Bytes per element of activations / parameters (2 for bf16/fp16).
    moe_layer_frequency:
        Place an MoE block every ``moe_layer_frequency`` layers; remaining
        layers use a dense FFN of width ``dense_ffn_hidden_size``.
    dense_ffn_hidden_size:
        Width of dense FFN layers (defaults to ``4 * hidden_size``).
    router:
        Router-policy spec: the name of a registered
        :mod:`repro.routing.policies` policy (``"softmax-topk"``,
        ``"switch-top1"``, ``"noisy-topk"``, ``"expert-choice"``).
        ``repro.xmoe.trainer.policy_for_config`` instantiates it.
    """

    name: str
    seq_length: int
    hidden_size: int
    ffn_hidden_size: int
    num_experts: int
    top_k: int
    num_layers: int
    num_shared_experts: int = 0
    vocab_size: int = 51200
    capacity_factor: float = 1.25
    dtype_bytes: int = 2
    moe_layer_frequency: int = 1
    dense_ffn_hidden_size: int | None = None
    router: str = "softmax-topk"

    def __post_init__(self) -> None:
        if self.seq_length <= 0:
            raise ValueError(f"seq_length must be positive, got {self.seq_length}")
        if self.hidden_size <= 0:
            raise ValueError(f"hidden_size must be positive, got {self.hidden_size}")
        if self.ffn_hidden_size <= 0:
            raise ValueError(
                f"ffn_hidden_size must be positive, got {self.ffn_hidden_size}"
            )
        if self.num_experts <= 0:
            raise ValueError(f"num_experts must be positive, got {self.num_experts}")
        if not (1 <= self.top_k <= self.num_experts):
            raise ValueError(
                f"top_k must be in [1, num_experts={self.num_experts}], got {self.top_k}"
            )
        if self.num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {self.num_layers}")
        if self.capacity_factor <= 0:
            raise ValueError(
                f"capacity_factor must be positive, got {self.capacity_factor}"
            )
        if self.moe_layer_frequency <= 0:
            raise ValueError(
                "moe_layer_frequency must be positive, got "
                f"{self.moe_layer_frequency}"
            )
        # Imported lazily: repro.routing pulls in the comm/cluster stack,
        # which itself reads repro.config.hardware at import time.
        from repro.routing.policies import ROUTER_POLICY_NAMES

        if self.router not in ROUTER_POLICY_NAMES:
            raise ValueError(
                f"unknown router policy {self.router!r}; "
                f"available: {sorted(ROUTER_POLICY_NAMES)}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def dense_ffn_width(self) -> int:
        """Width of non-MoE FFN layers."""
        if self.dense_ffn_hidden_size is not None:
            return self.dense_ffn_hidden_size
        return 4 * self.hidden_size

    @property
    def num_moe_layers(self) -> int:
        """Number of layers that contain an MoE block."""
        return self.num_layers // self.moe_layer_frequency

    @property
    def num_dense_layers(self) -> int:
        """Number of layers with a dense FFN instead of an MoE block."""
        return self.num_layers - self.num_moe_layers

    # -- per-layer parameter counts ------------------------------------
    def expert_params_per_expert(self) -> int:
        """Parameters in a single expert FFN (two projections)."""
        return 2 * self.hidden_size * self.ffn_hidden_size

    def moe_layer_expert_params(self) -> int:
        """Routed + shared expert parameters in one MoE layer."""
        routed = self.num_experts * self.expert_params_per_expert()
        shared = self.num_shared_experts * self.expert_params_per_expert()
        return routed + shared

    def router_params(self) -> int:
        """Router (gating) projection parameters in one MoE layer."""
        return self.hidden_size * self.num_experts

    def attention_params(self) -> int:
        """Attention parameters per layer (Q, K, V, O projections)."""
        return 4 * self.hidden_size * self.hidden_size

    def dense_ffn_params(self) -> int:
        """Dense FFN parameters per non-MoE layer."""
        return 2 * self.hidden_size * self.dense_ffn_width

    def embedding_params(self) -> int:
        """Token embedding parameters (tied LM head assumed)."""
        return self.vocab_size * self.hidden_size

    # -- model-level parameter counts ----------------------------------
    def total_params(self) -> int:
        """Total parameter count of the model."""
        per_moe_layer = (
            self.attention_params()
            + self.moe_layer_expert_params()
            + self.router_params()
        )
        per_dense_layer = self.attention_params() + self.dense_ffn_params()
        return (
            self.num_moe_layers * per_moe_layer
            + self.num_dense_layers * per_dense_layer
            + self.embedding_params()
        )

    def activated_params(self) -> int:
        """Parameters touched by a single token in the forward pass."""
        activated_experts = self.top_k + self.num_shared_experts
        per_moe_layer = (
            self.attention_params()
            + activated_experts * self.expert_params_per_expert()
            + self.router_params()
        )
        per_dense_layer = self.attention_params() + self.dense_ffn_params()
        return (
            self.num_moe_layers * per_moe_layer
            + self.num_dense_layers * per_dense_layer
            + self.embedding_params()
        )

    def expert_capacity(self, tokens_per_rank: int, ep_size: int) -> int:
        """Per-expert token capacity ``C`` used by padded dispatchers.

        ``C = ceil(capacity_factor * k * tokens / E)`` following GShard,
        where ``tokens`` is the local token count of a rank and experts are
        spread over ``ep_size`` ranks.
        """
        if tokens_per_rank <= 0:
            raise ValueError("tokens_per_rank must be positive")
        if ep_size <= 0:
            raise ValueError("ep_size must be positive")
        avg_tokens_per_expert = tokens_per_rank * self.top_k / self.num_experts
        return max(1, math.ceil(self.capacity_factor * avg_tokens_per_expert))

    # -- FLOPs accounting -----------------------------------------------
    def flops_per_token_layer(self) -> float:
        """Forward FLOPs per token in one MoE transformer layer."""
        attn = 8 * self.hidden_size * self.hidden_size
        # Attention score/value matmuls scale with sequence length.
        attn += 4 * self.hidden_size * self.seq_length
        router = 2 * self.hidden_size * self.num_experts
        experts = (
            (self.top_k + self.num_shared_experts)
            * 2
            * self.expert_params_per_expert()
        )
        return attn + router + experts

    def flops_per_token(self) -> float:
        """Forward FLOPs per token for the full model."""
        per_moe = self.flops_per_token_layer()
        per_dense = (
            8 * self.hidden_size * self.hidden_size
            + 4 * self.hidden_size * self.seq_length
            + 2 * self.dense_ffn_params()
        )
        return self.num_moe_layers * per_moe + self.num_dense_layers * per_dense

    def train_flops_per_token(self) -> float:
        """Training FLOPs per token (forward + backward ≈ 3x forward)."""
        return 3.0 * self.flops_per_token()

    # -- utilities -------------------------------------------------------
    def scaled(self, **overrides) -> "MoEModelConfig":
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **overrides)

    @property
    def fine_grained_factor(self) -> int:
        """The paper's ``m``: how many fine-grained experts replace one
        conventional expert.  Approximated as ``top_k`` for specialized
        models and 1 for small-k models."""
        return max(1, self.top_k // 2) if self.top_k > 2 else 1

    def summary(self) -> dict:
        """A dictionary of the headline numbers for reporting."""
        return {
            "name": self.name,
            "seq_length": self.seq_length,
            "hidden_size": self.hidden_size,
            "ffn_hidden_size": self.ffn_hidden_size,
            "num_experts": self.num_experts,
            "top_k": self.top_k,
            "num_layers": self.num_layers,
            "router": self.router,
            "total_params_B": self.total_params() / 1e9,
            "activated_params_B": self.activated_params() / 1e9,
        }


# ----------------------------------------------------------------------
# Paper configurations (Table 3)
# ----------------------------------------------------------------------
def small_config() -> MoEModelConfig:
    """The 10.1B "Small" model of Table 3."""
    return MoEModelConfig(
        name="small",
        seq_length=2048,
        hidden_size=2048,
        ffn_hidden_size=1408,
        num_experts=64,
        top_k=6,
        num_layers=28,
    )


def medium_config() -> MoEModelConfig:
    """The 55.2B "Medium" model of Table 3."""
    return MoEModelConfig(
        name="medium",
        seq_length=4096,
        hidden_size=5120,
        ffn_hidden_size=1536,
        num_experts=128,
        top_k=6,
        num_layers=28,
    )


def large_config() -> MoEModelConfig:
    """The 201.4B "Large" model of Table 3."""
    return MoEModelConfig(
        name="large",
        seq_length=4096,
        hidden_size=7168,
        ffn_hidden_size=2048,
        num_experts=256,
        top_k=8,
        num_layers=28,
    )


def super_config() -> MoEModelConfig:
    """The 545.4B "Super" model of Table 3."""
    return MoEModelConfig(
        name="super",
        seq_length=4096,
        hidden_size=7168,
        ffn_hidden_size=2560,
        num_experts=256,
        top_k=8,
        num_layers=61,
    )


def small_sr_config() -> MoEModelConfig:
    """Table 5's "Small-SR": Small with the sequence length halved to 1024."""
    return small_config().scaled(name="small-sr", seq_length=1024)


def small_lr_config() -> MoEModelConfig:
    """Table 5's "Small-LR": Small with the layer count halved to 14."""
    return small_config().scaled(name="small-lr", num_layers=14)


PAPER_CONFIGS = {
    "small": small_config,
    "medium": medium_config,
    "large": large_config,
    "super": super_config,
    "small-sr": small_sr_config,
    "small-lr": small_lr_config,
}


def paper_config(name: str) -> MoEModelConfig:
    """Look up one of the paper's evaluation configurations by name."""
    key = name.lower()
    if key not in PAPER_CONFIGS:
        raise KeyError(
            f"unknown paper config {name!r}; available: {sorted(PAPER_CONFIGS)}"
        )
    return PAPER_CONFIGS[key]()
