"""Size-equivalent conventional vs. expert-specialized MoE pairs (Table 1).

Section 3.2 of the paper compares a conventional MoE ``M_conv`` (few large
experts, small top-k) with an expert-specialized MoE ``M_spec`` (``m``-times
more experts, each ``m``-times narrower, top-k scaled by ``m``), keeping the
total parameter count and the per-token activated parameter count identical.
This module builds such pairs from a dense "base" model description, so the
memory-bottleneck-shift analysis (Fig. 3, Table 2) can be reproduced for any
base model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.model_config import MoEModelConfig


@dataclass(frozen=True)
class EquivalentPair:
    """A size-equivalent (conventional, specialized) MoE pair."""

    base_hidden: int
    base_ffn_hidden: int
    num_base_experts: int
    fine_grained_factor: int
    conventional: MoEModelConfig
    specialized: MoEModelConfig

    def __post_init__(self) -> None:
        conv_total = self.conventional.moe_layer_expert_params()
        spec_total = self.specialized.moe_layer_expert_params()
        if conv_total != spec_total:
            raise ValueError(
                "equivalence violated: conventional and specialized expert "
                f"parameter counts differ ({conv_total} vs {spec_total})"
            )


def make_equivalent_pair(
    base_hidden: int,
    base_ffn_hidden: int,
    num_base_experts: int,
    fine_grained_factor: int,
    *,
    seq_length: int = 2048,
    num_layers: int = 1,
    conventional_top_k: int = 1,
    vocab_size: int = 51200,
) -> EquivalentPair:
    """Construct the ``(M_conv, M_spec)`` pair of Table 1.

    Parameters
    ----------
    base_hidden:
        Model dimension ``h`` of the dense base model.
    base_ffn_hidden:
        FFN intermediate dimension ``h'`` of the dense base model.
    num_base_experts:
        ``e``: number of (large) experts in the conventional MoE.
    fine_grained_factor:
        ``m``: how many fine-grained experts replace one conventional
        expert.  The specialized model has ``e*m`` experts of width
        ``h'/m`` and routes each token to ``m * conventional_top_k``
        experts.
    conventional_top_k:
        Top-k of the conventional MoE (1 in Table 1).

    Both models keep total expert parameters at ``2*e*h'*h`` and per-token
    activated expert parameters at ``2*h'*h*conventional_top_k``.
    """
    if fine_grained_factor <= 0:
        raise ValueError("fine_grained_factor must be positive")
    if base_ffn_hidden % fine_grained_factor:
        raise ValueError(
            f"base_ffn_hidden={base_ffn_hidden} must be divisible by "
            f"fine_grained_factor={fine_grained_factor}"
        )

    conventional = MoEModelConfig(
        name=f"m_conv_e{num_base_experts}",
        seq_length=seq_length,
        hidden_size=base_hidden,
        ffn_hidden_size=base_ffn_hidden,
        num_experts=num_base_experts,
        top_k=conventional_top_k,
        num_layers=num_layers,
        vocab_size=vocab_size,
    )
    specialized = MoEModelConfig(
        name=f"m_spec_e{num_base_experts}_m{fine_grained_factor}",
        seq_length=seq_length,
        hidden_size=base_hidden,
        ffn_hidden_size=base_ffn_hidden // fine_grained_factor,
        num_experts=num_base_experts * fine_grained_factor,
        top_k=conventional_top_k * fine_grained_factor,
        num_layers=num_layers,
        vocab_size=vocab_size,
    )
    return EquivalentPair(
        base_hidden=base_hidden,
        base_ffn_hidden=base_ffn_hidden,
        num_base_experts=num_base_experts,
        fine_grained_factor=fine_grained_factor,
        conventional=conventional,
        specialized=specialized,
    )
