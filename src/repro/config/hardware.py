"""Hardware specifications for the simulated HPC platforms.

Two platforms from the paper are modelled:

* **Frontier** — each node holds 4 AMD MI250X packages; each package exposes
  two Graphics Compute Dies (GCDs), each treated as one effective GPU with
  64 GB HBM and 191.5 TFLOPs peak (half of the 383 TFLOPs dual-GCD figure).
  The two GCDs of one MI250X are linked by Infinity Fabric at 200 GB/s,
  GCDs on different packages of the same node at 50–100 GB/s, and nodes are
  connected by four Slingshot NICs at 25 GB/s each.  Racks hold up to 256
  GCDs; traffic crossing racks on the Dragonfly network is subject to
  congestion.
* **DGX-A100** — 8 × A100-40GB per node, NVLink 300 GB/s intra-node,
  InfiniBand 100 GB/s inter-node (the "balanced network" the paper says
  existing systems assume: intra/inter ratio ≈ 3x).

The numbers here drive both the memory model (HBM capacity, OOM detection)
and the communication cost model (per-tier bandwidth and latency).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """A single accelerator device.

    Attributes
    ----------
    name: marketing name of the device.
    memory_bytes: usable HBM capacity in bytes.
    peak_tflops: peak dense throughput in TFLOP/s for the training dtype.
    memory_bandwidth_gbps: HBM bandwidth in GB/s (used by the kernel model).
    achievable_fraction: fraction of peak realistically achievable by dense
        GEMMs on this platform (MI250X sustains a lower fraction than A100
        for the irregular MoE workload, which is part of why baselines see
        <10% of peak).
    """

    name: str
    memory_bytes: int
    peak_tflops: float
    memory_bandwidth_gbps: float
    achievable_fraction: float = 0.5

    @property
    def memory_gb(self) -> float:
        return self.memory_bytes / 2**30


@dataclass(frozen=True)
class NodeSpec:
    """A cluster node: a set of identical GPUs plus intra-node links."""

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    # Bandwidths in GB/s
    intra_package_bw_gbps: float  # e.g. two GCDs of one MI250X
    intra_node_bw_gbps: float  # GPUs on different packages, same node
    inter_node_bw_gbps: float  # NIC bandwidth per GPU-pair path
    # Latencies in microseconds
    intra_node_latency_us: float = 5.0
    inter_node_latency_us: float = 20.0
    gpus_per_package: int = 2

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")
        if self.gpus_per_package <= 0 or self.gpus_per_node % self.gpus_per_package:
            raise ValueError(
                "gpus_per_package must divide gpus_per_node "
                f"({self.gpus_per_package} vs {self.gpus_per_node})"
            )


@dataclass(frozen=True)
class SystemSpec:
    """A full system: many nodes grouped into racks/groups.

    ``gpus_per_rack`` bounds the number of GPUs reachable without crossing
    the Dragonfly global links; the paper observes that collectives spanning
    more than one rack (>256 GCDs on Frontier) suffer congestion outliers.
    """

    name: str
    node: NodeSpec
    num_nodes: int
    gpus_per_rack: int
    cross_rack_bw_gbps: float
    cross_rack_latency_us: float = 40.0
    congestion_outlier_prob: float = 0.05
    congestion_outlier_factor: float = 10.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.gpus_per_rack % self.node.gpus_per_node:
            raise ValueError("gpus_per_rack must be a multiple of gpus_per_node")

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.node.gpus_per_node

    @property
    def nodes_per_rack(self) -> int:
        return self.gpus_per_rack // self.node.gpus_per_node


# ----------------------------------------------------------------------
# Device presets
# ----------------------------------------------------------------------
MI250X_GCD = GPUSpec(
    name="MI250X-GCD",
    memory_bytes=64 * 2**30,
    peak_tflops=191.5,
    memory_bandwidth_gbps=1600.0,
    achievable_fraction=0.33,
)

A100_40GB = GPUSpec(
    name="A100-40GB",
    memory_bytes=40 * 2**30,
    peak_tflops=312.0,
    memory_bandwidth_gbps=1555.0,
    achievable_fraction=0.45,
)


def frontier_node() -> NodeSpec:
    """One Frontier node: 4 MI250X = 8 GCDs."""
    return NodeSpec(
        name="frontier-node",
        gpu=MI250X_GCD,
        gpus_per_node=8,
        gpus_per_package=2,
        intra_package_bw_gbps=200.0,
        intra_node_bw_gbps=75.0,
        inter_node_bw_gbps=25.0,
        intra_node_latency_us=5.0,
        inter_node_latency_us=20.0,
    )


def dgx_a100_node() -> NodeSpec:
    """One DGX-A100 node: 8 × A100-40GB with NVLink."""
    return NodeSpec(
        name="dgx-a100",
        gpu=A100_40GB,
        gpus_per_node=8,
        gpus_per_package=8,
        intra_package_bw_gbps=300.0,
        intra_node_bw_gbps=300.0,
        inter_node_bw_gbps=100.0,
        intra_node_latency_us=3.0,
        inter_node_latency_us=10.0,
    )


def frontier_system(num_nodes: int = 128) -> SystemSpec:
    """A Frontier partition of ``num_nodes`` nodes (default 128 = 1024 GCDs)."""
    return SystemSpec(
        name="frontier",
        node=frontier_node(),
        num_nodes=num_nodes,
        gpus_per_rack=256,
        cross_rack_bw_gbps=12.5,
        cross_rack_latency_us=40.0,
        congestion_outlier_prob=0.05,
        congestion_outlier_factor=10.0,
    )


def dgx_cluster(num_nodes: int = 1) -> SystemSpec:
    """A small DGX-A100 cluster (default a single 8-GPU node, as in Table 5)."""
    return SystemSpec(
        name="dgx-a100-cluster",
        node=dgx_a100_node(),
        num_nodes=num_nodes,
        gpus_per_rack=max(8 * num_nodes, 8),
        cross_rack_bw_gbps=100.0,
        cross_rack_latency_us=15.0,
        congestion_outlier_prob=0.0,
        congestion_outlier_factor=1.0,
    )
