"""Configuration objects for models, parallelism, and hardware.

This package holds the declarative description of everything the rest of the
library consumes:

* :mod:`repro.config.model_config` — MoE model architectures, including the
  four evaluation configurations from Table 3 of the paper (Small, Medium,
  Large, Super) and the reduced "Small-SR" / "Small-LR" variants of Table 5.
* :mod:`repro.config.parallel_config` — how a model is laid out across the
  cluster (DP / EP / TP sizes, ZeRO stage, SSMB, placement order).
* :mod:`repro.config.hardware` — GPU, node, and system specifications
  (Frontier MI250X GCDs, NVIDIA A100 nodes) with link bandwidths.
* :mod:`repro.config.equivalence` — size-equivalent conventional vs.
  expert-specialized MoE construction (Table 1 of the paper).
"""

from repro.config.model_config import (
    MoEModelConfig,
    small_config,
    medium_config,
    large_config,
    super_config,
    small_sr_config,
    small_lr_config,
    PAPER_CONFIGS,
    paper_config,
)
from repro.config.parallel_config import (
    ParallelConfig,
    ZeroStage,
    PlacementOrder,
)
from repro.config.hardware import (
    GPUSpec,
    NodeSpec,
    SystemSpec,
    MI250X_GCD,
    A100_40GB,
    frontier_node,
    dgx_a100_node,
    frontier_system,
    dgx_cluster,
)
from repro.config.equivalence import (
    EquivalentPair,
    make_equivalent_pair,
)

__all__ = [
    "MoEModelConfig",
    "small_config",
    "medium_config",
    "large_config",
    "super_config",
    "small_sr_config",
    "small_lr_config",
    "PAPER_CONFIGS",
    "paper_config",
    "ParallelConfig",
    "ZeroStage",
    "PlacementOrder",
    "GPUSpec",
    "NodeSpec",
    "SystemSpec",
    "MI250X_GCD",
    "A100_40GB",
    "frontier_node",
    "dgx_a100_node",
    "frontier_system",
    "dgx_cluster",
    "EquivalentPair",
    "make_equivalent_pair",
]
