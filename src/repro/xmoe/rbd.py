"""Hierarchical Redundancy-Bypassing Dispatch (RBD), §4.2.

With large top-k routing, a token frequently selects several experts that
live on the *same* destination node.  A flat all-to-all sends one copy of the
token's activation per selected expert, so the slow inter-node links carry
duplicated data.  RBD splits dispatch into stages:

* **Stage 0** — on the source rank, group each token's assignments by
  destination node; in every (token, node) group pick one *pilot* at random
  and mark the rest *local replicas*.
* **Stage 1** — only pilot tokens travel across nodes (uneven all-to-all to
  the rank hosting the pilot's expert).
* **Stage 2** — on the destination node, replica rows are reconstructed by
  copying their pilot's data and exchanged over the fast intra-node links to
  the ranks hosting the replicas' experts.

The combine stage reverses the process: replica outputs are scaled by their
combine weights and merged onto their pilot's row intra-node, then a single
row per (token, node) group returns inter-node, and the source adds it into
the output sequence.  Because the plan engine folds the partial sums in the
same order on both paths, this produces **bit-identical** results to the
flat dispatch while moving only the non-redundant rows across nodes.

Since the vectorized routing-plan refactor, :class:`RBDDispatcher` is a thin
compatibility wrapper over :class:`repro.routing.PlanDispatcher` driven by a
:class:`repro.routing.RBDPlanner`: all bookkeeping (send orders, splits,
arrival tables, ``searchsorted``-based pilot-slot indices, merge orders) is
compiled once per step into a :class:`repro.routing.DispatchPlan` of flat
numpy arrays, and every data-carrying exchange still goes through the
:class:`~repro.comm.process_group.ProcessGroup` collectives so the recorded
communication statistics reflect the inter- vs intra-node byte split.

Determinism: pilot selection derives a fresh generator from ``(seed, step)``
on every dispatch, so dispatching the same PFTs twice with the same ``step``
(or the default ``step=None``) picks the same pilots.  Pass an incrementing
``step`` to decorrelate pilot choices across training steps while keeping
each step reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.routing.engine import PlanDispatcher
from repro.routing.plan import DispatchPlan
from repro.routing.planner import RBDPlan, RBDPlanner

__all__ = [
    "RBDDispatcher",
    "RBDPlan",
    "expected_redundancy_rate",
    "redundancy_rate",
]


# ----------------------------------------------------------------------
# Redundancy analysis (Fig. 4)
# ----------------------------------------------------------------------
def redundancy_rate(
    top_experts: np.ndarray,
    expert_to_rank: np.ndarray,
    rank_to_node: np.ndarray,
) -> float:
    """Fraction of dispatched (token, expert) assignments that are redundant.

    An assignment is redundant when another expert selected by the same
    token lives on the same destination node — only one copy of the token
    actually needs to cross the network to that node.
    """
    top_experts = np.asarray(top_experts, dtype=np.int64)
    expert_to_rank = np.asarray(expert_to_rank, dtype=np.int64)
    rank_to_node = np.asarray(rank_to_node, dtype=np.int64)
    if top_experts.ndim != 2:
        raise ValueError("top_experts must be [S, k]")
    s, k = top_experts.shape
    if s == 0 or k == 0:
        return 0.0
    dest_nodes = rank_to_node[expert_to_rank[top_experts]]  # [S, k]
    # Distinct-count per row via a sort along the k axis: a node is counted
    # once per run of equal values, so distinct = 1 + (#value changes).
    sorted_nodes = np.sort(dest_nodes, axis=1)
    distinct = 1 + (np.diff(sorted_nodes, axis=1) != 0).sum(axis=1)
    total = s * k
    pilots = int(distinct.sum())
    return 1.0 - pilots / total


def expected_redundancy_rate(num_experts: int, top_k: int, num_nodes: int) -> float:
    """Analytic redundancy rate under uniform routing (Fig. 4's curve).

    A token picks ``k`` distinct experts uniformly at random out of ``E``
    experts spread evenly over ``num_nodes`` nodes.  The expected number of
    distinct destination nodes is ``N * (1 - C(E - E/N, k) / C(E, k))``
    (hypergeometric "at least one expert on this node"), and the redundancy
    rate is ``1 - E[distinct nodes] / k``: every selected expert beyond the
    first on a node is a redundant copy over the inter-node links.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if not (1 <= top_k <= num_experts):
        raise ValueError("top_k must be in [1, num_experts]")
    if num_experts % num_nodes:
        raise ValueError("num_experts must be divisible by num_nodes")
    if num_nodes == 1:
        return 1.0 - 1.0 / top_k
    experts_per_node = num_experts // num_nodes
    # P(no selected expert on a given node) = C(E - E/N, k) / C(E, k)
    p_miss = 1.0
    for i in range(top_k):
        p_miss *= (num_experts - experts_per_node - i) / (num_experts - i)
    expected_nodes = num_nodes * (1.0 - p_miss)
    expected_nodes = min(expected_nodes, float(top_k))
    return 1.0 - expected_nodes / top_k


class RBDDispatcher:
    """Redundancy-bypassing dispatch over an expert-parallel process group.

    Compatibility wrapper: the routing decisions live in
    :class:`repro.routing.RBDPlanner` and the data movement in
    :class:`repro.routing.PlanDispatcher`; this class preserves the
    historical ``dispatch / run_experts / combine`` call surface and the
    ``last_stats`` payload.
    """

    def __init__(
        self,
        group: ProcessGroup,
        num_experts: int,
        expert_to_rank: np.ndarray | None = None,
        *,
        seed: int = 0,
    ):
        self.planner = RBDPlanner(group, num_experts, expert_to_rank, seed=seed)
        self.engine = PlanDispatcher(group, self.planner)
        self.group = group
        self.num_experts = num_experts
        self.expert_to_rank = self.planner.expert_to_rank
        self.rank_to_node = self.planner.rank_to_node
        self.seed = seed
        self.last_stats: dict[str, float] | None = None
        self.last_plan: DispatchPlan | None = None

    def experts_on_rank(self, local_rank: int) -> np.ndarray:
        """Global ids of the experts hosted by a group-local rank."""
        return self.planner.experts_on_rank(local_rank)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, per_rank_pfts: list, *, step: int | None = None) -> DispatchPlan:
        """Build the full routing plan — exactly what :meth:`dispatch` uses.

        Deterministic: the generator is re-derived from ``(seed, step)`` on
        every call, so the same PFTs always yield the same plan.
        """
        return self.engine.plan(per_rank_pfts, step=step)

    def stage0_plan(self, pft, *, step: int | None = None) -> RBDPlan:
        """Standalone stage-0 pilot selection for one source rank's PFT.

        Deterministic per call (the generator is re-derived from
        ``(seed, step)``), and drawn from the same distribution as
        :meth:`dispatch` — one uniformly random pilot per (token, node)
        group — but as an independent sample: the full planner permutes
        the global assignment table across all ranks, so the specific
        pilot rows it picks are not reproducible from a single PFT.  Use
        :meth:`plan` (or the plan returned by :meth:`dispatch`) when the
        actual dispatched pilot set matters.
        """
        return self.planner.stage0(pft, self.planner._rng(step))

    # ------------------------------------------------------------------
    # Dispatch / experts / combine (the Dispatcher protocol)
    # ------------------------------------------------------------------
    def dispatch(
        self,
        per_rank_tokens: list[np.ndarray],
        per_rank_pfts: list,
        *,
        plan: DispatchPlan | None = None,
        step: int | None = None,
    ) -> tuple[list[np.ndarray], DispatchPlan]:
        """Route tokens to expert-hosting ranks with redundancy bypassing."""
        expert_inputs, plan = self.engine.dispatch(
            per_rank_tokens, per_rank_pfts, plan=plan, step=step
        )
        hidden = per_rank_tokens[0].shape[1]
        row_bytes = hidden * per_rank_tokens[0].dtype.itemsize
        self.last_stats = plan.stats_dict(row_bytes)
        self.last_plan = plan
        return expert_inputs, plan

    def run_experts(
        self,
        expert_inputs: list[np.ndarray],
        plan: DispatchPlan,
        per_rank_w1: list[np.ndarray],
        per_rank_w2: list[np.ndarray],
        *,
        activation: str = "silu",
    ) -> list[np.ndarray]:
        """Run each rank's local experts over its grouped input buffer."""
        return self.engine.run_experts(
            expert_inputs, plan, per_rank_w1, per_rank_w2, activation=activation
        )

    def combine(
        self,
        per_rank_expert_outputs: list[np.ndarray],
        plan: DispatchPlan,
        num_tokens_per_rank: list[int],
    ) -> list[np.ndarray]:
        """Weighted combine with the reverse of the two-stage dispatch."""
        return self.engine.combine(per_rank_expert_outputs, plan, num_tokens_per_rank)
