"""Hierarchical Redundancy-Bypassing Dispatch (RBD), §4.2.

With large top-k routing, a token frequently selects several experts that
live on the *same* destination node.  A flat all-to-all sends one copy of the
token's activation per selected expert, so the slow inter-node links carry
duplicated data.  RBD splits dispatch into stages:

* **Stage 0** — on the source rank, group each token's assignments by
  destination node; in every (token, node) group pick one *pilot* at random
  and mark the rest *local replicas*.
* **Stage 1** — only pilot tokens travel across nodes (uneven all-to-all to
  the rank hosting the pilot's expert), together with lightweight replica
  metadata.
* **Stage 2** — on the destination node, replica rows are reconstructed by
  copying their pilot's data and exchanged over the fast intra-node links to
  the ranks hosting the replicas' experts.

The combine stage reverses the process: replica outputs are scaled by their
combine weights and merged onto their pilot's row intra-node, then a single
row per (token, node) group returns inter-node, and the source adds it into
the output sequence.  Because combine is a weighted sum over assignments,
this produces bit-identical results to the flat dispatch while moving only
the non-redundant rows across nodes.

The implementation routes every data-carrying exchange through the
:class:`~repro.comm.process_group.ProcessGroup` collectives so the recorded
communication statistics reflect the inter- vs intra-node byte split; the
(small) routing metadata is carried in Python state, which the paper
likewise treats as negligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.xmoe.kernels import gather_kernel, scatter_kernel, sequential_gemm
from repro.xmoe.pft import PFT


# ----------------------------------------------------------------------
# Redundancy analysis (Fig. 4)
# ----------------------------------------------------------------------
def redundancy_rate(
    top_experts: np.ndarray,
    expert_to_rank: np.ndarray,
    rank_to_node: np.ndarray,
) -> float:
    """Fraction of dispatched (token, expert) assignments that are redundant.

    An assignment is redundant when another expert selected by the same
    token lives on the same destination node — only one copy of the token
    actually needs to cross the network to that node.
    """
    top_experts = np.asarray(top_experts, dtype=np.int64)
    expert_to_rank = np.asarray(expert_to_rank, dtype=np.int64)
    rank_to_node = np.asarray(rank_to_node, dtype=np.int64)
    if top_experts.ndim != 2:
        raise ValueError("top_experts must be [S, k]")
    s, k = top_experts.shape
    if s == 0 or k == 0:
        return 0.0
    dest_nodes = rank_to_node[expert_to_rank[top_experts]]  # [S, k]
    distinct = np.array([np.unique(row).size for row in dest_nodes])
    total = s * k
    pilots = int(distinct.sum())
    return 1.0 - pilots / total


def expected_redundancy_rate(num_experts: int, top_k: int, num_nodes: int) -> float:
    """Analytic redundancy rate under uniform routing (Fig. 4's curve).

    A token picks ``k`` distinct experts uniformly at random out of ``E``
    experts spread evenly over ``num_nodes`` nodes.  The expected number of
    distinct destination nodes is ``N * (1 - C(E - E/N, k) / C(E, k))``
    (hypergeometric "at least one expert on this node"), and the redundancy
    rate is ``1 - E[distinct nodes] / k``: every selected expert beyond the
    first on a node is a redundant copy over the inter-node links.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if not (1 <= top_k <= num_experts):
        raise ValueError("top_k must be in [1, num_experts]")
    if num_experts % num_nodes:
        raise ValueError("num_experts must be divisible by num_nodes")
    if num_nodes == 1:
        return 1.0 - 1.0 / top_k
    experts_per_node = num_experts // num_nodes
    # P(no selected expert on a given node) = C(E - E/N, k) / C(E, k)
    p_miss = 1.0
    for i in range(top_k):
        p_miss *= (num_experts - experts_per_node - i) / (num_experts - i)
    expected_nodes = num_nodes * (1.0 - p_miss)
    expected_nodes = min(expected_nodes, float(top_k))
    return 1.0 - expected_nodes / top_k


@dataclass
class RBDPlan:
    """Per-source-rank stage-0 plan: which PFT rows are pilots."""

    pilot_mask: np.ndarray  # [B] bool
    pilot_of: np.ndarray  # [B] index (into PFT rows) of each row's pilot
    dest_rank: np.ndarray  # [B] destination group-local rank
    dest_node: np.ndarray  # [B] destination node id

    @property
    def num_pilots(self) -> int:
        return int(self.pilot_mask.sum())

    @property
    def num_replicas(self) -> int:
        return int((~self.pilot_mask).sum())

    @property
    def redundancy(self) -> float:
        total = self.pilot_mask.size
        return 0.0 if total == 0 else self.num_replicas / total


@dataclass
class _RBDState:
    """Everything needed to run experts and reverse the dispatch."""

    pfts: list[PFT]
    plans: list[RBDPlan]
    # Stage-1 bookkeeping (source side)
    s1_send_rows: list[np.ndarray]  # PFT row ids sent by each source, in send order
    s1_send_splits: list[np.ndarray]
    s1_recv_splits: list[np.ndarray]
    # Arrival metadata per destination rank, aligned with that rank's
    # (pilot ++ replica) arrival buffer before the by-expert sort.
    arrival_src: list[np.ndarray]
    arrival_row: list[np.ndarray]
    arrival_is_replica: list[np.ndarray]
    arrival_expert: list[np.ndarray]
    arrival_weight: list[np.ndarray]
    arrival_pilot_slot: list[np.ndarray]  # index into the rank's pilot arrivals
    sort_orders: list[np.ndarray]
    tokens_per_local_expert: list[np.ndarray]
    # Stage-2 bookkeeping (per destination node subgroups)
    node_groups: list[ProcessGroup]
    s2_send_splits: list[list[np.ndarray]]
    s2_recv_splits: list[list[np.ndarray]]


class RBDDispatcher:
    """Redundancy-bypassing dispatch over an expert-parallel process group."""

    def __init__(
        self,
        group: ProcessGroup,
        num_experts: int,
        expert_to_rank: np.ndarray | None = None,
        *,
        seed: int = 0,
    ):
        self.group = group
        self.num_experts = num_experts
        if expert_to_rank is None:
            if num_experts % group.size:
                raise ValueError(
                    f"num_experts={num_experts} not divisible by EP size {group.size}"
                )
            per_rank = num_experts // group.size
            expert_to_rank = np.repeat(np.arange(group.size), per_rank)
        self.expert_to_rank = np.asarray(expert_to_rank, dtype=np.int64)
        if self.expert_to_rank.size != num_experts:
            raise ValueError("expert_to_rank must have one entry per expert")
        topo = group.world.topology
        self.rank_to_node = np.array(
            [topo.node_of(g) for g in group.ranks], dtype=np.int64
        )
        self._rng = np.random.default_rng(seed)
        self.last_stats: dict[str, float] | None = None

    def experts_on_rank(self, local_rank: int) -> np.ndarray:
        """Global ids of the experts hosted by a group-local rank."""
        return np.flatnonzero(self.expert_to_rank == local_rank)

    # ------------------------------------------------------------------
    # Stage 0: pilot selection
    # ------------------------------------------------------------------
    def plan(self, pft: PFT) -> RBDPlan:
        """Select pilots and replicas for one source rank's PFT."""
        dest_rank = self.expert_to_rank[pft.expert_ids]
        dest_node = self.rank_to_node[dest_rank]
        b = pft.num_routed_tokens
        if b == 0:
            return RBDPlan(
                pilot_mask=np.zeros(0, dtype=bool),
                pilot_of=np.zeros(0, dtype=np.int64),
                dest_rank=dest_rank,
                dest_node=dest_node,
            )
        num_nodes = int(self.rank_to_node.max()) + 1
        keys = pft.token_ids * num_nodes + dest_node
        # Random pilot per (token, node) group: permute rows, then take the
        # first occurrence of each key in permuted order.
        perm = self._rng.permutation(b)
        uniq_keys, first_in_perm = np.unique(keys[perm], return_index=True)
        pilot_rows = perm[first_in_perm]
        pilot_mask = np.zeros(b, dtype=bool)
        pilot_mask[pilot_rows] = True
        pos = np.searchsorted(uniq_keys, keys)
        pilot_of = pilot_rows[pos]
        return RBDPlan(
            pilot_mask=pilot_mask,
            pilot_of=pilot_of,
            dest_rank=dest_rank,
            dest_node=dest_node,
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(
        self,
        per_rank_tokens: list[np.ndarray],
        per_rank_pfts: list[PFT],
    ) -> tuple[list[np.ndarray], _RBDState]:
        """Route tokens to expert-hosting ranks with redundancy bypassing."""
        size = self.group.size
        if len(per_rank_tokens) != size or len(per_rank_pfts) != size:
            raise ValueError("need one token buffer and one PFT per group rank")
        hidden = per_rank_tokens[0].shape[1]
        dtype = per_rank_tokens[0].dtype

        plans = [self.plan(pft) for pft in per_rank_pfts]

        # ---- Stage 1: pilots travel to their expert's rank --------------
        s1_send: list[np.ndarray] = []
        s1_send_rows: list[np.ndarray] = []
        s1_send_splits: list[np.ndarray] = []
        for r in range(size):
            pft, plan = per_rank_pfts[r], plans[r]
            gathered = gather_kernel(per_rank_tokens[r], pft.token_ids)
            pilot_rows = np.flatnonzero(plan.pilot_mask)
            pilot_dest = plan.dest_rank[pilot_rows]
            order = np.lexsort((pilot_rows, pilot_dest))
            rows_sorted = pilot_rows[order]
            s1_send.append(gathered[rows_sorted])
            s1_send_rows.append(rows_sorted)
            s1_send_splits.append(np.bincount(pilot_dest, minlength=size).astype(np.int64))

        s1_recv, s1_recv_splits = self.group.alltoallv(
            s1_send, s1_send_splits, op_name="rbd_s1_a2a"
        )

        # Per-destination metadata for arrived pilots, in arrival order.
        pilot_src: list[list[int]] = [[] for _ in range(size)]
        pilot_row: list[list[int]] = [[] for _ in range(size)]
        for r in range(size):
            offsets = np.concatenate([[0], np.cumsum(s1_send_splits[r])])
            for d in range(size):
                rows = s1_send_rows[r][offsets[d] : offsets[d + 1]]
                pilot_src[d].extend([r] * rows.size)
                pilot_row[d].extend(rows.tolist())
        pilot_src_arr = [np.array(v, dtype=np.int64) for v in pilot_src]
        pilot_row_arr = [np.array(v, dtype=np.int64) for v in pilot_row]

        # Index of each source pilot row in its destination's arrival buffer.
        pilot_arrival_slot: list[dict[tuple[int, int], int]] = []
        for d in range(size):
            slot_map = {
                (int(pilot_src_arr[d][i]), int(pilot_row_arr[d][i])): i
                for i in range(pilot_src_arr[d].size)
            }
            pilot_arrival_slot.append(slot_map)

        # ---- Stage 2: reconstruct replicas and exchange intra-node -------
        # For every replica row at source r, its pilot landed on rank
        # pr = dest_rank[pilot_of[row]]; the replica must reach rank
        # dr = dest_rank[row].  pr and dr share a node by construction.
        node_groups = self.group.node_local_subgroups()
        node_of_local = self.rank_to_node
        group_of_node: dict[int, ProcessGroup] = {}
        for ng in node_groups:
            node_id = self.group.world.topology.node_of(ng.ranks[0])
            group_of_node[node_id] = ng

        # Collect replica requests keyed by the rank holding the pilot data.
        # request: (pilot_slot_on_pr, dest_rank dr, src r, replica pft row)
        replica_requests: list[list[tuple[int, int, int, int]]] = [
            [] for _ in range(size)
        ]
        for r in range(size):
            plan = plans[r]
            replica_rows = np.flatnonzero(~plan.pilot_mask)
            for row in replica_rows:
                pilot = int(plan.pilot_of[row])
                pr = int(plan.dest_rank[pilot])
                dr = int(plan.dest_rank[row])
                slot = pilot_arrival_slot[pr][(r, pilot)]
                replica_requests[pr].append((slot, dr, r, int(row)))

        # Build per-node intra-node alltoallv sends from pilot-holding ranks.
        replica_arrival_src: list[list[int]] = [[] for _ in range(size)]
        replica_arrival_row: list[list[int]] = [[] for _ in range(size)]
        replica_arrival_data: list[list[np.ndarray]] = [[] for _ in range(size)]
        s2_send_splits: list[list[np.ndarray]] = []
        s2_recv_splits: list[list[np.ndarray]] = []
        for ng in node_groups:
            members = [self.group.local_rank_of(g) for g in ng.ranks]
            send_bufs: list[np.ndarray] = []
            splits: list[np.ndarray] = []
            send_meta: list[list[tuple[int, int]]] = []
            for member in members:
                reqs = replica_requests[member]
                # Order by destination rank (within the node subgroup).
                reqs_sorted = sorted(reqs, key=lambda t: (members.index(t[1]), t[0]))
                if reqs_sorted:
                    slots = np.array([t[0] for t in reqs_sorted], dtype=np.int64)
                    data = s1_recv[member][slots]
                else:
                    data = np.zeros((0, hidden), dtype=dtype)
                send_bufs.append(data)
                dest_local = np.array(
                    [members.index(t[1]) for t in reqs_sorted], dtype=np.int64
                )
                splits.append(
                    np.bincount(dest_local, minlength=len(members)).astype(np.int64)
                )
                send_meta.append([(t[2], t[3]) for t in reqs_sorted])
            recv_bufs, recv_splits = ng.alltoallv(
                send_bufs, splits, op_name="rbd_s2_a2a"
            )
            s2_send_splits.append(splits)
            s2_recv_splits.append(recv_splits)
            # Reconstruct arrival metadata on each destination member.
            for j, member in enumerate(members):
                # Receiver j's buffer concatenates, for each sender i, the
                # rows sender i addressed to j (in sender order).
                for i, sender in enumerate(members):
                    meta = send_meta[i]
                    sender_splits = splits[i]
                    offsets = np.concatenate([[0], np.cumsum(sender_splits)])
                    chunk_meta = meta[offsets[j] : offsets[j + 1]]
                    for (src, row) in chunk_meta:
                        replica_arrival_src[member].append(src)
                        replica_arrival_row[member].append(row)
                replica_arrival_data[member].append(recv_bufs[j])

        # ---- Merge pilot and replica arrivals per destination rank ------
        expert_inputs: list[np.ndarray] = []
        arrival_src: list[np.ndarray] = []
        arrival_row: list[np.ndarray] = []
        arrival_is_replica: list[np.ndarray] = []
        arrival_expert: list[np.ndarray] = []
        arrival_weight: list[np.ndarray] = []
        arrival_pilot_slot: list[np.ndarray] = []
        sort_orders: list[np.ndarray] = []
        tokens_per_local_expert: list[np.ndarray] = []
        for d in range(size):
            replica_data = (
                np.concatenate(replica_arrival_data[d], axis=0)
                if replica_arrival_data[d]
                else np.zeros((0, hidden), dtype=dtype)
            )
            data = np.concatenate([s1_recv[d], replica_data], axis=0)
            src = np.concatenate(
                [pilot_src_arr[d], np.array(replica_arrival_src[d], dtype=np.int64)]
            )
            row = np.concatenate(
                [pilot_row_arr[d], np.array(replica_arrival_row[d], dtype=np.int64)]
            )
            is_replica = np.concatenate(
                [
                    np.zeros(pilot_src_arr[d].size, dtype=bool),
                    np.ones(len(replica_arrival_src[d]), dtype=bool),
                ]
            )
            experts = np.array(
                [per_rank_pfts[int(s)].expert_ids[int(i)] for s, i in zip(src, row)],
                dtype=np.int64,
            )
            weights = np.array(
                [per_rank_pfts[int(s)].combine_weights[int(i)] for s, i in zip(src, row)],
                dtype=np.float64,
            )
            # For combine stage C1, each replica needs its pilot's arrival
            # slot on *this node's pilot-holding rank*; record the pilot slot
            # only for replicas (pilots reference themselves).
            pslot = np.full(src.size, -1, dtype=np.int64)
            for idx in range(src.size):
                if not is_replica[idx]:
                    pslot[idx] = idx  # pilot's own arrival index (pilot part)
            arrival_src.append(src)
            arrival_row.append(row)
            arrival_is_replica.append(is_replica)
            arrival_expert.append(experts)
            arrival_weight.append(weights)
            arrival_pilot_slot.append(pslot)

            order = np.argsort(experts, kind="stable")
            sort_orders.append(order)
            expert_inputs.append(data[order])
            local_experts = self.experts_on_rank(d)
            counts = np.bincount(experts, minlength=self.num_experts)
            tokens_per_local_expert.append(counts[local_experts].astype(np.int64))

        total_assignments = sum(p.pilot_mask.size for p in plans)
        total_pilots = sum(p.num_pilots for p in plans)
        self.last_stats = {
            "total_assignments": float(total_assignments),
            "pilots": float(total_pilots),
            "replicas": float(total_assignments - total_pilots),
            "redundancy_rate": (
                1.0 - total_pilots / total_assignments if total_assignments else 0.0
            ),
            "stage1_bytes": float(sum(b.nbytes for b in s1_send)),
            "stage2_bytes": float(
                (total_assignments - total_pilots) * hidden * np.dtype(dtype).itemsize
            ),
        }

        state = _RBDState(
            pfts=list(per_rank_pfts),
            plans=plans,
            s1_send_rows=s1_send_rows,
            s1_send_splits=s1_send_splits,
            s1_recv_splits=s1_recv_splits,
            arrival_src=arrival_src,
            arrival_row=arrival_row,
            arrival_is_replica=arrival_is_replica,
            arrival_expert=arrival_expert,
            arrival_weight=arrival_weight,
            arrival_pilot_slot=arrival_pilot_slot,
            sort_orders=sort_orders,
            tokens_per_local_expert=tokens_per_local_expert,
            node_groups=node_groups,
            s2_send_splits=s2_send_splits,
            s2_recv_splits=s2_recv_splits,
        )
        return expert_inputs, state

    # ------------------------------------------------------------------
    def run_experts(
        self,
        expert_inputs: list[np.ndarray],
        state: _RBDState,
        per_rank_w1: list[np.ndarray],
        per_rank_w2: list[np.ndarray],
        *,
        activation: str = "silu",
    ) -> list[np.ndarray]:
        """Run each rank's local experts over its grouped input buffer."""
        outputs = []
        for r in range(self.group.size):
            outputs.append(
                sequential_gemm(
                    expert_inputs[r],
                    per_rank_w1[r],
                    per_rank_w2[r],
                    state.tokens_per_local_expert[r],
                    activation=activation,
                )
            )
        return outputs

    # ------------------------------------------------------------------
    # Combine (reverse RBD)
    # ------------------------------------------------------------------
    def combine(
        self,
        per_rank_expert_outputs: list[np.ndarray],
        state: _RBDState,
        num_tokens_per_rank: list[int],
    ) -> list[np.ndarray]:
        """Weighted combine with the reverse of the two-stage dispatch."""
        size = self.group.size
        hidden = per_rank_expert_outputs[0].shape[1] if per_rank_expert_outputs else 0
        dtype = per_rank_expert_outputs[0].dtype

        # Undo the by-expert sort so rows align with arrival order, and apply
        # the combine weights now (paper: scaling happens before merging).
        arrival_outputs: list[np.ndarray] = []
        for d in range(size):
            order = state.sort_orders[d]
            unsorted = np.empty_like(per_rank_expert_outputs[d])
            unsorted[order] = per_rank_expert_outputs[d]
            arrival_outputs.append(unsorted * state.arrival_weight[d][:, None])

        # ---- Stage C1: replicas merge onto their pilot (intra-node) ------
        # Each destination rank sends its replica output rows back to the
        # rank that holds the corresponding pilot arrival; the pilot-holding
        # rank adds them onto the pilot's (already weighted) output row.
        merged_pilot_outputs = [
            arrival_outputs[d][~state.arrival_is_replica[d]].copy() for d in range(size)
        ]
        for ng in state.node_groups:
            members = [self.group.local_rank_of(g) for g in ng.ranks]
            send_bufs: list[np.ndarray] = []
            splits: list[np.ndarray] = []
            send_slots: list[list[int]] = []
            for member in members:
                is_rep = state.arrival_is_replica[member]
                rep_idx = np.flatnonzero(is_rep)
                # The pilot of replica (src, row) lives on rank
                # plan.dest_rank[pilot_of[row]]; find its arrival slot there.
                dests: list[int] = []
                slots: list[int] = []
                for idx in rep_idx:
                    src = int(state.arrival_src[member][idx])
                    row = int(state.arrival_row[member][idx])
                    plan = state.plans[src]
                    pilot = int(plan.pilot_of[row])
                    pr = int(plan.dest_rank[pilot])
                    # Pilot arrival slot on pr within the pilot-only part.
                    slot = self._pilot_slot(state, pr, src, pilot)
                    dests.append(members.index(pr))
                    slots.append(slot)
                dests_arr = np.array(dests, dtype=np.int64)
                order = np.argsort(dests_arr, kind="stable")
                rep_sorted = rep_idx[order]
                send_bufs.append(
                    arrival_outputs[member][rep_sorted]
                    if rep_sorted.size
                    else np.zeros((0, hidden), dtype=dtype)
                )
                splits.append(
                    np.bincount(dests_arr[order], minlength=len(members)).astype(np.int64)
                )
                send_slots.append([slots[i] for i in order])
            recv_bufs, _ = ng.alltoallv(send_bufs, splits, op_name="rbd_c1_a2a")
            for j, member in enumerate(members):
                # Rebuild which pilot slots the received rows target.
                target_slots: list[int] = []
                for i, sender in enumerate(members):
                    offsets = np.concatenate([[0], np.cumsum(splits[i])])
                    target_slots.extend(send_slots[i][offsets[j] : offsets[j + 1]])
                if target_slots:
                    np.add.at(
                        merged_pilot_outputs[member],
                        np.array(target_slots, dtype=np.int64),
                        recv_bufs[j],
                    )

        # ---- Stage C2: merged pilot rows return to their source ----------
        returned, _ = self.group.alltoallv(
            merged_pilot_outputs, state.s1_recv_splits, op_name="rbd_c2_a2a"
        )

        outputs: list[np.ndarray] = []
        for r in range(size):
            rows = state.s1_send_rows[r]
            pft = state.pfts[r]
            out = np.zeros((num_tokens_per_rank[r], hidden), dtype=dtype)
            if rows.size:
                token_ids = pft.token_ids[rows]
                np.add.at(out, token_ids, returned[r])
            outputs.append(out)
        return outputs

    # ------------------------------------------------------------------
    @staticmethod
    def _pilot_slot(state: _RBDState, rank: int, src: int, pilot_row: int) -> int:
        """Arrival index of a pilot (src, row) within ``rank``'s pilot buffer."""
        is_rep = state.arrival_is_replica[rank]
        pilot_positions = np.flatnonzero(~is_rep)
        for slot, pos in enumerate(pilot_positions):
            if (
                int(state.arrival_src[rank][pos]) == src
                and int(state.arrival_row[rank][pos]) == pilot_row
            ):
                return slot
        raise KeyError(f"pilot ({src}, {pilot_row}) not found on rank {rank}")
