"""Per-device memory accounting for MoE training.

Two kinds of memory are tracked, following §3.2 of the paper:

* **Model states** — parameters, gradients, and Adam optimizer states in
  mixed precision (2 + 2 + 12 bytes per parameter), partitioned according to
  the ZeRO stage over the relevant data-parallel group (expert parameters
  over the expert-DP group, dense parameters over the full DP group) and,
  for TED, additionally sliced by TP.
* **Activations** — the per-MoE-layer working set broken down into
  ``A_dispatch``, ``A_combine``, the two expert-FFN intermediates, plus the
  system-specific overheads that differentiate the rows of Table 4:
  the ``[S, E, C]`` dispatch mask and gating workspace of DeepSpeed-MoE's
  einsum pipeline, Tutel's float32 combine buffer on AMD GPUs, and X-MoE's
  small ERI/router overhead.

The same accounting feeds Fig. 3 (bottleneck shift), Table 4 (per-layer
activation memory), Fig. 13 (SSMB memory saving vs TP degree), and the
trainability verdicts of Fig. 9 (which configurations fit in 64 GB HBM).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.baselines.deepspeed_moe import compute_capacity
from repro.config.hardware import GPUSpec, MI250X_GCD
from repro.config.model_config import MoEModelConfig
from repro.config.parallel_config import ParallelConfig, ZeroStage


class SystemKind(enum.Enum):
    """Which training system's pipeline is being modelled."""

    XMOE = "x-moe"
    DEEPSPEED_MOE = "deepspeed-moe"
    DEEPSPEED_TED = "deepspeed-ted"
    TUTEL = "tutel"
    THEORETICAL = "theoretical"


#: Mixed-precision training bytes per parameter: bf16 params + bf16 grads.
PARAM_BYTES = 2
GRAD_BYTES = 2
#: Adam in fp32: master weights + momentum + variance.
OPTIMIZER_BYTES = 12


def zero_divisors(stage: ZeroStage, dp_size: int) -> tuple[float, float, float]:
    """(param, grad, optimizer) sharding divisors for a ZeRO stage.

    ZeRO-1 partitions optimizer state, ZeRO-2 additionally partitions
    gradients, ZeRO-3 additionally partitions parameters — each over the
    ``dp_size``-way data-parallel group that replicates the tensor.  This
    is the single source of truth shared by the analytic
    :class:`MoEMemoryModel` and the executable
    :class:`repro.dist.ZeroOptimizer`, so the tests can assert measured
    ``SimDevice`` peaks against the same arithmetic the tuner prunes with.
    """
    param_div = dp_size if stage >= ZeroStage.PARAMS else 1.0
    grad_div = dp_size if stage >= ZeroStage.GRADIENTS else 1.0
    opt_div = dp_size if stage >= ZeroStage.OPTIMIZER else 1.0
    return param_div, grad_div, opt_div


@dataclass
class ActivationBreakdown:
    """Per-MoE-layer, per-device activation components (bytes)."""

    a_dispatch: float
    a_combine: float
    a_interm0: float
    a_interm1: float
    dispatch_mask: float = 0.0
    gating_workspace: float = 0.0
    router: float = 0.0
    eri_metadata: float = 0.0

    def total(self) -> float:
        """Summed activation bytes across every pipeline stage."""
        return (
            self.a_dispatch
            + self.a_combine
            + self.a_interm0
            + self.a_interm1
            + self.dispatch_mask
            + self.gating_workspace
            + self.router
            + self.eri_metadata
        )

    def as_dict(self) -> dict[str, float]:
        """Per-stage activation bytes keyed by the paper's Table 4 names."""
        return {
            "A_dispatch": self.a_dispatch,
            "A_combine": self.a_combine,
            "A_interm0": self.a_interm0,
            "A_interm1": self.a_interm1,
            "dispatch_mask": self.dispatch_mask,
            "gating_workspace": self.gating_workspace,
            "router": self.router,
            "eri_metadata": self.eri_metadata,
        }


@dataclass
class MemoryReport:
    """Full per-device memory verdict for one configuration."""

    model_states_bytes: float
    activation_bytes: float
    activation_per_moe_layer: ActivationBreakdown
    dense_activation_bytes: float
    capacity_bytes: float
    #: param/grad/optimizer split of ``model_states_bytes`` (the terms the
    #: ZeRO stages shard; see :meth:`MoEMemoryModel.model_state_components`).
    model_state_components: dict | None = None

    @property
    def total_bytes(self) -> float:
        """Peak per-GPU bytes: model states plus activations."""
        return self.model_states_bytes + self.activation_bytes

    @property
    def total_gb(self) -> float:
        """Peak per-GPU memory in GiB."""
        return self.total_bytes / 2**30

    @property
    def fits(self) -> bool:
        """Whether the peak fits in the device's HBM capacity."""
        return self.total_bytes <= self.capacity_bytes

    @property
    def headroom_gb(self) -> float:
        """GiB left below the device capacity (negative when OOM)."""
        return (self.capacity_bytes - self.total_bytes) / 2**30


class MoEMemoryModel:
    """Per-device memory model for a (model, parallel, system) combination."""

    def __init__(
        self,
        model: MoEModelConfig,
        parallel: ParallelConfig,
        gpu: GPUSpec = MI250X_GCD,
        *,
        dense_activation_factor: float = 14.0,
    ):
        self.model = model
        self.parallel = parallel
        self.gpu = gpu
        #: bytes of dense-block (attention, norms, residuals) activation per
        #: token per layer, expressed as a multiple of ``H * dtype``;
        #: 14 covers QKV/attention-out/residual/normalization buffers with
        #: flash-style attention (no S^2 score materialization).
        self.dense_activation_factor = dense_activation_factor

    # ------------------------------------------------------------------
    # Model states
    # ------------------------------------------------------------------
    def _zero_optimizer_divisor(self, dp_size: int) -> tuple[float, float, float]:
        """(param, grad, optimizer) sharding divisors for the ZeRO stage."""
        return zero_divisors(self.parallel.zero_stage, dp_size)

    def model_state_components(
        self, system: SystemKind = SystemKind.XMOE
    ) -> dict[str, float]:
        """Per-device model-state bytes split into param/grad/optimizer terms.

        The split is what the ZeRO stages act on: ``optimizer`` shrinks at
        stage >= 1, ``grad`` at stage >= 2, ``param`` at stage >= 3 — each by
        the data-parallel degree that replicates the tensor (expert-DP for
        expert parameters, full DP for dense parameters).  The functional
        ZeRO tests assert measured :class:`~repro.cluster.device.SimDevice`
        peaks scale by exactly these divisors.
        """
        model, parallel = self.model, self.parallel
        tp = parallel.tp_size

        # Expert parameters: sharded by EP, replicated over the expert-DP
        # group (world/EP); TED additionally slices them by TP.
        expert_params = model.num_moe_layers * model.moe_layer_expert_params()
        expert_params_per_device = expert_params / parallel.ep_size
        if system is SystemKind.DEEPSPEED_TED:
            expert_params_per_device /= tp
        expert_dp = max(1, parallel.world_size // parallel.ep_size)
        ep_div, eg_div, eo_div = self._zero_optimizer_divisor(expert_dp)

        # Dense (non-expert) parameters: sliced by TP, replicated over DP.
        dense_params = (
            model.num_layers * model.attention_params()
            + model.num_moe_layers * model.router_params()
            + model.num_dense_layers * model.dense_ffn_params()
            + model.embedding_params()
        )
        dense_params_per_device = dense_params / tp
        dp_div, dg_div, do_div = self._zero_optimizer_divisor(parallel.dp_size)

        return {
            "param": expert_params_per_device * PARAM_BYTES / ep_div
            + dense_params_per_device * PARAM_BYTES / dp_div,
            "grad": expert_params_per_device * GRAD_BYTES / eg_div
            + dense_params_per_device * GRAD_BYTES / dg_div,
            "optimizer": expert_params_per_device * OPTIMIZER_BYTES / eo_div
            + dense_params_per_device * OPTIMIZER_BYTES / do_div,
        }

    def model_states_per_device(self, system: SystemKind = SystemKind.XMOE) -> float:
        """Bytes of parameters + gradients + optimizer states per device."""
        return sum(self.model_state_components(system).values())

    # ------------------------------------------------------------------
    # Activations
    # ------------------------------------------------------------------
    def tokens_per_device(self, system: SystemKind = SystemKind.XMOE) -> int:
        """Tokens entering each device's MoE block per micro-batch.

        Every TP rank replicates the sequence, so without SSMB the MoE block
        sees the full ``micro_batch * seq`` tokens; with SSMB the sequence is
        sharded ``tp_size`` ways inside the MoE block.
        """
        tokens = self.parallel.micro_batch_size * self.model.seq_length
        if system is SystemKind.XMOE and self.parallel.use_ssmb:
            tokens = -(-tokens // self.parallel.tp_size)
        return tokens

    def moe_layer_activations(
        self, system: SystemKind = SystemKind.XMOE
    ) -> ActivationBreakdown:
        """Per-MoE-layer activation breakdown for the given system (Table 4)."""
        model = self.model
        dtype = model.dtype_bytes
        k = model.top_k
        h = model.hidden_size
        f = model.ffn_hidden_size
        e = model.num_experts
        tokens = self.tokens_per_device(system)
        c = model.capacity_factor

        # The theoretical minimum: exactly the routed tokens, no padding.
        base_dispatch = k * tokens * h * dtype
        base_combine = k * tokens * h * dtype
        base_interm = k * tokens * f * dtype

        if system is SystemKind.THEORETICAL:
            return ActivationBreakdown(
                a_dispatch=base_dispatch,
                a_combine=base_combine,
                a_interm0=base_interm,
                a_interm1=base_interm,
            )

        if system is SystemKind.XMOE:
            router = 2.0 * tokens * e * dtype  # logits + probabilities
            eri = k * tokens * (3 * 8 + dtype)  # token/expert ids, weights
            return ActivationBreakdown(
                a_dispatch=base_dispatch,
                a_combine=base_combine,
                a_interm0=base_interm,
                a_interm1=base_interm,
                router=router,
                eri_metadata=eri,
            )

        # Padded systems: buffers are sized to the expert capacity, so every
        # component inflates by the capacity factor c.
        capacity = compute_capacity(tokens, k, e, c)
        padded_rows = e * capacity
        padded_dispatch = padded_rows * h * dtype
        padded_interm = padded_rows * f * dtype

        if system is SystemKind.TUTEL:
            # Tutel avoids the [S, E, C] mask but its kernels force a float32
            # combine buffer on AMD GPUs.
            combine_bytes = padded_rows * h * 4
            router = 2.0 * tokens * e * dtype
            return ActivationBreakdown(
                a_dispatch=padded_dispatch,
                a_combine=combine_bytes,
                a_interm0=padded_interm,
                a_interm1=padded_interm,
                router=router,
            )

        # DeepSpeed-MoE and DeepSpeed-TED share the einsum dispatch pipeline:
        # a dense [S, E, C] dispatch mask plus a float32 combine-weights mask
        # of the same shape are materialized during gating.
        mask_elements = float(tokens) * e * capacity
        dispatch_mask = mask_elements * dtype
        # fp32 combine-weight mask plus the bf16 token-drop mask applied on
        # top of the dispatch mask (Appendix B.1).
        gating_workspace = mask_elements * (4 + dtype)
        router = 2.0 * tokens * e * 4  # fp32 gate logits + probabilities
        breakdown = ActivationBreakdown(
            a_dispatch=padded_dispatch,
            a_combine=padded_dispatch,
            a_interm0=padded_interm,
            a_interm1=padded_interm,
            dispatch_mask=dispatch_mask,
            gating_workspace=gating_workspace,
            router=router,
        )
        if system is SystemKind.DEEPSPEED_TED:
            # TED slices the expert FFN intermediates by TP but leaves the
            # dispatch/combine buffers and masks untouched.
            breakdown.a_interm0 /= self.parallel.tp_size
            breakdown.a_interm1 /= self.parallel.tp_size
        return breakdown

    def dense_layer_activation_bytes(self) -> float:
        """Activation bytes of one dense (attention) block per device."""
        tokens = self.parallel.micro_batch_size * self.model.seq_length
        per_token = self.dense_activation_factor * self.model.hidden_size
        return tokens * per_token * self.model.dtype_bytes / self.parallel.tp_size

    def activation_bytes_per_device(self, system: SystemKind = SystemKind.XMOE) -> float:
        """Total activation working set across all layers of one micro-batch."""
        moe_layer = self.moe_layer_activations(system).total()
        dense_layer = self.dense_layer_activation_bytes()
        layers_moe = self.model.num_moe_layers
        layers_total = self.model.num_layers
        if self.parallel.activation_checkpointing:
            # Only the boundary activations of each layer are retained plus
            # one layer's full working set during recomputation.
            tokens = self.parallel.micro_batch_size * self.model.seq_length
            boundary = tokens * self.model.hidden_size * self.model.dtype_bytes
            return layers_total * boundary + moe_layer + dense_layer
        return layers_moe * moe_layer + layers_total * dense_layer

    # ------------------------------------------------------------------
    def report(self, system: SystemKind = SystemKind.XMOE) -> MemoryReport:
        """Full per-device memory report with trainability verdict."""
        components = self.model_state_components(system)
        return MemoryReport(
            model_states_bytes=sum(components.values()),
            activation_bytes=self.activation_bytes_per_device(system),
            activation_per_moe_layer=self.moe_layer_activations(system),
            dense_activation_bytes=self.dense_layer_activation_bytes(),
            capacity_bytes=float(self.gpu.memory_bytes),
            model_state_components=components,
        )

    def fits(self, system: SystemKind = SystemKind.XMOE) -> bool:
        """Whether the configuration trains without OOM on this GPU."""
        return self.report(system).fits
