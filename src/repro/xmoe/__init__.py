"""X-MoE core: the paper's contribution.

Sub-modules:

* :mod:`repro.xmoe.pft` — the Padding-Free Token buffer (PFT) data structure
  and its construction routine (Listing 1), including the transposed-cumsum
  optimization of Appendix B.2 and the rank-batched builder behind the
  :class:`repro.runtime.StepRuntime` (all ranks' PFTs in one sort pass).
* :mod:`repro.xmoe.kernels` — padding-free gather / scatter / sequential-GEMM
  "kernels" (numpy stand-ins for the Triton kernels) plus a kernel cost
  model used by the time-breakdown benchmarks.
* :mod:`repro.xmoe.pipeline` — the padding-free MoE layer (single-process
  autograd version for training, distributed numpy version for multi-rank
  dispatch correctness).
* :mod:`repro.xmoe.rbd` — hierarchical Redundancy-Bypassing Dispatch.
* :mod:`repro.xmoe.ssmb` — sequence-sharded MoE blocks.
* :mod:`repro.xmoe.parallelism` — hybrid parallelism planning (EP-first vs
  DP-first placement, expert-to-rank maps, group construction).
* :mod:`repro.xmoe.memory_model` — activation / model-state memory
  accounting (Table 2, Table 4, Figs. 3 and 13, Eqs. 1–2).
* :mod:`repro.xmoe.perf_model` — FLOPs / time-breakdown / throughput model
  (Figs. 9–12, 14, 20, Table 5).
* :mod:`repro.xmoe.trainer` — end-to-end simulated training driver with
  OOM detection and configuration sweeps.
"""

from repro.xmoe.pft import (
    PFT,
    build_pft,
    build_pft_flat,
    build_pft_flat_batched,
    build_pft_reference,
)
from repro.xmoe.kernels import (
    gather_kernel,
    scatter_kernel,
    sequential_gemm,
    KernelCostModel,
)
from repro.xmoe.pipeline import PaddingFreeMoELayer, PaddingFreeStats, DistributedMoEDispatcher
from repro.xmoe.rbd import RBDDispatcher, RBDPlan, redundancy_rate
from repro.xmoe.ssmb import SequenceShardedMoEBlock, ssmb_activation_saving_bytes
from repro.xmoe.parallelism import PlacementPlan, plan_placement, expert_to_rank_map
from repro.xmoe.memory_model import (
    ActivationBreakdown,
    MemoryReport,
    MoEMemoryModel,
    zero_divisors,
)
from repro.xmoe.perf_model import MoEPerformanceModel, LayerTimeBreakdown, SystemKind
from repro.xmoe.trainer import (
    SimulatedTrainer,
    TrainRunResult,
    ZeroValidationResult,
    dispatcher_for_config,
    policy_for_config,
    run_routing_validation,
    run_zero_training_validation,
    sweep_best_config,
    sweep_dispatch_validation,
)

__all__ = [
    "PFT",
    "build_pft",
    "build_pft_flat",
    "build_pft_flat_batched",
    "build_pft_reference",
    "gather_kernel",
    "scatter_kernel",
    "sequential_gemm",
    "KernelCostModel",
    "PaddingFreeMoELayer",
    "PaddingFreeStats",
    "DistributedMoEDispatcher",
    "RBDDispatcher",
    "RBDPlan",
    "redundancy_rate",
    "SequenceShardedMoEBlock",
    "ssmb_activation_saving_bytes",
    "PlacementPlan",
    "plan_placement",
    "expert_to_rank_map",
    "ActivationBreakdown",
    "MemoryReport",
    "MoEMemoryModel",
    "zero_divisors",
    "MoEPerformanceModel",
    "LayerTimeBreakdown",
    "SystemKind",
    "SimulatedTrainer",
    "TrainRunResult",
    "ZeroValidationResult",
    "dispatcher_for_config",
    "policy_for_config",
    "run_routing_validation",
    "run_zero_training_validation",
    "sweep_best_config",
    "sweep_dispatch_validation",
]
