"""End-to-end simulated training driver.

:class:`SimulatedTrainer` ties the memory model and performance model
together for one (model, parallel, system, training-system) combination and
produces a :class:`TrainRunResult` — either an OOM verdict or the achieved
throughput, mirroring how the paper reports Fig. 9 / Fig. 10 / Table 5.

:func:`sweep_best_config` reproduces the paper's methodology of sweeping EP
size, ZeRO stage, and (for TED/X-MoE) the TP degree, then reporting the best
configuration that fits in memory.

:func:`dispatcher_for_config` bridges the analytic trainer and the
functional substrate: given an expert-parallel process group and a
:class:`~repro.config.parallel_config.ParallelConfig`, it returns the
plan-based dispatch engine (flat or RBD, per ``parallel.use_rbd``) that a
functional validation run of that configuration uses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.config.hardware import SystemSpec, frontier_system
from repro.config.model_config import MoEModelConfig
from repro.config.parallel_config import ParallelConfig, PlacementOrder, ZeroStage
from repro.routing.engine import PlanDispatcher, make_dispatcher
from repro.xmoe.memory_model import MoEMemoryModel, SystemKind
from repro.xmoe.perf_model import MoEPerformanceModel


def dispatcher_for_config(
    group: ProcessGroup,
    num_experts: int,
    parallel: ParallelConfig,
    *,
    expert_to_rank: np.ndarray | None = None,
    seed: int = 0,
) -> PlanDispatcher:
    """The dispatch engine a training configuration calls for.

    X-MoE configurations with ``use_rbd=True`` get the two-stage
    redundancy-bypassing planner; everything else gets the flat
    all-to-all planner.  Both sit behind the same
    :class:`~repro.routing.engine.Dispatcher` protocol, so callers are
    agnostic to which one they drive.
    """
    return make_dispatcher(
        group,
        num_experts,
        use_rbd=bool(parallel.use_rbd),
        expert_to_rank=expert_to_rank,
        seed=seed,
    )


@dataclass
class TrainRunResult:
    """Outcome of one simulated training configuration."""

    system: SystemKind
    model_name: str
    parallel: ParallelConfig
    oom: bool
    peak_memory_gb: float
    iteration_seconds: float | None = None
    tflops_per_gpu: float | None = None
    aggregated_pflops: float | None = None

    @property
    def trainable(self) -> bool:
        return not self.oom

    def describe(self) -> str:
        status = "OOM" if self.oom else f"{self.tflops_per_gpu:.1f} TFLOPs/GPU"
        return (
            f"{self.system.value:>14s} | {self.model_name:>8s} | "
            f"{self.parallel.describe()} | mem={self.peak_memory_gb:.1f} GB | {status}"
        )


class SimulatedTrainer:
    """Evaluate a single training configuration on the simulated cluster."""

    def __init__(
        self,
        model: MoEModelConfig,
        parallel: ParallelConfig,
        system_spec: SystemSpec | None = None,
        kind: SystemKind = SystemKind.XMOE,
    ):
        if system_spec is None:
            needed_nodes = max(1, -(-parallel.world_size // 8))
            system_spec = frontier_system(num_nodes=needed_nodes)
        self.model = model
        self.parallel = parallel
        self.system_spec = system_spec
        self.kind = kind
        self.memory = MoEMemoryModel(model, parallel, system_spec.node.gpu)
        self.perf = MoEPerformanceModel(model, parallel, system_spec, kind)

    def run(self) -> TrainRunResult:
        """Check memory, then (if trainable) compute throughput."""
        report = self.memory.report(self.kind)
        if not report.fits:
            return TrainRunResult(
                system=self.kind,
                model_name=self.model.name,
                parallel=self.parallel,
                oom=True,
                peak_memory_gb=report.total_gb,
            )
        seconds = self.perf.iteration_time()
        tflops = self.perf.throughput_tflops_per_gpu()
        return TrainRunResult(
            system=self.kind,
            model_name=self.model.name,
            parallel=self.parallel,
            oom=False,
            peak_memory_gb=report.total_gb,
            iteration_seconds=seconds,
            tflops_per_gpu=tflops,
            aggregated_pflops=tflops * self.parallel.world_size / 1e3,
        )


def _candidate_parallel_configs(
    model: MoEModelConfig,
    world_size: int,
    kind: SystemKind,
    *,
    global_batch_size: int,
    micro_batch_size: int = 1,
) -> list[ParallelConfig]:
    """The EP / TP / ZeRO sweep the paper performs for each system (§5.2)."""
    ep_options = [e for e in (8, 16, 32, 64, 128, 256) if e <= min(world_size, model.num_experts)]
    if not ep_options:
        ep_options = [min(world_size, model.num_experts)]
    zero_options = [ZeroStage.OPTIMIZER, ZeroStage.GRADIENTS]
    if kind is SystemKind.DEEPSPEED_TED:
        tp_options = [1, 2, 4, 8]
    elif kind is SystemKind.XMOE:
        tp_options = [1, 2, 4]
    else:
        tp_options = [1]

    configs: list[ParallelConfig] = []
    for ep, tp, zero in itertools.product(ep_options, tp_options, zero_options):
        if world_size % tp or world_size % ep:
            continue
        if model.num_experts % ep:
            continue
        dp = world_size // tp
        if global_batch_size % dp:
            continue
        configs.append(
            ParallelConfig(
                world_size=world_size,
                ep_size=ep,
                tp_size=tp,
                zero_stage=zero,
                use_ssmb=(kind is SystemKind.XMOE and tp > 1),
                use_rbd=(kind is SystemKind.XMOE),
                placement=(
                    PlacementOrder.DP_FIRST
                    if kind is SystemKind.XMOE
                    else PlacementOrder.EP_FIRST
                ),
                micro_batch_size=micro_batch_size,
                global_batch_size=global_batch_size,
            )
        )
    return configs


def sweep_best_config(
    model: MoEModelConfig,
    world_size: int,
    kind: SystemKind,
    system_spec: SystemSpec | None = None,
    *,
    global_batch_size: int = 1024,
    micro_batch_size: int = 1,
) -> TrainRunResult:
    """Best (highest-throughput) trainable configuration for one system.

    If no candidate fits in memory the returned result has ``oom=True`` and
    reports the smallest peak memory seen across the sweep.
    """
    candidates = _candidate_parallel_configs(
        model,
        world_size,
        kind,
        global_batch_size=global_batch_size,
        micro_batch_size=micro_batch_size,
    )
    best: TrainRunResult | None = None
    least_oom: TrainRunResult | None = None
    for parallel in candidates:
        result = SimulatedTrainer(model, parallel, system_spec, kind).run()
        if result.oom:
            if least_oom is None or result.peak_memory_gb < least_oom.peak_memory_gb:
                least_oom = result
            continue
        if best is None or result.tflops_per_gpu > best.tflops_per_gpu:
            best = result
    if best is not None:
        return best
    if least_oom is not None:
        return least_oom
    raise ValueError("no valid parallel configuration for the requested sweep")
