"""End-to-end simulated training driver.

:class:`SimulatedTrainer` ties the memory model and performance model
together for one (model, parallel, system, training-system) combination and
produces a :class:`TrainRunResult` — either an OOM verdict or the achieved
throughput, mirroring how the paper reports Fig. 9 / Fig. 10 / Table 5.

:func:`sweep_best_config` reproduces the paper's methodology of sweeping EP
size, ZeRO stage, and (for TED/X-MoE) the TP degree, then reporting the best
configuration that fits in memory.

:func:`dispatcher_for_config` and :func:`policy_for_config` bridge the
analytic trainer and the functional substrate: the former returns the
plan-based dispatch engine (flat, RBD, or hierarchical, per
``parallel.dispatch_kind``), the latter the
:class:`~repro.routing.policies.RouterPolicy` named by ``model.router`` —
and :func:`run_routing_validation` drives both through the shared
:class:`~repro.runtime.StepRuntime` (one rank-batched route/PFT/dispatch
loop, no per-rank Python routing) over the simulated cluster for a few
steps, recording a step-by-step
:class:`~repro.routing.telemetry.RoutingTelemetry`.
:func:`sweep_dispatch_validation` runs the same validation once per dispatch
strategy, which is how the dispatch benchmarks compare per-tier traffic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.comm.process_group import CommWorld, ProcessGroup
from repro.config.hardware import SystemSpec, frontier_system
from repro.obs import tracer as obs
from repro.config.model_config import MoEModelConfig
from repro.config.parallel_config import ParallelConfig, PlacementOrder, ZeroStage
from repro.routing.engine import PlanDispatcher, make_dispatcher
from repro.routing.policies import RouterPolicy, make_policy, skewed_router_tokens
from repro.routing.telemetry import RoutingTelemetry
from repro.runtime import StepRuntime
from repro.xmoe.memory_model import MoEMemoryModel, SystemKind
from repro.xmoe.perf_model import MoEPerformanceModel


def dispatcher_for_config(
    group: ProcessGroup,
    num_experts: int,
    parallel: ParallelConfig,
    *,
    expert_to_rank: np.ndarray | None = None,
    seed: int = 0,
) -> PlanDispatcher:
    """The dispatch engine a training configuration calls for.

    ``parallel.dispatch_kind`` picks the planner — ``"flat"`` (single
    uneven all-to-all), ``"rbd"`` (two-stage redundancy-bypassing; also
    selected by the legacy ``use_rbd=True``), or ``"hier"`` (two-hop
    hierarchical dispatch through node leaders).  All three sit behind the
    same :class:`~repro.routing.engine.Dispatcher` protocol, so callers are
    agnostic to which one they drive.
    """
    return make_dispatcher(
        group,
        num_experts,
        kind=parallel.dispatch_kind,
        expert_to_rank=expert_to_rank,
        seed=seed,
    )


def policy_for_config(
    model: MoEModelConfig,
    parallel: ParallelConfig,
    *,
    weight: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    **knobs,
) -> RouterPolicy:
    """The router policy a training configuration calls for.

    ``model.router`` names the policy, ``model`` supplies its dimensions and
    capacity factor, and ``parallel.router_seed`` seeds its exploration
    noise.  Pass ``weight`` to share an existing router projection, or
    ``rng`` to control the initialization; with neither, the weight is
    initialized from ``router_seed`` so the policy is immediately routable.
    """
    if weight is None and rng is None:
        rng = np.random.default_rng(parallel.router_seed)
    return make_policy(
        model.router,
        model.hidden_size,
        model.num_experts,
        model.top_k,
        capacity_factor=model.capacity_factor,
        weight=weight,
        rng=rng,
        seed=parallel.router_seed,
        **knobs,
    )


def run_routing_validation(
    router: str,
    *,
    num_ranks: int,
    num_experts: int,
    top_k: int,
    hidden_size: int,
    tokens_per_rank: int,
    steps: int = 2,
    capacity_factor: float = 1.25,
    use_rbd: bool = False,
    dispatch: str | None = None,
    seed: int = 0,
    skew: float = 0.0,
    system: SystemSpec | None = None,
) -> RoutingTelemetry:
    """Drive one router policy through the full dispatch/combine pipeline.

    A thin consumer of the shared :class:`~repro.runtime.StepRuntime`: every
    step, each rank's fresh batch of (optionally Zipf-skewed) hidden states
    is routed by **one rank-batched call** (stacked projection + vectorized
    top-k, bit-identical to the old per-rank loop), the decisions compile to
    PFTs in one batched pass (policy drops filtered, then the standard
    capacity rule), the selected planner (``dispatch="flat"|"rbd"|"hier"``;
    the legacy ``use_rbd`` boolean is honoured when ``dispatch`` is omitted)
    builds the step's :class:`~repro.routing.plan.DispatchPlan`, tokens
    dispatch and combine over the simulated cluster, and the runtime records
    the step into the returned telemetry — payload bytes derived from the
    actual token dtype.  All randomness derives from ``(seed, step, rank)``,
    so a run is exactly reproducible.
    """
    world = CommWorld(num_ranks=num_ranks, system=system)
    group = world.world_group()
    policy = make_policy(
        router,
        hidden_size,
        num_experts,
        top_k,
        capacity_factor=capacity_factor,
        rng=np.random.default_rng(seed),
        seed=seed,
    )
    dispatcher = make_dispatcher(
        group, num_experts, kind=dispatch, use_rbd=use_rbd, seed=seed
    )
    telemetry = RoutingTelemetry(num_experts)
    runtime = StepRuntime(
        policy,
        dispatcher,
        capacity=StepRuntime.capacity_for(
            tokens_per_rank, top_k, num_experts, capacity_factor
        ),
        telemetry=telemetry,
    )

    with obs.span(
        "trainer.validate", "trainer", router=router, dispatch=dispatcher.planner.kind
    ):
        for step in range(steps):
            hidden = [
                skewed_router_tokens(
                    np.random.default_rng((seed, step, rank)),
                    tokens_per_rank,
                    policy.weight,
                    skew=skew,
                )
                for rank in range(num_ranks)
            ]
            runtime.run_step(hidden, step=step)
    telemetry.comm_stats = world.stats
    return telemetry


@dataclass
class ZeroValidationResult:
    """Outcome of one functional ZeRO training validation run."""

    stage: ZeroStage
    dp_size: int
    steps: int
    bucket_bytes: int
    #: per-step mean LM loss across the data-parallel replicas.
    losses: list[float]
    #: per-rank model-state bytes actually held (real array sizes).
    measured_state_bytes: dict
    #: the same quantities predicted from the analytic ZeRO divisors.
    predicted_state_bytes: dict
    #: rank-0 :class:`~repro.cluster.device.SimDevice` peak bytes.
    device_peak_bytes: int
    #: costed overlap timeline of the final step's bucket reductions.
    timeline: object
    #: the world's accumulated collective statistics.
    comm_stats: object

    @property
    def overlap_ratio(self) -> float:
        """Fraction of gradient-reduction comm hidden under backward."""
        return self.timeline.overlap_ratio


def run_zero_training_validation(
    *,
    zero_stage: ZeroStage | int = ZeroStage.GRADIENTS,
    dp_size: int = 4,
    steps: int = 3,
    bucket_bytes: int = 32 << 10,
    lr: float = 3e-3,
    seed: int = 0,
    system: SystemSpec | None = None,
) -> ZeroValidationResult:
    """Train a tiny MoE transformer under executable ZeRO sharding.

    ``dp_size`` identical replicas (same init seed) train on per-rank
    synthetic data streams through :class:`repro.dist.ZeroOptimizer`:
    backward hooks pack gradients into flat buckets, each bucket
    reduce-scatters (stage 2) or allreduces (stages 0/1) through the
    simulated group the moment it fills, rank-local
    :class:`~repro.tensor.optim.ShardedAdam` partitions apply the update,
    and parameter shards allgather back.  The returned result carries the
    loss trajectory (bit-identical across stages — asserted in tests), the
    measured-vs-predicted per-rank model-state bytes, and the costed
    overlap timeline of the final step, with backward time modeled from
    the GPU spec's achievable FLOP rate.
    """
    from repro.dist import ZeroOptimizer
    from repro.moe import MoETransformerLM, SyntheticLMDataset, TransformerConfig
    from repro.xmoe.pipeline import PaddingFreeMoELayer

    stage = ZeroStage(zero_stage)
    world = CommWorld(num_ranks=dp_size, system=system)
    group = world.world_group()
    config = TransformerConfig(
        vocab_size=64,
        hidden_size=16,
        ffn_hidden_size=8,
        num_experts=4,
        top_k=2,
        num_layers=2,
        seq_length=16,
        router_seed=seed,
    )
    replicas = [
        MoETransformerLM(
            config,
            lambda gate, experts, cap: PaddingFreeMoELayer(gate, experts, cap),
            seed=seed,
        )
        for _ in range(dp_size)
    ]
    replica_params = [m.parameters() for m in replicas]
    optimizer = ZeroOptimizer(
        replica_params,
        group,
        stage=stage,
        lr=lr,
        bucket_bytes=bucket_bytes,
    )
    datasets = [
        SyntheticLMDataset(config.vocab_size, config.seq_length, seed=seed + 1 + r)
        for r in range(dp_size)
    ]

    losses: list[float] = []
    with obs.span(
        "trainer.validate_zero", "trainer", stage=int(stage), dp_size=dp_size
    ):
        for _ in range(steps):
            sequences = [ds.sample_sequence() for ds in datasets]
            optimizer.zero_grad()
            step_loss = 0.0
            for r in range(dp_size):
                loss, lm_loss = replicas[r].loss(sequences[r])
                loss.backward()
                step_loss += lm_loss
            optimizer.step()
            losses.append(step_loss / dp_size)

    # Backward compute time on the modeled GPU: ~4 FLOPs per parameter per
    # token (2x the forward's multiply-accumulate), at the achievable rate.
    gpu = world.system.node.gpu
    num_params = sum(p.size for p in replica_params[0])
    flops = 4.0 * num_params * config.seq_length
    backward_seconds = flops / (gpu.peak_tflops * 1e12 * gpu.achievable_fraction)
    timeline = optimizer.reducer.timeline(backward_seconds)

    return ZeroValidationResult(
        stage=stage,
        dp_size=dp_size,
        steps=steps,
        bucket_bytes=bucket_bytes,
        losses=losses,
        measured_state_bytes=optimizer.measured_state_bytes(),
        predicted_state_bytes=optimizer.predicted_state_bytes(),
        device_peak_bytes=world.devices[group.ranks[0]].memory.peak_bytes,
        timeline=timeline,
        comm_stats=world.stats,
    )


def sweep_dispatch_validation(
    router: str, *, kinds: tuple[str, ...] = ("flat", "rbd", "hier"), **kwargs
) -> dict[str, RoutingTelemetry]:
    """Run :func:`run_routing_validation` once per dispatch strategy.

    Every strategy sees the identical workload (the policy, data, and plan
    randomness all derive from the same seed), so the returned telemetries
    are directly comparable — this is the sweep behind the hierarchical
    dispatch benchmark's per-tier byte table.
    """
    return {
        kind: run_routing_validation(router, dispatch=kind, **kwargs)
        for kind in kinds
    }


@dataclass
class TrainRunResult:
    """Outcome of one simulated training configuration."""

    system: SystemKind
    model_name: str
    parallel: ParallelConfig
    oom: bool
    peak_memory_gb: float
    iteration_seconds: float | None = None
    tflops_per_gpu: float | None = None
    aggregated_pflops: float | None = None

    @property
    def trainable(self) -> bool:
        """Whether the configuration fit in memory (no OOM verdict)."""
        return not self.oom

    def describe(self) -> str:
        """One status line: system, model, layout, memory, throughput."""
        status = "OOM" if self.oom else f"{self.tflops_per_gpu:.1f} TFLOPs/GPU"
        return (
            f"{self.system.value:>14s} | {self.model_name:>8s} | "
            f"{self.parallel.describe()} | mem={self.peak_memory_gb:.1f} GB | {status}"
        )


class SimulatedTrainer:
    """Evaluate a single training configuration on the simulated cluster."""

    def __init__(
        self,
        model: MoEModelConfig,
        parallel: ParallelConfig,
        system_spec: SystemSpec | None = None,
        kind: SystemKind = SystemKind.XMOE,
    ):
        if system_spec is None:
            needed_nodes = max(1, -(-parallel.world_size // 8))
            system_spec = frontier_system(num_nodes=needed_nodes)
        self.model = model
        self.parallel = parallel
        self.system_spec = system_spec
        self.kind = kind
        self.memory = MoEMemoryModel(model, parallel, system_spec.node.gpu)
        self.perf = MoEPerformanceModel(model, parallel, system_spec, kind)

    def run(self) -> TrainRunResult:
        """Check memory, then (if trainable) compute throughput."""
        with obs.span(
            "trainer.run",
            "trainer",
            system=self.kind.value,
            model=self.model.name,
        ) as run_span:
            report = self.memory.report(self.kind)
            if not report.fits:
                run_span.set(oom=True, peak_memory_gb=report.total_gb)
                return TrainRunResult(
                    system=self.kind,
                    model_name=self.model.name,
                    parallel=self.parallel,
                    oom=True,
                    peak_memory_gb=report.total_gb,
                )
            seconds = self.perf.iteration_time()
            tflops = self.perf.throughput_tflops_per_gpu()
            run_span.set(oom=False, tflops_per_gpu=tflops)
        return TrainRunResult(
            system=self.kind,
            model_name=self.model.name,
            parallel=self.parallel,
            oom=False,
            peak_memory_gb=report.total_gb,
            iteration_seconds=seconds,
            tflops_per_gpu=tflops,
            aggregated_pflops=tflops * self.parallel.world_size / 1e3,
        )

    def validate_routing(
        self,
        *,
        steps: int = 2,
        tokens_per_rank: int = 64,
        hidden_size: int | None = None,
        skew: float = 0.0,
        dispatch: str | None = None,
    ) -> RoutingTelemetry:
        """Functionally validate this configuration's routing regime.

        Runs ``model.router`` over the configuration's EP group for a few
        steps (dispatch + combine over the simulated cluster, flat / RBD /
        hierarchical per ``parallel.dispatch_kind``) and returns the
        per-step :class:`~repro.routing.telemetry.RoutingTelemetry`.
        ``hidden_size`` defaults to the model's hidden size; pass a smaller
        value for a cheap smoke run, or ``dispatch`` to sweep a strategy
        other than the configured one.
        """
        return run_routing_validation(
            self.model.router,
            num_ranks=self.parallel.ep_size,
            num_experts=self.model.num_experts,
            top_k=self.model.top_k,
            hidden_size=hidden_size or self.model.hidden_size,
            tokens_per_rank=tokens_per_rank,
            steps=steps,
            capacity_factor=self.model.capacity_factor,
            dispatch=dispatch or self.parallel.dispatch_kind,
            seed=self.parallel.router_seed,
            skew=skew,
        )

    def validate_zero(
        self,
        *,
        steps: int = 3,
        max_dp: int = 4,
        bucket_bytes: int = 32 << 10,
    ) -> ZeroValidationResult:
        """Functionally validate this configuration's ZeRO stage.

        Trains the tiny replica workload at ``parallel.zero_stage`` over a
        data-parallel group of ``min(parallel.dp_size, max_dp)`` simulated
        ranks (the cap keeps the functional run cheap while exercising the
        same sharding arithmetic the analytic models use at full scale).
        """
        dp = max(2, min(self.parallel.dp_size, max_dp))
        return run_zero_training_validation(
            zero_stage=self.parallel.zero_stage,
            dp_size=dp,
            steps=steps,
            bucket_bytes=bucket_bytes,
            seed=self.parallel.router_seed,
        )


def _candidate_parallel_configs(
    model: MoEModelConfig,
    world_size: int,
    kind: SystemKind,
    *,
    global_batch_size: int,
    micro_batch_size: int = 1,
) -> list[ParallelConfig]:
    """The EP / TP / ZeRO sweep the paper performs for each system (§5.2)."""
    ep_options = [e for e in (8, 16, 32, 64, 128, 256) if e <= min(world_size, model.num_experts)]
    if not ep_options:
        ep_options = [min(world_size, model.num_experts)]
    zero_options = [ZeroStage.OPTIMIZER, ZeroStage.GRADIENTS]
    if kind is SystemKind.DEEPSPEED_TED:
        tp_options = [1, 2, 4, 8]
    elif kind is SystemKind.XMOE:
        tp_options = [1, 2, 4]
    else:
        tp_options = [1]

    configs: list[ParallelConfig] = []
    for ep, tp, zero in itertools.product(ep_options, tp_options, zero_options):
        if world_size % tp or world_size % ep:
            continue
        if model.num_experts % ep:
            continue
        dp = world_size // tp
        if global_batch_size % dp:
            continue
        configs.append(
            ParallelConfig(
                world_size=world_size,
                ep_size=ep,
                tp_size=tp,
                zero_stage=zero,
                use_ssmb=(kind is SystemKind.XMOE and tp > 1),
                use_rbd=(kind is SystemKind.XMOE),
                placement=(
                    PlacementOrder.DP_FIRST
                    if kind is SystemKind.XMOE
                    else PlacementOrder.EP_FIRST
                ),
                micro_batch_size=micro_batch_size,
                global_batch_size=global_batch_size,
            )
        )
    return configs


def sweep_best_config(
    model: MoEModelConfig,
    world_size: int,
    kind: SystemKind,
    system_spec: SystemSpec | None = None,
    *,
    global_batch_size: int = 1024,
    micro_batch_size: int = 1,
) -> TrainRunResult:
    """Best (highest-throughput) trainable configuration for one system.

    If no candidate fits in memory the returned result has ``oom=True`` and
    reports the smallest peak memory seen across the sweep.
    """
    candidates = _candidate_parallel_configs(
        model,
        world_size,
        kind,
        global_batch_size=global_batch_size,
        micro_batch_size=micro_batch_size,
    )
    best: TrainRunResult | None = None
    least_oom: TrainRunResult | None = None
    for parallel in candidates:
        result = SimulatedTrainer(model, parallel, system_spec, kind).run()
        if result.oom:
            if least_oom is None or result.peak_memory_gb < least_oom.peak_memory_gb:
                least_oom = result
            continue
        if best is None or result.tflops_per_gpu > best.tflops_per_gpu:
            best = result
    if best is not None:
        return best
    if least_oom is not None:
        return least_oom
    raise ValueError("no valid parallel configuration for the requested sweep")
