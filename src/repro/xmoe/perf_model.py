"""Performance model: per-stage times, iteration time, and throughput.

This is the analytic counterpart of the functional simulator.  Given a
model configuration, a parallel layout, a hardware system, and a training
system kind, it produces:

* a forward MoE-layer time breakdown (gate, buffer dispatch, dispatch
  all-to-all, expert compute, combine all-to-all, buffer combine, others) —
  Fig. 11 and Fig. 12;
* iteration time and achieved TFLOPs per GPU — Figs. 9, 10, 14, 20 and
  Table 5;
* the dispatch-stage decomposition with and without RBD — Fig. 12.

The absolute numbers depend on the calibration constants of the kernel and
network models; the benchmarks only rely on the *relative* shapes (who wins,
roughly by how much, where the crossovers are), which follow from byte and
FLOP counting rather than from the constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.deepspeed_moe import compute_capacity
from repro.baselines.tutel import TutelMoELayer
from repro.cluster.network import NetworkModel, TransferEstimate
from repro.cluster.topology import LinkTier, Topology
from repro.comm.cost_model import (
    hierarchical_alltoall_time,
    hierarchical_dispatch_time,
    uniform_alltoall_time,
)
from repro.config.hardware import SystemSpec, frontier_system
from repro.config.model_config import MoEModelConfig
from repro.config.parallel_config import ParallelConfig
from repro.xmoe.kernels import KernelCostModel
from repro.xmoe.memory_model import MoEMemoryModel, SystemKind
from repro.xmoe.rbd import expected_redundancy_rate


@dataclass
class LayerTimeBreakdown:
    """Forward-pass time (seconds) of one MoE layer, by stage (Fig. 11)."""

    gate: float
    dispatch_buffer: float
    dispatch_a2a: float
    experts: float
    combine_a2a: float
    combine_buffer: float
    others: float

    def total(self) -> float:
        """Summed seconds across every stage of one MoE layer."""
        return (
            self.gate
            + self.dispatch_buffer
            + self.dispatch_a2a
            + self.experts
            + self.combine_a2a
            + self.combine_buffer
            + self.others
        )

    def as_dict(self) -> dict[str, float]:
        """Per-stage seconds keyed by stage name (Fig. 11's breakdown)."""
        return {
            "gate": self.gate,
            "dispatch": self.dispatch_buffer,
            "1st_a2a": self.dispatch_a2a,
            "experts": self.experts,
            "2nd_a2a": self.combine_a2a,
            "combine": self.combine_buffer,
            "others": self.others,
        }


@dataclass
class DispatchBreakdown:
    """Dispatch-stage time decomposition with/without RBD (Fig. 12)."""

    buffer_instantiation: float
    inter_node_a2a: float
    stage2_instantiation: float = 0.0
    intra_node_a2a: float = 0.0
    input_reconstruction: float = 0.0

    def total(self) -> float:
        """Summed seconds across the dispatch sub-stages (Fig. 12)."""
        return (
            self.buffer_instantiation
            + self.inter_node_a2a
            + self.stage2_instantiation
            + self.intra_node_a2a
            + self.input_reconstruction
        )


class MoEPerformanceModel:
    """Analytic throughput / time model for one training configuration."""

    #: relative efficiency of each system's expert GEMM + framework overhead.
    #: The paper measures Tutel / DeepSpeed-MoE sustaining well under 10% of
    #: peak on MI250X because their kernels fall back to unfused PyTorch ops
    #: on ROCm; X-MoE's Triton kernels do substantially better.
    _system_efficiency = {
        SystemKind.XMOE: 1.0,
        SystemKind.TUTEL: 0.65,
        SystemKind.DEEPSPEED_MOE: 0.45,
        SystemKind.DEEPSPEED_TED: 0.40,
        SystemKind.THEORETICAL: 1.0,
    }

    #: Padded pipelines exchange *even*, capacity-sized buffers: every rank
    #: pair's chunk is sized for the worst-case expert load, so with
    #: fine-grained experts the exchanged buffers carry substantially more
    #: zero rows than the average 1.25x capacity factor suggests.  This is
    #: the effective padded-bytes/real-bytes ratio of the even all-to-all.
    _even_a2a_imbalance = 1.6

    def __init__(
        self,
        model: MoEModelConfig,
        parallel: ParallelConfig,
        system: SystemSpec | None = None,
        kind: SystemKind = SystemKind.XMOE,
        *,
        seed: int | None = 0,
    ):
        if system is None:
            needed_nodes = max(1, -(-parallel.world_size // 8))
            system = frontier_system(num_nodes=needed_nodes)
        self.model = model
        self.parallel = parallel
        self.system = system
        self.kind = kind
        self.gpu = system.node.gpu
        self.topology = Topology(system, parallel.world_size)
        self.network = NetworkModel(self.topology, seed=seed)
        # The GEMM efficiency the cost model uses is the platform's
        # achievable fraction of peak, not an optimistic constant.
        self.kernels = KernelCostModel(
            self.gpu,
            gemm_efficiency=self.gpu.achievable_fraction,
            small_gemm_efficiency=0.7 * self.gpu.achievable_fraction,
        )
        self.memory = MoEMemoryModel(model, parallel, self.gpu)
        #: memory-bound elementwise work (layer norms, residuals, dropout,
        #: rotary embeddings, optimizer bookkeeping) per layer, expressed as
        #: the number of full [tokens, H] tensor traversals it costs.
        self.elementwise_traversals_per_layer = 60.0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def tokens_per_device(self) -> int:
        """Tokens each device feeds into one MoE layer per micro-batch."""
        return self.memory.tokens_per_device(self.kind)

    def _ep_group_ranks(self) -> np.ndarray:
        """Global ranks of the first EP group (contiguous block of ranks)."""
        return np.arange(self.parallel.ep_size)

    def _ep_nodes(self) -> int:
        """Number of nodes spanned by one EP group."""
        ranks = self._ep_group_ranks()
        nodes = {self.topology.node_of(int(r)) for r in ranks}
        return max(1, len(nodes))

    def redundancy(self) -> float:
        """Expected dispatch redundancy rate for this configuration."""
        return expected_redundancy_rate(
            self.model.num_experts, self.model.top_k, self._ep_nodes()
        )

    def _effective_dispatch(
        self, use_rbd: bool | None = None, dispatch: str | None = None
    ) -> str:
        """Resolve the dispatch strategy a breakdown should price.

        An explicit ``dispatch`` wins; the legacy ``use_rbd`` boolean maps to
        flat/RBD; with neither, X-MoE follows ``parallel.dispatch_kind`` and
        the padded baselines always run their own flat (even) exchange.
        """
        if dispatch is not None:
            return dispatch
        if use_rbd is not None:
            return "rbd" if use_rbd else "flat"
        if self.kind is SystemKind.XMOE:
            return self.parallel.dispatch_kind
        return "flat"

    def _a2a_bytes_per_rank(self) -> float:
        """Bytes each rank contributes to one dispatch all-to-all."""
        model = self.model
        tokens = self.tokens_per_device
        row_bytes = model.hidden_size * model.dtype_bytes
        if self.kind in (
            SystemKind.DEEPSPEED_MOE,
            SystemKind.DEEPSPEED_TED,
            SystemKind.TUTEL,
        ):
            capacity = compute_capacity(
                tokens, model.top_k, model.num_experts, model.capacity_factor
            )
            return model.num_experts * capacity * row_bytes * self._even_a2a_imbalance
        return model.top_k * tokens * row_bytes

    def dispatch_comm_estimates(
        self, dispatch: str | None = None
    ) -> list[TransferEstimate]:
        """Per-hop network estimates of one MoE layer's dispatch exchange.

        ``"flat"`` returns one estimate (the single uneven all-to-all),
        ``"rbd"`` two (inter-node pilots, intra-node replicas), ``"hier"``
        three (gather → leader exchange → scatter, priced by
        :func:`~repro.comm.cost_model.hierarchical_dispatch_time`).  The
        combine exchange reverses the same hops, so callers double the byte
        totals for a full layer.  This is what the auto-tuner reads for its
        per-candidate inter-node traffic accounting.
        """
        kind = self._effective_dispatch(dispatch=dispatch)
        bytes_per_rank = self._a2a_bytes_per_rank()
        ranks = self._ep_group_ranks()
        if kind == "flat":
            return [
                uniform_alltoall_time(
                    self.network, ranks, bytes_per_rank / max(1, ranks.size)
                )
            ]
        red = self.redundancy()
        if kind == "rbd":
            inter_est, intra_est = hierarchical_alltoall_time(
                self.network,
                ranks,
                bytes_per_rank * (1.0 - red),
                bytes_per_rank * red,
            )
            return [inter_est, intra_est]
        if kind == "hier":
            # Hop A gathers the deduplicated rows (one per (token, dest-node)
            # group — the same (1 - redundancy) fraction RBD sends across
            # nodes), hop B exchanges them between leaders, and hop C fans
            # one row per assignment out to the expert-owning ranks.
            gather_est, inter_est, scatter_est = hierarchical_dispatch_time(
                self.network,
                ranks,
                inter_node_bytes_per_rank=bytes_per_rank * (1.0 - red),
                gather_bytes_per_rank=bytes_per_rank * (1.0 - red),
                scatter_bytes_per_rank=bytes_per_rank,
            )
            return [gather_est, inter_est, scatter_est]
        raise ValueError(f"unknown dispatch strategy {kind!r}")

    def dispatch_inter_node_bytes(self, dispatch: str | None = None) -> float:
        """Bytes one MoE layer's dispatch moves across node boundaries."""
        return sum(
            est.bytes_by_tier.get(LinkTier.INTER_NODE, 0.0)
            + est.bytes_by_tier.get(LinkTier.CROSS_RACK, 0.0)
            for est in self.dispatch_comm_estimates(dispatch)
        )

    # ------------------------------------------------------------------
    # Per-layer breakdown (forward)
    # ------------------------------------------------------------------
    def moe_layer_breakdown(
        self, *, use_rbd: bool | None = None, dispatch: str | None = None
    ) -> LayerTimeBreakdown:
        """Forward time breakdown of a single MoE layer."""
        model = self.model
        kind = self.kind
        tokens = self.tokens_per_device
        h, f, e, k = (
            model.hidden_size,
            model.ffn_hidden_size,
            model.num_experts,
            model.top_k,
        )
        dtype = model.dtype_bytes
        ep = self.parallel.ep_size
        experts_local = max(1, e // ep)
        capacity = compute_capacity(tokens, k, e, model.capacity_factor)
        dispatch_kind = self._effective_dispatch(use_rbd, dispatch)

        padded = kind in (SystemKind.DEEPSPEED_MOE, SystemKind.DEEPSPEED_TED, SystemKind.TUTEL)

        # --- gating + buffer dispatch / combine --------------------------
        if kind in (SystemKind.DEEPSPEED_MOE, SystemKind.DEEPSPEED_TED):
            # Dense [S, E, C] dispatch mask + einsum dispatch/combine.
            gate = self.kernels.gating_time(tokens, h, e, 4) + self.kernels.mask_construction_time(
                tokens, e, capacity, dtype
            )
            dispatch_buffer = self.kernels.einsum_dispatch_time(tokens, e, capacity, h, dtype)
            combine_buffer = self.kernels.einsum_dispatch_time(tokens, e, capacity, h, dtype)
        elif kind is SystemKind.TUTEL:
            # Tutel's sparse kernels avoid the dense mask but still operate
            # on capacity-padded buffers, fall back to partially-uncoalesced
            # paths on AMD, and keep the combine buffer in float32.
            gate = self.kernels.gating_time(tokens, h, e, 4)
            dispatch_buffer = (
                self.kernels.gather_time(e * capacity, h, dtype, coalesced=False)
                / TutelMoELayer.kernel_efficiency_factor
            )
            combine_buffer = (
                self.kernels.scatter_time(e * capacity, h, 4, coalesced=False)
                / TutelMoELayer.kernel_efficiency_factor
            )
        else:
            gate = self.kernels.gating_time(tokens, h, e, dtype)
            dispatch_buffer = self.kernels.gather_time(k * tokens, h, dtype)
            combine_buffer = self.kernels.scatter_time(k * tokens, h, dtype)

        # --- all-to-alls ---------------------------------------------------
        dispatch_a2a = sum(
            est.seconds for est in self.dispatch_comm_estimates(dispatch_kind)
        )
        combine_a2a = dispatch_a2a
        combine_bytes_factor = 2.0 if kind is SystemKind.TUTEL else 1.0
        combine_a2a *= combine_bytes_factor

        # --- expert compute -------------------------------------------------
        if padded:
            experts_time = self.kernels.padded_expert_gemm_time(
                experts_local, capacity, h, f
            )
        else:
            tokens_per_expert = np.full(experts_local, k * tokens / e)
            experts_time = self.kernels.sequential_gemm_time(tokens_per_expert, h, f)
        experts_time /= self._system_efficiency[kind]

        others = 0.05 * (gate + dispatch_buffer + combine_buffer)
        return LayerTimeBreakdown(
            gate=gate,
            dispatch_buffer=dispatch_buffer,
            dispatch_a2a=dispatch_a2a,
            experts=experts_time,
            combine_a2a=combine_a2a,
            combine_buffer=combine_buffer,
            others=others,
        )

    # ------------------------------------------------------------------
    def dispatch_breakdown(self, *, use_rbd: bool) -> DispatchBreakdown:
        """Dispatch-stage decomposition for Fig. 12 (padding-free pipeline)."""
        model = self.model
        tokens = self.tokens_per_device
        h, k = model.hidden_size, model.top_k
        dtype = model.dtype_bytes
        ranks = self._ep_group_ranks()
        rows = k * tokens
        buffer_time = self.kernels.gather_time(rows, h, dtype)
        bytes_per_rank = rows * h * dtype
        if not use_rbd:
            est = uniform_alltoall_time(
                self.network, ranks, bytes_per_rank / max(1, ranks.size)
            )
            return DispatchBreakdown(
                buffer_instantiation=buffer_time, inter_node_a2a=est.seconds
            )
        red = self.redundancy()
        inter_bytes = bytes_per_rank * (1.0 - red)
        intra_bytes = bytes_per_rank * red
        inter_est, intra_est = hierarchical_alltoall_time(
            self.network, ranks, inter_bytes, intra_bytes
        )
        s1_instantiation = self.kernels.gather_time(int(rows * (1 - red)), h, dtype)
        s2_instantiation = self.kernels.gather_time(int(rows * red), h, dtype)
        reconstruction = self.kernels.gather_time(rows, h, dtype)
        return DispatchBreakdown(
            buffer_instantiation=s1_instantiation,
            inter_node_a2a=inter_est.seconds,
            stage2_instantiation=s2_instantiation,
            intra_node_a2a=intra_est.seconds,
            input_reconstruction=reconstruction,
        )

    # ------------------------------------------------------------------
    # Dense (attention) block time
    # ------------------------------------------------------------------
    def attention_layer_time(self) -> float:
        """Forward time of the dense attention block per layer per device."""
        model = self.model
        tokens = self.parallel.micro_batch_size * model.seq_length
        flops = tokens * (
            8.0 * model.hidden_size**2 + 4.0 * model.hidden_size * model.seq_length
        )
        flops /= self.parallel.tp_size
        rate = self.gpu.peak_tflops * 1e12 * self.kernels.gemm_efficiency
        time = flops / rate
        # Memory-bound elementwise work around the attention block.
        hbm = self.gpu.memory_bandwidth_gbps * 1e9 * self.kernels.coalesced_efficiency
        elementwise_bytes = (
            self.elementwise_traversals_per_layer
            * tokens
            * model.hidden_size
            * model.dtype_bytes
            / self.parallel.tp_size
        )
        time += elementwise_bytes / hbm
        if self.parallel.tp_size > 1:
            payload = tokens * model.hidden_size * model.dtype_bytes
            tp_ranks = np.arange(self.parallel.tp_size)
            time += 2 * self.network.allreduce_time(int(payload), tp_ranks).seconds
        return time

    # ------------------------------------------------------------------
    # Iteration time and throughput
    # ------------------------------------------------------------------
    def iteration_time(self) -> float:
        """Wall-clock seconds per optimizer step (all micro-batches)."""
        parallel = self.parallel
        model = self.model
        moe_fwd = self.moe_layer_breakdown().total()
        attn_fwd = self.attention_layer_time()
        layer_fwd = moe_fwd + attn_fwd
        # Backward costs roughly 2x the forward compute and repeats the two
        # all-to-alls; approximating both with the standard 3x factor.
        per_micro = 3.0 * model.num_layers * layer_fwd

        if parallel.activation_checkpointing:
            # Recomputation adds one forward plus two extra all-to-alls per
            # MoE layer in the backward pass (§4.3 "Why not checkpointing").
            breakdown = self.moe_layer_breakdown()
            extra = model.num_layers * (
                layer_fwd + breakdown.dispatch_a2a + breakdown.combine_a2a
            )
            per_micro += extra

        if parallel.use_ssmb and parallel.tp_size > 1:
            tokens = parallel.micro_batch_size * model.seq_length
            payload = tokens * model.hidden_size * model.dtype_bytes
            tp_ranks = np.arange(parallel.tp_size)
            gather = self.network.allgather_time(int(payload // parallel.tp_size), tp_ranks)
            per_micro += 2.0 * model.num_moe_layers * gather.seconds

        steps = parallel.gradient_accumulation_steps
        compute_time = steps * per_micro
        return compute_time + self.grad_sync_time()

    def grad_sync_time(self) -> float:
        """Un-overlapped gradient-synchronization seconds per step.

        Expert gradients all-reduce over the expert-DP group and dense
        gradients over the DP group, priced fully exposed — the evaluator
        discounts the fraction the bucketed ZeRO reducer measurably hides
        under backward (``benchmarks/test_zero_micro.py``) when a
        calibration record is available.
        """
        parallel = self.parallel
        model = self.model
        expert_grad_bytes = (
            model.num_moe_layers * model.moe_layer_expert_params() / parallel.ep_size
        ) * model.dtype_bytes
        dense_grad_bytes = (
            model.num_layers * model.attention_params()
            + model.num_dense_layers * model.dense_ffn_params()
            + model.embedding_params()
        ) / parallel.tp_size * model.dtype_bytes
        edp = max(1, parallel.world_size // parallel.ep_size)
        edp_ranks = np.arange(edp) * parallel.ep_size % parallel.world_size
        dp_ranks = np.arange(min(parallel.dp_size, parallel.world_size))
        grad_sync = (
            self.network.allreduce_time(int(expert_grad_bytes), np.unique(edp_ranks)).seconds
            + self.network.allreduce_time(int(dense_grad_bytes), dp_ranks).seconds
        )
        # Collectives spanning more than one rack see congestion outliers
        # (Appendix D); the gradient all-reduce spans the full DP group.
        return grad_sync * self.network.congestion_factor(parallel.dp_size)

    def tokens_per_step(self) -> int:
        """Tokens processed per optimizer step across the whole job."""
        return self.parallel.global_batch_size * self.model.seq_length

    def throughput_tflops_per_gpu(self) -> float:
        """Achieved training TFLOPs per GPU (the paper's headline metric)."""
        flops = self.model.train_flops_per_token() * self.tokens_per_step()
        seconds = self.iteration_time()
        return flops / seconds / self.parallel.world_size / 1e12

    def aggregated_pflops(self) -> float:
        """Aggregate achieved PFLOPs across the whole job."""
        return self.throughput_tflops_per_gpu() * self.parallel.world_size / 1e3

    def fits_in_memory(self) -> bool:
        """Whether the configuration avoids OOM on this system's GPUs."""
        return self.memory.fits(self.kind)
