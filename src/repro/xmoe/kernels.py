"""Padding-free "kernels": gather, scatter, sequential GEMM, and a cost model.

The real system implements these as Triton kernels so they run unmodified on
AMD and NVIDIA GPUs (§4.1.2).  Here the same operations are expressed as
vectorized numpy — the semantics (what is moved / multiplied) are identical
and that is what the correctness tests and the relative performance shapes
depend on.  :class:`KernelCostModel` supplies the time estimates the layer
time-breakdown figures (Figs. 11 and 12) are built from, charging each
operation for the bytes it streams and the FLOPs it performs on the target
GPU, with a penalty factor for the uncoalesced / padded access patterns of
the baseline pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.hardware import GPUSpec


# ----------------------------------------------------------------------
# Functional kernels
# ----------------------------------------------------------------------
def gather_kernel(gate_out: np.ndarray, token_ids: np.ndarray) -> np.ndarray:
    """``dispatch_in[i, :] = gate_out[token_ids[i], :]``.

    ``gate_out`` is the ``[S, H]`` output of the gating stage and
    ``token_ids`` the PFT ERI-array of length ``B``.
    """
    gate_out = np.asarray(gate_out)
    token_ids = np.asarray(token_ids, dtype=np.int64)
    if gate_out.ndim != 2:
        raise ValueError(f"gate_out must be [S, H], got shape {gate_out.shape}")
    if token_ids.ndim != 1:
        raise ValueError("token_ids must be 1-D")
    if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= gate_out.shape[0]):
        raise ValueError("token_ids out of range")
    return gate_out[token_ids]


def scatter_kernel(
    combine_in: np.ndarray,
    token_ids: np.ndarray,
    combine_weights: np.ndarray,
    num_tokens: int,
) -> np.ndarray:
    """``out[token_ids[i], :] += combine_in[i, :] * combine_weights[i]``.

    This is the combine-stage scatter: expert outputs are returned to their
    original sequence positions, scaled by the gate probability, and summed
    over the ``k`` experts that processed each token.
    """
    combine_in = np.asarray(combine_in)
    token_ids = np.asarray(token_ids, dtype=np.int64)
    combine_weights = np.asarray(combine_weights, dtype=combine_in.dtype)
    if combine_in.ndim != 2:
        raise ValueError("combine_in must be [B, H]")
    if token_ids.shape[0] != combine_in.shape[0]:
        raise ValueError("token_ids length must match combine_in rows")
    if combine_weights.shape[0] != combine_in.shape[0]:
        raise ValueError("combine_weights length must match combine_in rows")
    if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= num_tokens):
        raise ValueError("token_ids out of range")
    out = np.zeros((num_tokens, combine_in.shape[1]), dtype=combine_in.dtype)
    np.add.at(out, token_ids, combine_in * combine_weights[:, None])
    return out


def sequential_gemm(
    tokens: np.ndarray,
    w1: np.ndarray,
    w2: np.ndarray,
    tokens_per_expert: np.ndarray,
    *,
    activation: str = "silu",
) -> np.ndarray:
    """Per-expert two-layer FFN over an expert-grouped, padding-free buffer.

    ``tokens`` is ``[B, H]`` grouped by expert (ascending expert id);
    ``w1``/``w2`` are ``[E_local, H, F]`` / ``[E_local, F, H]`` stacked
    weights; ``tokens_per_expert`` has ``E_local`` entries summing to ``B``.
    One GEMM is launched per expert that has at least one token — no padding
    anywhere.
    """
    tokens = np.asarray(tokens)
    tokens_per_expert = np.asarray(tokens_per_expert, dtype=np.int64)
    if w1.ndim != 3 or w2.ndim != 3:
        raise ValueError("w1 and w2 must be stacked [E, ..] weight tensors")
    e_local = w1.shape[0]
    if tokens_per_expert.size != e_local:
        raise ValueError(
            f"tokens_per_expert has {tokens_per_expert.size} entries for {e_local} experts"
        )
    if tokens_per_expert.sum() != tokens.shape[0]:
        raise ValueError("tokens_per_expert must sum to the number of token rows")
    out = np.empty((tokens.shape[0], w2.shape[2]), dtype=tokens.dtype)
    offsets = np.concatenate([[0], np.cumsum(tokens_per_expert)])
    for e in range(e_local):
        lo, hi = int(offsets[e]), int(offsets[e + 1])
        if hi == lo:
            continue
        h = tokens[lo:hi] @ w1[e]
        h = _activate(h, activation)
        out[lo:hi] = h @ w2[e]
    return out


def _activate(x: np.ndarray, activation: str) -> np.ndarray:
    if activation == "silu":
        return x / (1.0 + np.exp(-x))
    if activation == "relu":
        return np.maximum(x, 0.0)
    if activation == "identity":
        return x
    raise ValueError(f"unknown activation {activation!r}")


# ----------------------------------------------------------------------
# Kernel cost model
# ----------------------------------------------------------------------
@dataclass
class KernelCostModel:
    """Time estimates for the MoE-layer stages on a given GPU.

    Memory-bound operations (gather, scatter, mask construction) are charged
    ``bytes_streamed / effective_bandwidth``; compute-bound operations
    (expert GEMMs) are charged ``flops / achievable_flops``.  The baseline's
    einsum-based dispatch additionally streams the ``[S, E, C]`` mask and the
    zero-padded buffers, and its uncoalesced fallback path (plain PyTorch
    indexing) gets an efficiency penalty — this is what produces the 5–35x
    gating/dispatch/combine speedups of Fig. 11.
    """

    gpu: GPUSpec
    #: fraction of peak HBM bandwidth achieved by coalesced Triton kernels
    coalesced_efficiency: float = 0.8
    #: fraction achieved by the baseline's uncoalesced indexing fallback
    uncoalesced_efficiency: float = 0.12
    #: fraction of peak FLOPs achieved by large batched GEMMs
    gemm_efficiency: float = 0.5
    #: fraction of peak FLOPs achieved by the small per-expert GEMMs of the
    #: sequential path (launch overhead + small shapes)
    small_gemm_efficiency: float = 0.35
    #: fixed launch overhead per sequential GEMM (seconds)
    gemm_launch_overhead_s: float = 5e-6

    def _bandwidth(self, coalesced: bool) -> float:
        eff = self.coalesced_efficiency if coalesced else self.uncoalesced_efficiency
        return self.gpu.memory_bandwidth_gbps * 1e9 * eff

    def _flops_rate(self, large: bool) -> float:
        eff = self.gemm_efficiency if large else self.small_gemm_efficiency
        return self.gpu.peak_tflops * 1e12 * eff

    # -- memory-bound stages --------------------------------------------
    def gather_time(self, num_rows: int, hidden: int, dtype_bytes: int = 2, *, coalesced: bool = True) -> float:
        """Row-gather: read + write every routed token once."""
        nbytes = 2.0 * num_rows * hidden * dtype_bytes
        return nbytes / self._bandwidth(coalesced)

    def scatter_time(self, num_rows: int, hidden: int, dtype_bytes: int = 2, *, coalesced: bool = True) -> float:
        """Weighted row-scatter: read, scale, and accumulate every routed token."""
        nbytes = 3.0 * num_rows * hidden * dtype_bytes
        return nbytes / self._bandwidth(coalesced)

    def gating_time(self, num_tokens: int, hidden: int, num_experts: int, dtype_bytes: int = 2) -> float:
        """Router projection + softmax + top-k (compute + streaming)."""
        flops = 2.0 * num_tokens * hidden * num_experts
        nbytes = num_tokens * (hidden + 2 * num_experts) * dtype_bytes
        return flops / self._flops_rate(True) + nbytes / self._bandwidth(True)

    def mask_construction_time(self, num_tokens: int, num_experts: int, capacity: int, dtype_bytes: int = 2) -> float:
        """Baseline dispatch-mask build: materializes ``[S, E, C]``."""
        nbytes = float(num_tokens) * num_experts * capacity * dtype_bytes
        return nbytes / self._bandwidth(False)

    def einsum_dispatch_time(
        self, num_tokens: int, num_experts: int, capacity: int, hidden: int, dtype_bytes: int = 2
    ) -> float:
        """Baseline einsum dispatch: ``SEC,SH->ECH`` touching padded buffers."""
        flops = 2.0 * num_tokens * num_experts * capacity * hidden
        nbytes = (
            float(num_tokens) * num_experts * capacity
            + num_tokens * hidden
            + num_experts * capacity * hidden
        ) * dtype_bytes
        # The einsum is effectively bandwidth-bound on the huge sparse mask.
        return max(flops / self._flops_rate(True), nbytes / self._bandwidth(False))

    # -- compute-bound stages ---------------------------------------------
    def padded_expert_gemm_time(self, num_experts_local: int, capacity: int, hidden: int, ffn_hidden: int) -> float:
        """Batched GEMM over fixed-capacity (zero-padded) expert buffers."""
        flops = 4.0 * num_experts_local * capacity * hidden * ffn_hidden
        return flops / self._flops_rate(True)

    def sequential_gemm_time(
        self, tokens_per_expert: np.ndarray, hidden: int, ffn_hidden: int
    ) -> float:
        """Per-expert GEMMs over exactly the routed tokens (no padding)."""
        tokens_per_expert = np.asarray(tokens_per_expert, dtype=np.float64)
        active = tokens_per_expert[tokens_per_expert > 0]
        flops = 4.0 * float(active.sum()) * hidden * ffn_hidden
        return flops / self._flops_rate(False) + active.size * self.gemm_launch_overhead_s
