"""Sequence-Sharded MoE Blocks (SSMB), §4.3.

Under TP + EP hybrid parallelism every tensor-parallel rank holds a full
copy of the input sequence, so the dominant activations of an
expert-specialized MoE layer (``A_dispatch`` and ``A_combine``) are
duplicated across the TP group and none of TP, EP, or ZeRO-DP shrinks them.
SSMB exploits the fact that every operation in the MoE block is token-wise:
each TP rank *drops* all but its ``1/G`` slice of the sequence before the
MoE block, processes only that slice (gating, dispatch, experts, combine),
and an all-gather at the block's exit restores the replicated layout the
following TP block expects.  The backward pass mirrors this (drop incoming
gradients, process, all-gather).

Two things are provided here:

* :class:`SequenceShardedMoEBlock` — a functional wrapper that shards a
  sequence across a TP group, applies a per-shard MoE layer, and re-gathers,
  so equivalence with the unsharded computation can be tested directly.
* The analytic saving/cost formulas of Appendix C.2 (Eqs. 1–2) used by the
  memory model and the SSMB-vs-TED trade-off analysis (Fig. 17).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.config.model_config import MoEModelConfig


# ----------------------------------------------------------------------
# Analytic formulas (Appendix C.2)
# ----------------------------------------------------------------------
def ssmb_activation_saving_bytes(
    seq_length: int,
    hidden_size: int,
    top_k: int,
    capacity_factor: float,
    tp_size: int,
    dtype_bytes: int = 2,
) -> float:
    """Eq. (1): per-device activation bytes saved by SSMB at TP degree ``G``.

    ``A_saving = 4 * c * k * S * H * (G-1)/G`` — the factor 4 covers the
    dispatch and combine activations in both half-precision copies the
    training step keeps alive (forward value + gradient buffer).
    """
    if tp_size <= 0:
        raise ValueError("tp_size must be positive")
    g = tp_size
    per_unit = 4.0 * capacity_factor * top_k * seq_length * hidden_size
    return per_unit * (g - 1) / g * (dtype_bytes / 2.0)


def ssmb_model_state_cost_bytes(
    hidden_size: int,
    ffn_hidden_size: int,
    tp_size: int,
    num_experts: int | None = None,
    ep_size: int | None = None,
) -> float:
    """Eq. (2): extra model-state bytes SSMB keeps relative to TED.

    TED additionally slices expert weights by TP; SSMB does not, so each
    device keeps ``E/EP * 8 * H_FFN * H * (G-1)/G`` more bytes of expert
    model states (parameters + gradients in half precision plus the
    non-partitioned share).  With EP free to grow up to ``E`` the lower
    bound is ``8 * H_FFN * H * (G-1)/G``.
    """
    g = tp_size
    experts_per_rank = 1.0
    if num_experts is not None and ep_size is not None:
        if ep_size <= 0:
            raise ValueError("ep_size must be positive")
        experts_per_rank = num_experts / ep_size
    return experts_per_rank * 8.0 * ffn_hidden_size * hidden_size * (g - 1) / g


def ssmb_beats_ted(
    model: MoEModelConfig, *, capacity_factor: float | None = None
) -> bool:
    """Decision rule of §4.3: SSMB saves more memory than TED iff
    ``r = k / H_FFN > 2 / (c * S)``."""
    c = capacity_factor if capacity_factor is not None else model.capacity_factor
    r = model.top_k / model.ffn_hidden_size
    return r > 2.0 / (c * model.seq_length)


# ----------------------------------------------------------------------
# Functional sequence sharding
# ----------------------------------------------------------------------
@dataclass
class ShardInfo:
    """Which slice of the sequence a TP rank keeps inside the MoE block."""

    tp_rank: int
    tp_size: int
    start: int
    stop: int

    @property
    def length(self) -> int:
        """Sequence positions owned by this shard."""
        return self.stop - self.start


def shard_bounds(seq_length: int, tp_rank: int, tp_size: int) -> ShardInfo:
    """Contiguous, balanced shard boundaries for one TP rank."""
    if not (0 <= tp_rank < tp_size):
        raise ValueError(f"tp_rank {tp_rank} out of range for tp_size {tp_size}")
    base = seq_length // tp_size
    remainder = seq_length % tp_size
    start = tp_rank * base + min(tp_rank, remainder)
    stop = start + base + (1 if tp_rank < remainder else 0)
    return ShardInfo(tp_rank=tp_rank, tp_size=tp_size, start=start, stop=stop)


class SequenceShardedMoEBlock:
    """Drop → per-shard MoE → all-gather, over a TP group.

    Parameters
    ----------
    moe_layer_fn:
        Callable applied to each shard's ``[s_i, H]`` numpy array, returning
        the ``[s_i, H]`` MoE output (e.g. a closure over a padding-free
        pipeline).  Token-wise independence of the MoE block guarantees that
        concatenating the per-shard outputs equals the unsharded output.
    tp_group:
        Optional process group used for the all-gather; when provided the
        gather goes through the communication substrate so its cost is
        recorded, otherwise a plain concatenation is used.
    """

    def __init__(
        self,
        moe_layer_fn: Callable[[np.ndarray], np.ndarray],
        tp_size: int,
        tp_group: ProcessGroup | None = None,
    ):
        if tp_size <= 0:
            raise ValueError("tp_size must be positive")
        if tp_group is not None and tp_group.size != tp_size:
            raise ValueError("tp_group size must equal tp_size")
        self.moe_layer_fn = moe_layer_fn
        self.tp_size = tp_size
        self.tp_group = tp_group

    def shard(self, sequence: np.ndarray, tp_rank: int) -> np.ndarray:
        """The slice of ``sequence`` kept by ``tp_rank`` (the "drop" step)."""
        info = shard_bounds(sequence.shape[0], tp_rank, self.tp_size)
        return sequence[info.start : info.stop]

    def forward(self, replicated_sequence: np.ndarray) -> np.ndarray:
        """Run the full SSMB block given the TP-replicated input sequence.

        Every TP rank drops to its shard, applies the MoE layer, and the
        shards are re-gathered into the full output sequence.
        """
        shards = [
            self.moe_layer_fn(self.shard(replicated_sequence, r))
            for r in range(self.tp_size)
        ]
        if self.tp_group is not None:
            gathered = self.tp_group.allgather(shards, op_name="ssmb_allgather")
            return gathered[0]
        return np.concatenate(shards, axis=0)

    def activation_scale(self) -> float:
        """Factor by which SSMB shrinks the MoE-block activations per device."""
        return 1.0 / self.tp_size
