"""The padding-free MoE pipeline.

Two implementations live here:

* :class:`PaddingFreeMoELayer` — the single-process autograd version that
  plugs into :class:`~repro.moe.transformer.MoETransformerLM`.  It follows
  Listing 1 exactly: gating → PFT construction → gather → sequential GEMM →
  weighted scatter, with no zero padding anywhere.  It trains the
  loss-validation model (Fig. 15) against the padded baseline.
* :class:`DistributedMoEDispatcher` — the multi-rank (numpy) version that
  performs the real uneven all-to-all exchanges over a
  :class:`~repro.comm.process_group.ProcessGroup`, used to validate the
  dispatch/combine plumbing across ranks and as the substrate RBD plugs
  into.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.deepspeed_moe import compute_capacity
from repro.comm.process_group import ProcessGroup
from repro.moe.experts import ExpertBank
from repro.moe.gating import TopKGate
from repro.tensor import ops
from repro.tensor.autograd import Tensor
from repro.xmoe.kernels import gather_kernel, scatter_kernel, sequential_gemm
from repro.xmoe.pft import PFT, build_pft


@dataclass
class PaddingFreeStats:
    """Bookkeeping from one padding-free forward pass."""

    num_tokens: int
    num_routed_tokens: int
    capacity: int
    num_experts: int
    hidden_size: int
    dropped_assignments: int
    dtype_bytes: int = 8

    @property
    def dispatch_buffer_bytes(self) -> int:
        """Bytes of the padding-free dispatched token buffer (``B * H``)."""
        return self.num_routed_tokens * self.hidden_size * self.dtype_bytes

    @property
    def alltoall_bytes(self) -> int:
        """Bytes one dispatch all-to-all moves (only real tokens travel)."""
        return self.dispatch_buffer_bytes

    @property
    def padding_fraction(self) -> float:
        """Always zero — kept for symmetry with the padded baseline stats."""
        return 0.0


class PaddingFreeMoELayer:
    """Single-process functional X-MoE layer (Listing 1 semantics)."""

    def __init__(
        self,
        gate: TopKGate,
        experts: ExpertBank,
        capacity_factor: float = 1.25,
    ):
        if gate.num_experts != experts.num_experts:
            raise ValueError("gate and expert bank disagree on the expert count")
        self.gate = gate
        self.experts = experts
        self.capacity_factor = capacity_factor
        self.last_stats: PaddingFreeStats | None = None
        self.last_pft: PFT | None = None

    def parameters(self) -> list[Tensor]:
        return self.gate.parameters() + self.experts.parameters()

    def __call__(self, tokens: Tensor) -> tuple[Tensor, Tensor]:
        """Forward ``[S, H]`` tokens; returns ``(output, aux_loss)``."""
        gate_out = self.gate(tokens)
        s, h = tokens.shape
        e = self.gate.num_experts
        k = self.gate.top_k
        capacity = compute_capacity(s, k, e, self.capacity_factor)

        pft = build_pft(capacity, gate_out.top_experts, gate_out.top_scores, e)
        self.last_pft = pft

        # Dispatch: gather routed tokens into an expert-grouped buffer.
        dispatched = ops.gather_rows(tokens, pft.token_ids)
        # Experts: one GEMM per expert over exactly its tokens.
        expert_out = self.experts.forward_sequential(dispatched, pft.tokens_per_expert)
        # Combine: scatter back to sequence positions, scaled by gate probs.
        combine_weights = gate_out.probs[pft.token_ids, pft.expert_ids]
        output = ops.scatter_rows(expert_out, pft.token_ids, s, weights=combine_weights)

        self.last_stats = PaddingFreeStats(
            num_tokens=s,
            num_routed_tokens=pft.num_routed_tokens,
            capacity=capacity,
            num_experts=e,
            hidden_size=h,
            dropped_assignments=pft.dropped_assignments,
        )
        return output, gate_out.aux_loss


# ----------------------------------------------------------------------
# Distributed (multi-rank) dispatch over a ProcessGroup
# ----------------------------------------------------------------------
@dataclass
class _DispatchState:
    """Everything the combine stage needs to reverse a dispatch."""

    pfts: list[PFT]
    send_orders: list[np.ndarray]
    send_splits: list[np.ndarray]
    recv_splits: list[np.ndarray]
    recv_expert_ids: list[np.ndarray]
    recv_sort_orders: list[np.ndarray]
    tokens_per_local_expert: list[np.ndarray]


class DistributedMoEDispatcher:
    """Uneven all-to-all dispatch/combine of PFT buffers across EP ranks.

    Parameters
    ----------
    group:
        The expert-parallel process group.
    num_experts:
        Global number of experts in the layer.
    expert_to_rank:
        Length-``num_experts`` array mapping each expert to the group-local
        rank that hosts it (defaults to a contiguous block mapping).
    """

    def __init__(
        self,
        group: ProcessGroup,
        num_experts: int,
        expert_to_rank: np.ndarray | None = None,
    ):
        self.group = group
        self.num_experts = num_experts
        if expert_to_rank is None:
            if num_experts % group.size:
                raise ValueError(
                    f"num_experts={num_experts} not divisible by EP size {group.size}"
                )
            per_rank = num_experts // group.size
            expert_to_rank = np.repeat(np.arange(group.size), per_rank)
        expert_to_rank = np.asarray(expert_to_rank, dtype=np.int64)
        if expert_to_rank.size != num_experts:
            raise ValueError("expert_to_rank must have one entry per expert")
        if expert_to_rank.min() < 0 or expert_to_rank.max() >= group.size:
            raise ValueError("expert_to_rank entries out of range for the group")
        self.expert_to_rank = expert_to_rank
        # Local (per-hosting-rank) index of each expert.
        self.local_expert_index = np.zeros(num_experts, dtype=np.int64)
        for r in range(group.size):
            experts_on_r = np.flatnonzero(expert_to_rank == r)
            self.local_expert_index[experts_on_r] = np.arange(experts_on_r.size)

    def experts_on_rank(self, local_rank: int) -> np.ndarray:
        """Global ids of the experts hosted by a group-local rank."""
        return np.flatnonzero(self.expert_to_rank == local_rank)

    # ------------------------------------------------------------------
    def dispatch(
        self,
        per_rank_tokens: list[np.ndarray],
        per_rank_pfts: list[PFT],
    ) -> tuple[list[np.ndarray], _DispatchState]:
        """Route every rank's PFT tokens to the ranks hosting their experts.

        Returns ``(expert_inputs, state)`` where ``expert_inputs[r]`` is the
        ``[B_r, H]`` buffer of tokens rank ``r``'s experts must process,
        grouped by (local) expert id, and ``state`` carries the metadata the
        combine stage needs.
        """
        size = self.group.size
        if len(per_rank_tokens) != size or len(per_rank_pfts) != size:
            raise ValueError("need one token buffer and one PFT per group rank")

        send_buffers: list[np.ndarray] = []
        send_expert_ids: list[np.ndarray] = []
        send_orders: list[np.ndarray] = []
        send_splits: list[np.ndarray] = []
        for r in range(size):
            pft = per_rank_pfts[r]
            tokens = per_rank_tokens[r]
            gathered = gather_kernel(tokens, pft.token_ids)
            dest_rank = self.expert_to_rank[pft.expert_ids]
            # Order rows by destination rank, then expert id, then source
            # position so the alltoallv splits are contiguous.
            order = np.lexsort((pft.token_ids, pft.expert_ids, dest_rank))
            send_orders.append(order)
            send_buffers.append(gathered[order])
            send_expert_ids.append(pft.expert_ids[order])
            splits = np.bincount(dest_rank, minlength=size).astype(np.int64)
            send_splits.append(splits)

        recv_buffers, recv_splits = self.group.alltoallv(
            send_buffers, send_splits, op_name="dispatch_a2a"
        )
        recv_expert_buffers, _ = self.group.alltoallv(
            [ids.reshape(-1, 1) for ids in send_expert_ids],
            send_splits,
            op_name="dispatch_meta_a2a",
        )

        expert_inputs: list[np.ndarray] = []
        recv_expert_ids: list[np.ndarray] = []
        recv_sort_orders: list[np.ndarray] = []
        tokens_per_local_expert: list[np.ndarray] = []
        for r in range(size):
            expert_ids_r = recv_expert_buffers[r].reshape(-1).astype(np.int64)
            # Group the inbound tokens by expert so the sequential GEMM can
            # process one contiguous segment per local expert.
            sort_order = np.argsort(expert_ids_r, kind="stable")
            expert_inputs.append(recv_buffers[r][sort_order])
            recv_expert_ids.append(expert_ids_r)
            recv_sort_orders.append(sort_order)
            local_experts = self.experts_on_rank(r)
            counts = np.bincount(expert_ids_r, minlength=self.num_experts)
            tokens_per_local_expert.append(counts[local_experts].astype(np.int64))

        state = _DispatchState(
            pfts=list(per_rank_pfts),
            send_orders=send_orders,
            send_splits=send_splits,
            recv_splits=recv_splits,
            recv_expert_ids=recv_expert_ids,
            recv_sort_orders=recv_sort_orders,
            tokens_per_local_expert=tokens_per_local_expert,
        )
        return expert_inputs, state

    # ------------------------------------------------------------------
    def combine(
        self,
        per_rank_expert_outputs: list[np.ndarray],
        state: _DispatchState,
        num_tokens_per_rank: list[int],
    ) -> list[np.ndarray]:
        """Return expert outputs to their source ranks and sequence slots."""
        size = self.group.size
        if len(per_rank_expert_outputs) != size:
            raise ValueError("need one expert-output buffer per group rank")

        # Undo the by-expert sort so rows line up with the dispatch receive
        # order, then alltoallv back using the transposed splits.
        send_back: list[np.ndarray] = []
        for r in range(size):
            out = per_rank_expert_outputs[r]
            unsort = np.empty_like(state.recv_sort_orders[r])
            unsort[state.recv_sort_orders[r]] = np.arange(unsort.size)
            send_back.append(out[unsort])

        returned, _ = self.group.alltoallv(
            send_back, state.recv_splits, op_name="combine_a2a"
        )

        outputs: list[np.ndarray] = []
        for r in range(size):
            pft = state.pfts[r]
            order = state.send_orders[r]
            # Rows come back in the order we sent them; map to PFT order.
            restored = np.empty_like(returned[r])
            restored[np.arange(order.size)] = returned[r]
            pft_order_outputs = np.empty_like(returned[r])
            pft_order_outputs[order] = restored
            combined = scatter_kernel(
                pft_order_outputs,
                pft.token_ids,
                pft.combine_weights,
                num_tokens_per_rank[r],
            )
            outputs.append(combined)
        return outputs

    # ------------------------------------------------------------------
    def run_experts(
        self,
        expert_inputs: list[np.ndarray],
        state: _DispatchState,
        per_rank_w1: list[np.ndarray],
        per_rank_w2: list[np.ndarray],
        *,
        activation: str = "silu",
    ) -> list[np.ndarray]:
        """Run each rank's local experts over its grouped input buffer."""
        outputs = []
        for r in range(self.group.size):
            outputs.append(
                sequential_gemm(
                    expert_inputs[r],
                    per_rank_w1[r],
                    per_rank_w2[r],
                    state.tokens_per_local_expert[r],
                    activation=activation,
                )
            )
        return outputs
