"""The padding-free MoE pipeline.

Two implementations live here:

* :class:`PaddingFreeMoELayer` — the single-process autograd version that
  plugs into :class:`~repro.moe.transformer.MoETransformerLM`.  It follows
  Listing 1 exactly: gating → PFT construction → gather → sequential GEMM →
  weighted scatter, with no zero padding anywhere.  It trains the
  loss-validation model (Fig. 15) against the padded baseline.
* :class:`DistributedMoEDispatcher` — the multi-rank (numpy) version that
  performs the real uneven all-to-all exchanges over a
  :class:`~repro.comm.process_group.ProcessGroup`.  It is a thin wrapper
  over the vectorized routing-plan engine (:mod:`repro.routing`) with a
  :class:`~repro.routing.planner.FlatPlanner`, and doubles as the
  correctness oracle RBD is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.deepspeed_moe import compute_capacity
from repro.comm.process_group import ProcessGroup
from repro.moe.experts import ExpertBank
from repro.moe.gating import TopKGate
from repro.routing.engine import PlanDispatcher
from repro.routing.plan import DispatchPlan
from repro.routing.planner import FlatPlanner
from repro.tensor import ops
from repro.tensor.autograd import Tensor
from repro.xmoe.pft import PFT, build_pft


@dataclass
class PaddingFreeStats:
    """Bookkeeping from one padding-free forward pass."""

    num_tokens: int
    num_routed_tokens: int
    capacity: int
    num_experts: int
    hidden_size: int
    dropped_assignments: int
    dtype_bytes: int = 8

    @property
    def dispatch_buffer_bytes(self) -> int:
        """Bytes of the padding-free dispatched token buffer (``B * H``)."""
        return self.num_routed_tokens * self.hidden_size * self.dtype_bytes

    @property
    def alltoall_bytes(self) -> int:
        """Bytes one dispatch all-to-all moves (only real tokens travel)."""
        return self.dispatch_buffer_bytes

    @property
    def padding_fraction(self) -> float:
        """Always zero — kept for symmetry with the padded baseline stats."""
        return 0.0


class PaddingFreeMoELayer:
    """Single-process functional X-MoE layer (Listing 1 semantics)."""

    def __init__(
        self,
        gate: TopKGate,
        experts: ExpertBank,
        capacity_factor: float = 1.25,
    ):
        if gate.num_experts != experts.num_experts:
            raise ValueError("gate and expert bank disagree on the expert count")
        self.gate = gate
        self.experts = experts
        self.capacity_factor = capacity_factor
        self.last_stats: PaddingFreeStats | None = None
        self.last_pft: PFT | None = None
        self._step = 0  # decorrelates router exploration noise across calls

    def parameters(self) -> list[Tensor]:
        """All trainable tensors: gate weight plus expert banks."""
        return self.gate.parameters() + self.experts.parameters()

    def __call__(self, tokens: Tensor) -> tuple[Tensor, Tensor]:
        """Forward ``[S, H]`` tokens; returns ``(output, aux_loss)``."""
        gate_out = self.gate(tokens, step=self._step)
        self._step += 1
        s, h = tokens.shape
        e = self.gate.num_experts
        k = self.gate.top_k
        capacity = compute_capacity(s, k, e, self.capacity_factor)

        if gate_out.decision is not None:
            # Policy drops are filtered inside to_pft, then the standard
            # capacity rule applies; for the default policy this path is
            # bit-identical to build_pft on the [S, k] arrays.
            pft = gate_out.decision.to_pft(capacity)
        else:
            pft = build_pft(capacity, gate_out.top_experts, gate_out.top_scores, e)
        self.last_pft = pft

        # Dispatch: gather routed tokens into an expert-grouped buffer.
        dispatched = ops.gather_rows(tokens, pft.token_ids)
        # Experts: one GEMM per expert over exactly its tokens.
        expert_out = self.experts.forward_sequential(dispatched, pft.tokens_per_expert)
        # Combine: scatter back to sequence positions, scaled by gate probs.
        combine_weights = gate_out.probs[pft.token_ids, pft.expert_ids]
        output = ops.scatter_rows(expert_out, pft.token_ids, s, weights=combine_weights)

        self.last_stats = PaddingFreeStats(
            num_tokens=s,
            num_routed_tokens=pft.num_routed_tokens,
            capacity=capacity,
            num_experts=e,
            hidden_size=h,
            dropped_assignments=pft.dropped_assignments,
        )
        return output, gate_out.aux_loss


# ----------------------------------------------------------------------
# Distributed (multi-rank) dispatch over a ProcessGroup
# ----------------------------------------------------------------------
class DistributedMoEDispatcher:
    """Uneven all-to-all dispatch/combine of PFT buffers across EP ranks.

    Compatibility wrapper over the vectorized routing-plan engine: a
    :class:`repro.routing.FlatPlanner` compiles every PFT into a
    :class:`repro.routing.DispatchPlan` and a
    :class:`repro.routing.PlanDispatcher` executes it.  The flat plan also
    serves as the correctness oracle for RBD — both planners produce
    canonically ordered expert inputs and identical combine fold orders, so
    :class:`~repro.xmoe.rbd.RBDDispatcher` outputs match this dispatcher
    bit for bit.

    Accounting note: the pre-refactor implementation exchanged per-row
    expert ids in a second ``dispatch_meta_a2a`` collective (8 bytes per
    routed assignment); the plan engine derives all arrival metadata from
    the plan instead, so only the token payload is charged.  This matches
    how the RBD path always treated routing metadata (carried out of band,
    negligible per the paper) and makes the two paths' recorded traffic
    directly comparable.

    Parameters
    ----------
    group:
        The expert-parallel process group.
    num_experts:
        Global number of experts in the layer.
    expert_to_rank:
        Length-``num_experts`` array mapping each expert to the group-local
        rank that hosts it (defaults to a contiguous block mapping).
    """

    def __init__(
        self,
        group: ProcessGroup,
        num_experts: int,
        expert_to_rank: np.ndarray | None = None,
    ):
        self.planner = FlatPlanner(group, num_experts, expert_to_rank)
        self.engine = PlanDispatcher(group, self.planner)
        self.group = group
        self.num_experts = num_experts
        self.expert_to_rank = self.planner.expert_to_rank

    def experts_on_rank(self, local_rank: int) -> np.ndarray:
        """Global ids of the experts hosted by a group-local rank."""
        return self.planner.experts_on_rank(local_rank)

    # ------------------------------------------------------------------
    def plan(self, per_rank_pfts: list[PFT], *, step: int | None = None) -> DispatchPlan:
        """Build the flat routing plan — exactly what :meth:`dispatch` uses."""
        return self.engine.plan(per_rank_pfts, step=step)

    # ------------------------------------------------------------------
    def dispatch(
        self,
        per_rank_tokens: list[np.ndarray],
        per_rank_pfts: list[PFT],
        *,
        plan: DispatchPlan | None = None,
        step: int | None = None,
    ) -> tuple[list[np.ndarray], DispatchPlan]:
        """Route every rank's PFT tokens to the ranks hosting their experts.

        Returns ``(expert_inputs, plan)`` where ``expert_inputs[r]`` is the
        ``[B_r, H]`` buffer of tokens rank ``r``'s experts must process,
        grouped by (local) expert id, and ``plan`` carries all the metadata
        the combine stage needs.
        """
        return self.engine.dispatch(per_rank_tokens, per_rank_pfts, plan=plan, step=step)

    # ------------------------------------------------------------------
    def combine(
        self,
        per_rank_expert_outputs: list[np.ndarray],
        plan: DispatchPlan,
        num_tokens_per_rank: list[int],
    ) -> list[np.ndarray]:
        """Return expert outputs to their source ranks and sequence slots."""
        return self.engine.combine(per_rank_expert_outputs, plan, num_tokens_per_rank)

    # ------------------------------------------------------------------
    def run_experts(
        self,
        expert_inputs: list[np.ndarray],
        plan: DispatchPlan,
        per_rank_w1: list[np.ndarray],
        per_rank_w2: list[np.ndarray],
        *,
        activation: str = "silu",
    ) -> list[np.ndarray]:
        """Run each rank's local experts over its grouped input buffer."""
        return self.engine.run_experts(
            expert_inputs, plan, per_rank_w1, per_rank_w2, activation=activation
        )
