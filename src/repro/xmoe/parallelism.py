"""Hybrid-parallelism planning: placement, expert maps, and group layout.

Appendix C.1 of the paper analyzes where EP and DP ranks should sit on a
hierarchical machine:

* **EP-first** placement puts all experts of one replica on consecutive
  ranks (within a node when EP ≤ node size), so EP all-to-all stays local
  but DP gradient synchronization crosses nodes.
* **DP-first** placement puts the replicas of the same expert on consecutive
  ranks, so DP gradient all-reduce stays intra-node while the EP all-to-all
  crosses nodes.

Which wins depends on how much data each collective moves; on Frontier, for
large MoEs, DP-first wins because gradient volume scales with parameters
while the all-to-all volume scales only with the (much smaller) activations.
:func:`plan_placement` evaluates both against the network model and picks
the cheaper one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.network import NetworkModel
from repro.cluster.topology import Topology
from repro.config.model_config import MoEModelConfig
from repro.config.parallel_config import ParallelConfig, PlacementOrder


def expert_to_rank_map(num_experts: int, ep_size: int) -> np.ndarray:
    """Contiguous block mapping of experts to EP-group-local ranks."""
    if ep_size <= 0:
        raise ValueError("ep_size must be positive")
    if num_experts % ep_size:
        raise ValueError(
            f"num_experts={num_experts} must be divisible by ep_size={ep_size}"
        )
    per_rank = num_experts // ep_size
    return np.repeat(np.arange(ep_size), per_rank)


def build_parallel_groups(
    parallel: ParallelConfig, placement: PlacementOrder | None = None
) -> dict[str, list[list[int]]]:
    """Rank lists for every EP group and every expert-DP group.

    With ``EP_FIRST`` placement, consecutive global ranks form an EP group
    (``[0..ep-1], [ep..2ep-1], ...``) and rank ``i`` of every EP group forms
    an expert-DP group.  With ``DP_FIRST`` the roles are swapped: consecutive
    ranks replicate the same experts (an expert-DP group) and EP groups
    stride across them.
    """
    placement = placement or parallel.placement
    world = parallel.world_size
    ep = parallel.ep_size
    edp = parallel.edp_size
    ranks = np.arange(world)
    if placement is PlacementOrder.EP_FIRST:
        grid = ranks.reshape(edp, ep)  # row = one EP group
        ep_groups = [list(map(int, row)) for row in grid]
        dp_groups = [list(map(int, grid[:, j])) for j in range(ep)]
    else:
        grid = ranks.reshape(ep, edp)  # row = one expert-DP group
        dp_groups = [list(map(int, row)) for row in grid]
        ep_groups = [list(map(int, grid[:, j])) for j in range(edp)]
    return {"ep_groups": ep_groups, "expert_dp_groups": dp_groups}


@dataclass
class PlacementPlan:
    """Result of evaluating a placement order on a given machine."""

    placement: PlacementOrder
    ep_alltoall_seconds: float
    dp_allreduce_seconds: float

    @property
    def total_seconds(self) -> float:
        """Summed per-iteration communication cost of this placement."""
        return self.ep_alltoall_seconds + self.dp_allreduce_seconds


def _evaluate_placement(
    placement: PlacementOrder,
    model: MoEModelConfig,
    parallel: ParallelConfig,
    network: NetworkModel,
    *,
    tokens_per_rank: int,
) -> PlacementPlan:
    """Estimate per-step EP all-to-all and DP all-reduce time for a placement."""
    groups = build_parallel_groups(parallel, placement)
    dtype = model.dtype_bytes

    # EP all-to-all: each rank sends k * tokens * H bytes spread over the
    # group, four times per MoE layer (dispatch + combine, fwd + bwd).
    ep_group = np.asarray(groups["ep_groups"][0])
    a2a_bytes_per_pair = (
        model.top_k * tokens_per_rank * model.hidden_size * dtype / max(1, ep_group.size)
    )
    traffic = np.full((ep_group.size, ep_group.size), a2a_bytes_per_pair)
    np.fill_diagonal(traffic, 0.0)
    a2a = network.alltoall_time(traffic, ep_group)
    ep_seconds = 4.0 * model.num_moe_layers * a2a.seconds

    # DP all-reduce: expert gradients reduced across the expert-DP group
    # once per step.
    dp_group = np.asarray(groups["expert_dp_groups"][0])
    expert_grad_bytes = (
        model.num_moe_layers
        * model.moe_layer_expert_params()
        / parallel.ep_size
        * dtype
    )
    ar = network.allreduce_time(int(expert_grad_bytes), dp_group)
    return PlacementPlan(
        placement=placement,
        ep_alltoall_seconds=ep_seconds,
        dp_allreduce_seconds=ar.seconds,
    )


def plan_placement(
    model: MoEModelConfig,
    parallel: ParallelConfig,
    topology: Topology,
    *,
    tokens_per_rank: int | None = None,
    seed: int | None = 0,
) -> tuple[PlacementPlan, PlacementPlan, PlacementOrder]:
    """Evaluate EP-first vs DP-first placement and return the winner.

    Returns ``(ep_first_plan, dp_first_plan, recommended)``.
    """
    network = NetworkModel(topology, seed=seed)
    if tokens_per_rank is None:
        tokens_per_rank = parallel.micro_batch_size * model.seq_length
    ep_first = _evaluate_placement(
        PlacementOrder.EP_FIRST, model, parallel, network, tokens_per_rank=tokens_per_rank
    )
    dp_first = _evaluate_placement(
        PlacementOrder.DP_FIRST, model, parallel, network, tokens_per_rank=tokens_per_rank
    )
    recommended = (
        PlacementOrder.EP_FIRST
        if ep_first.total_seconds <= dp_first.total_seconds
        else PlacementOrder.DP_FIRST
    )
    return ep_first, dp_first, recommended
