"""The Padding-Free Token buffer (PFT) and its construction routine.

The PFT (§4.1.1, Listing 1) replaces the dense ``[S, E, C]`` dispatch mask
and fixed-capacity expert buffers with

* a token buffer ``x`` holding **only** routed tokens, grouped by expert id,
  and
* the *Expert Routing Information arrays* (ERI-arrays):

  - ``token_ids[i]`` — original sequence position of the ``i``-th routed
    token (``dispatch_in[i] = gate_out[token_ids[i]]``),
  - ``expert_ids[i]`` — the expert the ``i``-th routed token goes to,
  - ``tokens_per_expert[e]`` — how many routed tokens target expert ``e``,
  - ``combine_weights[i]`` — the gate probability used to scale this
    token's expert output in the combine stage.

Token dropping is *capacity-only*: within each expert the assignments are
ranked by their gate score and only the top ``max_token_count`` survive —
unlike DeepSpeed-MoE, no assignment is dropped merely for having a negative
raw score (§5.6).

Two implementations are provided: :func:`build_pft_reference`, a direct
translation of Listing 1, and :func:`build_pft`, the optimized version using
the transposed one-hot + outer-axis cumsum described in Appendix B.2 (the
paper reports a 10x speedup of gating + construction from this data-layout
change).  Both produce identical PFTs and the test suite checks that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PFT:
    """Padding-Free Token buffer with ERI-arrays.

    ``x`` starts as ``None`` and is assigned by the dispatch / MLP / combine
    stages as the pipeline progresses, mirroring Listing 1 where each stage
    re-binds ``pft.x``.
    """

    token_ids: np.ndarray
    expert_ids: np.ndarray
    tokens_per_expert: np.ndarray
    combine_weights: np.ndarray
    num_source_tokens: int
    x: np.ndarray | None = None
    dropped_assignments: int = 0

    def __post_init__(self) -> None:
        b = self.token_ids.shape[0]
        if self.expert_ids.shape[0] != b or self.combine_weights.shape[0] != b:
            raise ValueError("ERI-arrays must all have the same length B")
        if self.tokens_per_expert.sum() != b:
            raise ValueError(
                f"tokens_per_expert sums to {self.tokens_per_expert.sum()} "
                f"but there are {b} routed tokens"
            )
        if b and not np.all(np.diff(self.expert_ids) >= 0):
            raise ValueError("PFT must be sorted by expert id")

    @property
    def num_routed_tokens(self) -> int:
        """``B``: the number of surviving (token, expert) assignments."""
        return int(self.token_ids.shape[0])

    @property
    def num_experts(self) -> int:
        return int(self.tokens_per_expert.shape[0])

    def expert_offsets(self) -> np.ndarray:
        """Start offsets of each expert's segment in the token buffer."""
        return np.concatenate([[0], np.cumsum(self.tokens_per_expert)])

    def buffer_bytes(self, hidden_size: int, dtype_bytes: int = 2) -> int:
        """Bytes of the (padding-free) dispatched token buffer."""
        return self.num_routed_tokens * hidden_size * dtype_bytes

    def eri_bytes(self) -> int:
        """Bytes of the ERI metadata arrays."""
        return int(
            self.token_ids.nbytes
            + self.expert_ids.nbytes
            + self.tokens_per_expert.nbytes
            + self.combine_weights.nbytes
        )

    def validate(self) -> None:
        """Check internal consistency (used by property-based tests)."""
        counts = np.bincount(self.expert_ids, minlength=self.num_experts)
        if not np.array_equal(counts, self.tokens_per_expert):
            raise AssertionError("tokens_per_expert does not match expert_ids")
        if self.token_ids.size and (
            self.token_ids.min() < 0 or self.token_ids.max() >= self.num_source_tokens
        ):
            raise AssertionError("token_ids out of range")


def _flatten_assignments(
    top_experts: np.ndarray, combine_weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten ``[S, k]`` routing decisions into per-assignment arrays."""
    top_experts = np.asarray(top_experts, dtype=np.int64)
    combine_weights = np.asarray(combine_weights, dtype=np.float64)
    if top_experts.shape != combine_weights.shape:
        raise ValueError(
            f"top_experts {top_experts.shape} and combine_weights "
            f"{combine_weights.shape} must have the same [S, k] shape"
        )
    s, k = top_experts.shape
    token_ids = np.repeat(np.arange(s, dtype=np.int64), k)
    expert_ids = top_experts.reshape(-1)
    weights = combine_weights.reshape(-1)
    return token_ids, expert_ids, weights


def build_pft_reference(
    max_token_count: int,
    top_experts: np.ndarray,
    combine_weights: np.ndarray,
    num_experts: int,
) -> PFT:
    """Direct translation of Listing 1's ``PFT_construction``.

    Tokens within each expert are ranked by their combine weight (highest
    first) and only the best ``max_token_count`` per expert are retained.
    """
    if max_token_count <= 0:
        raise ValueError("max_token_count must be positive")
    token_ids, expert_ids, weights = _flatten_assignments(top_experts, combine_weights)
    s = top_experts.shape[0]

    # Rank assignments within each expert by descending gate score.
    order = np.argsort(-weights, kind="stable")
    sorted_experts = expert_ids[order]
    one_hot = np.zeros((sorted_experts.size, num_experts), dtype=np.int64)
    one_hot[np.arange(sorted_experts.size), sorted_experts] = 1
    rank_in_expert = one_hot.cumsum(axis=0)[np.arange(sorted_experts.size), sorted_experts]
    keep_sorted = rank_in_expert <= max_token_count
    keep = np.zeros(expert_ids.size, dtype=bool)
    keep[order] = keep_sorted

    return _assemble_pft(token_ids, expert_ids, weights, keep, num_experts, s)


def build_pft(
    max_token_count: int,
    top_experts: np.ndarray,
    combine_weights: np.ndarray,
    num_experts: int,
) -> PFT:
    """Optimized PFT construction (Appendix B.2).

    Instead of materializing the ``[S*k, E]`` one-hot matrix and running a
    cumulative sum down its (strided) inner dimension, the rank of each
    assignment within its expert is computed with a single stable sort keyed
    on (expert, -weight) followed by a segmented ``arange`` — the same
    contiguous-axis trick the paper's transposed cumsum achieves.
    """
    token_ids, expert_ids, weights = _flatten_assignments(top_experts, combine_weights)
    return build_pft_flat(
        max_token_count, token_ids, expert_ids, weights, num_experts, top_experts.shape[0]
    )


def build_pft_flat(
    max_token_count: int,
    token_ids: np.ndarray,
    expert_ids: np.ndarray,
    combine_weights: np.ndarray,
    num_experts: int,
    num_source_tokens: int,
) -> PFT:
    """PFT construction from per-assignment flat arrays.

    The assignment-level entry point behind :func:`build_pft`, used directly
    by router policies whose selection is not rectangular (expert-choice
    routing assigns a variable number of experts per token — see
    :meth:`repro.routing.policies.RoutingDecision.to_pft`).  Same capacity
    rule, same ordering, bit-identical output for flattened ``[S, k]``
    input.
    """
    if max_token_count <= 0:
        raise ValueError("max_token_count must be positive")
    token_ids = np.asarray(token_ids, dtype=np.int64)
    expert_ids = np.asarray(expert_ids, dtype=np.int64)
    weights = np.asarray(combine_weights, dtype=np.float64)
    if not (token_ids.shape == expert_ids.shape == weights.shape) or token_ids.ndim != 1:
        raise ValueError("assignment arrays must be 1-D and of equal length")
    s = num_source_tokens

    if expert_ids.size == 0:
        keep = np.zeros(0, dtype=bool)
        return _assemble_pft(token_ids, expert_ids, weights, keep, num_experts, s)

    # Sort by expert id, breaking ties by descending weight: within each
    # expert segment, position index == rank by score.
    order = np.lexsort((-weights, expert_ids))
    sorted_experts = expert_ids[order]
    counts = np.bincount(sorted_experts, minlength=num_experts)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    rank_in_expert = np.arange(sorted_experts.size) - starts[sorted_experts]
    keep_sorted = rank_in_expert < max_token_count
    keep = np.zeros(expert_ids.size, dtype=bool)
    keep[order] = keep_sorted

    return _assemble_pft(token_ids, expert_ids, weights, keep, num_experts, s)


def _assemble_pft(
    token_ids: np.ndarray,
    expert_ids: np.ndarray,
    weights: np.ndarray,
    keep: np.ndarray,
    num_experts: int,
    num_source_tokens: int,
) -> PFT:
    """Filter dropped assignments and sort the survivors by expert id."""
    dropped = int((~keep).sum())
    token_ids = token_ids[keep]
    expert_ids = expert_ids[keep]
    weights = weights[keep]

    # Final ordering: by expert id, ties broken by original token position,
    # so both construction paths produce bit-identical PFTs.
    order = np.lexsort((token_ids, expert_ids))
    token_ids = token_ids[order]
    expert_ids = expert_ids[order]
    weights = weights[order]
    tokens_per_expert = np.bincount(expert_ids, minlength=num_experts).astype(np.int64)

    return PFT(
        token_ids=token_ids,
        expert_ids=expert_ids,
        tokens_per_expert=tokens_per_expert,
        combine_weights=weights,
        num_source_tokens=num_source_tokens,
        dropped_assignments=dropped,
    )
