"""The Padding-Free Token buffer (PFT) and its construction routine.

The PFT (§4.1.1, Listing 1) replaces the dense ``[S, E, C]`` dispatch mask
and fixed-capacity expert buffers with

* a token buffer ``x`` holding **only** routed tokens, grouped by expert id,
  and
* the *Expert Routing Information arrays* (ERI-arrays):

  - ``token_ids[i]`` — original sequence position of the ``i``-th routed
    token (``dispatch_in[i] = gate_out[token_ids[i]]``),
  - ``expert_ids[i]`` — the expert the ``i``-th routed token goes to,
  - ``tokens_per_expert[e]`` — how many routed tokens target expert ``e``,
  - ``combine_weights[i]`` — the gate probability used to scale this
    token's expert output in the combine stage.

Token dropping is *capacity-only*: within each expert the assignments are
ranked by their gate score and only the top ``max_token_count`` survive —
unlike DeepSpeed-MoE, no assignment is dropped merely for having a negative
raw score (§5.6).

Two implementations are provided: :func:`build_pft_reference`, a direct
translation of Listing 1, and :func:`build_pft`, the optimized version using
the transposed one-hot + outer-axis cumsum described in Appendix B.2 (the
paper reports a 10x speedup of gating + construction from this data-layout
change).  Both produce identical PFTs and the test suite checks that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PFT:
    """Padding-Free Token buffer with ERI-arrays.

    ``x`` starts as ``None`` and is assigned by the dispatch / MLP / combine
    stages as the pipeline progresses, mirroring Listing 1 where each stage
    re-binds ``pft.x``.
    """

    token_ids: np.ndarray
    expert_ids: np.ndarray
    tokens_per_expert: np.ndarray
    combine_weights: np.ndarray
    num_source_tokens: int
    x: np.ndarray | None = None
    dropped_assignments: int = 0

    def __post_init__(self) -> None:
        b = self.token_ids.shape[0]
        if self.expert_ids.shape[0] != b or self.combine_weights.shape[0] != b:
            raise ValueError("ERI-arrays must all have the same length B")
        if self.tokens_per_expert.sum() != b:
            raise ValueError(
                f"tokens_per_expert sums to {self.tokens_per_expert.sum()} "
                f"but there are {b} routed tokens"
            )
        if b and not np.all(np.diff(self.expert_ids) >= 0):
            raise ValueError("PFT must be sorted by expert id")

    @classmethod
    def _trusted(
        cls,
        token_ids: np.ndarray,
        expert_ids: np.ndarray,
        tokens_per_expert: np.ndarray,
        combine_weights: np.ndarray,
        num_source_tokens: int,
        dropped_assignments: int,
    ) -> "PFT":
        """Construct without re-checking invariants the caller guarantees.

        Used by :func:`build_pft_flat_batched`, whose output ordering and
        counts hold by construction (and are property-tested against the
        checked path); the ``__post_init__`` validation would re-scan every
        array per rank, which is exactly the per-rank overhead the batched
        builder exists to remove.
        """
        pft = cls.__new__(cls)
        pft.token_ids = token_ids
        pft.expert_ids = expert_ids
        pft.tokens_per_expert = tokens_per_expert
        pft.combine_weights = combine_weights
        pft.num_source_tokens = num_source_tokens
        pft.x = None
        pft.dropped_assignments = dropped_assignments
        return pft

    @property
    def num_routed_tokens(self) -> int:
        """``B``: the number of surviving (token, expert) assignments."""
        return int(self.token_ids.shape[0])

    @property
    def num_experts(self) -> int:
        """Number of experts the ERI-arrays are sized for."""
        return int(self.tokens_per_expert.shape[0])

    def expert_offsets(self) -> np.ndarray:
        """Start offsets of each expert's segment in the token buffer."""
        return np.concatenate([[0], np.cumsum(self.tokens_per_expert)])

    def buffer_bytes(self, hidden_size: int, dtype_bytes: int = 2) -> int:
        """Bytes of the (padding-free) dispatched token buffer."""
        return self.num_routed_tokens * hidden_size * dtype_bytes

    def eri_bytes(self) -> int:
        """Bytes of the ERI metadata arrays."""
        return int(
            self.token_ids.nbytes
            + self.expert_ids.nbytes
            + self.tokens_per_expert.nbytes
            + self.combine_weights.nbytes
        )

    def validate(self) -> None:
        """Check internal consistency (used by property-based tests)."""
        counts = np.bincount(self.expert_ids, minlength=self.num_experts)
        if not np.array_equal(counts, self.tokens_per_expert):
            raise AssertionError("tokens_per_expert does not match expert_ids")
        if self.token_ids.size and (
            self.token_ids.min() < 0 or self.token_ids.max() >= self.num_source_tokens
        ):
            raise AssertionError("token_ids out of range")


def _flatten_assignments(
    top_experts: np.ndarray, combine_weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten ``[S, k]`` routing decisions into per-assignment arrays."""
    top_experts = np.asarray(top_experts, dtype=np.int64)
    combine_weights = np.asarray(combine_weights, dtype=np.float64)
    if top_experts.shape != combine_weights.shape:
        raise ValueError(
            f"top_experts {top_experts.shape} and combine_weights "
            f"{combine_weights.shape} must have the same [S, k] shape"
        )
    s, k = top_experts.shape
    token_ids = np.repeat(np.arange(s, dtype=np.int64), k)
    expert_ids = top_experts.reshape(-1)
    weights = combine_weights.reshape(-1)
    return token_ids, expert_ids, weights


def build_pft_reference(
    max_token_count: int,
    top_experts: np.ndarray,
    combine_weights: np.ndarray,
    num_experts: int,
) -> PFT:
    """Direct translation of Listing 1's ``PFT_construction``.

    Tokens within each expert are ranked by their combine weight (highest
    first) and only the best ``max_token_count`` per expert are retained.
    """
    if max_token_count <= 0:
        raise ValueError("max_token_count must be positive")
    token_ids, expert_ids, weights = _flatten_assignments(top_experts, combine_weights)
    s = top_experts.shape[0]

    # Rank assignments within each expert by descending gate score.
    order = np.argsort(-weights, kind="stable")
    sorted_experts = expert_ids[order]
    one_hot = np.zeros((sorted_experts.size, num_experts), dtype=np.int64)
    one_hot[np.arange(sorted_experts.size), sorted_experts] = 1
    rank_in_expert = one_hot.cumsum(axis=0)[np.arange(sorted_experts.size), sorted_experts]
    keep_sorted = rank_in_expert <= max_token_count
    keep = np.zeros(expert_ids.size, dtype=bool)
    keep[order] = keep_sorted

    return _assemble_pft(token_ids, expert_ids, weights, keep, num_experts, s)


def build_pft(
    max_token_count: int,
    top_experts: np.ndarray,
    combine_weights: np.ndarray,
    num_experts: int,
) -> PFT:
    """Optimized PFT construction (Appendix B.2).

    Instead of materializing the ``[S*k, E]`` one-hot matrix and running a
    cumulative sum down its (strided) inner dimension, the rank of each
    assignment within its expert is computed with a single stable sort keyed
    on (expert, -weight) followed by a segmented ``arange`` — the same
    contiguous-axis trick the paper's transposed cumsum achieves.
    """
    token_ids, expert_ids, weights = _flatten_assignments(top_experts, combine_weights)
    return build_pft_flat(
        max_token_count, token_ids, expert_ids, weights, num_experts, top_experts.shape[0]
    )


def build_pft_flat(
    max_token_count: int,
    token_ids: np.ndarray,
    expert_ids: np.ndarray,
    combine_weights: np.ndarray,
    num_experts: int,
    num_source_tokens: int,
) -> PFT:
    """PFT construction from per-assignment flat arrays.

    The assignment-level entry point behind :func:`build_pft`, used directly
    by router policies whose selection is not rectangular (expert-choice
    routing assigns a variable number of experts per token — see
    :meth:`repro.routing.policies.RoutingDecision.to_pft`).  Same capacity
    rule, same ordering, bit-identical output for flattened ``[S, k]``
    input.
    """
    if max_token_count <= 0:
        raise ValueError("max_token_count must be positive")
    token_ids = np.asarray(token_ids, dtype=np.int64)
    expert_ids = np.asarray(expert_ids, dtype=np.int64)
    weights = np.asarray(combine_weights, dtype=np.float64)
    if not (token_ids.shape == expert_ids.shape == weights.shape) or token_ids.ndim != 1:
        raise ValueError("assignment arrays must be 1-D and of equal length")
    s = num_source_tokens

    if expert_ids.size == 0:
        keep = np.zeros(0, dtype=bool)
        return _assemble_pft(token_ids, expert_ids, weights, keep, num_experts, s)

    # Sort by expert id, breaking ties by descending weight: within each
    # expert segment, position index == rank by score.
    order = np.lexsort((-weights, expert_ids))
    sorted_experts = expert_ids[order]
    counts = np.bincount(sorted_experts, minlength=num_experts)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    rank_in_expert = np.arange(sorted_experts.size) - starts[sorted_experts]
    keep_sorted = rank_in_expert < max_token_count
    keep = np.zeros(expert_ids.size, dtype=bool)
    keep[order] = keep_sorted

    return _assemble_pft(token_ids, expert_ids, weights, keep, num_experts, s)


def build_pft_flat_batched(
    max_token_count: int,
    rank_ids: np.ndarray,
    token_ids: np.ndarray,
    expert_ids: np.ndarray,
    combine_weights: np.ndarray,
    num_experts: int,
    num_source_tokens: list[int],
) -> list[PFT]:
    """All ranks' PFTs from stacked assignment arrays, in one sort pass.

    The rank-batched counterpart of :func:`build_pft_flat`: every rank's
    assignments arrive concatenated, tagged with their group-local rank in
    ``rank_ids``, and both the capacity rule and the canonical
    (expert, token) ordering run **once** over composite
    ``rank * num_experts + expert`` segments instead of once per rank.
    Because the rank is the most significant sort key and every sort is
    stable, each rank's segment orders exactly as a per-rank
    :func:`build_pft_flat` call would — the returned PFTs are
    bit-identical to the sequential loop (property-tested in
    ``tests/test_step_runtime.py``).  ``num_source_tokens`` gives each
    rank's source token count (its length fixes the number of ranks, so
    trailing ranks with zero assignments still get an empty PFT).
    """
    if max_token_count <= 0:
        raise ValueError("max_token_count must be positive")
    num_ranks = len(num_source_tokens)
    rank_ids = np.asarray(rank_ids, dtype=np.int64)
    token_ids = np.asarray(token_ids, dtype=np.int64)
    expert_ids = np.asarray(expert_ids, dtype=np.int64)
    weights = np.asarray(combine_weights, dtype=np.float64)
    if (
        not (rank_ids.shape == token_ids.shape == expert_ids.shape == weights.shape)
        or rank_ids.ndim != 1
    ):
        raise ValueError("assignment arrays must be 1-D and of equal length")
    if rank_ids.size and (rank_ids.min() < 0 or rank_ids.max() >= num_ranks):
        raise ValueError("rank_ids out of range for num_source_tokens")

    # ---- capacity rule over composite (rank, expert) segments ----------
    # Equivalent to ``np.lexsort((-weights, segment))`` but much faster:
    # numpy's *stable* sorts (which lexsort uses per key) are timsort for
    # float64/int64, while the default introsort is ~5x quicker — and on an
    # *injective* integer key introsort is deterministic, so stability is
    # reconstructed exactly by folding the tie-break index into the key.
    segment = rank_ids * num_experts + expert_ids
    num_segments = num_ranks * num_experts
    n = segment.size
    if n:
        # Descending weights with ties broken by index.  Introsort is ~5x
        # faster than a stable sort here and agrees with it whenever all
        # weights are distinct; equal weights (adjacent after sorting, so
        # one vectorized compare detects them) fall back to the stable sort.
        neg = -weights
        worder = np.argsort(neg)
        sorted_neg = neg[worder]
        if np.any(sorted_neg[1:] == sorted_neg[:-1]):
            worder = np.argsort(neg, kind="stable")
        if num_segments <= 2**62 // max(n, 1):
            # (segment, position-in-worder) as one injective int64 key.
            order = worder[np.argsort(segment[worder] * n + np.arange(n))]
        else:  # pathological segment counts: keep the exact slow path
            order = np.lexsort((-weights, segment))
        sorted_segments = segment[order]
        seg_counts = np.bincount(sorted_segments, minlength=num_segments)
        starts = np.concatenate([[0], np.cumsum(seg_counts)[:-1]])
        rank_in_expert = np.arange(n) - starts[sorted_segments]
        keep = np.zeros(n, dtype=bool)
        keep[order] = rank_in_expert < max_token_count
    else:
        keep = np.zeros(0, dtype=bool)
    dropped_per_rank = np.bincount(rank_ids[~keep], minlength=num_ranks)

    # ---- canonical (rank, expert, token) ordering, one sort ------------
    kept_idx = np.flatnonzero(keep)
    kept_segment = segment[kept_idx]
    kept_token = token_ids[kept_idx]
    token_span = int(max(num_source_tokens)) + 1 if num_source_tokens else 1
    in_range = not kept_token.size or (
        kept_token.min() >= 0 and kept_token.max() < token_span
    )
    final: np.ndarray | None = None
    if in_range and num_segments <= 2**62 // max(token_span, 1):
        key = kept_segment * token_span + kept_token
        final = np.argsort(key)  # injective unless (rank, expert, token) repeats
        sorted_key = key[final]
        if kept_token.size and np.any(sorted_key[1:] == sorted_key[:-1]):
            final = None  # duplicate assignments: need the stable tie-break
    if final is None:
        final = np.lexsort((kept_token, kept_segment))
    ordered = kept_idx[final]  # one composed gather per array
    kept_segment = kept_segment[final]
    kept_token = kept_token[final]
    kept_expert = expert_ids[ordered]
    kept_weight = weights[ordered]

    tokens_per_expert = (
        np.bincount(kept_segment, minlength=num_segments)
        .astype(np.int64)
        .reshape(num_ranks, num_experts)
    )
    offsets = np.concatenate([[0], np.cumsum(tokens_per_expert.sum(axis=1))])

    return [
        PFT._trusted(
            token_ids=kept_token[offsets[r] : offsets[r + 1]],
            expert_ids=kept_expert[offsets[r] : offsets[r + 1]],
            tokens_per_expert=tokens_per_expert[r],
            combine_weights=kept_weight[offsets[r] : offsets[r + 1]],
            num_source_tokens=int(num_source_tokens[r]),
            dropped_assignments=int(dropped_per_rank[r]),
        )
        for r in range(num_ranks)
    ]


def _assemble_pft(
    token_ids: np.ndarray,
    expert_ids: np.ndarray,
    weights: np.ndarray,
    keep: np.ndarray,
    num_experts: int,
    num_source_tokens: int,
) -> PFT:
    """Filter dropped assignments and sort the survivors by expert id."""
    dropped = int((~keep).sum())
    token_ids = token_ids[keep]
    expert_ids = expert_ids[keep]
    weights = weights[keep]

    # Final ordering: by expert id, ties broken by original token position,
    # so both construction paths produce bit-identical PFTs.
    order = np.lexsort((token_ids, expert_ids))
    token_ids = token_ids[order]
    expert_ids = expert_ids[order]
    weights = weights[order]
    tokens_per_expert = np.bincount(expert_ids, minlength=num_experts).astype(np.int64)

    return PFT(
        token_ids=token_ids,
        expert_ids=expert_ids,
        tokens_per_expert=tokens_per_expert,
        combine_weights=weights,
        num_source_tokens=num_source_tokens,
        dropped_assignments=dropped,
    )
