"""The :class:`DispatchPlan` — every piece of dispatch/combine bookkeeping
as flat numpy arrays.

A plan is built **once per step** by a planner (:mod:`repro.routing.planner`)
from the per-rank PFTs and the expert placement, and then *consumed* by the
execution engine (:mod:`repro.routing.engine`), which only slices buffers and
issues collectives with splits read straight off the plan.  Nothing about
the routing is re-derived at execution time: no per-row Python loops, no
dict slot-maps, no linear scans.

Array conventions
-----------------
All per-rank fields are lists indexed by *group-local* rank.  The arrival
buffer of a destination rank is laid out as ``[pilot rows ++ replica rows]``
where the pilot part is ordered by ``(source rank, PFT row)`` — exactly the
concatenation order of an uneven all-to-all — and the replica part (RBD
only) is ordered by ``(pilot-holder member index, pilot slot, source, row)``.
``sort_order`` re-groups the arrival buffer into the canonical
``(expert, source, row)`` order consumed by the sequential GEMM; because the
key is a total order on assignments, every planner produces **bit-identical
expert input buffers**, which is what makes the RBD and hierarchical outputs
exactly equal to the flat oracle.

Hierarchical plans
------------------
``kind == "hier"`` replaces the single stage-1 all-to-all with a two-hop
program (intra-node gather onto a per-node leader, one leader-to-leader
inter-node exchange, intra-node scatter to the owning expert rank).  The
``h*`` fields hold that program; the legacy stage-1 fields are reused for
the pieces with the same shape (``send_rows`` = deduplicated rows leaving
each source, ``send_splits``/``recv_splits`` = the leader-to-leader
exchange matrix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.topology import LinkTier


@dataclass
class DispatchPlan:
    """Vectorized routing plan shared by every dispatch path.

    ``kind`` is ``"flat"`` (single uneven all-to-all; every assignment is
    its own pilot), ``"rbd"`` (two-stage redundancy-bypassing dispatch), or
    ``"hier"`` (two-hop hierarchical dispatch through per-node leaders).
    """

    kind: str
    size: int
    num_experts: int
    num_nodes: int
    expert_to_rank: np.ndarray  # [E] group-local hosting rank per expert
    rank_to_node: np.ndarray  # [size] node id per group-local rank
    pfts: list  # list[PFT], one per source rank

    # ---- stage-1 send program (the only all-to-all for flat) -------------
    send_rows: list[np.ndarray]  # PFT row ids in inter-rank send order
    send_splits: list[np.ndarray]  # [size] rows to each destination
    recv_splits: list[np.ndarray]  # [size] rows from each source

    # ---- per-destination arrival tables (pilots ++ replicas) -------------
    arrival_src: list[np.ndarray]
    arrival_row: list[np.ndarray]
    arrival_expert: list[np.ndarray]
    arrival_weight: list[np.ndarray]
    num_pilot_arrivals: list[int]  # length of the pilot part
    sort_order: list[np.ndarray]  # canonical (expert, src, row) grouping
    tokens_per_local_expert: list[np.ndarray]

    # ---- stage-2 replica program (all empty for flat) --------------------
    node_members: list[np.ndarray]  # per node (ascending id): member ranks
    s2_source_slot: list[np.ndarray]  # per rank: pilot-arrival slots to copy
    s2_send_splits: list[np.ndarray]  # per rank: [node group size]
    s2_recv_splits: list[np.ndarray]  # per rank: [node group size]

    # ---- combine merge program (per rank; empty for flat) ----------------
    # Contributions = [own pilot outputs ++ C1-received replica outputs].
    # ``merge_perm`` holds contribution indices in fold order — sorted by
    # (pilot slot, expert, src, row) so the per-(token, node) partial sums
    # fold in exactly the flat oracle's order — and ``merge_slot`` the
    # target pilot slots aligned with that fold order.
    merge_slot: list[np.ndarray]
    merge_perm: list[np.ndarray]

    # ---- source-side final combine ---------------------------------------
    combine_partial: list[np.ndarray]  # returned row -> partial group id
    combine_perm: list[np.ndarray]  # (group, expert) fold order
    partial_token: list[np.ndarray]  # per partial group: sequence position

    # ---- hierarchical two-hop program (empty unless kind == "hier") ------
    # Hop A: every member sends its deduplicated rows to its node leader
    # (``send_rows`` holds the rows in hop-A send order).  Hop B: one
    # group-wide alltoallv in which only leaders exchange (its matrix lives
    # in ``send_splits``/``recv_splits``).  Hop C: each destination leader
    # scatters one row per assignment to the owning expert rank.
    hA_send_splits: list[np.ndarray] = field(default_factory=list)  # [node size]
    hA_recv_splits: list[np.ndarray] = field(default_factory=list)  # [node size]
    hB_perm: list[np.ndarray] = field(default_factory=list)  # hop-A slot -> send row
    hC_gather: list[np.ndarray] = field(default_factory=list)  # hop-B slot per send row
    hC_send_splits: list[np.ndarray] = field(default_factory=list)  # [node size]
    hC_recv_splits: list[np.ndarray] = field(default_factory=list)  # [node size]
    # Combine-side leader fold: reverse-hop-C row indices in fold order
    # (hop-B slot, expert) and the target hop-B slot per fold entry.
    hM_fold_perm: list[np.ndarray] = field(default_factory=list)
    hM_fold_slot: list[np.ndarray] = field(default_factory=list)

    # ---- plan statistics -------------------------------------------------
    total_assignments: int = 0
    total_pilots: int = 0
    cross_node_assignments: int = 0  # assignments whose dest node != src node
    cross_node_pilots: int = 0  # rows actually sent inter-node
    # Payload rows each dispatch hop moves, keyed by the LinkTier the hop
    # crosses (SELF rows included; combine hops mirror these exactly).
    dispatch_rows_by_tier: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        """Assignments served locally instead of crossing stage 1."""
        return self.total_assignments - self.total_pilots

    @property
    def cross_node_replicas(self) -> int:
        """Rows the flat path would send inter-node but RBD does not."""
        return self.cross_node_assignments - self.cross_node_pilots

    @property
    def redundancy(self) -> float:
        """Fraction of assignments that did not travel in stage 1."""
        if self.total_assignments == 0:
            return 0.0
        return self.num_replicas / self.total_assignments

    @property
    def inter_node_rows(self) -> int:
        """Dispatch payload rows crossing node boundaries (any hop)."""
        return int(
            self.dispatch_rows_by_tier.get(LinkTier.INTER_NODE, 0)
            + self.dispatch_rows_by_tier.get(LinkTier.CROSS_RACK, 0)
        )

    @property
    def intra_node_rows(self) -> int:
        """Dispatch payload rows moved inside a node (excluding self-sends)."""
        return int(
            self.dispatch_rows_by_tier.get(LinkTier.INTRA_PACKAGE, 0)
            + self.dispatch_rows_by_tier.get(LinkTier.INTRA_NODE, 0)
        )

    def num_partials(self, rank: int) -> int:
        """Number of (token, node) partial groups at one source rank."""
        return int(self.partial_token[rank].size)

    def sent_rows(self) -> int:
        """Total rows crossing the stage-1 all-to-all (pilots only for RBD)."""
        return int(sum(r.size for r in self.send_rows))

    def stats_dict(self, row_bytes: int) -> dict[str, float]:
        """The legacy ``last_stats`` payload, derived from the plan."""
        return {
            "total_assignments": float(self.total_assignments),
            "pilots": float(self.total_pilots),
            "replicas": float(self.num_replicas),
            "redundancy_rate": self.redundancy,
            "stage1_bytes": float(self.total_pilots * row_bytes),
            "stage2_bytes": float(self.num_replicas * row_bytes),
        }

    def validate(self) -> None:
        """Internal-consistency checks (used by the test suite)."""
        if self.kind == "hier":
            self._validate_hier()
        else:
            for r in range(self.size):
                if int(self.send_splits[r].sum()) != int(self.send_rows[r].size):
                    raise AssertionError(
                        f"rank {r}: send_splits do not sum to send_rows"
                    )
        for d in range(self.size):
            expected = np.array(
                [self.send_splits[r][d] for r in range(self.size)], dtype=np.int64
            )
            if not np.array_equal(expected, self.recv_splits[d]):
                raise AssertionError(f"rank {d}: recv_splits not the send transpose")
            n = self.arrival_src[d].size
            if not (
                self.arrival_row[d].size
                == self.arrival_expert[d].size
                == self.arrival_weight[d].size
                == self.sort_order[d].size
                == n
            ):
                raise AssertionError(f"rank {d}: arrival tables disagree on length")
            if n and not np.array_equal(np.sort(self.sort_order[d]), np.arange(n)):
                raise AssertionError(f"rank {d}: sort_order is not a permutation")
            if int(self.tokens_per_local_expert[d].sum()) != n:
                raise AssertionError(f"rank {d}: tokens_per_local_expert != arrivals")
        arrivals = sum(self.arrival_src[d].size for d in range(self.size))
        if arrivals != self.total_assignments:
            raise AssertionError("arrival rows do not cover all assignments")

    def _validate_hier(self) -> None:
        """Consistency checks specific to the two-hop hierarchical program."""
        for r in range(self.size):
            if int(self.hA_send_splits[r].sum()) != int(self.send_rows[r].size):
                raise AssertionError(
                    f"rank {r}: hop-A send_splits do not sum to send_rows"
                )
            if int(self.send_splits[r].sum()) != int(self.hA_recv_splits[r].sum()):
                raise AssertionError(
                    f"rank {r}: hop-B sends do not cover the hop-A gather"
                )
            if self.hB_perm[r].size != int(self.hA_recv_splits[r].sum()):
                raise AssertionError(f"rank {r}: hB_perm does not index hop-A buffer")
            if self.hC_gather[r].size != int(self.hC_send_splits[r].sum()):
                raise AssertionError(f"rank {r}: hC_gather/hC_send_splits disagree")
            if int(self.hC_recv_splits[r].sum()) != self.arrival_src[r].size:
                raise AssertionError(
                    f"rank {r}: hop-C receives do not match the arrival table"
                )
        scattered = sum(int(self.hC_send_splits[r].sum()) for r in range(self.size))
        if scattered != self.total_assignments:
            raise AssertionError("hop-C scatter does not cover all assignments")
