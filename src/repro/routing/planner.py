"""Vectorized routing planners: flat all-to-all, redundancy-bypassing, and
hierarchical two-hop dispatch.

All planners compile per-rank PFTs into a :class:`~repro.routing.plan.DispatchPlan`
by whole-array numpy operations over one global assignment table:

* a single stable sort by destination yields every rank's arrival order,
  and scattering each pilot's arrival slot into a ``slot_of`` array indexed
  by global assignment id replaces the legacy per-destination dict
  slot-maps and the O(B²) combine-side linear scan with one gather,
* the stage-1/stage-2 send programs, the canonical (expert, src, row)
  expert grouping, and the combine merge/fold orders each fall out of one
  combined-key argsort (:func:`_argsort_key`) plus bincounts and slicing.

:class:`FlatPlanner` treats every assignment as its own pilot (one uneven
all-to-all, no stage 2) and doubles as the correctness oracle for
:class:`RBDPlanner` and :class:`HierarchicalPlanner`: all three produce
canonically ordered expert input buffers and fold combine partial sums in
the same association order, so every path produces bit-identical outputs.

Determinism
-----------
Pilot selection is the only randomized step.  ``RBDPlanner`` derives a fresh
generator from ``(seed, step)`` on every :meth:`RBDPlanner.build` call, so
planning the same PFTs twice with the same ``step`` (or with ``step=None``)
picks the same pilots — there is no hidden RNG state mutating across calls.
Pass a different ``step`` per training step to decorrelate pilot choices
over time while keeping every step reproducible.
``HierarchicalPlanner`` uses no RNG at all: the row that travels for each
(token, destination node) group is the group's lowest PFT row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import LinkTier
from repro.routing.plan import DispatchPlan


def _rows_by_tier(tiers: np.ndarray) -> dict:
    """Histogram an array of per-row :class:`LinkTier` values into a dict."""
    counts = np.bincount(tiers.astype(np.int64), minlength=len(LinkTier))
    return {LinkTier(t): int(c) for t, c in enumerate(counts) if c}


def _argsort_key(key: np.ndarray, *, tiebreak: bool = False) -> np.ndarray:
    """Argsort of a non-negative integer key, stable where it matters.

    numpy's stable sort is a radix sort for 16-bit integers (fast) but a
    timsort for 32/64-bit ones (~5x slower than the unstable introsort).
    So: keys under 2**16 take the radix path (stable for free); wider keys
    with duplicates (``tiebreak=True``) compose the element position into
    the key and use the fast unstable sort; unique keys sort directly.
    """
    n = key.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    hi = int(key.max())
    if hi < 2**16:
        return np.argsort(key.astype(np.uint16), kind="stable")
    if tiebreak:
        if hi < (2**62) // n:
            key = key * n + np.arange(n, dtype=np.int64)
        else:  # compose would overflow int64; fall back to a stable sort
            return np.argsort(key, kind="stable")
    return np.argsort(key)


# ----------------------------------------------------------------------
# Stage 0: pilot selection
# ----------------------------------------------------------------------
@dataclass
class RBDPlan:
    """Per-source-rank stage-0 plan: which PFT rows are pilots."""

    pilot_mask: np.ndarray  # [B] bool
    pilot_of: np.ndarray  # [B] index (into PFT rows) of each row's pilot
    dest_rank: np.ndarray  # [B] destination group-local rank
    dest_node: np.ndarray  # [B] destination node id

    @property
    def num_pilots(self) -> int:
        """Rows selected to travel inter-node."""
        return int(self.pilot_mask.sum())

    @property
    def num_replicas(self) -> int:
        """Rows reconstructed on the destination node instead of sent."""
        return int((~self.pilot_mask).sum())

    @property
    def redundancy(self) -> float:
        """Fraction of rows served as local replicas."""
        total = self.pilot_mask.size
        return 0.0 if total == 0 else self.num_replicas / total


def select_pilots(
    pft,
    dest_rank: np.ndarray,
    dest_node: np.ndarray,
    num_nodes: int,
    rng: np.random.Generator,
) -> RBDPlan:
    """Pick one random pilot per (token, destination node) group."""
    b = pft.num_routed_tokens
    if b == 0:
        return RBDPlan(
            pilot_mask=np.zeros(0, dtype=bool),
            pilot_of=np.zeros(0, dtype=np.int64),
            dest_rank=dest_rank,
            dest_node=dest_node,
        )
    keys = pft.token_ids * num_nodes + dest_node
    # Random pilot per (token, node) group: permute rows, then take the
    # first occurrence of each key in permuted order.
    perm = rng.permutation(b)
    uniq_keys, first_in_perm = np.unique(keys[perm], return_index=True)
    pilot_rows = perm[first_in_perm]
    pilot_mask = np.zeros(b, dtype=bool)
    pilot_mask[pilot_rows] = True
    pos = np.searchsorted(uniq_keys, keys)
    pilot_of = pilot_rows[pos]
    return RBDPlan(
        pilot_mask=pilot_mask,
        pilot_of=pilot_of,
        dest_rank=dest_rank,
        dest_node=dest_node,
    )


# ----------------------------------------------------------------------
# Shared planner machinery
# ----------------------------------------------------------------------
class _PlannerBase:
    """Validation and topology bookkeeping shared by both planners."""

    kind: str = ""

    def __init__(self, group, num_experts: int, expert_to_rank=None):
        self.group = group
        self.num_experts = num_experts
        if expert_to_rank is None:
            if num_experts % group.size:
                raise ValueError(
                    f"num_experts={num_experts} not divisible by EP size {group.size}"
                )
            per_rank = num_experts // group.size
            expert_to_rank = np.repeat(np.arange(group.size), per_rank)
        expert_to_rank = np.asarray(expert_to_rank, dtype=np.int64)
        if expert_to_rank.size != num_experts:
            raise ValueError("expert_to_rank must have one entry per expert")
        if expert_to_rank.size and (
            expert_to_rank.min() < 0 or expert_to_rank.max() >= group.size
        ):
            raise ValueError("expert_to_rank entries out of range for the group")
        self.expert_to_rank = expert_to_rank
        topo = group.world.topology
        self.rank_to_node = np.array(
            [topo.node_of(g) for g in group.ranks], dtype=np.int64
        )
        self.num_nodes = int(self.rank_to_node.max()) + 1
        # Node membership in ascending node-id order, members in ascending
        # group-local rank order — matching ProcessGroup.node_local_subgroups.
        self.node_members = [
            np.flatnonzero(self.rank_to_node == n)
            for n in np.unique(self.rank_to_node)
        ]
        self.member_index = np.zeros(group.size, dtype=np.int64)
        self.node_group_size = np.zeros(group.size, dtype=np.int64)
        self.leader_of = np.zeros(group.size, dtype=np.int64)
        self.node_leader = np.zeros(self.num_nodes, dtype=np.int64)
        for members in self.node_members:
            self.member_index[members] = np.arange(members.size)
            self.node_group_size[members] = members.size
            self.leader_of[members] = members[0]
            self.node_leader[self.rank_to_node[members[0]]] = members[0]
        # Pairwise link tiers between group-local ranks (per-hop accounting).
        self.tier_matrix = topo.tier_matrix(np.asarray(group.ranks, dtype=np.int64))
        self._experts_by_rank = [
            np.flatnonzero(self.expert_to_rank == r) for r in range(group.size)
        ]

    def experts_on_rank(self, local_rank: int) -> np.ndarray:
        """Global ids of the experts hosted by a group-local rank."""
        return self._experts_by_rank[local_rank]

    # ------------------------------------------------------------------
    def _compile(self, pfts: list, rng: np.random.Generator | None) -> DispatchPlan:
        """Compile per-rank PFTs into a plan (``rng=None`` = flat dispatch).

        Works on one global assignment table (a single concatenate per
        field); pilot selection and every per-destination / per-source view
        fall out of a handful of combined-key sorts, bincounts and
        scatters, so the cost is O(B log B) whole-array work with no
        per-row Python.
        """
        size = self.group.size
        if len(pfts) != size:
            raise ValueError(f"need one PFT per group rank (got {len(pfts)})")
        num_nodes = self.num_nodes
        num_experts = self.num_experts

        # ---- global assignment table --------------------------------
        sizes = np.array([p.num_routed_tokens for p in pfts], dtype=np.int64)
        total = int(sizes.sum())
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        max_rows = int(sizes.max()) + 1
        rank_all = np.repeat(np.arange(size, dtype=np.int64), sizes)
        row_all = np.arange(total, dtype=np.int64) - offsets[rank_all]
        expert_all = np.concatenate([p.expert_ids for p in pfts]).astype(
            np.int64, copy=False
        )
        token_all = np.concatenate([p.token_ids for p in pfts]).astype(
            np.int64, copy=False
        )
        weight_all = np.concatenate([p.combine_weights for p in pfts])
        dest_all = self.expert_to_rank[expert_all]
        node_all = self.rank_to_node[dest_all]
        max_tok = max((p.num_source_tokens for p in pfts), default=0) + 1

        # ---- stage 0: pilot selection -------------------------------
        if rng is None:  # flat: every assignment is its own pilot
            g_idx = np.arange(total, dtype=np.int64)
        elif total == 0:
            mask = np.zeros(0, dtype=bool)
            pilot_of_all = np.zeros(0, dtype=np.int64)
            g_idx = np.zeros(0, dtype=np.int64)
        else:
            # One random pilot per (rank, token, node) group: permute rows,
            # stable-sort the permuted keys, and take each key run's first
            # element (= a uniform group member).
            keys0 = (rank_all * max_tok + token_all) * num_nodes + node_all
            perm = rng.permutation(total)
            order0 = perm[_argsort_key(keys0[perm], tiebreak=True)]
            sorted_keys = keys0[order0]
            is_first = np.empty(total, dtype=bool)
            is_first[0] = True
            is_first[1:] = sorted_keys[1:] != sorted_keys[:-1]
            pilot_rows = order0[np.flatnonzero(is_first)]
            mask = np.zeros(total, dtype=bool)
            mask[pilot_rows] = True
            pilot_of_all = np.empty(total, dtype=np.int64)
            pilot_of_all[order0] = pilot_rows[np.cumsum(is_first) - 1]
            g_idx = np.flatnonzero(mask)
        g_src, g_row = rank_all[g_idx], row_all[g_idx]
        g_dest, g_expert = dest_all[g_idx], expert_all[g_idx]
        g_weight = weight_all[g_idx]
        sel_counts = np.bincount(g_src, minlength=size)
        sel_bounds = np.concatenate([[0], np.cumsum(sel_counts)])

        # ---- stage-1 send program -----------------------------------
        # Send order on each source is a stable sort by destination (rows
        # already ascend); one combined-key argsort covers every rank.
        o_send1 = _argsort_key(g_src * size + g_dest, tiebreak=True)
        sent_global = g_idx[o_send1]
        sent_row = row_all[sent_global]
        send_rows = [sent_row[sel_bounds[r] : sel_bounds[r + 1]] for r in range(size)]
        splits_mat = np.bincount(
            g_src * size + g_dest, minlength=size * size
        ).reshape(size, size)
        send_splits = [splits_mat[r] for r in range(size)]
        recv_splits = [splits_mat[:, d].copy() for d in range(size)]

        # ---- arrival order ------------------------------------------
        # Arrival order at destination d is (source rank, PFT row): the
        # all-to-all concatenates per-source chunks in rank order and each
        # source sends its rows in ascending-row order — i.e. a stable
        # sort by destination alone, since the sent table is already
        # (src, row)-major.  ``slot_of`` scatters each pilot's arrival
        # slot to its global assignment id; this is the vectorized index
        # that replaces the seed's per-destination dict slot-maps.
        order = _argsort_key(g_dest, tiebreak=True)
        p_src, p_row = g_src[order], g_row[order]
        p_expert, p_weight = g_expert[order], g_weight[order]
        p_dest = g_dest[order]
        pilot_counts = np.bincount(p_dest, minlength=size)
        bounds = np.concatenate([[0], np.cumsum(pilot_counts)])
        num_pilot_arrivals = [int(pilot_counts[d]) for d in range(size)]
        pil_local = np.arange(p_dest.size, dtype=np.int64) - bounds[p_dest]
        slot_of = np.empty(total, dtype=np.int64)
        slot_of[g_idx[order]] = pil_local

        # ---- stage-2 replica program --------------------------------
        empty_i = np.zeros(0, dtype=np.int64)
        s2_source_slot = [empty_i] * size
        mm = int(self.node_group_size.max())
        zero_node_splits = [
            np.zeros(int(self.node_group_size[r]), dtype=np.int64) for r in range(size)
        ]
        s2_send_splits = zero_node_splits
        s2_recv_splits = list(zero_node_splits)
        merge_slot: list[np.ndarray] = [empty_i] * size
        merge_perm: list[np.ndarray] = [empty_i] * size

        if rng is not None:
            rep_idx = np.flatnonzero(~mask)
            pil_global = pilot_of_all[rep_idx]
            r_src, r_row = rank_all[rep_idx], row_all[rep_idx]
            r_pr, r_dr = dest_all[pil_global], dest_all[rep_idx]
            r_expert, r_weight = expert_all[rep_idx], weight_all[rep_idx]
            # Pilot-slot index: one gather through ``slot_of`` instead of
            # a per-replica dict lookup / linear scan.
            r_slot = slot_of[pil_global]
            r_pm = self.member_index[r_pr]  # pilot holder's node-member index
            r_dm = self.member_index[r_dr]  # replica destination's index

            # Send program on each pilot-holding rank: rows ordered by
            # (destination member, pilot slot) with (src, row) ties kept
            # by the composed position tie-break (the replica table is
            # (src, row)-ordered).
            max_pilots = int(pilot_counts.max()) + 1 if pilot_counts.size else 1
            o_send = _argsort_key(
                (r_pr * (mm + 1) + r_dm) * max_pilots + r_slot, tiebreak=True
            )
            pr_counts = np.bincount(r_pr, minlength=size)
            pr_bounds = np.concatenate([[0], np.cumsum(pr_counts)])
            s_slot, s_dm = r_slot[o_send], r_dm[o_send]
            s_expert, s_rank = r_expert[o_send], r_pr[o_send]
            s2_source_slot = [
                s_slot[pr_bounds[p] : pr_bounds[p + 1]] for p in range(size)
            ]
            send_mat = np.bincount(r_pr * mm + r_dm, minlength=size * mm).reshape(
                size, mm
            )
            s2_send_splits = [
                send_mat[p, : int(self.node_group_size[p])] for p in range(size)
            ]

            # Arrival program on each replica destination: the intra-node
            # all-to-all concatenates sender chunks in member order, each
            # chunk ordered by (slot, src, row) — the same tie-break as the
            # send program, so sender and receiver agree row by row.
            o_arr = _argsort_key(
                (r_dr * (mm + 1) + r_pm) * max_pilots + r_slot, tiebreak=True
            )
            dr_counts = np.bincount(r_dr, minlength=size)
            dr_bounds = np.concatenate([[0], np.cumsum(dr_counts)])
            a_src, a_row = r_src[o_arr], r_row[o_arr]
            a_expert, a_weight, a_dest = r_expert[o_arr], r_weight[o_arr], r_dr[o_arr]
            recv_mat = np.bincount(r_dr * mm + r_pm, minlength=size * mm).reshape(
                size, mm
            )
            s2_recv_splits = [
                recv_mat[d, : int(self.node_group_size[d])] for d in range(size)
            ]

            # Combine merge program: the C1 intra-node return delivers the
            # replica outputs to each pilot holder in exactly its stage-2
            # send order, so each rank's contribution buffer is
            # [own pilot outputs ++ C1 receives] with target slots
            # [0..P) ++ s2_source_slot; folding contributions sorted by
            # (slot, expert) reproduces the flat oracle's per-(token, node)
            # summation order exactly (experts are unique within a
            # (rank, slot) group, so the combined key is a total order).
            rep_local = (
                pilot_counts[s_rank]
                + np.arange(s_rank.size, dtype=np.int64)
                - pr_bounds[s_rank]
            )
            c_rank = np.concatenate([p_dest, s_rank])
            c_local = np.concatenate([pil_local, rep_local])
            c_slot = np.concatenate([pil_local, s_slot])
            c_expert = np.concatenate([p_expert, s_expert])
            o_merge = _argsort_key(
                (c_rank * max_pilots + c_slot) * num_experts + c_expert
            )
            m_local, m_slot = c_local[o_merge], c_slot[o_merge]
            contrib_bounds = np.concatenate(
                [[0], np.cumsum(pilot_counts + pr_counts)]
            )
            merge_perm = [
                m_local[contrib_bounds[p] : contrib_bounds[p + 1]] for p in range(size)
            ]
            merge_slot = [
                m_slot[contrib_bounds[p] : contrib_bounds[p + 1]] for p in range(size)
            ]

        # ---- arrival tables (pilots ++ replicas per destination) ----
        if rng is None:
            n_dest = pilot_counts
            dest_bounds = bounds
            arr_src_g, arr_row_g = p_src, p_row
            arr_expert_g, arr_weight_g = p_expert, p_weight
        else:
            n_dest = pilot_counts + dr_counts
            dest_bounds = np.concatenate([[0], np.cumsum(n_dest)])
            pil_pos = dest_bounds[p_dest] + pil_local
            rep_pos = (
                dest_bounds[a_dest]
                + pilot_counts[a_dest]
                + np.arange(a_dest.size, dtype=np.int64)
                - dr_bounds[a_dest]
            )
            arr_src_g = np.empty(total, dtype=np.int64)
            arr_row_g = np.empty(total, dtype=np.int64)
            arr_expert_g = np.empty(total, dtype=np.int64)
            arr_weight_g = np.empty(total, dtype=np.float64)
            for buf, pil, rep in (
                (arr_src_g, p_src, a_src),
                (arr_row_g, p_row, a_row),
                (arr_expert_g, p_expert, a_expert),
                (arr_weight_g, p_weight, a_weight),
            ):
                buf[pil_pos] = pil
                buf[rep_pos] = rep
        arrival_src = [
            arr_src_g[dest_bounds[d] : dest_bounds[d + 1]] for d in range(size)
        ]
        arrival_row = [
            arr_row_g[dest_bounds[d] : dest_bounds[d + 1]] for d in range(size)
        ]
        arrival_expert = [
            arr_expert_g[dest_bounds[d] : dest_bounds[d + 1]] for d in range(size)
        ]
        arrival_weight = [
            arr_weight_g[dest_bounds[d] : dest_bounds[d + 1]] for d in range(size)
        ]

        # ---- canonical expert grouping ------------------------------
        # One global sort by (dest, expert, src, row): the key is a total
        # order on assignments, so flat and RBD produce identical buffers.
        t_dest = np.repeat(np.arange(size, dtype=np.int64), n_dest)
        t_local = np.arange(total, dtype=np.int64) - dest_bounds[t_dest]
        canon_key = (
            (t_dest * num_experts + arr_expert_g) * size + arr_src_g
        ) * max_rows + arr_row_g
        o_canon = _argsort_key(canon_key)
        canon_sorted = t_local[o_canon]
        sort_order = [
            canon_sorted[dest_bounds[d] : dest_bounds[d + 1]] for d in range(size)
        ]
        expert_counts = np.bincount(
            t_dest * num_experts + arr_expert_g, minlength=size * num_experts
        ).reshape(size, num_experts)
        tokens_per_local_expert = [
            expert_counts[d][self._experts_by_rank[d]] for d in range(size)
        ]

        # ---- source-side combine program ----------------------------
        # One global sort with the source rank as the outermost key;
        # per-rank views fall out of the (rank-major) group ids.
        k_rank = g_src[o_send1]
        k_tok = token_all[sent_global]
        k_node = node_all[sent_global]
        k_expert = expert_all[sent_global]
        keys = (k_rank * max_tok + k_tok) * num_nodes + k_node
        if rng is not None:
            # RBD sends one row per (rank, token, node) group, so the keys
            # are unique: a single argsort yields both the group index and
            # the fold order.
            order_k = _argsort_key(keys)
            uniq = keys[order_k]
            inv = np.empty(keys.size, dtype=np.int64)
            inv[order_k] = np.arange(keys.size)
            o_fold = order_k
        else:
            uniq, inv = np.unique(keys, return_inverse=True)
            # Fold order (group, expert): experts are unique within a group.
            o_fold = _argsort_key(inv * num_experts + k_expert)
        group_rank = uniq // (max_tok * num_nodes)
        group_bounds = np.concatenate(
            [[0], np.cumsum(np.bincount(group_rank, minlength=size))]
        )
        local_group = inv - group_bounds[k_rank]
        fold_sorted = o_fold - sel_bounds[k_rank[o_fold]]
        g_token = (uniq // num_nodes) % max_tok
        combine_partial = [
            local_group[sel_bounds[r] : sel_bounds[r + 1]] for r in range(size)
        ]
        combine_perm = [
            fold_sorted[sel_bounds[r] : sel_bounds[r + 1]] for r in range(size)
        ]
        partial_token = [
            g_token[group_bounds[r] : group_bounds[r + 1]] for r in range(size)
        ]

        # ---- statistics ---------------------------------------------
        src_node_all = self.rank_to_node[rank_all]
        cross_all = int((node_all != src_node_all).sum())
        cross_pilots = int((src_node_all[g_idx] != node_all[g_idx]).sum())
        hop_tiers = [self.tier_matrix[g_src, g_dest]]
        if rng is not None:
            hop_tiers.append(self.tier_matrix[r_pr, r_dr])  # stage-2 replicas
        rows_by_tier = _rows_by_tier(np.concatenate(hop_tiers))

        return DispatchPlan(
            kind=self.kind,
            size=size,
            num_experts=self.num_experts,
            num_nodes=num_nodes,
            expert_to_rank=self.expert_to_rank,
            rank_to_node=self.rank_to_node,
            pfts=list(pfts),
            send_rows=send_rows,
            send_splits=send_splits,
            recv_splits=recv_splits,
            arrival_src=arrival_src,
            arrival_row=arrival_row,
            arrival_expert=arrival_expert,
            arrival_weight=arrival_weight,
            num_pilot_arrivals=num_pilot_arrivals,
            sort_order=sort_order,
            tokens_per_local_expert=tokens_per_local_expert,
            node_members=self.node_members,
            s2_source_slot=s2_source_slot,
            s2_send_splits=s2_send_splits,
            s2_recv_splits=s2_recv_splits,
            merge_slot=merge_slot,
            merge_perm=merge_perm,
            combine_partial=combine_partial,
            combine_perm=combine_perm,
            partial_token=partial_token,
            total_assignments=total,
            total_pilots=int(g_idx.size),
            cross_node_assignments=cross_all,
            cross_node_pilots=cross_pilots,
            dispatch_rows_by_tier=rows_by_tier,
        )


class FlatPlanner(_PlannerBase):
    """Single uneven all-to-all: every assignment travels to its expert.

    Serves both as the baseline dispatch engine and as the correctness
    oracle for :class:`RBDPlanner`.
    """

    kind = "flat"

    def build(self, pfts: list, *, step: int | None = None) -> DispatchPlan:
        """Compile per-rank PFTs into a flat plan (``step`` is unused)."""
        return self._compile(pfts, rng=None)


class RBDPlanner(_PlannerBase):
    """Two-stage redundancy-bypassing dispatch (§4.2 of the paper).

    Only one *pilot* row per (token, destination node) group crosses the
    inter-node links; replicas are reconstructed from the pilot's data on
    the destination node and exchanged intra-node.
    """

    kind = "rbd"

    def __init__(self, group, num_experts: int, expert_to_rank=None, *, seed: int = 0):
        super().__init__(group, num_experts, expert_to_rank)
        self.seed = seed

    def _rng(self, step: int | None) -> np.random.Generator:
        if step is None:
            return np.random.default_rng(self.seed)
        return np.random.default_rng((self.seed, int(step)))

    def stage0(self, pft, rng: np.random.Generator) -> RBDPlan:
        """Pilot/replica selection for one source rank's PFT."""
        dest_rank = self.expert_to_rank[pft.expert_ids]
        dest_node = self.rank_to_node[dest_rank]
        return select_pilots(pft, dest_rank, dest_node, self.num_nodes, rng)

    def build(self, pfts: list, *, step: int | None = None) -> DispatchPlan:
        """Compile per-rank PFTs into an RBD plan (pilots drawn from ``step``)."""
        return self._compile(pfts, rng=self._rng(step))


class HierarchicalPlanner(_PlannerBase):
    """Two-hop hierarchical dispatch through per-node leaders.

    ColossalAI-style hierarchical all-to-all recast as a planner: tokens are
    (1) gathered intra-node onto a per-node *leader* over the fast
    NVLink/XGMI tier, (2) exchanged in one leader-to-leader alltoallv over
    the inter-node tier, and (3) scattered intra-node to the rank hosting
    the selected expert — with the combine path running the same three hops
    in reverse.  Each ``(source rank, token, destination node)`` group
    crosses the inter-node links exactly once (deterministically — the
    group's lowest PFT row is the one that travels; no RNG, unlike RBD's
    random pilots), so inter-node bytes match RBD while the exchange itself
    is aggregated into one large message per node pair.

    The arrival tables and combine fold orders use the same canonical
    ``(expert, src, row)`` total order as :class:`FlatPlanner`, and the
    destination-leader fold sums each group's contributions in ascending
    expert order — exactly the flat oracle's association order — so the
    combined output is **bit-identical to flat** for every router policy,
    including non-rectangular expert-choice selections.
    """

    kind = "hier"

    def build(self, pfts: list, *, step: int | None = None) -> DispatchPlan:
        """Compile per-rank PFTs into a two-hop plan (``step`` is unused)."""
        return self._compile_hier(pfts)

    # ------------------------------------------------------------------
    def _compile_hier(self, pfts: list) -> DispatchPlan:
        """Build the two-hop plan from one global assignment table.

        All bookkeeping falls out of combined-key argsorts and bincounts
        over flat arrays: the only Python loops run over ranks or nodes,
        never over rows.
        """
        size = self.group.size
        if len(pfts) != size:
            raise ValueError(f"need one PFT per group rank (got {len(pfts)})")
        num_nodes = self.num_nodes
        num_experts = self.num_experts
        mm = int(self.node_group_size.max())
        leader_of, node_leader = self.leader_of, self.node_leader

        # ---- global assignment table --------------------------------
        sizes = np.array([p.num_routed_tokens for p in pfts], dtype=np.int64)
        total = int(sizes.sum())
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        max_rows = int(sizes.max()) + 1
        rank_all = np.repeat(np.arange(size, dtype=np.int64), sizes)
        row_all = np.arange(total, dtype=np.int64) - offsets[rank_all]
        expert_all = np.concatenate([p.expert_ids for p in pfts]).astype(
            np.int64, copy=False
        )
        token_all = np.concatenate([p.token_ids for p in pfts]).astype(
            np.int64, copy=False
        )
        weight_all = np.concatenate([p.combine_weights for p in pfts])
        dest_all = self.expert_to_rank[expert_all]
        dnode_all = self.rank_to_node[dest_all]
        dmember_all = self.member_index[dest_all]
        dleader_all = leader_of[dest_all]
        max_tok = max((p.num_source_tokens for p in pfts), default=0) + 1

        # ---- dedup: one travelling row per (src, token, dest node) --
        # The group key is token-major per rank — the same key the flat
        # planner uses for its combine partial groups, so ``partial_token``
        # is identical across all three plan kinds.
        key_g = (rank_all * max_tok + token_all) * num_nodes + dnode_all
        uniq, inv = np.unique(key_g, return_inverse=True)
        num_groups = uniq.size
        g_rank = uniq // (max_tok * num_nodes)
        g_token = (uniq // num_nodes) % max_tok
        g_node = uniq % num_nodes
        rep_row = np.full(num_groups, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(rep_row, inv, row_all)
        g_counts = np.bincount(g_rank, minlength=size)
        g_bounds = np.concatenate([[0], np.cumsum(g_counts)])
        # Position of each group within its rank, in (token, node) order —
        # exactly the partial-group id of the flat combine.
        g_localid = np.arange(num_groups, dtype=np.int64) - g_bounds[g_rank]

        # ---- hop A: members gather onto their node leader -----------
        # Send order per source is (dest node, token); every row goes to
        # the node leader (member 0), so the leader's arrival buffer is the
        # member-order concatenation of those per-member runs.
        o_hA = _argsort_key((g_rank * num_nodes + g_node) * max_tok + g_token)
        hA_rows_sorted = rep_row[o_hA]
        hA_send_rows = [
            hA_rows_sorted[g_bounds[r] : g_bounds[r + 1]] for r in range(size)
        ]
        hA_pos = np.empty(num_groups, dtype=np.int64)
        hA_pos[o_hA] = np.arange(num_groups, dtype=np.int64) - g_bounds[g_rank[o_hA]]
        hA_send_splits = []
        for r in range(size):
            send = np.zeros(int(self.node_group_size[r]), dtype=np.int64)
            send[0] = g_counts[r]
            hA_send_splits.append(send)
        hA_recv_splits: list[np.ndarray] = [None] * size  # type: ignore[list-item]
        member_offset = np.zeros(size, dtype=np.int64)
        for members in self.node_members:
            member_offset[members] = np.concatenate(
                [[0], np.cumsum(g_counts[members])[:-1]]
            )
            hA_recv_splits[int(members[0])] = g_counts[members].astype(np.int64)
            for m in members[1:]:
                hA_recv_splits[int(m)] = np.zeros(members.size, dtype=np.int64)
        # Slot of each group in its source-node leader's hop-A buffer.
        a_pos = member_offset[g_rank] + hA_pos

        # ---- hop B: one leader-to-leader exchange -------------------
        g_sleader = leader_of[g_rank]
        g_dleader = node_leader[g_node]
        max_a = int(a_pos.max(initial=0)) + 1
        o_hB = _argsort_key((g_sleader * size + g_dleader) * max_a + a_pos)
        sl_counts = np.bincount(g_sleader, minlength=size)
        sl_bounds = np.concatenate([[0], np.cumsum(sl_counts)])
        hB_all = a_pos[o_hB]
        hB_perm = [hB_all[sl_bounds[r] : sl_bounds[r + 1]] for r in range(size)]
        hB_mat = np.bincount(
            g_sleader * size + g_dleader, minlength=size * size
        ).reshape(size, size)
        hB_send_splits = [hB_mat[r] for r in range(size)]
        hB_recv_splits = [hB_mat[:, r].copy() for r in range(size)]
        # Slot of each group in its dest-node leader's hop-B arrival buffer
        # (chunks concatenate in source-leader rank order).
        o_arrB = _argsort_key((g_dleader * size + g_sleader) * max_a + a_pos)
        dl_bounds = np.concatenate([[0], np.cumsum(np.bincount(g_dleader, minlength=size))])
        b_pos = np.empty(num_groups, dtype=np.int64)
        b_pos[o_arrB] = np.arange(num_groups, dtype=np.int64) - dl_bounds[g_dleader[o_arrB]]

        # ---- hop C: dest leader scatters one row per assignment -----
        # Send order is (dest member, src rank, token, expert): members get
        # contiguous chunks and each chunk matches the destination's
        # arrival-table order below.
        sub = (rank_all * max_tok + token_all) * num_experts + expert_all
        max_sub = int(sub.max(initial=0)) + 1
        o_hC = _argsort_key((dleader_all * mm + dmember_all) * max_sub + sub)
        cl_counts = np.bincount(dleader_all, minlength=size)
        cl_bounds = np.concatenate([[0], np.cumsum(cl_counts)])
        hC_all = b_pos[inv[o_hC]]
        hC_gather = [hC_all[cl_bounds[r] : cl_bounds[r + 1]] for r in range(size)]
        hC_mat = np.bincount(
            dleader_all * mm + dmember_all, minlength=size * mm
        ).reshape(size, mm)
        hC_send_splits = [
            hC_mat[r, : int(self.node_group_size[r])] for r in range(size)
        ]
        n_dest = np.bincount(dest_all, minlength=size)
        hC_recv_splits = []
        for r in range(size):
            recv = np.zeros(int(self.node_group_size[r]), dtype=np.int64)
            recv[0] = n_dest[r]  # everything arrives from the leader
            hC_recv_splits.append(recv)

        # ---- arrival tables -----------------------------------------
        # Arrival order at destination d is (src rank, token, expert) —
        # the order hop C delivers.
        o_arr = _argsort_key(dest_all * max_sub + sub)
        d_bounds = np.concatenate([[0], np.cumsum(n_dest)])
        arr_src_g, arr_row_g = rank_all[o_arr], row_all[o_arr]
        arr_expert_g, arr_weight_g = expert_all[o_arr], weight_all[o_arr]
        arrival_src = [arr_src_g[d_bounds[d] : d_bounds[d + 1]] for d in range(size)]
        arrival_row = [arr_row_g[d_bounds[d] : d_bounds[d + 1]] for d in range(size)]
        arrival_expert = [
            arr_expert_g[d_bounds[d] : d_bounds[d + 1]] for d in range(size)
        ]
        arrival_weight = [
            arr_weight_g[d_bounds[d] : d_bounds[d + 1]] for d in range(size)
        ]

        # ---- canonical expert grouping ------------------------------
        # Same total-order key as the flat planner — this is what makes the
        # expert input buffers (and hence the outputs) bit-identical.
        t_dest = np.repeat(np.arange(size, dtype=np.int64), n_dest)
        t_local = np.arange(total, dtype=np.int64) - d_bounds[t_dest]
        canon_key = (
            (t_dest * num_experts + arr_expert_g) * size + arr_src_g
        ) * max_rows + arr_row_g
        o_canon = _argsort_key(canon_key)
        canon_sorted = t_local[o_canon]
        sort_order = [
            canon_sorted[d_bounds[d] : d_bounds[d + 1]] for d in range(size)
        ]
        expert_counts = np.bincount(
            t_dest * num_experts + arr_expert_g, minlength=size * num_experts
        ).reshape(size, num_experts)
        tokens_per_local_expert = [
            expert_counts[d][self._experts_by_rank[d]] for d in range(size)
        ]

        # ---- combine-side leader fold -------------------------------
        # The reverse-hop-C buffer at each leader is the member-order
        # concatenation of full weighted buffers — i.e. exactly hop-C send
        # order.  Folding its rows onto hop-B slots sorted by (slot,
        # expert) sums every (token, node) group in ascending expert order,
        # the flat oracle's association order.
        posC = np.empty(total, dtype=np.int64)
        posC[o_hC] = np.arange(total, dtype=np.int64) - cl_bounds[dleader_all[o_hC]]
        slot_a = b_pos[inv]
        max_b = int(b_pos.max(initial=0)) + 1
        o_fold = _argsort_key((dleader_all * max_b + slot_a) * num_experts + expert_all)
        fold_perm_all, fold_slot_all = posC[o_fold], slot_a[o_fold]
        hM_fold_perm = [
            fold_perm_all[cl_bounds[r] : cl_bounds[r + 1]] for r in range(size)
        ]
        hM_fold_slot = [
            fold_slot_all[cl_bounds[r] : cl_bounds[r + 1]] for r in range(size)
        ]

        # ---- source-side combine ------------------------------------
        # One returned row per (token, node) group, delivered in hop-A send
        # order; ``combine_partial`` reorders it into group-id order and
        # the token fold then matches flat exactly.
        combine_partial = [
            g_localid[o_hA][g_bounds[r] : g_bounds[r + 1]] for r in range(size)
        ]
        partial_token = [g_token[g_bounds[r] : g_bounds[r + 1]] for r in range(size)]
        empty_i = np.zeros(0, dtype=np.int64)

        # ---- statistics ---------------------------------------------
        src_node_all = self.rank_to_node[rank_all]
        cross_all = int((dnode_all != src_node_all).sum())
        cross_groups = int((g_node != self.rank_to_node[g_rank]).sum())
        rows_by_tier = _rows_by_tier(
            np.concatenate(
                [
                    self.tier_matrix[g_rank, g_sleader],  # hop A
                    self.tier_matrix[g_sleader, g_dleader],  # hop B
                    self.tier_matrix[dleader_all, dest_all],  # hop C
                ]
            )
        )

        zero_node_splits = [
            np.zeros(int(self.node_group_size[r]), dtype=np.int64) for r in range(size)
        ]
        return DispatchPlan(
            kind=self.kind,
            size=size,
            num_experts=num_experts,
            num_nodes=num_nodes,
            expert_to_rank=self.expert_to_rank,
            rank_to_node=self.rank_to_node,
            pfts=list(pfts),
            send_rows=hA_send_rows,
            send_splits=hB_send_splits,
            recv_splits=hB_recv_splits,
            arrival_src=arrival_src,
            arrival_row=arrival_row,
            arrival_expert=arrival_expert,
            arrival_weight=arrival_weight,
            num_pilot_arrivals=[int(n) for n in n_dest],
            sort_order=sort_order,
            tokens_per_local_expert=tokens_per_local_expert,
            node_members=self.node_members,
            s2_source_slot=[empty_i] * size,
            s2_send_splits=zero_node_splits,
            s2_recv_splits=list(zero_node_splits),
            merge_slot=[empty_i] * size,
            merge_perm=[empty_i] * size,
            combine_partial=combine_partial,
            combine_perm=[empty_i] * size,
            partial_token=partial_token,
            hA_send_splits=hA_send_splits,
            hA_recv_splits=hA_recv_splits,
            hB_perm=hB_perm,
            hC_gather=hC_gather,
            hC_send_splits=hC_send_splits,
            hC_recv_splits=hC_recv_splits,
            hM_fold_perm=hM_fold_perm,
            hM_fold_slot=hM_fold_slot,
            total_assignments=total,
            total_pilots=num_groups,
            cross_node_assignments=cross_all,
            cross_node_pilots=cross_groups,
            dispatch_rows_by_tier=rows_by_tier,
        )
