"""Load-balance telemetry for router policies.

:class:`RoutingTelemetry` accumulates, step over step, what a router policy
actually did to the cluster: the per-expert load histogram, the policy /
capacity drop rates, the normalized load-balance entropy, and — when the
step's :class:`~repro.routing.plan.DispatchPlan` is recorded too — the
dispatched byte counts (split into inter-node vs intra-node tiers) and
redundancy of the dispatch path.  The simulated trainer records one entry
per training step; the router-policy and hierarchical-dispatch benchmarks
print the accumulated summaries as comparison tables.

Since the :mod:`repro.obs` subsystem landed, the scalar tallies live in a
:class:`~repro.obs.metrics.MetricsRegistry` instead of private attributes:
pass ``metrics=`` to publish into a shared registry (the ``repro obs``
recording does), or omit it and the telemetry keeps a private one.  Every
historical attribute (``steps``, ``assignments``, ``stage1_bytes``, ...)
is preserved as a property over the registry, so existing consumers read
exactly what they always did while exporters read the registry snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.comm.process_group import CommStats


def load_balance_entropy(load: np.ndarray) -> float:
    """Normalized entropy of a per-expert load histogram.

    1.0 means perfectly even load, 0.0 means every token went to a single
    expert.  Defined as ``H(load / total) / ln(E)`` over the experts with
    ``E > 1``; degenerate histograms (no load, one expert) return 1.0.
    """
    load = np.asarray(load, dtype=np.float64)
    total = load.sum()
    if total <= 0 or load.size <= 1:
        return 1.0
    p = load[load > 0] / total
    entropy = float(-(p * np.log(p)).sum())
    return entropy / float(np.log(load.size))


def load_imbalance_of(load: np.ndarray) -> float:
    """Max-over-mean of a per-expert load histogram (1.0 = perfectly even).

    Shared by the cumulative :meth:`RoutingTelemetry.load_imbalance` view
    and the online monitor's per-step load deltas
    (:class:`~repro.obs.series.MetricsSampler`), so both read the same
    definition of skew.  Degenerate histograms (no load) return 1.0.
    """
    load = np.asarray(load, dtype=np.float64)
    mean = load.mean()
    if mean <= 0:
        return 1.0
    return float(load.max() / mean)


class RoutingTelemetry:
    """Accumulates per-step routing decisions (and optionally plans).

    ``metrics`` is the :class:`~repro.obs.metrics.MetricsRegistry` the
    tallies publish into (a private registry is created when omitted);
    ``load`` stays a numpy per-expert histogram (registries hold scalars,
    not arrays).
    """

    def __init__(self, num_experts: int, *, metrics: MetricsRegistry | None = None):
        if num_experts <= 0:
            raise ValueError("num_experts must be positive")
        self.num_experts = num_experts
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        reg = self.metrics
        self.load = np.zeros(num_experts, dtype=np.int64)
        self._steps = reg.counter("routing_steps").labels()
        self._assignments = reg.counter("routing_assignments").labels()
        self._policy_dropped = reg.counter("routing_policy_dropped").labels()
        self._capacity_dropped = reg.counter("routing_capacity_dropped").labels()
        self._aux_loss = reg.histogram("routing_aux_loss").labels()
        self._z_loss = reg.histogram("routing_z_loss").labels()
        self._stage_bytes = reg.counter("dispatch_stage_bytes", "stage")
        self._tier_bytes = reg.counter("dispatch_tier_bytes", "tier")
        self._sent_rows = reg.counter("dispatch_sent_rows").labels()
        self._planned_assignments = reg.counter("dispatch_planned_assignments").labels()
        self._cache_outcomes = reg.counter("plan_cache_resolutions", "outcome")
        #: optionally attached by the validation driver: the CommWorld's
        #: CommStats, for per-op / per-tier inspection after the run.
        self.comm_stats: CommStats | None = None

    # ------------------------------------------------------------------
    def record(
        self,
        decisions,
        *,
        pfts=None,
        plan=None,
        row_bytes: int = 0,
        cache_outcome: str | None = None,
    ) -> None:
        """Record one step: the per-rank decisions and (optionally) the plan.

        ``decisions`` is a single :class:`~repro.routing.policies.RoutingDecision`
        or a list of them (one per rank); ``pfts`` adds the capacity drops
        PFT construction applied on top of the policy's own drops; ``plan``
        adds dispatch-side telemetry with payload rows of ``row_bytes``;
        ``cache_outcome`` tallies how the step's plan was resolved when a
        :class:`~repro.routing.plan_cache.PlanCache` is in play.
        """
        if not isinstance(decisions, (list, tuple)):
            decisions = [decisions]
        for decision in decisions:
            if decision.num_experts != self.num_experts:
                raise ValueError(
                    f"decision has {decision.num_experts} experts, telemetry "
                    f"tracks {self.num_experts}"
                )
            self.load += decision.expert_load()
            self._assignments.inc(decision.num_assignments)
            self._policy_dropped.inc(decision.num_dropped)
            self._aux_loss.observe(decision.aux_loss)
            self._z_loss.observe(decision.z_loss)
        if pfts is not None:
            if not isinstance(pfts, (list, tuple)):
                pfts = [pfts]
            self._capacity_dropped.inc(
                sum(int(p.dropped_assignments) for p in pfts)
            )
        if plan is not None:
            stats = plan.stats_dict(row_bytes)
            self._stage_bytes.labels(stage="stage1").inc(stats["stage1_bytes"])
            self._stage_bytes.labels(stage="stage2").inc(stats["stage2_bytes"])
            self._tier_bytes.labels(tier="inter_node").inc(
                plan.inter_node_rows * row_bytes
            )
            self._tier_bytes.labels(tier="intra_node").inc(
                plan.intra_node_rows * row_bytes
            )
            self._sent_rows.inc(plan.sent_rows())
            self._planned_assignments.inc(plan.total_assignments)
        if cache_outcome is not None:
            self._cache_outcomes.labels(outcome=cache_outcome).inc()
        self._steps.inc()

    def attribute_drops(
        self, request_id: str, *, policy: int = 0, capacity: int = 0
    ) -> None:
        """Attribute a step's drops to the request that suffered them.

        The serving engine maps one request to one EP rank slot, so each
        rank's per-step drop counts (``StepTrace.policy_drops_by_rank`` /
        ``capacity_drops_by_rank``) are exactly one request's drops.  They
        land in the ``routing_request_drops`` family labeled by request and
        kind; :meth:`request_drop_attribution` reads the ledger back.
        """
        if policy < 0 or capacity < 0:
            raise ValueError("drop counts must be non-negative")
        family = self.metrics.counter("routing_request_drops", "request", "kind")
        if policy:
            family.labels(request=request_id, kind="policy").inc(policy)
        if capacity:
            family.labels(request=request_id, kind="capacity").inc(capacity)

    def request_drop_attribution(self) -> dict[str, dict[str, int]]:
        """Per-request drop tallies: ``{request_id: {kind: count}}``.

        Only requests that actually suffered drops appear (zero counts are
        never recorded), so an empty dict means a drop-free run.
        """
        out: dict[str, dict[str, int]] = {}
        family = self.metrics.counter("routing_request_drops", "request", "kind")
        for key, child in family.series().items():
            request_id, kind = key
            out.setdefault(request_id, {})[kind] = int(child.value)
        return out

    # ------------------------------------------------------------------
    # Registry-backed views with the historical attribute names.
    @property
    def steps(self) -> int:
        """Recorded steps."""
        return int(self._steps.value)

    @property
    def assignments(self) -> int:
        """Routed (token, expert) assignments across all steps."""
        return int(self._assignments.value)

    @property
    def policy_dropped(self) -> int:
        """Assignments the router policy itself dropped."""
        return int(self._policy_dropped.value)

    @property
    def capacity_dropped(self) -> int:
        """Assignments dropped by PFT capacity truncation."""
        return int(self._capacity_dropped.value)

    @property
    def aux_loss_sum(self) -> float:
        """Sum of per-decision auxiliary (load-balance) losses."""
        return self._aux_loss.total

    @property
    def z_loss_sum(self) -> float:
        """Sum of per-decision router z-losses."""
        return self._z_loss.total

    @property
    def stage1_bytes(self) -> float:
        """Dispatch stage-1 payload bytes across all recorded plans."""
        return self._stage_bytes.labels(stage="stage1").value

    @property
    def stage2_bytes(self) -> float:
        """Dispatch stage-2 payload bytes across all recorded plans."""
        return self._stage_bytes.labels(stage="stage2").value

    @property
    def inter_node_bytes(self) -> float:
        """Payload bytes that crossed a node boundary."""
        return self._tier_bytes.labels(tier="inter_node").value

    @property
    def intra_node_bytes(self) -> float:
        """Payload bytes that stayed within a node."""
        return self._tier_bytes.labels(tier="intra_node").value

    @property
    def sent_rows(self) -> int:
        """Rows the dispatch collectives actually carried."""
        return int(self._sent_rows.value)

    @property
    def planned_assignments(self) -> int:
        """Assignments the recorded plans were built to serve."""
        return int(self._planned_assignments.value)

    @property
    def plan_cache_outcomes(self) -> dict[str, int]:
        """Plan-cache resolution tallies keyed by outcome.

        Empty until a caching runtime records a step — exactly the dict
        this class kept as a plain attribute before the registry refactor.
        """
        return {
            key[0]: int(child.value)
            for key, child in self._cache_outcomes.series().items()
        }

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """All dropped assignments (policy-level + capacity-level)."""
        return self.policy_dropped + self.capacity_dropped

    @property
    def drop_rate(self) -> float:
        """Dropped assignments as a fraction of all routed assignments."""
        if self.assignments == 0:
            return 0.0
        return self.dropped / self.assignments

    @property
    def redundancy(self) -> float:
        """Fraction of planned assignments served as intra-node replicas."""
        if self.planned_assignments == 0:
            return 0.0
        return 1.0 - self.sent_rows / self.planned_assignments

    def balance_entropy(self) -> float:
        """Normalized entropy of the accumulated per-expert load."""
        return load_balance_entropy(self.load)

    def load_imbalance(self) -> float:
        """Max-over-mean per-expert load (1.0 = perfectly even)."""
        return load_imbalance_of(self.load)

    def mean_aux_loss(self) -> float:
        """Mean per-step auxiliary (load-balance) loss."""
        return self.aux_loss_sum / max(1, self.steps)

    # ------------------------------------------------------------------
    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of cached-runtime steps that skipped the plan build."""
        outcomes = self.plan_cache_outcomes
        total = sum(outcomes.values())
        if total == 0:
            return 0.0
        warm = outcomes.get("hit", 0) + outcomes.get("weight_patch", 0)
        return warm / total

    def summary(self) -> dict:
        """Headline numbers for reporting (one row of the comparison table).

        Plan-cache keys appear only when a caching runtime recorded at
        least one step, so existing consumers of the table are unaffected.
        """
        out = self._base_summary()
        outcomes = self.plan_cache_outcomes
        if outcomes:
            out["plan_cache_hit_rate"] = round(self.plan_cache_hit_rate, 4)
            for outcome in ("hit", "weight_patch", "patch", "miss"):
                out[f"plan_cache_{outcome}"] = outcomes.get(outcome, 0)
        return out

    def _base_summary(self) -> dict:
        return {
            "steps": self.steps,
            "assignments": self.assignments,
            "balance_entropy": round(self.balance_entropy(), 4),
            "load_imbalance": round(self.load_imbalance(), 3),
            "drop_rate": round(self.drop_rate, 4),
            "policy_dropped": self.policy_dropped,
            "capacity_dropped": self.capacity_dropped,
            "stage1_mb": round(self.stage1_bytes / 1e6, 3),
            "stage2_mb": round(self.stage2_bytes / 1e6, 3),
            "inter_node_mb": round(self.inter_node_bytes / 1e6, 3),
            "intra_node_mb": round(self.intra_node_bytes / 1e6, 3),
            "redundancy": round(self.redundancy, 4),
        }
