"""Load-balance telemetry for router policies.

:class:`RoutingTelemetry` accumulates, step over step, what a router policy
actually did to the cluster: the per-expert load histogram, the policy /
capacity drop rates, the normalized load-balance entropy, and — when the
step's :class:`~repro.routing.plan.DispatchPlan` is recorded too — the
dispatched byte counts (split into inter-node vs intra-node tiers) and
redundancy of the dispatch path.  The simulated trainer records one entry
per training step; the router-policy and hierarchical-dispatch benchmarks
print the accumulated summaries as comparison tables.
"""

from __future__ import annotations

import numpy as np


def load_balance_entropy(load: np.ndarray) -> float:
    """Normalized entropy of a per-expert load histogram.

    1.0 means perfectly even load, 0.0 means every token went to a single
    expert.  Defined as ``H(load / total) / ln(E)`` over the experts with
    ``E > 1``; degenerate histograms (no load, one expert) return 1.0.
    """
    load = np.asarray(load, dtype=np.float64)
    total = load.sum()
    if total <= 0 or load.size <= 1:
        return 1.0
    p = load[load > 0] / total
    entropy = float(-(p * np.log(p)).sum())
    return entropy / float(np.log(load.size))


class RoutingTelemetry:
    """Accumulates per-step routing decisions (and optionally plans)."""

    def __init__(self, num_experts: int):
        if num_experts <= 0:
            raise ValueError("num_experts must be positive")
        self.num_experts = num_experts
        self.steps = 0
        self.load = np.zeros(num_experts, dtype=np.int64)
        self.assignments = 0
        self.policy_dropped = 0
        self.capacity_dropped = 0
        self.aux_loss_sum = 0.0
        self.z_loss_sum = 0.0
        self.stage1_bytes = 0.0
        self.stage2_bytes = 0.0
        self.inter_node_bytes = 0.0
        self.intra_node_bytes = 0.0
        self.sent_rows = 0
        self.planned_assignments = 0
        #: plan-cache resolution tallies, keyed by outcome ("hit",
        #: "weight_patch", "patch", "miss"); empty until a caching runtime
        #: records a step.
        self.plan_cache_outcomes: dict[str, int] = {}
        #: optionally attached by the validation driver: the CommWorld's
        #: CommStats, for per-op / per-tier inspection after the run.
        self.comm_stats = None

    # ------------------------------------------------------------------
    def record(
        self,
        decisions,
        *,
        pfts=None,
        plan=None,
        row_bytes: int = 0,
        cache_outcome: str | None = None,
    ) -> None:
        """Record one step: the per-rank decisions and (optionally) the plan.

        ``decisions`` is a single :class:`~repro.routing.policies.RoutingDecision`
        or a list of them (one per rank); ``pfts`` adds the capacity drops
        PFT construction applied on top of the policy's own drops; ``plan``
        adds dispatch-side telemetry with payload rows of ``row_bytes``;
        ``cache_outcome`` tallies how the step's plan was resolved when a
        :class:`~repro.routing.plan_cache.PlanCache` is in play.
        """
        if not isinstance(decisions, (list, tuple)):
            decisions = [decisions]
        for decision in decisions:
            if decision.num_experts != self.num_experts:
                raise ValueError(
                    f"decision has {decision.num_experts} experts, telemetry "
                    f"tracks {self.num_experts}"
                )
            self.load += decision.expert_load()
            self.assignments += decision.num_assignments
            self.policy_dropped += decision.num_dropped
            self.aux_loss_sum += decision.aux_loss
            self.z_loss_sum += decision.z_loss
        if pfts is not None:
            if not isinstance(pfts, (list, tuple)):
                pfts = [pfts]
            self.capacity_dropped += sum(int(p.dropped_assignments) for p in pfts)
        if plan is not None:
            stats = plan.stats_dict(row_bytes)
            self.stage1_bytes += stats["stage1_bytes"]
            self.stage2_bytes += stats["stage2_bytes"]
            self.inter_node_bytes += plan.inter_node_rows * row_bytes
            self.intra_node_bytes += plan.intra_node_rows * row_bytes
            self.sent_rows += plan.sent_rows()
            self.planned_assignments += plan.total_assignments
        if cache_outcome is not None:
            self.plan_cache_outcomes[cache_outcome] = (
                self.plan_cache_outcomes.get(cache_outcome, 0) + 1
            )
        self.steps += 1

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """All dropped assignments (policy-level + capacity-level)."""
        return self.policy_dropped + self.capacity_dropped

    @property
    def drop_rate(self) -> float:
        """Dropped assignments as a fraction of all routed assignments."""
        if self.assignments == 0:
            return 0.0
        return self.dropped / self.assignments

    @property
    def redundancy(self) -> float:
        """Fraction of planned assignments served as intra-node replicas."""
        if self.planned_assignments == 0:
            return 0.0
        return 1.0 - self.sent_rows / self.planned_assignments

    def balance_entropy(self) -> float:
        """Normalized entropy of the accumulated per-expert load."""
        return load_balance_entropy(self.load)

    def load_imbalance(self) -> float:
        """Max-over-mean per-expert load (1.0 = perfectly even)."""
        mean = self.load.mean()
        if mean <= 0:
            return 1.0
        return float(self.load.max() / mean)

    def mean_aux_loss(self) -> float:
        """Mean per-step auxiliary (load-balance) loss."""
        return self.aux_loss_sum / max(1, self.steps)

    # ------------------------------------------------------------------
    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of cached-runtime steps that skipped the plan build."""
        total = sum(self.plan_cache_outcomes.values())
        if total == 0:
            return 0.0
        warm = self.plan_cache_outcomes.get("hit", 0) + self.plan_cache_outcomes.get(
            "weight_patch", 0
        )
        return warm / total

    def summary(self) -> dict:
        """Headline numbers for reporting (one row of the comparison table).

        Plan-cache keys appear only when a caching runtime recorded at
        least one step, so existing consumers of the table are unaffected.
        """
        out = self._base_summary()
        if self.plan_cache_outcomes:
            out["plan_cache_hit_rate"] = round(self.plan_cache_hit_rate, 4)
            for outcome in ("hit", "weight_patch", "patch", "miss"):
                out[f"plan_cache_{outcome}"] = self.plan_cache_outcomes.get(outcome, 0)
        return out

    def _base_summary(self) -> dict:
        return {
            "steps": self.steps,
            "assignments": self.assignments,
            "balance_entropy": round(self.balance_entropy(), 4),
            "load_imbalance": round(self.load_imbalance(), 3),
            "drop_rate": round(self.drop_rate, 4),
            "policy_dropped": self.policy_dropped,
            "capacity_dropped": self.capacity_dropped,
            "stage1_mb": round(self.stage1_bytes / 1e6, 3),
            "stage2_mb": round(self.stage2_bytes / 1e6, 3),
            "inter_node_mb": round(self.inter_node_bytes / 1e6, 3),
            "intra_node_mb": round(self.intra_node_bytes / 1e6, 3),
            "redundancy": round(self.redundancy, 4),
        }
