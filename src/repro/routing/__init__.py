"""repro.routing — routing policies, plans, and the dispatch engine.

This package owns everything between "hidden states" and "tokens sitting in
front of their experts", split into two orthogonal layers:

**Policies — what the router decides** (:mod:`repro.routing.policies`)
    A :class:`RouterPolicy` maps hidden states to a :class:`RoutingDecision`:
    flat ``(token, expert, score, dropped)`` assignment arrays plus aux/z
    losses and the full probability matrix.  Four policies ship with the
    repo — softmax top-k (the paper's router, bit-identical to the legacy
    ``TopKGate`` path), Switch top-1 with exploration noise and
    capacity-factor dropping, noisy top-k with z-loss, and expert-choice
    routing (experts pick tokens; load balance by construction).  Policies
    are the *experimental axis*: swap one in via ``ModelConfig.router``,
    `make_policy`, or the ``--router`` CLI flag.  Every policy also has a
    rank-batched path (``route_batch`` / ``decide_batch``): one stacked
    projection + vectorized selection for a whole EP group, bit-identical
    to per-rank ``route`` calls — the hot path of
    :class:`repro.runtime.StepRuntime`.

**Planners + engine — how the decision is executed**
    (:mod:`repro.routing.plan`, :mod:`repro.routing.planner`,
    :mod:`repro.routing.engine`)
    A decision becomes a PFT (``RoutingDecision.to_pft``), per-rank PFTs are
    compiled by :class:`FlatPlanner` (single uneven all-to-all; the
    correctness oracle) or :class:`RBDPlanner` (two-stage
    redundancy-bypassing dispatch) into a :class:`DispatchPlan` — all
    dispatch/combine bookkeeping as flat numpy arrays, built once per step —
    and :class:`PlanDispatcher` executes the plan behind the
    :class:`Dispatcher` protocol (``plan → dispatch → run_experts →
    combine``).  Policy-dropped tokens never enter the plan, so their
    combine rows are exactly zero on both paths; flat and RBD outputs are
    bit-identical.

**Plan cache — skip the work when routing barely changes**
    (:mod:`repro.routing.plan_cache`)
    :class:`PlanCache` fingerprints each step's assignment multiset
    (order-insensitive digests over the stacked decision arrays) and
    resolves it against a bounded LRU: exact hit, weight-only patch,
    incremental structural patch, or cold build — every tier bit-identical
    to building from scratch.  Warm entries carry a fused
    :class:`ExecProgram` that replaces the engine's dispatch + combine
    with whole-array gathers and strided folds; wire it in via
    ``StepRuntime(plan_cache=...)``.

**Telemetry — what actually happened** (:mod:`repro.routing.telemetry`)
    :class:`RoutingTelemetry` accumulates per-expert load histograms, drop
    rates, normalized balance entropy, dispatched bytes, and redundancy,
    step over step; ``benchmarks/test_router_policies.py`` sweeps every
    policy over flat and RBD dispatch and prints the comparison table.

The legacy classes :class:`repro.xmoe.pipeline.DistributedMoEDispatcher`
and :class:`repro.xmoe.rbd.RBDDispatcher` are thin wrappers over this
engine, and :class:`repro.moe.gating.TopKGate` delegates its selection to a
policy (``DropPolicy`` maps onto the default policy's score-threshold knob).
"""

from repro.routing.plan import DispatchPlan
from repro.routing.planner import (
    FlatPlanner,
    HierarchicalPlanner,
    RBDPlan,
    RBDPlanner,
    select_pilots,
)
from repro.routing.engine import (
    DISPATCH_KINDS,
    DISPATCH_OPS,
    Dispatcher,
    PlanDispatcher,
    make_dispatcher,
)
from repro.routing.plan_cache import (
    ExecProgram,
    PlanCache,
    Resolution,
    StepSignature,
    decision_fingerprint,
)
from repro.routing.policies import (
    ROUTER_POLICIES,
    ROUTER_POLICY_NAMES,
    ExpertChoicePolicy,
    NoisyTopKPolicy,
    RouterPolicy,
    RoutingDecision,
    SoftmaxTopKPolicy,
    SwitchTop1Policy,
    make_policy,
    skewed_router_tokens,
)
from repro.routing.telemetry import RoutingTelemetry, load_balance_entropy

__all__ = [
    "DISPATCH_KINDS",
    "DISPATCH_OPS",
    "DispatchPlan",
    "Dispatcher",
    "ExecProgram",
    "ExpertChoicePolicy",
    "FlatPlanner",
    "HierarchicalPlanner",
    "NoisyTopKPolicy",
    "PlanCache",
    "PlanDispatcher",
    "RBDPlan",
    "RBDPlanner",
    "Resolution",
    "StepSignature",
    "ROUTER_POLICIES",
    "ROUTER_POLICY_NAMES",
    "RouterPolicy",
    "RoutingDecision",
    "RoutingTelemetry",
    "SoftmaxTopKPolicy",
    "SwitchTop1Policy",
    "decision_fingerprint",
    "load_balance_entropy",
    "make_dispatcher",
    "make_policy",
    "select_pilots",
    "skewed_router_tokens",
]
