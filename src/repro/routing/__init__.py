"""repro.routing — the vectorized routing-plan engine.

One dispatch abstraction for flat all-to-all and redundancy-bypassing
dispatch:

* :mod:`repro.routing.plan` — :class:`DispatchPlan`, all dispatch/combine
  bookkeeping as flat numpy arrays built once per step.
* :mod:`repro.routing.planner` — :class:`FlatPlanner` (single uneven
  all-to-all; the RBD correctness oracle) and :class:`RBDPlanner`
  (two-stage, pilot/replica) compile PFTs into plans with whole-array
  numpy operations only.
* :mod:`repro.routing.engine` — the :class:`Dispatcher` protocol
  (``plan → dispatch → run_experts → combine``) and
  :class:`PlanDispatcher`, the thin executor that interprets a plan.

The legacy classes :class:`repro.xmoe.pipeline.DistributedMoEDispatcher`
and :class:`repro.xmoe.rbd.RBDDispatcher` are now wrappers over this
engine.
"""

from repro.routing.plan import DispatchPlan
from repro.routing.planner import FlatPlanner, RBDPlan, RBDPlanner, select_pilots
from repro.routing.engine import Dispatcher, PlanDispatcher, make_dispatcher

__all__ = [
    "DispatchPlan",
    "Dispatcher",
    "FlatPlanner",
    "PlanDispatcher",
    "RBDPlan",
    "RBDPlanner",
    "make_dispatcher",
    "select_pilots",
]
