"""Pluggable router policies: *what* the router emits, behind one protocol.

The planners in :mod:`repro.routing.planner` consume per-rank PFTs; a PFT is
just a flat list of (token, expert, weight) assignments.  This module makes
the step that *produces* those assignments pluggable: a
:class:`RouterPolicy` maps hidden states to a :class:`RoutingDecision` — the
flat-numpy routing form every downstream consumer (PFT construction, the
flat/RBD planners, the padded baselines, telemetry) already understands.

Four policies ship with the repo:

* :class:`SoftmaxTopKPolicy` — the paper's softmax top-k router, factored
  out of :class:`repro.moe.gating.TopKGate`.  Bit-identical to the legacy
  gate path (the oracle test in ``tests/test_router_policies.py`` checks
  this), including the optional DeepSpeed-MoE negative-score drop rule.
* :class:`SwitchTop1Policy` — Switch-Transformer top-1 routing with
  multiplicative exploration noise on the logits and capacity-factor token
  dropping decided *inside* the policy (``drops_early``).
* :class:`NoisyTopKPolicy` — top-k over additively perturbed logits
  (Shazeer-style exploration) with a router z-loss.
* :class:`ExpertChoicePolicy` — experts pick tokens: each expert takes its
  top-``capacity`` tokens by router probability, so per-expert load is
  balanced *by construction* (never more than one token apart).

Determinism mirrors the planners: every noisy policy derives a fresh
generator from ``(seed, step)`` on each :meth:`RouterPolicy.route` call, so
the same ``(seed, step)`` always produces the same decision and there is no
hidden RNG state mutating across calls.

Rank-batched routing
--------------------
:meth:`RouterPolicy.route_batch` routes *every rank's* batch in one call:
one stacked ``(num_ranks * tokens, hidden)`` projection, one softmax, one
vectorized top-k — instead of ``num_ranks`` separate :meth:`route` calls.
Each policy's :meth:`decide_batch` vectorizes its selection across the rank
axis while drawing exploration noise from the *same* fresh ``(seed, step)``
stream a per-rank :meth:`route` call would use, so the per-rank decisions
are **bit-identical** to the sequential loop (property-tested in
``tests/test_step_runtime.py``).  :meth:`RoutingDecision.to_pfts` is the
matching batched PFT compiler: all ranks' PFTs from the stacked assignment
arrays in one argsort/bincount pass.  The
:class:`~repro.runtime.StepRuntime` drives both.

Dropped tokens and bit-exact combine
------------------------------------
A policy marks dropped assignments in ``RoutingDecision.dropped``;
:meth:`RoutingDecision.to_pft` filters them out *before* planning, so a
dropped token simply never enters the :class:`~repro.routing.plan.DispatchPlan`
and its combine output row stays exactly zero (the combine scatter starts
from a zero buffer).  Because flat and RBD plans share the canonical fold
orders, the zero rows — like every other row — are bit-identical between
the two dispatch paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.routing.telemetry import load_balance_entropy
from repro.tensor.ops import topk as _topk


def _softmax(logits: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Numerically stable softmax, bit-identical to ``repro.tensor.ops.softmax``.

    ``out`` optionally receives the result (the batched path streams blocks
    into a preallocated stacked array); the values are identical either way.
    """
    shifted = logits - logits.max(axis=-1, keepdims=True)
    np.exp(shifted, out=shifted)
    denom = shifted.sum(axis=-1, keepdims=True)
    if out is None:
        shifted /= denom
        return shifted
    np.divide(shifted, denom, out=out)
    return out


#: per-block working-set budget for the stacked route path: large enough to
#: amortize numpy call overhead, small enough that one block's softmax /
#: top-k temporaries stay cache-resident instead of streaming through DRAM.
_ROUTE_BLOCK_BYTES = 1 << 20


def _row_blocks(num_rows: int, num_cols: int):
    """Split ``num_rows`` into cache-sized blocks of ``num_cols``-wide rows.

    Every op on the stacked route path is row-local, so evaluating it block
    by block produces bit-identical results while keeping each block's
    temporaries in cache.
    """
    rows = max(1, _ROUTE_BLOCK_BYTES // max(1, num_cols * 8))
    for start in range(0, num_rows, rows):
        yield start, min(num_rows, start + rows)


def _stacked_softmax(flat_logits: np.ndarray) -> np.ndarray:
    """Softmax over stacked ``[N, E]`` logits, streamed block by block.

    Row-local, so the result equals one whole-array :func:`_softmax` call
    bit for bit while each block's temporaries stay cache-resident.
    """
    n, e = flat_logits.shape
    probs = np.empty_like(flat_logits)
    for b0, b1 in _row_blocks(n, e):
        _softmax(flat_logits[b0:b1], out=probs[b0:b1])
    return probs


def _stacked_softmax_topk(
    flat_logits: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Softmax + top-k over stacked ``[N, E]`` logits, block by block.

    Returns ``(probs, top_scores, top_experts)`` exactly as computing the
    whole array at once would — both ops are row-local — while each block's
    temporaries stay cache-resident, which is where the batched path's
    speedup over the per-rank loop comes from at large rank counts.
    """
    n, e = flat_logits.shape
    probs = np.empty_like(flat_logits)
    top_scores = np.empty((n, k), dtype=np.float64)
    top_experts = np.empty((n, k), dtype=np.int64)
    scratch: np.ndarray | None = None
    for b0, b1 in _row_blocks(n, e):
        block = _softmax(flat_logits[b0:b1], out=probs[b0:b1])
        # Inlined ``repro.tensor.ops.topk`` (same ops on the same values,
        # so the selection is bit-identical), with the negation running in
        # a reused scratch buffer instead of a fresh temporary per block.
        if scratch is None or scratch.shape != block.shape:
            scratch = np.empty_like(block)
        np.negative(block, out=scratch)
        idx = np.argpartition(scratch, kth=k - 1, axis=-1)[:, :k]
        part = np.take_along_axis(block, idx, axis=-1)
        order = np.argsort(-part, axis=-1, kind="stable")
        top_experts[b0:b1] = np.take_along_axis(idx, order, axis=-1)
        top_scores[b0:b1] = np.take_along_axis(part, order, axis=-1)
    return probs, top_scores, top_experts


def _segmented_capacity_drop(
    segment_key: np.ndarray, scores: np.ndarray, capacity: int, num_segments: int
) -> np.ndarray:
    """Drop mask keeping only each segment's ``capacity`` best scores.

    Segments are ranked by descending score with ties broken by original
    position (stable sort), the same rule PFT construction applies.  Used
    with per-expert segments by :class:`SwitchTop1Policy` and with
    per-(rank, expert) composite segments by its rank-batched path — the
    composite keying makes the batched mask bit-identical to per-rank calls.
    """
    order = np.lexsort((-scores, segment_key))
    sorted_key = segment_key[order]
    counts = np.bincount(sorted_key, minlength=num_segments)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    rank_in_segment = np.arange(sorted_key.size) - starts[sorted_key]
    drop = np.zeros(segment_key.size, dtype=bool)
    drop[order] = rank_in_segment >= capacity
    return drop


def _z_loss(logits: np.ndarray) -> float:
    """Router z-loss: mean squared log-partition (keeps logits small)."""
    if logits.size == 0:
        return 0.0
    shifted = logits - logits.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=-1)) + logits.max(axis=-1)
    return float(np.mean(lse**2))


def _batched_z_loss(logits: np.ndarray) -> np.ndarray:
    """Per-rank z-loss over stacked ``[R, S, E]`` logits, one vector pass.

    Row-local like everything else on the batched path: each rank's entry
    equals ``_z_loss(logits[r])`` bit for bit.
    """
    r = logits.shape[0]
    if logits.size == 0:
        return np.zeros(r)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=-1)) + logits.max(axis=-1)
    return np.mean(lse**2, axis=-1)


def _batched_aux_loss(
    probs: np.ndarray, expert_ids: np.ndarray, coef: float
) -> np.ndarray:
    """Per-rank Switch balance loss over stacked arrays, one bincount pass.

    ``probs`` is ``[R, S, E]`` and ``expert_ids`` any ``[R, ...]`` integer
    selection; the per-expert counts of all ranks come from a single
    bincount over composite ``rank * E + expert`` keys.  Each entry equals
    ``_PolicyBase._aux_loss(probs[r], expert_ids[r])`` bit for bit.
    """
    r, s, e = probs.shape
    offsets = np.arange(r, dtype=np.int64) * e
    counts = (
        np.bincount(
            (expert_ids.reshape(r, -1) + offsets[:, None]).reshape(-1),
            minlength=r * e,
        )
        .reshape(r, e)
        .astype(np.float64)
    )
    fraction = counts / max(1, expert_ids[0].size)
    # sum/s rather than mean(): bit-identical for s > 0, and 0.0 instead of
    # a NaN-with-warning for zero-token ranks (idle serving slots).
    mean_probs = probs.sum(axis=1) / max(1, s)
    return (mean_probs * fraction).sum(axis=1) * (coef * e)


# ----------------------------------------------------------------------
# The decision object
# ----------------------------------------------------------------------
@dataclass
class RoutingDecision:
    """Everything a router policy decided for one batch of tokens.

    The canonical form is *assignment-level* flat arrays (``token_ids``,
    ``expert_ids``, ``scores``, ``dropped``, all of length ``A``) because not
    every policy emits a rectangular ``[S, k]`` selection (expert-choice
    routing assigns a variable number of experts per token).  Token-choice
    policies additionally provide the familiar ``[S, k]`` views
    (``top_experts`` / ``top_scores`` / ``drop_mask``); these are ``None``
    for assignment-level policies.

    ``dropped`` marks assignments the *policy itself* discards (score
    threshold, policy-level capacity); everything else survives until the
    capacity rule of PFT construction.
    """

    num_tokens: int
    num_experts: int
    token_ids: np.ndarray  # [A] int64, token-major for token-choice policies
    expert_ids: np.ndarray  # [A] int64
    scores: np.ndarray  # [A] float64 combine weights
    dropped: np.ndarray  # [A] bool — dropped by the policy, never dispatched
    probs: np.ndarray  # [S, E] router probabilities (telemetry / analysis)
    aux_loss: float
    z_loss: float
    top_experts: np.ndarray | None = None  # [S, k] view (token-choice only)
    top_scores: np.ndarray | None = None
    drop_mask: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_topk(
        cls,
        top_experts: np.ndarray,
        top_scores: np.ndarray,
        drop_mask: np.ndarray,
        *,
        num_experts: int,
        probs: np.ndarray,
        aux_loss: float,
        z_loss: float,
    ) -> "RoutingDecision":
        """Flatten a rectangular ``[S, k]`` selection, row-major.

        The flattening order matches ``repro.xmoe.pft._flatten_assignments``
        exactly, which is what keeps the default policy's PFTs bit-identical
        to the legacy ``build_pft`` path.
        """
        s, k = top_experts.shape
        return cls(
            num_tokens=s,
            num_experts=num_experts,
            token_ids=np.repeat(np.arange(s, dtype=np.int64), k),
            expert_ids=top_experts.reshape(-1).astype(np.int64),
            scores=top_scores.reshape(-1).astype(np.float64),
            dropped=drop_mask.reshape(-1).astype(bool),
            probs=probs,
            aux_loss=aux_loss,
            z_loss=z_loss,
            top_experts=top_experts,
            top_scores=top_scores,
            drop_mask=drop_mask,
        )

    # ------------------------------------------------------------------
    @property
    def num_assignments(self) -> int:
        """Total (token, expert) assignments, dropped ones included."""
        return int(self.token_ids.size)

    @property
    def num_dropped(self) -> int:
        """Assignments the policy itself discarded."""
        return int(self.dropped.sum())

    @property
    def drop_rate(self) -> float:
        """Policy-dropped assignments as a fraction of all assignments."""
        if self.num_assignments == 0:
            return 0.0
        return self.num_dropped / self.num_assignments

    def expert_load(self) -> np.ndarray:
        """Surviving (policy-kept) assignments per expert."""
        return np.bincount(
            self.expert_ids[~self.dropped], minlength=self.num_experts
        ).astype(np.int64)

    def balance_entropy(self) -> float:
        """Normalized entropy of the per-expert load (1.0 = perfectly even)."""
        return load_balance_entropy(self.expert_load())

    # ------------------------------------------------------------------
    def to_pft(self, max_token_count: int | None = None):
        """Compile the surviving assignments into a planner-ready PFT.

        Policy-dropped assignments are filtered here, *before* planning, so
        they never enter a :class:`~repro.routing.plan.DispatchPlan`: a fully
        dropped token's combine output row stays exactly zero on both the
        flat and the RBD path.  ``max_token_count`` additionally applies the
        standard capacity-only rule of PFT construction (pass ``None`` for
        no capacity cap).
        """
        from repro.xmoe.pft import build_pft_flat

        keep = ~self.dropped
        return build_pft_flat(
            max_token_count if max_token_count is not None else 2**62,
            self.token_ids[keep],
            self.expert_ids[keep],
            self.scores[keep],
            self.num_experts,
            self.num_tokens,
        )

    @staticmethod
    def to_pfts(
        decisions: "list[RoutingDecision]", max_token_count: int | None = None
    ) -> list:
        """Compile every rank's decision into PFTs in one batched pass.

        The rank-batched counterpart of :meth:`to_pft`: the surviving
        (policy-kept) assignments of all ranks are stacked — tagged with
        their rank id — and handed to
        :func:`repro.xmoe.pft.build_pft_flat_batched`, which applies the
        capacity rule and the canonical (expert, token) ordering for every
        rank in one argsort/bincount pass.  Output is bit-identical to
        calling :meth:`to_pft` rank by rank.
        """
        from repro.xmoe.pft import build_pft_flat_batched

        if not decisions:
            return []
        num_experts = decisions[0].num_experts
        for decision in decisions:
            if decision.num_experts != num_experts:
                raise ValueError("all decisions must share num_experts")
        # Stack first, filter the policy-dropped assignments once globally
        # (skipping the filter entirely when no policy drops exist).
        counts = np.array([d.token_ids.size for d in decisions])
        rank_ids = np.repeat(np.arange(len(decisions), dtype=np.int64), counts)
        token_ids = np.concatenate([d.token_ids for d in decisions])
        expert_ids = np.concatenate([d.expert_ids for d in decisions])
        scores = np.concatenate([d.scores for d in decisions])
        if any(d.dropped.any() for d in decisions):
            keep = ~np.concatenate([d.dropped for d in decisions])
            rank_ids, token_ids = rank_ids[keep], token_ids[keep]
            expert_ids, scores = expert_ids[keep], scores[keep]
        return build_pft_flat_batched(
            max_token_count if max_token_count is not None else 2**62,
            rank_ids,
            token_ids,
            expert_ids,
            scores,
            num_experts,
            [d.num_tokens for d in decisions],
        )

    def validate(self) -> None:
        """Internal-consistency checks (used by the test suite)."""
        a = self.token_ids.size
        if not (self.expert_ids.size == self.scores.size == self.dropped.size == a):
            raise AssertionError("assignment arrays disagree on length")
        if a and (self.token_ids.min() < 0 or self.token_ids.max() >= self.num_tokens):
            raise AssertionError("token_ids out of range")
        if a and (self.expert_ids.min() < 0 or self.expert_ids.max() >= self.num_experts):
            raise AssertionError("expert_ids out of range")
        if self.probs.shape != (self.num_tokens, self.num_experts):
            raise AssertionError("probs must be [num_tokens, num_experts]")


# ----------------------------------------------------------------------
# The policy protocol and its implementations
# ----------------------------------------------------------------------
@runtime_checkable
class RouterPolicy(Protocol):
    """A router policy: hidden states in, :class:`RoutingDecision` out.

    ``drops_early`` declares whether the policy discards assignments itself
    (score-threshold or policy-level capacity) — the single invariant
    :class:`repro.moe.gating.TopKGate` asserts on every call.
    """

    name: str
    num_experts: int
    drops_early: bool

    def route(self, hidden: np.ndarray, step: int | None = None) -> RoutingDecision:
        """Route ``[S, H]`` hidden states (uses the policy's own weight)."""
        ...

    def decide(
        self,
        logits: np.ndarray,
        step: int | None = None,
        *,
        probs: np.ndarray | None = None,
    ) -> RoutingDecision:
        """Route from precomputed ``[S, E]`` logits (gate-driven path).

        ``probs`` optionally passes the caller's already-computed softmax of
        ``logits`` so noise-free policies skip recomputing it; noisy
        policies ignore it (their softmax runs over perturbed logits).
        """
        ...

    def route_batch(
        self,
        per_rank_hidden: list[np.ndarray],
        step: int | None = None,
        *,
        workspace=None,
    ) -> list[RoutingDecision]:
        """Route every rank's ``[S, H]`` batch with one stacked projection."""
        ...

    def decide_batch(
        self, logits: np.ndarray, step: int | None = None
    ) -> list[RoutingDecision]:
        """Route from stacked ``[R, S, E]`` logits, one decision per rank."""
        ...


class _PolicyBase:
    """Weight/RNG/aux-loss bookkeeping shared by the shipped policies."""

    name: str = ""
    drops_early: bool = False

    def __init__(
        self,
        hidden_size: int,
        num_experts: int,
        *,
        weight: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        aux_loss_coef: float = 0.01,
        z_loss_coef: float = 0.0,
        seed: int = 0,
    ):
        if num_experts <= 0:
            raise ValueError("num_experts must be positive")
        self.hidden_size = hidden_size
        self.num_experts = num_experts
        self.aux_loss_coef = aux_loss_coef
        self.z_loss_coef = z_loss_coef
        self.seed = seed
        if weight is None and rng is not None:
            std = 1.0 / np.sqrt(hidden_size)
            weight = rng.normal(0.0, std, size=(hidden_size, num_experts))
        self.weight = weight  # None = selection-only (driven by a gate's logits)

    # -- determinism: same (seed, step) -> same generator ---------------
    def _rng(self, step: int | None) -> np.random.Generator:
        if step is None:
            return np.random.default_rng(self.seed)
        return np.random.default_rng((self.seed, int(step)))

    def route(self, hidden: np.ndarray, step: int | None = None) -> RoutingDecision:
        """Project hidden states through the router weight and decide."""
        if self.weight is None:
            raise ValueError(
                f"{type(self).__name__} has no router weight; construct it with "
                "weight=/rng= or drive it from a gate's logits via decide()"
            )
        hidden = np.asarray(hidden, dtype=np.float64)
        if hidden.ndim != 2 or hidden.shape[1] != self.hidden_size:
            raise ValueError(f"expected [S, {self.hidden_size}] hidden, got {hidden.shape}")
        return self.decide(hidden @ self.weight, step=step)

    def decide(
        self,
        logits: np.ndarray,
        step: int | None = None,
        *,
        probs: np.ndarray | None = None,
    ) -> RoutingDecision:
        """Route from precomputed logits (implemented per policy)."""
        raise NotImplementedError

    # -- rank-batched path ---------------------------------------------
    def route_batch(
        self,
        per_rank_hidden: list[np.ndarray],
        step: int | None = None,
        *,
        workspace=None,
    ) -> list[RoutingDecision]:
        """Route every rank's batch through one stacked router projection.

        The hot path of the :class:`~repro.runtime.StepRuntime`: the
        per-rank ``[S, H]`` batches are stacked into one
        ``(num_ranks * S, hidden)`` block and projected with a single
        matmul, then :meth:`decide_batch` runs the policy's selection
        vectorized across the rank axis.  Output is bit-identical to
        calling :meth:`route` once per rank.

        ``workspace`` optionally supplies reusable stacked buffers (any
        object with ``stacked_hidden(rows, cols)`` / ``stacked_logits(rows,
        cols)`` — see :class:`repro.runtime.StepWorkspace`); without it the
        stacked arrays are freshly allocated.  Ranks with unequal token
        counts fall back to the sequential per-rank loop (the stacked
        kernels need a rectangular block).
        """
        if self.weight is None:
            raise ValueError(
                f"{type(self).__name__} has no router weight; construct it with "
                "weight=/rng= or drive it from a gate's logits via decide()"
            )
        arrays = [np.asarray(h, dtype=np.float64) for h in per_rank_hidden]
        for hidden in arrays:
            if hidden.ndim != 2 or hidden.shape[1] != self.hidden_size:
                raise ValueError(
                    f"expected [S, {self.hidden_size}] hidden, got {hidden.shape}"
                )
        if not arrays:
            return []
        tokens_per_rank = arrays[0].shape[0]
        if any(h.shape[0] != tokens_per_rank for h in arrays):
            return [self.route(h, step=step) for h in arrays]
        num_ranks, rows = len(arrays), len(arrays) * tokens_per_rank
        # One np.matmul over the stacked [R, S, H] block.  The batched axes
        # keep each rank's projection on the exact (S, H) @ (H, E) kernel a
        # per-rank route() call hits, so the logits are bit-identical on any
        # BLAS (a flattened (R*S, H) GEMM may pick a different kernel for
        # degenerate shapes and drift in the last ulp).
        if workspace is not None:
            stacked = workspace.stacked_hidden(rows, self.hidden_size)
            np.concatenate(arrays, axis=0, out=stacked)
            out = workspace.stacked_logits(rows, self.num_experts)
        else:
            stacked = np.concatenate(arrays, axis=0)
            out = np.empty((rows, self.num_experts))
        logits = np.matmul(
            stacked.reshape(num_ranks, tokens_per_rank, self.hidden_size),
            self.weight,
            out=out.reshape(num_ranks, tokens_per_rank, self.num_experts),
        )
        return self.decide_batch(logits, step=step)

    def decide_batch(
        self, logits: np.ndarray, step: int | None = None
    ) -> list[RoutingDecision]:
        """Route from stacked ``[R, S, E]`` logits, one decision per rank.

        The base implementation is the sequential fallback (one
        :meth:`decide` per rank); the shipped policies override it with a
        vectorized selection whose output is bit-identical.
        """
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim != 3:
            raise ValueError(f"expected [R, S, E] logits, got {logits.shape}")
        return [self.decide(logits[r], step=step) for r in range(logits.shape[0])]

    def _from_topk_batch(
        self,
        probs: np.ndarray,
        top_experts: np.ndarray,
        top_scores: np.ndarray,
        drop_mask: np.ndarray,
        z_logits: np.ndarray | None,
        r: int,
        s: int,
    ) -> list[RoutingDecision]:
        """Per-rank decisions from stacked ``[R*S, k]`` top-k arrays.

        The batched counterpart of :meth:`RoutingDecision.from_topk`: one
        dtype conversion, one composite-key bincount (aux losses), and one
        vectorized z-loss cover every rank, so assembling R decisions costs
        R dataclass constructions — not R rounds of numpy small-ops.  The
        per-rank arrays are views into the stacked ones.
        """
        e, k = self.num_experts, top_experts.shape[-1]
        probs3 = probs.reshape(r, s, e)
        experts3 = top_experts.reshape(r, s, k)
        scores3 = top_scores.reshape(r, s, k)
        drops3 = drop_mask.reshape(r, s, k)
        experts_flat = top_experts.reshape(r, s * k).astype(np.int64, copy=False)
        scores_flat = top_scores.reshape(r, s * k).astype(np.float64, copy=False)
        drops_flat = drop_mask.reshape(r, s * k).astype(bool, copy=False)
        # One (read-only) token-id pattern shared by every rank's view.
        token_ids = np.repeat(np.arange(s, dtype=np.int64), k)
        aux = _batched_aux_loss(probs3, experts3, self.aux_loss_coef)
        if self.z_loss_coef and z_logits is not None:
            z = self.z_loss_coef * _batched_z_loss(z_logits)
        else:
            z = np.zeros(r)
        return [
            RoutingDecision(
                num_tokens=s,
                num_experts=e,
                token_ids=token_ids,
                expert_ids=experts_flat[i],
                scores=scores_flat[i],
                dropped=drops_flat[i],
                probs=probs3[i],
                aux_loss=float(aux[i]),
                z_loss=float(z[i]),
                top_experts=experts3[i],
                top_scores=scores3[i],
                drop_mask=drops3[i],
            )
            for i in range(r)
        ]

    def _scaled_z_loss(self, logits: np.ndarray) -> float:
        """``z_loss_coef * z_loss``, skipping the logsumexp when coef is 0."""
        if not self.z_loss_coef:
            return 0.0
        return self.z_loss_coef * _z_loss(logits)

    # -- shared loss terms ---------------------------------------------
    def _aux_loss(self, probs: np.ndarray, expert_ids: np.ndarray) -> float:
        """Switch-Transformer balance loss (same formula as ``TopKGate``)."""
        counts = np.bincount(
            expert_ids.reshape(-1), minlength=self.num_experts
        ).astype(np.float64)
        fraction = counts / max(1, expert_ids.size)
        mean_probs = probs.sum(axis=0) / max(1, probs.shape[0])
        return float((mean_probs * fraction).sum() * (self.aux_loss_coef * self.num_experts))


class SoftmaxTopKPolicy(_PolicyBase):
    """The paper's router: softmax over logits, top-k selection.

    With ``score_threshold=True`` the policy additionally marks assignments
    whose *raw* (pre-softmax) logit is negative as dropped — DeepSpeed-MoE's
    rule (§5.6).  With the default ``score_threshold=False`` it never drops
    anything itself: all dropping is capacity-only, applied later during PFT
    construction.  This is the invariant behind
    :class:`repro.moe.gating.DropPolicy`.
    """

    name = "softmax-topk"

    def __init__(
        self,
        hidden_size: int,
        num_experts: int,
        top_k: int,
        *,
        score_threshold: bool = False,
        **kwargs,
    ):
        super().__init__(hidden_size, num_experts, **kwargs)
        if not (1 <= top_k <= num_experts):
            raise ValueError(f"top_k={top_k} must be in [1, {num_experts}]")
        self.top_k = top_k
        self.score_threshold = score_threshold
        self.drops_early = bool(score_threshold)

    def decide(
        self,
        logits: np.ndarray,
        step: int | None = None,
        *,
        probs: np.ndarray | None = None,
    ) -> RoutingDecision:
        """Softmax the logits and keep each token's top-k experts."""
        logits = np.asarray(logits, dtype=np.float64)
        if probs is None:
            probs = _softmax(logits)
        top_scores, top_experts = _topk(probs, self.top_k, axis=-1)
        if self.score_threshold:
            raw = np.take_along_axis(logits, top_experts, axis=-1)
            drop_mask = raw < 0.0
        else:
            drop_mask = np.zeros_like(top_experts, dtype=bool)
        return RoutingDecision.from_topk(
            top_experts,
            top_scores,
            drop_mask,
            num_experts=self.num_experts,
            probs=probs,
            aux_loss=self._aux_loss(probs, top_experts),
            z_loss=self._scaled_z_loss(logits),
        )

    def decide_batch(
        self, logits: np.ndarray, step: int | None = None
    ) -> list[RoutingDecision]:
        """Stacked softmax + top-k over all ranks' logits at once."""
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim != 3:
            raise ValueError(f"expected [R, S, E] logits, got {logits.shape}")
        r, s, e = logits.shape
        flat = logits.reshape(r * s, e)
        probs, top_scores, top_experts = _stacked_softmax_topk(flat, self.top_k)
        if self.score_threshold:
            drop_mask = np.take_along_axis(flat, top_experts, axis=-1) < 0.0
        else:
            drop_mask = np.zeros_like(top_experts, dtype=bool)
        return self._from_topk_batch(
            probs, top_experts, top_scores, drop_mask, logits, r, s
        )


class SwitchTop1Policy(_PolicyBase):
    """Switch-Transformer top-1 routing with exploration noise and capacity.

    Multiplicative noise sampled from ``[1 - eps, 1 + eps)`` perturbs the
    logits before selection (exploration); combine scores still come from
    the noisy softmax, matching the Switch recipe.  Each expert keeps only
    its ``ceil(capacity_factor * S / E)`` best-scoring tokens; the overflow
    is dropped *by the policy* (``drops_early=True``), before any plan is
    built.
    """

    name = "switch-top1"
    drops_early = True

    def __init__(
        self,
        hidden_size: int,
        num_experts: int,
        *,
        capacity_factor: float = 1.25,
        eps: float = 0.1,
        **kwargs,
    ):
        kwargs.setdefault("z_loss_coef", 1e-3)
        super().__init__(hidden_size, num_experts, **kwargs)
        if capacity_factor <= 0:
            raise ValueError("capacity_factor must be positive")
        self.capacity_factor = capacity_factor
        self.eps = eps

    def decide(
        self,
        logits: np.ndarray,
        step: int | None = None,
        *,
        probs: np.ndarray | None = None,
    ) -> RoutingDecision:
        """Pick each token's top-1 expert under noise, dropping overflow.

        ``probs`` (the clean softmax) is unused: selection and combine
        scores come from the softmax of the *noisy* logits.
        """
        logits = np.asarray(logits, dtype=np.float64)
        s = logits.shape[0]
        noise = 1.0 - self.eps + self._rng(step).random(logits.shape) * (2.0 * self.eps)
        noisy = logits * noise
        probs = _softmax(noisy)
        top_scores, top_experts = _topk(probs, 1, axis=-1)

        # Capacity-factor dropping, decided here: rank each expert's tokens
        # by score (the same rule PFT construction applies) and drop the
        # overflow beyond ceil(c * S / E).
        capacity = max(1, math.ceil(self.capacity_factor * s / self.num_experts))
        drop_mask = _segmented_capacity_drop(
            top_experts.reshape(-1), top_scores.reshape(-1), capacity, self.num_experts
        )

        return RoutingDecision.from_topk(
            top_experts,
            top_scores,
            drop_mask.reshape(top_experts.shape),
            num_experts=self.num_experts,
            probs=probs,
            aux_loss=self._aux_loss(probs, top_experts),
            z_loss=self._scaled_z_loss(noisy),
        )

    def decide_batch(
        self, logits: np.ndarray, step: int | None = None
    ) -> list[RoutingDecision]:
        """Stacked noisy top-1 with per-(rank, expert) capacity dropping.

        The exploration noise is drawn once from the fresh ``(seed, step)``
        generator a per-rank :meth:`decide` call would create and broadcast
        across ranks — exactly the values every rank sees in the sequential
        loop.  Capacity dropping runs over composite ``rank * E + expert``
        segments so one lexsort/bincount pass covers every rank.
        """
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim != 3:
            raise ValueError(f"expected [R, S, E] logits, got {logits.shape}")
        r, s, e = logits.shape
        noise = 1.0 - self.eps + self._rng(step).random((s, e)) * (2.0 * self.eps)
        noisy = logits * noise[None, :, :]
        probs, top_scores, top_experts = _stacked_softmax_topk(
            noisy.reshape(r * s, e), 1
        )

        capacity = max(1, math.ceil(self.capacity_factor * s / self.num_experts))
        segment = (
            np.repeat(np.arange(r, dtype=np.int64), s) * self.num_experts
            + top_experts.reshape(-1)
        )
        drop_mask = _segmented_capacity_drop(
            segment, top_scores.reshape(-1), capacity, r * self.num_experts
        )
        return self._from_topk_batch(
            probs, top_experts, top_scores, drop_mask.reshape(r * s, 1), noisy, r, s
        )


class NoisyTopKPolicy(_PolicyBase):
    """Top-k over additively perturbed logits, with a router z-loss.

    Shazeer-style exploration: per-(token, expert) Gaussian noise is added
    to the logits before the softmax and top-k selection.  No policy-level
    dropping — like the default router, all dropping is capacity-only.
    """

    name = "noisy-topk"
    drops_early = False

    def __init__(
        self,
        hidden_size: int,
        num_experts: int,
        top_k: int,
        *,
        noise_std: float = 1.0,
        **kwargs,
    ):
        kwargs.setdefault("z_loss_coef", 1e-3)
        super().__init__(hidden_size, num_experts, **kwargs)
        if not (1 <= top_k <= num_experts):
            raise ValueError(f"top_k={top_k} must be in [1, {num_experts}]")
        self.top_k = top_k
        self.noise_std = noise_std

    def decide(
        self,
        logits: np.ndarray,
        step: int | None = None,
        *,
        probs: np.ndarray | None = None,
    ) -> RoutingDecision:
        """Top-k selection over additively perturbed logits.

        ``probs`` (the clean softmax) is unused: selection runs over the
        perturbed logits.
        """
        logits = np.asarray(logits, dtype=np.float64)
        noisy = logits + self._rng(step).normal(0.0, self.noise_std, size=logits.shape)
        probs = _softmax(noisy)
        top_scores, top_experts = _topk(probs, self.top_k, axis=-1)
        return RoutingDecision.from_topk(
            top_experts,
            top_scores,
            np.zeros_like(top_experts, dtype=bool),
            num_experts=self.num_experts,
            probs=probs,
            aux_loss=self._aux_loss(probs, top_experts),
            z_loss=self._scaled_z_loss(noisy),
        )

    def decide_batch(
        self, logits: np.ndarray, step: int | None = None
    ) -> list[RoutingDecision]:
        """Stacked noisy top-k: one perturbation draw, one top-k, all ranks.

        As in the sequential loop, every rank's additive noise comes from a
        fresh ``(seed, step)`` generator — drawn once here and broadcast.
        """
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim != 3:
            raise ValueError(f"expected [R, S, E] logits, got {logits.shape}")
        r, s, e = logits.shape
        noise = self._rng(step).normal(0.0, self.noise_std, size=(s, e))
        noisy = logits + noise[None, :, :]
        probs, top_scores, top_experts = _stacked_softmax_topk(
            noisy.reshape(r * s, e), self.top_k
        )
        return self._from_topk_batch(
            probs,
            top_experts,
            top_scores,
            np.zeros_like(top_experts, dtype=bool),
            noisy,
            r,
            s,
        )


class ExpertChoicePolicy(_PolicyBase):
    """Expert-choice routing: experts pick tokens, load balance guaranteed.

    The assignment budget is ``S * top_k`` (the same budget a token-choice
    top-k router spends).  It is split across experts so capacities differ
    by at most one token, and every expert takes its top-``capacity`` tokens
    by router probability — so the per-expert load is *never* more than one
    token apart and never exceeds ``ceil(S * top_k / E)``, no matter how
    skewed the token distribution is.  No aux loss is needed: balance holds
    by construction.
    """

    name = "expert-choice"
    drops_early = False

    def __init__(self, hidden_size: int, num_experts: int, top_k: int, **kwargs):
        super().__init__(hidden_size, num_experts, **kwargs)
        if top_k < 1:
            raise ValueError(f"top_k={top_k} must be >= 1")
        self.top_k = top_k

    def decide(
        self,
        logits: np.ndarray,
        step: int | None = None,
        *,
        probs: np.ndarray | None = None,
    ) -> RoutingDecision:
        """Let each expert take its top-``capacity`` tokens by probability."""
        logits = np.asarray(logits, dtype=np.float64)
        s, e = logits.shape
        if probs is None:
            probs = _softmax(logits)

        budget = s * self.top_k
        caps = np.full(e, budget // e, dtype=np.int64)
        caps[: budget % e] += 1
        np.minimum(caps, s, out=caps)

        # Each expert's token ranking (ties broken by token id: stable sort).
        order = np.argsort(-probs, axis=0, kind="stable")  # [S, E]
        max_cap = int(caps.max()) if caps.size else 0
        picked = order[:max_cap, :].T  # [E, max_cap], expert-major
        mask = np.arange(max_cap)[None, :] < caps[:, None]
        token_ids = picked[mask].astype(np.int64)
        expert_ids = np.repeat(np.arange(e, dtype=np.int64), caps)
        scores = probs[token_ids, expert_ids]

        return RoutingDecision(
            num_tokens=s,
            num_experts=e,
            token_ids=token_ids,
            expert_ids=expert_ids,
            scores=scores,
            dropped=np.zeros(token_ids.size, dtype=bool),
            probs=probs,
            aux_loss=0.0,  # balance holds by construction
            z_loss=self._scaled_z_loss(logits),
        )

    def decide_batch(
        self, logits: np.ndarray, step: int | None = None
    ) -> list[RoutingDecision]:
        """Stacked expert choice: one token-axis argsort covers every rank.

        The per-expert token ranking runs as a single stable argsort along
        the stacked token axis, so each (rank, expert) column sorts exactly
        as in the sequential loop; capacities depend only on the (shared)
        token count, so the same mask selects every rank's assignments.
        """
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim != 3:
            raise ValueError(f"expected [R, S, E] logits, got {logits.shape}")
        r, s, e = logits.shape
        probs = _stacked_softmax(logits.reshape(r * s, e)).reshape(r, s, e)

        budget = s * self.top_k
        caps = np.full(e, budget // e, dtype=np.int64)
        caps[: budget % e] += 1
        np.minimum(caps, s, out=caps)

        order = np.argsort(-probs, axis=1, kind="stable")  # [R, S, E]
        max_cap = int(caps.max()) if caps.size else 0
        picked = order[:, :max_cap, :].transpose(0, 2, 1)  # [R, E, max_cap]
        mask = np.arange(max_cap)[None, :] < caps[:, None]  # [E, max_cap]
        token_ids = picked[:, mask].astype(np.int64)  # [R, A]
        # Shared (read-only) across ranks: the capacities are identical.
        expert_ids = np.repeat(np.arange(e, dtype=np.int64), caps)  # [A]
        scores = probs[np.arange(r)[:, None], token_ids, expert_ids[None, :]]
        dropped = np.zeros((r, token_ids.shape[1]), dtype=bool)
        if self.z_loss_coef:
            z = self.z_loss_coef * _batched_z_loss(logits)
        else:
            z = np.zeros(r)

        return [
            RoutingDecision(
                num_tokens=s,
                num_experts=e,
                token_ids=token_ids[i],
                expert_ids=expert_ids,
                scores=scores[i],
                dropped=dropped[i],
                probs=probs[i],
                aux_loss=0.0,  # balance holds by construction
                z_loss=float(z[i]),
            )
            for i in range(r)
        ]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
ROUTER_POLICIES: dict[str, type] = {
    SoftmaxTopKPolicy.name: SoftmaxTopKPolicy,
    SwitchTop1Policy.name: SwitchTop1Policy,
    NoisyTopKPolicy.name: NoisyTopKPolicy,
    ExpertChoicePolicy.name: ExpertChoicePolicy,
}

ROUTER_POLICY_NAMES: tuple[str, ...] = tuple(ROUTER_POLICIES)


def make_policy(
    name: str,
    hidden_size: int,
    num_experts: int,
    top_k: int,
    *,
    capacity_factor: float = 1.25,
    weight: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    seed: int = 0,
    **knobs,
) -> RouterPolicy:
    """Build a registered router policy by name.

    ``weight`` / ``rng`` control the policy's own router projection (leave
    both ``None`` for a selection-only policy driven by a gate's logits).
    Policy-specific knobs (``score_threshold``, ``eps``, ``noise_std``,
    ``aux_loss_coef``, ``z_loss_coef``) pass through ``**knobs``.
    """
    key = name.lower()
    if key not in ROUTER_POLICIES:
        raise KeyError(
            f"unknown router policy {name!r}; available: {sorted(ROUTER_POLICIES)}"
        )
    common = dict(weight=weight, rng=rng, seed=seed, **knobs)
    if key == SwitchTop1Policy.name:
        return SwitchTop1Policy(
            hidden_size, num_experts, capacity_factor=capacity_factor, **common
        )
    return ROUTER_POLICIES[key](hidden_size, num_experts, top_k, **common)


# ----------------------------------------------------------------------
# Workload generation shared by analysis / benchmarks / tests
# ----------------------------------------------------------------------
def skewed_router_tokens(
    rng: np.random.Generator,
    num_tokens: int,
    weight: np.ndarray,
    *,
    skew: float = 1.2,
    boost: float = 4.0,
) -> np.ndarray:
    """Hidden states whose router logits are Zipf-skewed across experts.

    Each token is nudged toward one expert's weight column, with the target
    expert drawn from a Zipf distribution of exponent ``skew`` (``skew=0``
    is uniform).  Token-choice routers concentrate load on the popular
    experts under this workload; expert-choice routing stays balanced.
    """
    hidden_size, num_experts = weight.shape
    hidden = rng.normal(size=(num_tokens, hidden_size))
    if boost == 0.0:
        return hidden
    ranks = np.arange(1, num_experts + 1, dtype=np.float64)
    popularity = ranks ** -float(skew)
    popularity /= popularity.sum()
    targets = rng.choice(num_experts, size=num_tokens, p=popularity)
    directions = weight[:, targets].T  # [S, H]
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return hidden + boost * directions / norms
