"""Plan execution: one thin engine for flat and RBD dispatch.

:class:`PlanDispatcher` implements the :class:`Dispatcher` protocol —
``plan → dispatch → run_experts → combine`` — by *interpreting* a
:class:`~repro.routing.plan.DispatchPlan`.  Every data movement is a buffer
slice plus a planned uneven all-to-all
(:meth:`~repro.comm.process_group.ProcessGroup.alltoallv_planned`), so the
per-op byte and tier accounting is computed from the plan's splits rather
than re-derived from the payloads, and the hot path contains no per-row
Python loops.

Bit-identical combine
---------------------
The combine stage folds weighted expert outputs into per-(token, node)
partial sums and then folds the partials in (token, node) order.  Both the
flat and the RBD plan drive the *same* fold orders (the plan's
``merge_perm`` / ``combine_perm`` encode the (slot, expert) ordering), so
the redundancy-bypassing path returns outputs exactly equal to the flat
oracle — not merely close.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.routing.plan import DispatchPlan
from repro.routing.planner import FlatPlanner, RBDPlanner, _PlannerBase


#: op names recorded in CommStats per plan kind:
#: (stage-1 dispatch, stage-2 replicas, combine stage C1, combine stage C2)
_OP_NAMES = {
    "flat": ("dispatch_a2a", None, None, "combine_a2a"),
    "rbd": ("rbd_s1_a2a", "rbd_s2_a2a", "rbd_c1_a2a", "rbd_c2_a2a"),
}


@runtime_checkable
class Dispatcher(Protocol):
    """The dispatch abstraction shared by the flat and RBD paths."""

    def plan(self, per_rank_pfts: list, *, step: int | None = None) -> DispatchPlan:
        ...

    def dispatch(
        self,
        per_rank_tokens: list[np.ndarray],
        per_rank_pfts: list,
        *,
        plan: DispatchPlan | None = None,
        step: int | None = None,
    ) -> tuple[list[np.ndarray], DispatchPlan]:
        ...

    def run_experts(
        self,
        expert_inputs: list[np.ndarray],
        plan: DispatchPlan,
        per_rank_w1: list[np.ndarray],
        per_rank_w2: list[np.ndarray],
        *,
        activation: str = "silu",
    ) -> list[np.ndarray]:
        ...

    def combine(
        self,
        per_rank_expert_outputs: list[np.ndarray],
        plan: DispatchPlan,
        num_tokens_per_rank: list[int],
    ) -> list[np.ndarray]:
        ...


class PlanDispatcher:
    """Executes :class:`DispatchPlan` objects built by a planner."""

    def __init__(self, group: ProcessGroup, planner: _PlannerBase):
        self.group = group
        self.planner = planner
        self._node_groups: list[ProcessGroup] | None = None

    # -- conveniences ---------------------------------------------------
    @property
    def num_experts(self) -> int:
        return self.planner.num_experts

    @property
    def expert_to_rank(self) -> np.ndarray:
        return self.planner.expert_to_rank

    @property
    def rank_to_node(self) -> np.ndarray:
        return self.planner.rank_to_node

    def experts_on_rank(self, local_rank: int) -> np.ndarray:
        return self.planner.experts_on_rank(local_rank)

    def node_groups(self) -> list[ProcessGroup]:
        """Intra-node subgroups, aligned with the plan's ``node_members``."""
        if self._node_groups is None:
            self._node_groups = self.group.node_local_subgroups()
        return self._node_groups

    # ------------------------------------------------------------------
    def plan(self, per_rank_pfts: list, *, step: int | None = None) -> DispatchPlan:
        """Build the routing plan for one step (no data is moved)."""
        return self.planner.build(per_rank_pfts, step=step)

    # ------------------------------------------------------------------
    def dispatch(
        self,
        per_rank_tokens: list[np.ndarray],
        per_rank_pfts: list,
        *,
        plan: DispatchPlan | None = None,
        step: int | None = None,
    ) -> tuple[list[np.ndarray], DispatchPlan]:
        """Route tokens to their expert-hosting ranks as the plan dictates."""
        size = self.group.size
        if len(per_rank_tokens) != size or len(per_rank_pfts) != size:
            raise ValueError("need one token buffer and one PFT per group rank")
        if plan is None:
            plan = self.plan(per_rank_pfts, step=step)
        hidden = per_rank_tokens[0].shape[1]
        s1_op, s2_op, _, _ = _OP_NAMES[plan.kind]

        # ---- stage 1: pilots travel to their expert's rank ------------
        # Gather through the plan's own PFTs: a plan paired with different
        # (even same-shaped) PFTs must not silently re-route tokens.
        s1_send = [
            per_rank_tokens[r][plan.pfts[r].token_ids[plan.send_rows[r]]]
            for r in range(size)
        ]
        s1_recv, _ = self.group.alltoallv_planned(
            s1_send, plan.send_splits, plan.recv_splits, op_name=s1_op
        )

        # ---- stage 2: replicas reconstructed and exchanged intra-node --
        if s2_op is None:
            arrival = s1_recv
        else:
            replica_recv: list[np.ndarray] = [None] * size  # type: ignore[list-item]
            for members, ng in zip(plan.node_members, self.node_groups()):
                send_bufs = [s1_recv[m][plan.s2_source_slot[m]] for m in members]
                recvd, _ = ng.alltoallv_planned(
                    send_bufs,
                    [plan.s2_send_splits[m] for m in members],
                    [plan.s2_recv_splits[m] for m in members],
                    op_name=s2_op,
                )
                for j, m in enumerate(members):
                    replica_recv[m] = recvd[j]
            arrival = [
                np.concatenate([s1_recv[d], replica_recv[d]], axis=0)
                if replica_recv[d] is not None and replica_recv[d].shape[0]
                else s1_recv[d]
                for d in range(size)
            ]

        expert_inputs = [arrival[d][plan.sort_order[d]] for d in range(size)]
        # Guard: every destination's buffer must match its arrival table.
        for d in range(size):
            if expert_inputs[d].shape != (plan.arrival_src[d].size, hidden):
                raise ValueError(
                    f"rank {d}: arrival buffer {expert_inputs[d].shape} does not "
                    f"match plan ({plan.arrival_src[d].size}, {hidden})"
                )
        return expert_inputs, plan

    # ------------------------------------------------------------------
    def run_experts(
        self,
        expert_inputs: list[np.ndarray],
        plan: DispatchPlan,
        per_rank_w1: list[np.ndarray],
        per_rank_w2: list[np.ndarray],
        *,
        activation: str = "silu",
    ) -> list[np.ndarray]:
        """Run each rank's local experts over its grouped input buffer."""
        from repro.xmoe.kernels import sequential_gemm

        return [
            sequential_gemm(
                expert_inputs[r],
                per_rank_w1[r],
                per_rank_w2[r],
                plan.tokens_per_local_expert[r],
                activation=activation,
            )
            for r in range(self.group.size)
        ]

    # ------------------------------------------------------------------
    def combine(
        self,
        per_rank_expert_outputs: list[np.ndarray],
        plan: DispatchPlan,
        num_tokens_per_rank: list[int],
    ) -> list[np.ndarray]:
        """Weighted combine, reversing the dispatch stages of the plan."""
        size = self.group.size
        hidden = per_rank_expert_outputs[0].shape[1]
        dtype = per_rank_expert_outputs[0].dtype
        _, _, c1_op, c2_op = _OP_NAMES[plan.kind]

        # Undo the by-expert sort and apply the combine weights (the paper
        # scales before merging so replicas can sum onto their pilot).
        weighted: list[np.ndarray] = []
        for d in range(size):
            un = np.empty_like(per_rank_expert_outputs[d])
            un[plan.sort_order[d]] = per_rank_expert_outputs[d]
            weighted.append(un * plan.arrival_weight[d][:, None])

        # ---- stage C1: replica outputs merge onto their pilot ----------
        if c1_op is None:
            partials_dest = weighted
        else:
            c1_recv: list[np.ndarray] = [None] * size  # type: ignore[list-item]
            for members, ng in zip(plan.node_members, self.node_groups()):
                send_bufs = [weighted[m][plan.num_pilot_arrivals[m] :] for m in members]
                recvd, _ = ng.alltoallv_planned(
                    send_bufs,
                    [plan.s2_recv_splits[m] for m in members],
                    [plan.s2_send_splits[m] for m in members],
                    op_name=c1_op,
                )
                for j, m in enumerate(members):
                    c1_recv[m] = recvd[j]
            partials_dest = []
            for d in range(size):
                merged = np.zeros((plan.num_pilot_arrivals[d], hidden), dtype=dtype)
                contributions = np.concatenate(
                    [weighted[d][: plan.num_pilot_arrivals[d]], c1_recv[d]], axis=0
                )
                # merge_perm/merge_slot are already in fold order:
                # (pilot slot, expert, src, row).
                np.add.at(
                    merged, plan.merge_slot[d], contributions[plan.merge_perm[d]]
                )
                partials_dest.append(merged)

        # ---- stage C2: per-(token, node) rows return to their source ---
        returned, _ = self.group.alltoallv_planned(
            partials_dest, plan.recv_splits, plan.send_splits, op_name=c2_op
        )

        # ---- source-side fold: partials, then (token, node) order ------
        outputs: list[np.ndarray] = []
        for r in range(size):
            num_partials = plan.num_partials(r)
            if plan.kind == "rbd":
                # One returned row per partial group: a pure reorder.
                partials = np.empty((num_partials, hidden), dtype=dtype)
                partials[plan.combine_partial[r]] = returned[r]
            else:
                partials = np.zeros((num_partials, hidden), dtype=dtype)
                perm = plan.combine_perm[r]
                np.add.at(partials, plan.combine_partial[r][perm], returned[r][perm])
            out = np.zeros((num_tokens_per_rank[r], hidden), dtype=dtype)
            np.add.at(out, plan.partial_token[r], partials)
            outputs.append(out)
        return outputs


def make_dispatcher(
    group: ProcessGroup,
    num_experts: int,
    *,
    use_rbd: bool = False,
    expert_to_rank: np.ndarray | None = None,
    seed: int = 0,
) -> PlanDispatcher:
    """Build a plan-based dispatcher for a flat or RBD configuration."""
    if use_rbd:
        planner: _PlannerBase = RBDPlanner(
            group, num_experts, expert_to_rank, seed=seed
        )
    else:
        planner = FlatPlanner(group, num_experts, expert_to_rank)
    return PlanDispatcher(group, planner)
