"""Plan execution: one thin engine for flat, RBD, and hierarchical dispatch.

:class:`PlanDispatcher` implements the :class:`Dispatcher` protocol —
``plan → dispatch → run_experts → combine`` — by *interpreting* a
:class:`~repro.routing.plan.DispatchPlan`.  Every data movement is a buffer
slice plus a planned uneven all-to-all
(:meth:`~repro.comm.process_group.ProcessGroup.alltoallv_planned`), so the
per-op byte and tier accounting is computed from the plan's splits rather
than re-derived from the payloads, and the hot path contains no per-row
Python loops.  Hierarchical plans route through intra-node subgroups for
their gather/scatter hops and through the full group for the
leader-to-leader exchange, so every hop's bytes land on the right
:class:`~repro.cluster.topology.LinkTier` in ``CommStats.bytes_by_tier``.

Bit-identical combine
---------------------
The combine stage folds weighted expert outputs into per-(token, node)
partial sums and then folds the partials in (token, node) order.  Every
plan kind drives the *same* fold orders (``merge_perm`` / ``combine_perm``
/ ``hM_fold_perm`` encode the (slot, expert) ordering), so the RBD and
hierarchical paths return outputs exactly equal to the flat oracle — not
merely close.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.config.parallel_config import DISPATCH_KINDS
from repro.routing.plan import DispatchPlan
from repro.routing.planner import (
    FlatPlanner,
    HierarchicalPlanner,
    RBDPlanner,
    _PlannerBase,
)


#: op names recorded in CommStats per plan kind:
#: (stage-1 dispatch, stage-2 replicas, combine stage C1, combine stage C2)
_OP_NAMES = {
    "flat": ("dispatch_a2a", None, None, "combine_a2a"),
    "rbd": ("rbd_s1_a2a", "rbd_s2_a2a", "rbd_c1_a2a", "rbd_c2_a2a"),
}

#: op names for the hierarchical hops (dispatch gather/inter/scatter and
#: their combine-side reversals).
HIER_DISPATCH_OPS = ("hier_gather_a2a", "hier_inter_a2a", "hier_scatter_a2a")
HIER_COMBINE_OPS = ("hier_c_gather_a2a", "hier_c_inter_a2a", "hier_c_scatter_a2a")

#: dispatch-side op names per plan kind (what the tier-byte benchmarks read).
DISPATCH_OPS = {
    "flat": ("dispatch_a2a",),
    "rbd": ("rbd_s1_a2a", "rbd_s2_a2a"),
    "hier": HIER_DISPATCH_OPS,
}


@runtime_checkable
class Dispatcher(Protocol):
    """The dispatch abstraction shared by the flat, RBD, and hier paths."""

    def plan(self, per_rank_pfts: list, *, step: int | None = None) -> DispatchPlan:
        """Compile per-rank PFTs into a :class:`DispatchPlan`."""
        ...

    def dispatch(
        self,
        per_rank_tokens: list[np.ndarray],
        per_rank_pfts: list,
        *,
        plan: DispatchPlan | None = None,
        step: int | None = None,
    ) -> tuple[list[np.ndarray], DispatchPlan]:
        """Move token rows to their expert-hosting ranks; return (inputs, plan)."""
        ...

    def run_experts(
        self,
        expert_inputs: list[np.ndarray],
        plan: DispatchPlan,
        per_rank_w1: list[np.ndarray],
        per_rank_w2: list[np.ndarray],
        *,
        activation: str = "silu",
    ) -> list[np.ndarray]:
        """Apply each rank's local experts to its grouped input buffer."""
        ...

    def combine(
        self,
        per_rank_expert_outputs: list[np.ndarray],
        plan: DispatchPlan,
        num_tokens_per_rank: list[int],
    ) -> list[np.ndarray]:
        """Return weighted expert outputs to their source token positions."""
        ...


class PlanDispatcher:
    """Executes :class:`DispatchPlan` objects built by a planner."""

    def __init__(self, group: ProcessGroup, planner: _PlannerBase):
        self.group = group
        self.planner = planner
        self._node_groups: list[ProcessGroup] | None = None

    # -- conveniences ---------------------------------------------------
    @property
    def num_experts(self) -> int:
        """Total experts across the group (from the planner)."""
        return self.planner.num_experts

    @property
    def expert_to_rank(self) -> np.ndarray:
        """Group-local hosting rank per expert id."""
        return self.planner.expert_to_rank

    @property
    def rank_to_node(self) -> np.ndarray:
        """Node id per group-local rank."""
        return self.planner.rank_to_node

    def experts_on_rank(self, local_rank: int) -> np.ndarray:
        """Global ids of the experts hosted by a group-local rank."""
        return self.planner.experts_on_rank(local_rank)

    def node_groups(self) -> list[ProcessGroup]:
        """Intra-node subgroups, aligned with the plan's ``node_members``."""
        if self._node_groups is None:
            self._node_groups = self.group.node_local_subgroups()
        return self._node_groups

    # ------------------------------------------------------------------
    def plan(self, per_rank_pfts: list, *, step: int | None = None) -> DispatchPlan:
        """Build the routing plan for one step (no data is moved)."""
        return self.planner.build(per_rank_pfts, step=step)

    # ------------------------------------------------------------------
    def dispatch(
        self,
        per_rank_tokens: list[np.ndarray],
        per_rank_pfts: list,
        *,
        plan: DispatchPlan | None = None,
        step: int | None = None,
    ) -> tuple[list[np.ndarray], DispatchPlan]:
        """Route tokens to their expert-hosting ranks as the plan dictates."""
        size = self.group.size
        if len(per_rank_tokens) != size or len(per_rank_pfts) != size:
            raise ValueError("need one token buffer and one PFT per group rank")
        if plan is None:
            plan = self.plan(per_rank_pfts, step=step)
        hidden = per_rank_tokens[0].shape[1]
        if plan.kind == "hier":
            arrival = self._dispatch_hier(per_rank_tokens, plan)
            return self._finish_dispatch(arrival, plan, hidden), plan
        s1_op, s2_op, _, _ = _OP_NAMES[plan.kind]

        # ---- stage 1: pilots travel to their expert's rank ------------
        # Gather through the plan's own PFTs: a plan paired with different
        # (even same-shaped) PFTs must not silently re-route tokens.
        s1_send = [
            per_rank_tokens[r][plan.pfts[r].token_ids[plan.send_rows[r]]]
            for r in range(size)
        ]
        s1_recv, _ = self.group.alltoallv_planned(
            s1_send, plan.send_splits, plan.recv_splits, op_name=s1_op
        )

        # ---- stage 2: replicas reconstructed and exchanged intra-node --
        if s2_op is None:
            arrival = s1_recv
        else:
            replica_recv: list[np.ndarray] = [None] * size  # type: ignore[list-item]
            for members, ng in zip(plan.node_members, self.node_groups()):
                send_bufs = [s1_recv[m][plan.s2_source_slot[m]] for m in members]
                recvd, _ = ng.alltoallv_planned(
                    send_bufs,
                    [plan.s2_send_splits[m] for m in members],
                    [plan.s2_recv_splits[m] for m in members],
                    op_name=s2_op,
                )
                for j, m in enumerate(members):
                    replica_recv[m] = recvd[j]
            arrival = [
                np.concatenate([s1_recv[d], replica_recv[d]], axis=0)
                if replica_recv[d] is not None and replica_recv[d].shape[0]
                else s1_recv[d]
                for d in range(size)
            ]

        return self._finish_dispatch(arrival, plan, hidden), plan

    def _finish_dispatch(
        self, arrival: list[np.ndarray], plan: DispatchPlan, hidden: int
    ) -> list[np.ndarray]:
        """Canonically sort the arrival buffers and guard their shapes."""
        expert_inputs = [arrival[d][plan.sort_order[d]] for d in range(self.group.size)]
        # Guard: every destination's buffer must match its arrival table.
        for d in range(self.group.size):
            if expert_inputs[d].shape != (plan.arrival_src[d].size, hidden):
                raise ValueError(
                    f"rank {d}: arrival buffer {expert_inputs[d].shape} does not "
                    f"match plan ({plan.arrival_src[d].size}, {hidden})"
                )
        return expert_inputs

    # ------------------------------------------------------------------
    def _node_alltoallv(
        self,
        send: list[np.ndarray],
        send_splits: list[np.ndarray],
        recv_splits: list[np.ndarray],
        plan: DispatchPlan,
        op_name: str,
    ) -> list[np.ndarray]:
        """One intra-node alltoallv per node subgroup, results in rank order."""
        out: list[np.ndarray] = [None] * self.group.size  # type: ignore[list-item]
        for members, ng in zip(plan.node_members, self.node_groups()):
            recvd, _ = ng.alltoallv_planned(
                [send[m] for m in members],
                [send_splits[m] for m in members],
                [recv_splits[m] for m in members],
                op_name=op_name,
            )
            for j, m in enumerate(members):
                out[m] = recvd[j]
        return out

    def _dispatch_hier(
        self, per_rank_tokens: list[np.ndarray], plan: DispatchPlan
    ) -> list[np.ndarray]:
        """Run the two-hop dispatch: gather → leader exchange → scatter."""
        size = self.group.size
        gather_op, inter_op, scatter_op = HIER_DISPATCH_OPS

        # ---- hop A: members gather deduplicated rows onto the leader --
        hA_send = [
            per_rank_tokens[r][plan.pfts[r].token_ids[plan.send_rows[r]]]
            for r in range(size)
        ]
        leader_buf = self._node_alltoallv(
            hA_send, plan.hA_send_splits, plan.hA_recv_splits, plan, gather_op
        )

        # ---- hop B: one leader-to-leader inter-node exchange ----------
        hB_send = [leader_buf[r][plan.hB_perm[r]] for r in range(size)]
        hB_recv, _ = self.group.alltoallv_planned(
            hB_send, plan.send_splits, plan.recv_splits, op_name=inter_op
        )

        # ---- hop C: dest leader scatters one row per assignment -------
        hC_send = [hB_recv[r][plan.hC_gather[r]] for r in range(size)]
        return self._node_alltoallv(
            hC_send, plan.hC_send_splits, plan.hC_recv_splits, plan, scatter_op
        )

    # ------------------------------------------------------------------
    def run_experts(
        self,
        expert_inputs: list[np.ndarray],
        plan: DispatchPlan,
        per_rank_w1: list[np.ndarray],
        per_rank_w2: list[np.ndarray],
        *,
        activation: str = "silu",
    ) -> list[np.ndarray]:
        """Run each rank's local experts over its grouped input buffer."""
        from repro.xmoe.kernels import sequential_gemm

        return [
            sequential_gemm(
                expert_inputs[r],
                per_rank_w1[r],
                per_rank_w2[r],
                plan.tokens_per_local_expert[r],
                activation=activation,
            )
            for r in range(self.group.size)
        ]

    # ------------------------------------------------------------------
    def combine(
        self,
        per_rank_expert_outputs: list[np.ndarray],
        plan: DispatchPlan,
        num_tokens_per_rank: list[int],
    ) -> list[np.ndarray]:
        """Weighted combine, reversing the dispatch stages of the plan."""
        size = self.group.size
        hidden = per_rank_expert_outputs[0].shape[1]
        dtype = per_rank_expert_outputs[0].dtype

        # Undo the by-expert sort and apply the combine weights (the paper
        # scales before merging so replicas can sum onto their pilot).
        weighted: list[np.ndarray] = []
        for d in range(size):
            un = np.empty_like(per_rank_expert_outputs[d])
            un[plan.sort_order[d]] = per_rank_expert_outputs[d]
            weighted.append(un * plan.arrival_weight[d][:, None])

        if plan.kind == "hier":
            return self._combine_hier(weighted, plan, num_tokens_per_rank, hidden, dtype)
        _, _, c1_op, c2_op = _OP_NAMES[plan.kind]

        # ---- stage C1: replica outputs merge onto their pilot ----------
        if c1_op is None:
            partials_dest = weighted
        else:
            c1_recv: list[np.ndarray] = [None] * size  # type: ignore[list-item]
            for members, ng in zip(plan.node_members, self.node_groups()):
                send_bufs = [weighted[m][plan.num_pilot_arrivals[m] :] for m in members]
                recvd, _ = ng.alltoallv_planned(
                    send_bufs,
                    [plan.s2_recv_splits[m] for m in members],
                    [plan.s2_send_splits[m] for m in members],
                    op_name=c1_op,
                )
                for j, m in enumerate(members):
                    c1_recv[m] = recvd[j]
            partials_dest = []
            for d in range(size):
                merged = np.zeros((plan.num_pilot_arrivals[d], hidden), dtype=dtype)
                contributions = np.concatenate(
                    [weighted[d][: plan.num_pilot_arrivals[d]], c1_recv[d]], axis=0
                )
                # merge_perm/merge_slot are already in fold order:
                # (pilot slot, expert, src, row).
                np.add.at(
                    merged, plan.merge_slot[d], contributions[plan.merge_perm[d]]
                )
                partials_dest.append(merged)

        # ---- stage C2: per-(token, node) rows return to their source ---
        returned, _ = self.group.alltoallv_planned(
            partials_dest, plan.recv_splits, plan.send_splits, op_name=c2_op
        )

        # ---- source-side fold: partials, then (token, node) order ------
        outputs: list[np.ndarray] = []
        for r in range(size):
            num_partials = plan.num_partials(r)
            if plan.kind == "rbd":
                # One returned row per partial group: a pure reorder.
                partials = np.empty((num_partials, hidden), dtype=dtype)
                partials[plan.combine_partial[r]] = returned[r]
            else:
                partials = np.zeros((num_partials, hidden), dtype=dtype)
                perm = plan.combine_perm[r]
                np.add.at(partials, plan.combine_partial[r][perm], returned[r][perm])
            out = np.zeros((num_tokens_per_rank[r], hidden), dtype=dtype)
            np.add.at(out, plan.partial_token[r], partials)
            outputs.append(out)
        return outputs

    def _combine_hier(
        self,
        weighted: list[np.ndarray],
        plan: DispatchPlan,
        num_tokens_per_rank: list[int],
        hidden: int,
        dtype,
    ) -> list[np.ndarray]:
        """Reverse the two hops: scatter-back → leader exchange → gather-back."""
        size = self.group.size
        gather_op, inter_op, scatter_op = HIER_COMBINE_OPS

        # ---- reverse hop C: members return weighted rows to the leader,
        # which folds them onto their (token, node) group's hop-B slot in
        # ascending expert order — the flat oracle's association order.
        rev_c = self._node_alltoallv(
            weighted, plan.hC_recv_splits, plan.hC_send_splits, plan, gather_op
        )
        merged: list[np.ndarray] = []
        for r in range(size):
            fold = np.zeros((int(plan.recv_splits[r].sum()), hidden), dtype=dtype)
            np.add.at(fold, plan.hM_fold_slot[r], rev_c[r][plan.hM_fold_perm[r]])
            merged.append(fold)

        # ---- reverse hop B: leaders exchange the per-group partials back.
        rev_b, _ = self.group.alltoallv_planned(
            merged, plan.recv_splits, plan.send_splits, op_name=inter_op
        )
        back: list[np.ndarray] = []
        for r in range(size):
            buf = np.empty((plan.hB_perm[r].size, hidden), dtype=dtype)
            buf[plan.hB_perm[r]] = rev_b[r]
            back.append(buf)

        # ---- reverse hop A: the leader returns each member's rows.
        returned = self._node_alltoallv(
            back, plan.hA_recv_splits, plan.hA_send_splits, plan, scatter_op
        )

        # ---- source-side fold: one row per partial group (pure reorder),
        # then the (token, node)-ordered token fold shared with flat/RBD.
        outputs: list[np.ndarray] = []
        for r in range(size):
            partials = np.empty((plan.num_partials(r), hidden), dtype=dtype)
            partials[plan.combine_partial[r]] = returned[r]
            out = np.zeros((num_tokens_per_rank[r], hidden), dtype=dtype)
            np.add.at(out, plan.partial_token[r], partials)
            outputs.append(out)
        return outputs


def make_dispatcher(
    group: ProcessGroup,
    num_experts: int,
    *,
    kind: str | None = None,
    use_rbd: bool = False,
    expert_to_rank: np.ndarray | None = None,
    seed: int = 0,
) -> PlanDispatcher:
    """Build a plan-based dispatcher for one dispatch strategy.

    ``kind`` picks the planner: ``"flat"`` (single uneven all-to-all, the
    correctness oracle), ``"rbd"`` (two-stage redundancy-bypassing), or
    ``"hier"`` (two-hop hierarchical dispatch through node leaders).  The
    legacy boolean ``use_rbd`` is honoured when ``kind`` is omitted.
    """
    if kind is None:
        kind = "rbd" if use_rbd else "flat"
    if kind == "rbd":
        planner: _PlannerBase = RBDPlanner(
            group, num_experts, expert_to_rank, seed=seed
        )
    elif kind == "hier":
        planner = HierarchicalPlanner(group, num_experts, expert_to_rank)
    elif kind == "flat":
        planner = FlatPlanner(group, num_experts, expert_to_rank)
    else:
        raise ValueError(f"unknown dispatch kind {kind!r}; expected {DISPATCH_KINDS}")
    return PlanDispatcher(group, planner)
