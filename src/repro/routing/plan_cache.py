"""Plan caching + incremental replanning for the dispatch pipeline.

Between consecutive training steps the routing assignment multiset is
usually nearly identical, yet the pipeline recompiles a full
:class:`~repro.routing.plan.DispatchPlan` (and re-runs the batched PFT
builder) from scratch every step.  This module makes the steady state
cheap without changing a single output bit:

* :class:`StepSignature` / :func:`decision_fingerprint` — a cheap,
  **order-insensitive** fingerprint of one step's per-rank assignment
  multiset, computed from the stacked
  :class:`~repro.routing.policies.RoutingDecision` arrays.  Two digests are
  kept: a *structure* digest over ``(rank, token, expert, dropped)`` keys
  and a *weights* digest that additionally mixes in the raw score bits, so
  "same tokens, drifted gate probabilities" is distinguishable from "same
  everything".  Digests are commutative (wraparound sums of a splitmix64
  mix), so assignment order never matters; every cache hit still verifies
  the stored arrays exactly, so a digest collision can never alias two
  different steps.
* :class:`PlanCache` — a bounded LRU keyed on ``(dispatch kind, capacity,
  placement, RNG salt, batch layout, fingerprint)``.  Resolution tiers,
  cheapest first:

  1. **exact hit** — the stored PFTs + plan (+ fused executor) are reused
     outright;
  2. **weight-only patch** — the structure digest matches but scores
     drifted: the previous plan's arrival-weight tables, the PFT combine
     weights, and the executor's fold weights are re-gathered from the new
     scores through precomputed index maps; splits, arrival tables, and
     sort orders are reused by reference.  Guarded by the no-capacity-drop
     invariant (weights can only change *structure* through the capacity
     rule, so any rank whose densest (rank, expert) segment could overflow
     falls through);
  3. **incremental structural patch** — a small fraction of assignments
     re-routed: unchanged ranks keep their PFTs (weights re-gathered),
     changed ranks rebuild via the per-rank ``RoutingDecision.to_pft``
     (bit-identical to the batched builder by PR 5's property tests), and
     the plan recompiles from the patched tables through the planner's own
     compile path — bit-identity by construction, never by re-derivation;
  4. **cold build** — the exact fallback whenever the delta is large or
     any invariant cannot be preserved.

* :class:`ExecProgram` — a kind-independent fused step executor compiled
  once per cache entry.  Dispatch becomes one global gather in the
  canonical ``(dest, expert, src, token)`` order; combine becomes one
  gather + weight multiply followed by two position-strided segmented
  folds that replay ``np.add.at``'s sequential accumulation order exactly
  (``reduceat`` does **not** accumulate sequentially and is therefore
  unusable here); the step's collectives are replayed from
  :class:`~repro.comm.process_group.CommEvent` templates captured from one
  cold execution (the network model is deterministic, so the replayed
  seconds/bytes/tiers are exactly what the collectives would record).
  Every plan kind (flat, RBD, hierarchical) folds each token's output over
  the same association tree — per ``(token, node)`` partial groups in
  node-ascending order, contributions expert-ascending within a group —
  which is what lets one executor serve all three bit-identically.

Wiring lives in :class:`repro.runtime.StepRuntime` (``plan_cache=``);
hit/miss/patch counters surface on
:class:`~repro.runtime.step.StepTrace` and
:class:`~repro.routing.telemetry.RoutingTelemetry`, and the measured
hit-rate feeds :mod:`repro.tuner.calibration` so the tuner prices
steady-state workloads honestly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro.obs import tracer as obs
from repro.routing.plan import DispatchPlan
from repro.xmoe.pft import PFT

__all__ = [
    "ExecProgram",
    "PlanCache",
    "Resolution",
    "StepSignature",
    "decision_fingerprint",
]

_U64 = np.uint64


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (a strong 64-bit mixing function)."""
    x = x + _U64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    return x ^ (x >> _U64(31))


@dataclass
class StepSignature:
    """Stacked per-step routing arrays plus their multiset fingerprints.

    The stacked arrays are what the cache verifies (and patches from); the
    two digests are what it indexes by.  ``keys`` packs each assignment as
    ``((rank * token_base + token) * num_experts + expert) * 2 + dropped``
    in one ``uint64`` — injective for every layout the runtime produces —
    and both digests are wraparound sums over a splitmix64 mix of those
    keys, so they are invariant to assignment order (the multiset
    fingerprint the cache needs) while exact-array verification on every
    hit keeps collisions harmless.
    """

    tokens: np.ndarray
    experts: np.ndarray
    scores: np.ndarray
    dropped: np.ndarray
    rank_offsets: np.ndarray  # [R + 1] stacked slice bounds per rank
    tokens_per_rank: tuple
    num_experts: int
    token_base: int
    keys: np.ndarray  # uint64 composite key per assignment
    structure_digest: int
    weight_digest: int

    @classmethod
    def from_decisions(cls, decisions, tokens_per_rank) -> "StepSignature":
        """Stack one step's per-rank decisions and fingerprint the multiset."""
        tokens_per_rank = tuple(int(t) for t in tokens_per_rank)
        if len(decisions) != len(tokens_per_rank):
            raise ValueError("one decision per rank required")
        counts = np.array([d.token_ids.size for d in decisions], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        tok = _concat_i64([d.token_ids for d in decisions])
        exp = _concat_i64([d.expert_ids for d in decisions])
        scores = _concat_f64([d.scores for d in decisions])
        dropped = (
            np.concatenate([np.asarray(d.dropped, dtype=bool) for d in decisions])
            if counts.sum()
            else np.zeros(0, dtype=bool)
        )
        num_experts = int(decisions[0].num_experts) if decisions else 0
        token_base = max(1, max(tokens_per_rank, default=0))
        rank_of = np.repeat(np.arange(len(decisions), dtype=np.int64), counts)
        keys = (
            ((rank_of.astype(_U64) * _U64(token_base) + tok.astype(_U64))
             * _U64(max(1, num_experts)) + exp.astype(_U64)) * _U64(2)
            + dropped.astype(_U64)
        )
        mixed = _splitmix64(keys)
        salt = _splitmix64(
            np.array([keys.size, token_base, num_experts], dtype=_U64)
        )
        structure = int(mixed.sum(dtype=_U64) ^ salt[0] ^ salt[1] ^ salt[2])
        wmixed = _splitmix64(keys ^ scores.view(_U64) ^ _U64(0xA5A5A5A5A5A5A5A5))
        weights = int(wmixed.sum(dtype=_U64) ^ salt[0])
        return cls(
            tokens=tok,
            experts=exp,
            scores=scores,
            dropped=dropped,
            rank_offsets=offsets,
            tokens_per_rank=tokens_per_rank,
            num_experts=num_experts,
            token_base=token_base,
            keys=keys,
            structure_digest=structure,
            weight_digest=weights,
        )

    def structure_matches(self, other: "StepSignature") -> bool:
        """Exact array-order equality of everything except the scores."""
        return (
            self.tokens_per_rank == other.tokens_per_rank
            and np.array_equal(self.rank_offsets, other.rank_offsets)
            and np.array_equal(self.tokens, other.tokens)
            and np.array_equal(self.experts, other.experts)
            and np.array_equal(self.dropped, other.dropped)
        )

    def matches(self, other: "StepSignature") -> bool:
        """Exact equality (collision-proofing behind the digests)."""
        return self.structure_matches(other) and np.array_equal(
            self.scores, other.scores
        )


def decision_fingerprint(decisions, tokens_per_rank) -> tuple[int, int]:
    """The ``(structure, weights)`` multiset digests of one step's routing."""
    sig = StepSignature.from_decisions(decisions, tokens_per_rank)
    return sig.structure_digest, sig.weight_digest


def _concat_i64(arrays) -> np.ndarray:
    total = sum(a.size for a in arrays)
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate([np.asarray(a, dtype=np.int64) for a in arrays])


def _concat_f64(arrays) -> np.ndarray:
    total = sum(a.size for a in arrays)
    if total == 0:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([np.asarray(a, dtype=np.float64) for a in arrays])


# ----------------------------------------------------------------------
# The fused step executor.
# ----------------------------------------------------------------------
@dataclass
class ExecProgram:
    """A fused, kind-independent dispatch + combine program for one plan.

    Compiled once per cache entry from the planned PFT contents; every run
    afterwards is a handful of whole-array gathers and position-strided
    segmented folds, bit-identical to driving the full engine (the build
    asserts its canonical order and fold segmentation against the plan's
    own arrival tables before the program is ever used).
    """

    tok_off: np.ndarray  # [R + 1] stacked token-row offsets per rank
    dest_off: np.ndarray  # [R + 1] canonical-slot offsets per dest rank
    disp_gather: np.ndarray  # stacked token row per canonical slot
    fold_gather: np.ndarray  # canonical slot per fold slot
    fold_w: np.ndarray  # combine weight per fold slot
    fold_pft_rows: np.ndarray  # global PFT row per fold slot (weight patching)
    num_groups: int  # (src, token, node) partial groups
    l1_passes: list  # [(group idx, fold slot)] per within-group position
    l2_passes: list  # [(output row, group idx)] per within-token position
    comm_events: tuple = ()  # CommEvent templates captured from a cold run

    @classmethod
    def build(
        cls,
        pfts: list,
        plan: DispatchPlan,
        tokens_per_rank,
        *,
        comm_events=(),
    ) -> "ExecProgram":
        """Compile the fused program from the planned PFTs.

        All index maps derive from the post-capacity PFT contents (the
        planner's own inputs), then the canonical order and the per-rank
        partial-group segmentation are asserted against the plan's arrival
        tables — the program can only exist if it agrees with the plan it
        fuses.
        """
        num_ranks = len(pfts)
        expert_to_rank = np.asarray(plan.expert_to_rank, dtype=np.int64)
        rank_to_node = np.asarray(plan.rank_to_node, dtype=np.int64)
        tokens_per_rank = [int(t) for t in tokens_per_rank]
        tok_off = np.concatenate([[0], np.cumsum(tokens_per_rank)]).astype(np.int64)

        sizes = np.array([p.num_routed_tokens for p in pfts], dtype=np.int64)
        src = np.repeat(np.arange(num_ranks, dtype=np.int64), sizes)
        tok = _concat_i64([p.token_ids for p in pfts])
        exp = _concat_i64([p.expert_ids for p in pfts])
        wgt = _concat_f64([p.combine_weights for p in pfts])
        rows = tok.size
        dest = expert_to_rank[exp] if rows else np.zeros(0, dtype=np.int64)
        node = rank_to_node[dest] if rows else np.zeros(0, dtype=np.int64)

        num_experts = int(expert_to_rank.size)
        token_base = max(1, max(tokens_per_rank, default=0))
        num_nodes = int(rank_to_node.max()) + 1 if rank_to_node.size else 1

        # Canonical (dest, expert, src, token) total order — the order of
        # every destination's expert input buffer for every plan kind.
        canon_key = ((dest * num_experts + exp) * num_ranks + src) * token_base + tok
        canon = np.argsort(canon_key, kind="stable")
        dest_counts = np.bincount(dest, minlength=num_ranks)
        dest_off = np.concatenate([[0], np.cumsum(dest_counts)]).astype(np.int64)
        disp_gather = tok_off[src[canon]] + tok[canon]
        inv_canon = np.empty(rows, dtype=np.int64)
        inv_canon[canon] = np.arange(rows, dtype=np.int64)

        # Fold order (src, token, node, expert): the shared combine
        # association tree of the flat / RBD / hierarchical slow paths.
        group_key = (src * token_base + tok) * num_nodes + node
        fold_perm = np.argsort(group_key * num_experts + exp, kind="stable")
        fold_gather = inv_canon[fold_perm]
        fold_w = wgt[fold_perm]
        gk_sorted = group_key[fold_perm]

        l1_passes, grp_starts = _segment_passes(gk_sorted)
        num_groups = grp_starts.size

        # Token-level fold: partial groups collapse per (src, token).
        tok_key = gk_sorted[grp_starts] // num_nodes if num_groups else gk_sorted[:0]
        l2_raw, tseg_starts = _segment_passes(tok_key)
        out_rows = (
            tok_off[tok_key[tseg_starts] // token_base]
            + tok_key[tseg_starts] % token_base
        )
        l2_passes = [(out_rows[sel], start) for sel, start in l2_raw]

        # The first pass of each fold always covers every segment; when its
        # target rows are exactly 0..n-1 a plain slice replaces the fancy
        # index — same elementwise adds, about half the wall-clock on the
        # dominant pass.
        if l1_passes and l1_passes[0][0].size == num_groups:
            l1_passes[0] = (slice(None), l1_passes[0][1])
        if l2_passes and np.array_equal(
            l2_passes[0][0], np.arange(int(tok_off[-1]))
        ):
            l2_passes[0] = (slice(None), l2_passes[0][1])

        program = cls(
            tok_off=tok_off,
            dest_off=dest_off,
            disp_gather=disp_gather,
            fold_gather=fold_gather,
            fold_w=fold_w,
            fold_pft_rows=fold_perm,
            num_groups=int(num_groups),
            l1_passes=l1_passes,
            l2_passes=l2_passes,
            comm_events=tuple(comm_events),
        )
        program._verify_against_plan(plan, exp, src, wgt, canon, gk_sorted, grp_starts)
        return program

    # ------------------------------------------------------------------
    def _verify_against_plan(self, plan, exp, src, wgt, canon, gk_sorted, grp_starts):
        """Assert the fused index maps agree with the plan's own tables."""
        num_ranks = len(plan.pfts)
        for d in range(num_ranks):
            sl = canon[self.dest_off[d] : self.dest_off[d + 1]]
            order = plan.sort_order[d]
            if not (
                np.array_equal(exp[sl], plan.arrival_expert[d][order])
                and np.array_equal(src[sl], plan.arrival_src[d][order])
                and np.array_equal(wgt[sl], plan.arrival_weight[d][order])
            ):
                raise AssertionError(
                    f"fused canonical order disagrees with plan at dest {d}"
                )
        # Per-rank partial groups must match the plan's (token, node) fold.
        num_nodes = max(1, plan.num_nodes)
        token_base = max(1, int(np.diff(self.tok_off).max(initial=0)))
        g_srctok = gk_sorted[grp_starts] // num_nodes
        g_src = g_srctok // token_base
        g_tok = g_srctok % token_base
        start = 0
        for r in range(num_ranks):
            expected = np.asarray(plan.partial_token[r], dtype=np.int64)
            stop = start + expected.size
            if not (
                np.array_equal(g_tok[start:stop], expected)
                and bool(np.all(g_src[start:stop] == r))
            ):
                raise AssertionError(
                    f"fused partial groups disagree with plan at source {r}"
                )
            start = stop
        if start != g_srctok.size:
            raise AssertionError("fused partial groups do not cover the plan")

    # ------------------------------------------------------------------
    def run_dispatch(self, stacked_tokens: np.ndarray) -> tuple[list, np.ndarray]:
        """One global gather: per-dest expert input buffers in canonical order.

        ``stacked_tokens`` is the ``(total_tokens, hidden)`` stack of every
        rank's batch; the result views are slices of one freshly gathered
        buffer, bit-identical to the engine's dispatch + canonical sort.
        """
        big = stacked_tokens[self.disp_gather]
        return [
            big[self.dest_off[d] : self.dest_off[d + 1]]
            for d in range(self.dest_off.size - 1)
        ], big

    def run_combine(self, stacked_outputs: np.ndarray, *, workspace=None) -> list:
        """Fused weighted combine: gather → two strided sequential folds.

        ``stacked_outputs`` concatenates every destination's expert output
        buffer in canonical order.  Both folds replay the slow path's
        ``np.add.at`` association order exactly: contributions fold into
        per-(token, node) partials expert-ascending, partials fold into
        tokens node-ascending, each accumulation starting from ``+0.0``.
        ``workspace`` (a :class:`repro.runtime.StepWorkspace`-like object
        with ``scratch``) optionally supplies the fold-values arena.
        """
        hidden = stacked_outputs.shape[1] if stacked_outputs.ndim == 2 else 0
        if workspace is not None:
            vals = workspace.scratch(
                "fused_fold_vals", (self.fold_gather.size, hidden),
                dtype=stacked_outputs.dtype,
            )
            # mode="clip" takes numpy's buffered fast path; the indices are
            # in-bounds by construction, so clipping never fires.
            np.take(stacked_outputs, self.fold_gather, axis=0, out=vals, mode="clip")
            partials = workspace.scratch(
                "fused_fold_partials", (self.num_groups, hidden),
                dtype=stacked_outputs.dtype,
            )
            partials.fill(0.0)
        else:
            vals = stacked_outputs[self.fold_gather]
            partials = np.zeros((self.num_groups, hidden), dtype=stacked_outputs.dtype)
        vals *= self.fold_w[:, None]
        for grp_sel, fold_rows in self.l1_passes:
            partials[grp_sel] += vals[fold_rows]
        out = np.zeros((int(self.tok_off[-1]), hidden), dtype=stacked_outputs.dtype)
        for out_sel, grp_rows in self.l2_passes:
            out[out_sel] += partials[grp_rows]
        return [
            out[self.tok_off[r] : self.tok_off[r + 1]]
            for r in range(self.tok_off.size - 1)
        ]

    def replay_comm(self, stats) -> None:
        """Re-record the step's captured collectives into ``CommStats``.

        The network model is deterministic (congestion sampling off), so
        the cold run's events are exactly what the collectives would record
        again; replaying them keeps byte/tier/seconds accounting honest
        while skipping the data movement itself.
        """
        if stats is None:
            return
        for event in self.comm_events:
            stats.record(event)

    def with_fold_weights(self, pft_weights: np.ndarray) -> "ExecProgram":
        """A weight-patched copy: new fold weights, shared index maps."""
        return replace(self, fold_w=pft_weights[self.fold_pft_rows])


def _segment_passes(sorted_keys: np.ndarray):
    """Position-strided passes over contiguous equal-key segments.

    Returns ``(passes, starts)`` where ``passes[j]`` is ``(segment index,
    source row)`` for every segment longer than ``j``.  Driving
    ``out[seg] += vals[row]`` for ``j = 0, 1, …`` accumulates each
    segment's rows in exactly ``np.add.at``'s sequential order (numpy's
    ``reduceat`` does not, which is why it cannot be used here).
    """
    n = sorted_keys.size
    if n == 0:
        return [], np.zeros(0, dtype=np.int64)
    boundaries = np.concatenate([[True], sorted_keys[1:] != sorted_keys[:-1]])
    starts = np.flatnonzero(boundaries).astype(np.int64)
    lengths = np.diff(np.concatenate([starts, [n]]))
    passes = []
    for j in range(int(lengths.max())):
        sel = np.flatnonzero(lengths > j).astype(np.int64)
        passes.append((sel, starts[sel] + j))
    return passes, starts


# ----------------------------------------------------------------------
# The cache proper.
# ----------------------------------------------------------------------
@dataclass
class _CacheEntry:
    """One cached step: signature, artifacts, and patching index maps."""

    key: tuple
    context: tuple
    sig: StepSignature
    pfts: list
    plan: DispatchPlan
    exec_program: ExecProgram | None
    kept_sorted_keys: np.ndarray
    seg_max_per_rank: np.ndarray
    pft_stack_idx: np.ndarray | None  # stacked-signature index per PFT row
    pft_row_offsets: np.ndarray | None
    arrival_stack_idx: list | None  # per dest: stacked index per arrival slot


@dataclass
class Resolution:
    """What one :meth:`PlanCache.resolve` call produced.

    ``outcome`` is ``"hit"`` (exact reuse), ``"weight_patch"`` (same
    structure, re-gathered weights), ``"patch"`` (incremental structural
    patch + recompile), or ``"miss"`` (cold build).  ``exec_program`` is
    ``None`` until the entry's fused executor has been compiled (the
    runtime attaches it after the entry's first slow-path execution).
    """

    pfts: list
    plan: DispatchPlan
    exec_program: ExecProgram | None
    outcome: str
    entry: _CacheEntry


class PlanCache:
    """Bounded LRU of dispatch plans with incremental replanning.

    ``maxsize`` bounds the number of cached steps;
    ``patch_threshold`` is the largest re-routed assignment fraction the
    incremental structural patch accepts before falling back to a cold
    build.  Counters (``hits`` / ``weight_patches`` / ``patches`` /
    ``misses`` / ``evictions``) tally every resolution; ``stats()``
    snapshots them.  Every cached or patched artifact is bit-identical to
    a cold build — exact hits verify the stored arrays, weight patches
    re-gather through index maps that are only built when the capacity
    rule cannot reorder anything, and structural patches recompile through
    the planner's own code path.
    """

    def __init__(self, maxsize: int = 8, patch_threshold: float = 0.15):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self.patch_threshold = float(patch_threshold)
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._by_structure: dict[tuple, _CacheEntry] = {}
        self._last_by_context: dict[tuple, _CacheEntry] = {}
        self.hits = 0
        self.weight_patches = 0
        self.patches = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        """Total resolutions served."""
        return self.hits + self.weight_patches + self.patches + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of resolutions that skipped the plan build entirely."""
        total = self.lookups
        if total == 0:
            return 0.0
        return (self.hits + self.weight_patches) / total

    def stats(self) -> dict:
        """Counter snapshot (what StepTrace and the benchmark record)."""
        return {
            "hits": self.hits,
            "weight_patches": self.weight_patches,
            "patches": self.patches,
            "misses": self.misses,
            "evictions": self.evictions,
            "lookups": self.lookups,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def resolve(
        self,
        decisions,
        *,
        dispatcher,
        capacity,
        tokens_per_rank,
        row_signature=(),
        step=None,
    ) -> Resolution:
        """Resolve one step's routing to (PFTs, plan, executor, outcome).

        ``dispatcher`` is the :class:`~repro.routing.engine.PlanDispatcher`
        whose planner defines the plan kind, placement, and (for RBD) the
        step-salted RNG; ``row_signature`` keys anything the cached
        executor's comm replay depends on beyond the token counts (hidden
        width and payload dtype).
        """
        from repro.routing.policies import RoutingDecision

        planner = dispatcher.planner
        with obs.span("cache.fingerprint", "plan_cache"):
            sig = StepSignature.from_decisions(decisions, tokens_per_rank)
            context = self._context_key(planner, capacity, sig, row_signature, step)
            key = context + (sig.structure_digest, sig.weight_digest)

        entry = self._entries.get(key)
        if entry is not None and entry.sig.matches(sig):
            self.hits += 1
            self._touch(entry)
            return Resolution(entry.pfts, entry.plan, entry.exec_program, "hit", entry)

        source = self._by_structure.get(context + (sig.structure_digest,))
        if (
            source is not None
            and source.pft_stack_idx is not None
            and source.sig.structure_matches(sig)
        ):
            with obs.span("cache.weight_patch", "plan_cache"):
                patched = self._weight_patch(source, sig, key, context)
            self.weight_patches += 1
            return Resolution(
                patched.pfts, patched.plan, patched.exec_program, "weight_patch", patched
            )

        previous = self._last_by_context.get(context)
        if previous is not None:
            with obs.span("cache.structural_patch", "plan_cache") as patch_span:
                pfts = self._structural_patch(previous, sig, decisions, capacity)
                patch_span.set(patched=pfts is not None)
            if pfts is not None:
                with obs.span("cache.plan_build", "plan_cache"):
                    plan = dispatcher.plan(pfts, step=step)
                entry = self._store(key, context, sig, pfts, plan, capacity)
                self.patches += 1
                return Resolution(pfts, plan, None, "patch", entry)

        with obs.span("cache.cold_build", "plan_cache"):
            pfts = RoutingDecision.to_pfts(list(decisions), capacity)
            plan = dispatcher.plan(pfts, step=step)
            entry = self._store(key, context, sig, pfts, plan, capacity)
        self.misses += 1
        return Resolution(pfts, plan, None, "miss", entry)

    def attach_exec(self, entry: _CacheEntry, *, tokens_per_rank, comm_events=()):
        """Compile and attach the fused executor after a cold execution.

        Called by the runtime once the entry's first step has run through
        the full engine (which is when the comm-event templates exist).
        """
        if entry.exec_program is not None:
            return entry.exec_program
        entry.exec_program = ExecProgram.build(
            entry.pfts, entry.plan, tokens_per_rank, comm_events=comm_events
        )
        return entry.exec_program

    # ------------------------------------------------------------------
    def _context_key(self, planner, capacity, sig, row_signature, step):
        kind = planner.kind
        placement = hash(
            (
                np.asarray(planner.expert_to_rank).tobytes(),
                np.asarray(planner.rank_to_node).tobytes(),
            )
        )
        if kind == "rbd":
            # RBD pilot selection draws from default_rng((seed, step)):
            # plans are reusable only within one (seed, step) salt.
            salt = (getattr(planner, "seed", 0), step)
        else:
            salt = None
        return (
            kind,
            None if capacity is None else int(capacity),
            placement,
            salt,
            sig.tokens_per_rank,
            sig.num_experts,
            tuple(row_signature),
        )

    def _touch(self, entry: _CacheEntry) -> None:
        self._entries.move_to_end(entry.key)
        self._last_by_context[entry.context] = entry

    def _evict_to_bound(self) -> None:
        while len(self._entries) > self.maxsize:
            _, evicted = self._entries.popitem(last=False)
            self.evictions += 1
            skey = evicted.context + (evicted.sig.structure_digest,)
            if self._by_structure.get(skey) is evicted:
                del self._by_structure[skey]
            if self._last_by_context.get(evicted.context) is evicted:
                del self._last_by_context[evicted.context]

    # ------------------------------------------------------------------
    def _store(self, key, context, sig, pfts, plan, capacity) -> _CacheEntry:
        kept = ~sig.dropped
        kept_idx = np.flatnonzero(kept)
        kept_keys = np.sort(sig.keys[kept_idx])

        num_ranks = len(pfts)
        num_experts = max(1, sig.num_experts)
        rank_of = np.repeat(
            np.arange(num_ranks, dtype=np.int64), np.diff(sig.rank_offsets)
        )
        src_kept = rank_of[kept_idx]
        seg = np.bincount(
            src_kept * num_experts + sig.experts[kept_idx],
            minlength=num_ranks * num_experts,
        ).reshape(num_ranks, num_experts)
        seg_max_per_rank = seg.max(axis=1) if num_ranks else np.zeros(0, np.int64)

        sizes = np.array([p.num_routed_tokens for p in pfts], dtype=np.int64)
        pft_row_offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        pft_stack_idx = None
        arrival_stack_idx = None
        capacity_safe = capacity is None or (
            seg_max_per_rank.size == 0 or int(seg_max_per_rank.max()) <= int(capacity)
        )
        if capacity_safe and int(pft_row_offsets[-1]) == kept_idx.size:
            # PFT rows are the kept assignments sorted by (rank, expert,
            # token) — true exactly when the capacity rule dropped nothing,
            # which is what makes weight-only patching structurally safe.
            order = np.argsort(
                (src_kept * num_experts + sig.experts[kept_idx]) * sig.token_base
                + sig.tokens[kept_idx],
                kind="stable",
            )
            pft_stack_idx = kept_idx[order]
            arrival_stack_idx = [
                pft_stack_idx[pft_row_offsets[plan.arrival_src[d]] + plan.arrival_row[d]]
                for d in range(num_ranks)
            ]

        entry = _CacheEntry(
            key=key,
            context=context,
            sig=sig,
            pfts=pfts,
            plan=plan,
            exec_program=None,
            kept_sorted_keys=kept_keys,
            seg_max_per_rank=seg_max_per_rank,
            pft_stack_idx=pft_stack_idx,
            pft_row_offsets=pft_row_offsets,
            arrival_stack_idx=arrival_stack_idx,
        )
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self._by_structure[context + (sig.structure_digest,)] = entry
        self._last_by_context[context] = entry
        self._evict_to_bound()
        return entry

    # ------------------------------------------------------------------
    def _weight_patch(self, source, sig, key, context) -> _CacheEntry:
        """Same structure, drifted scores: re-gather every weight table."""
        new_weights = sig.scores[source.pft_stack_idx]
        offsets = source.pft_row_offsets
        pfts = [
            PFT._trusted(
                p.token_ids,
                p.expert_ids,
                p.tokens_per_expert,
                new_weights[offsets[r] : offsets[r + 1]],
                p.num_source_tokens,
                p.dropped_assignments,
            )
            for r, p in enumerate(source.pfts)
        ]
        plan = replace(
            source.plan,
            pfts=pfts,
            arrival_weight=[sig.scores[idx] for idx in source.arrival_stack_idx],
        )
        exec_program = None
        if source.exec_program is not None:
            exec_program = source.exec_program.with_fold_weights(new_weights)

        entry = _CacheEntry(
            key=key,
            context=context,
            sig=sig,
            pfts=pfts,
            plan=plan,
            exec_program=exec_program,
            kept_sorted_keys=source.kept_sorted_keys,
            seg_max_per_rank=source.seg_max_per_rank,
            pft_stack_idx=source.pft_stack_idx,
            pft_row_offsets=source.pft_row_offsets,
            arrival_stack_idx=source.arrival_stack_idx,
        )
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self._by_structure[context + (sig.structure_digest,)] = entry
        self._last_by_context[context] = entry
        self._evict_to_bound()
        return entry

    # ------------------------------------------------------------------
    def _structural_patch(self, previous, sig, decisions, capacity):
        """Patch the previous step's PFT tables when few tokens re-routed.

        Returns the patched per-rank PFT list, or ``None`` when the delta
        exceeds the threshold (the caller falls back to a cold build).
        Unchanged ranks keep their PFT structure (weights re-gathered from
        the new scores); changed ranks rebuild through the per-rank
        ``to_pft`` — the exact code the batched builder is property-tested
        against — so the patched tables are bit-identical to a cold build
        by construction.
        """
        kept_idx = np.flatnonzero(~sig.dropped)
        new_keys = np.sort(sig.keys[kept_idx])
        old_keys = previous.kept_sorted_keys
        bound = max(new_keys.size, old_keys.size, 1)
        common = np.intersect1d(new_keys, old_keys, assume_unique=True).size
        delta = (new_keys.size - common) + (old_keys.size - common)
        if delta / bound > self.patch_threshold:
            return None

        prev_sig = previous.sig
        if len(previous.pfts) != len(decisions):
            return None
        pfts = []
        for r, decision in enumerate(decisions):
            lo, hi = sig.rank_offsets[r], sig.rank_offsets[r + 1]
            plo, phi = prev_sig.rank_offsets[r], prev_sig.rank_offsets[r + 1]
            unchanged = (
                hi - lo == phi - plo
                and np.array_equal(sig.tokens[lo:hi], prev_sig.tokens[plo:phi])
                and np.array_equal(sig.experts[lo:hi], prev_sig.experts[plo:phi])
                and np.array_equal(sig.dropped[lo:hi], prev_sig.dropped[plo:phi])
            )
            if unchanged and np.array_equal(
                sig.scores[lo:hi], prev_sig.scores[plo:phi]
            ):
                pfts.append(previous.pfts[r])
            elif unchanged and previous.pft_stack_idx is not None:
                o0, o1 = previous.pft_row_offsets[r], previous.pft_row_offsets[r + 1]
                local = previous.pft_stack_idx[o0:o1] - plo
                prev_pft = previous.pfts[r]
                pfts.append(
                    PFT._trusted(
                        prev_pft.token_ids,
                        prev_pft.expert_ids,
                        prev_pft.tokens_per_expert,
                        sig.scores[lo + local],
                        prev_pft.num_source_tokens,
                        prev_pft.dropped_assignments,
                    )
                )
            else:
                pfts.append(decision.to_pft(capacity))
        return pfts
