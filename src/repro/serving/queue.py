"""The admission queue: FIFO arrivals, bounded backlog, conservation ledger.

:class:`RequestQueue` is the ``RequestTracker`` half of the ColossalAI
async-engine pattern: every client submission becomes a
:class:`~repro.serving.request.RequestState` with its own
:class:`~repro.serving.request.TokenStream`, enters the FIFO backlog, and
is later popped by an admission policy.  The queue keeps a ledger of every
state it ever created — queued, running, and terminal alike — which is
what the queue-conservation property checks against: every submitted
request terminates exactly once (completed or rejected), and nothing is
ever lost or duplicated.

A bounded backlog (``max_pending``) rejects overload at the door: the
returned state is already terminal (``REJECTED``) with a finished, empty
stream, so clients observe rejection the same way they observe
completion.
"""

from __future__ import annotations

import time
from collections import deque

from repro.serving.request import Request, RequestState, RequestStatus, TokenStream


class RequestQueue:
    """FIFO request backlog with an optional admission bound.

    ``max_pending`` bounds the backlog (``None`` = unbounded); a submit
    beyond the bound is rejected immediately.  ``states`` is the
    conservation ledger: request id → state, insertion-ordered, covering
    every submission ever made.
    """

    def __init__(self, *, max_pending: int | None = None):
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None for unbounded)")
        self.max_pending = max_pending
        self._pending: deque[RequestState] = deque()
        self.states: dict[str, RequestState] = {}
        self.submitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def submit(self, request: Request, *, step: int) -> RequestState:
        """Enqueue one request (or reject it if the backlog is full).

        Returns the tracking state either way; a rejected state is already
        terminal with a finished stream, so the caller's consumption loop
        needs no special case.
        """
        if request.request_id in self.states:
            raise ValueError(f"duplicate request id {request.request_id!r}")
        state = RequestState(request=request, stream=TokenStream(request.request_id))
        state.submitted_step = step
        state.wall["submitted"] = time.perf_counter()
        self.states[request.request_id] = state
        self.submitted += 1
        if self.max_pending is not None and len(self._pending) >= self.max_pending:
            state.status = RequestStatus.REJECTED
            state.finished_step = step
            state.wall["finished"] = state.wall["submitted"]
            state.stream.finish()
            self.rejected += 1
            return state
        self._pending.append(state)
        return state

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> tuple[RequestState, ...]:
        """The backlog in arrival order (read-only view)."""
        return tuple(self._pending)

    def pop(self, count: int) -> list[RequestState]:
        """Pop up to ``count`` oldest queued requests (FCFS order)."""
        out: list[RequestState] = []
        while self._pending and len(out) < count:
            out.append(self._pending.popleft())
        return out

    # ------------------------------------------------------------------
    def conservation(self) -> dict:
        """The ledger totals the conservation property asserts over."""
        by_status: dict[str, int] = {}
        for state in self.states.values():
            by_status[state.status.value] = by_status.get(state.status.value, 0) + 1
        return {
            "submitted": self.submitted,
            "pending": len(self._pending),
            "rejected": self.rejected,
            "by_status": by_status,
        }
