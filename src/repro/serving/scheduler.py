"""Continuous-batch scheduling: slot management + pluggable admission.

:class:`ContinuousBatchScheduler` owns the engine's serving slots — one
per EP rank of the underlying :class:`~repro.runtime.StepRuntime` group.
Each engine iteration it retires completed requests and admits queued ones
into the freed slots, so new requests join in-flight batches the moment
capacity exists instead of waiting for a batch barrier.  *Which* queued
requests enter is delegated to an :class:`AdmissionPolicy`:

* :class:`FCFSAdmission` — fill every free slot in strict arrival order;
  the continuous-batching default (starvation-free by construction, the
  property suite proves the bound).
* :class:`MemoryBudgetAdmission` — FCFS capped by a concurrency budget
  derived from :class:`~repro.xmoe.memory_model.MoEMemoryModel`: the
  device headroom left after model states, divided by the activation
  footprint of one in-flight request.
* :class:`StaticBatchAdmission` — the fixed-batch *baseline*: admits only
  when every slot is idle, so a whole batch runs to completion before the
  next forms.  This is the strawman the serving benchmark beats.

One request maps to one slot (= one EP rank) for its whole service time.
That mapping is what makes continuous batching *provably* output-invariant
here: the runtime's rank-batched route/PFT path is bit-identical to
per-rank calls, so a request's routing — and therefore its tokens — never
depends on which other requests share the step.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.serving.queue import RequestQueue
from repro.serving.request import RequestState, RequestStatus

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.xmoe.memory_model import MoEMemoryModel


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Decides which queued requests enter the freed slots this step."""

    name: str

    def admit(
        self, queue: RequestQueue, free_slots: int, *, running: int, step: int
    ) -> list[RequestState]:
        """Pop and return the requests to admit (at most ``free_slots``)."""
        ...


class FCFSAdmission:
    """First-come-first-served: fill every free slot in arrival order."""

    name = "fcfs"

    def admit(
        self, queue: RequestQueue, free_slots: int, *, running: int, step: int
    ) -> list[RequestState]:
        """Pop the oldest queued requests, one per free slot."""
        return queue.pop(free_slots)


class StaticBatchAdmission:
    """Fixed-batch baseline: admit only into a fully idle engine.

    Classic static batching — a batch is formed, runs until its *last*
    member completes, and only then does the next batch form.  Slots freed
    by short requests sit idle while long ones finish, which is exactly
    the throughput loss continuous batching removes
    (``benchmarks/test_serving_bench.py`` measures the gap).
    """

    name = "static"

    def admit(
        self, queue: RequestQueue, free_slots: int, *, running: int, step: int
    ) -> list[RequestState]:
        """Pop a fresh batch only when nothing is running."""
        if running > 0:
            return []
        return queue.pop(free_slots)


class MemoryBudgetAdmission:
    """FCFS admission capped by a memory-derived concurrency budget.

    The budget is computed once from a
    :class:`~repro.xmoe.memory_model.MoEMemoryModel`: the HBM headroom
    left after model states, divided by the activation bytes one in-flight
    request (one micro-batch sequence) costs.  Serving then never admits
    more concurrent requests than the device could actually hold
    activations for, no matter how many slots the EP group offers.
    """

    name = "memory-budget"

    def __init__(self, memory_model: "MoEMemoryModel", *, max_slots: int | None = None):
        report = memory_model.report()
        per_request = report.activation_bytes / max(
            1, memory_model.parallel.micro_batch_size
        )
        headroom = report.capacity_bytes - report.model_states_bytes
        budget = int(headroom // per_request) if per_request > 0 else 0
        #: concurrent requests the device headroom supports (>= 1 so the
        #: engine can always make progress, even on an undersized device).
        self.slot_budget = max(1, budget)
        if max_slots is not None:
            self.slot_budget = min(self.slot_budget, max_slots)

    def admit(
        self, queue: RequestQueue, free_slots: int, *, running: int, step: int
    ) -> list[RequestState]:
        """Pop FCFS up to the free slots left under the memory budget."""
        allowed = max(0, min(free_slots, self.slot_budget - running))
        return queue.pop(allowed)


class ContinuousBatchScheduler:
    """Packs admitted requests into the EP group's serving slots.

    ``num_slots`` equals the step runtime's EP group size; slot *i* feeds
    rank *i*'s batch.  The scheduler mutates request states on admission
    (slot binding, status, admitted step) and on retirement (slot
    release); the engine drives it once per step via :meth:`admit` /
    :meth:`retire`.
    """

    def __init__(
        self,
        num_slots: int,
        queue: RequestQueue,
        admission: AdmissionPolicy | None = None,
    ):
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        self.num_slots = num_slots
        self.queue = queue
        self.admission = admission if admission is not None else FCFSAdmission()
        self.slots: list[RequestState | None] = [None] * num_slots

    # ------------------------------------------------------------------
    @property
    def running(self) -> list[tuple[int, RequestState]]:
        """Occupied slots as ``(slot, state)`` pairs, slot order."""
        return [(i, s) for i, s in enumerate(self.slots) if s is not None]

    @property
    def free_slots(self) -> list[int]:
        """Indices of unoccupied slots, ascending."""
        return [i for i, s in enumerate(self.slots) if s is None]

    # ------------------------------------------------------------------
    def admit(self, *, step: int) -> list[RequestState]:
        """Admit queued requests into free slots (policy decides which).

        Admitted requests are bound to the lowest free slots in pop order
        — deterministic, so two runs over the same trace make identical
        placements.
        """
        free = self.free_slots
        admitted = self.admission.admit(
            self.queue, len(free), running=self.num_slots - len(free), step=step
        )
        if len(admitted) > len(free):  # pragma: no cover - policy bug guard
            raise RuntimeError(
                f"admission policy returned {len(admitted)} requests for "
                f"{len(free)} free slots"
            )
        import time

        for slot, state in zip(free, admitted):
            state.slot = slot
            state.status = RequestStatus.PREFILL
            state.admitted_step = step
            state.wall["admitted"] = time.perf_counter()
            self.slots[slot] = state
        return admitted

    def retire(self, state: RequestState) -> None:
        """Release a completed request's slot (the engine marks terminal)."""
        if state.slot is None or self.slots[state.slot] is not state:
            raise ValueError(f"request {state.request_id!r} is not bound to a slot")
        self.slots[state.slot] = None
        state.slot = None
