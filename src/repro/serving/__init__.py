"""repro.serving — continuous-batching MoE inference over the step runtime.

The serving subsystem turns the rank-batched training
:class:`~repro.runtime.StepRuntime` into an inference engine: requests
arrive asynchronously, an admission policy packs them into the EP group's
slots (one request per rank), every engine iteration runs one runtime step
for all occupied slots at once, tokens stream out per request, and
completed requests retire so queued ones join in-flight work immediately —
continuous batching, no batch barriers.

The design leans on a property the runtime already guarantees: the
rank-batched route/dispatch path is bit-identical to per-rank execution.
With one request per slot and a pinned routing salt, a request's token
stream is therefore a pure function of the request — independent of
whatever else happens to be co-batched — and
``tests/test_serving_properties.py`` proves it across every router policy
and dispatcher kind.
"""

from repro.serving.engine import (
    STEP_BUCKETS,
    SchedulerDecision,
    ServeStepReport,
    ServingEngine,
    default_next_hidden,
    default_token_id,
    make_serving_engine,
)
from repro.serving.queue import RequestQueue
from repro.serving.request import (
    Request,
    RequestState,
    RequestStatus,
    TokenChunk,
    TokenStream,
)
from repro.serving.scheduler import (
    AdmissionPolicy,
    ContinuousBatchScheduler,
    FCFSAdmission,
    MemoryBudgetAdmission,
    StaticBatchAdmission,
)
from repro.serving.traffic import (
    ServeReport,
    bursty_arrivals,
    format_slo_table,
    poisson_arrivals,
    run_trace,
    synth_requests,
)

__all__ = [
    "STEP_BUCKETS",
    "AdmissionPolicy",
    "ContinuousBatchScheduler",
    "FCFSAdmission",
    "MemoryBudgetAdmission",
    "Request",
    "RequestQueue",
    "RequestState",
    "RequestStatus",
    "SchedulerDecision",
    "ServeReport",
    "ServeStepReport",
    "ServingEngine",
    "StaticBatchAdmission",
    "TokenChunk",
    "TokenStream",
    "bursty_arrivals",
    "default_next_hidden",
    "default_token_id",
    "format_slo_table",
    "make_serving_engine",
    "poisson_arrivals",
    "run_trace",
    "synth_requests",
]
