"""The serving request model: requests, lifecycle state, and token streams.

A :class:`Request` is what a client submits: a prompt (hidden-state rows,
since the simulated substrate works below the embedding layer), a decode
budget, and an optional step-denominated deadline.  The engine wraps each
submission in a :class:`RequestState` — the single mutable object that
tracks the request through ``QUEUED → PREFILL → DECODE → COMPLETED`` (or
``REJECTED`` at admission) and accumulates its per-request metrics: queue
wait, time-to-first-token, total latency, and the policy/capacity drop
counts attributed to it from each step's
:class:`~repro.runtime.StepTrace`.

Tokens stream out through a :class:`TokenStream`, the ColossalAI
``AsyncStream`` pattern adapted to the synchronous simulator: ``put`` and
``finish`` never block, consumers drain incrementally between engine
steps (``drain`` / ``get_nowait`` / iteration), and an ``async for`` works
from an event loop that pumps the engine between awaits.  The stream also
keeps its full ``history`` so the property suite can compare two runs'
outputs bit for bit.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from enum import Enum

import numpy as np


class RequestStatus(str, Enum):
    """Lifecycle phases of a served request."""

    QUEUED = "queued"
    PREFILL = "prefill"
    DECODE = "decode"
    COMPLETED = "completed"
    REJECTED = "rejected"

    @property
    def terminal(self) -> bool:
        """Whether the request has left the system (exactly-once states)."""
        return self in (RequestStatus.COMPLETED, RequestStatus.REJECTED)


@dataclass(frozen=True)
class TokenChunk:
    """One decoded token: its index, id, and the raw MoE output vector.

    ``vector`` carries the combined float64 output row the token was
    derived from — the bit-exact artifact the batching-invariance oracle
    compares; ``token_id`` is a deterministic digest of it (what a real
    deployment would sample from logits).
    """

    index: int
    token_id: int
    vector: np.ndarray


class TokenStream:
    """Per-request token stream: non-blocking puts, sentinel-terminated.

    The synchronous mirror of ColossalAI's ``AsyncStream``: the engine
    ``put``s one :class:`TokenChunk` per decode step and calls ``finish``
    exactly once when the request terminates.  Consumers either drain
    synchronously between engine steps (:meth:`drain`, :meth:`get_nowait`,
    plain iteration over what has arrived) or ``async for`` over the
    stream from an event loop that pumps the engine between awaits.
    """

    def __init__(self, request_id: str):
        self.request_id = request_id
        self._pending: deque[TokenChunk] = deque()
        #: every chunk ever emitted, in order (draining does not erase it).
        self.history: list[TokenChunk] = []
        self._finished = False
        self._event: asyncio.Event | None = None

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether ``finish`` has been called (no more tokens will arrive)."""
        return self._finished

    def put(self, chunk: TokenChunk) -> None:
        """Append one token chunk (never blocks; engine-side call)."""
        if self._finished:
            raise RuntimeError(f"stream {self.request_id!r} is finished")
        self._pending.append(chunk)
        self.history.append(chunk)
        if self._event is not None:
            self._event.set()

    def finish(self) -> None:
        """Mark the stream complete; idempotence is an error (exactly once)."""
        if self._finished:
            raise RuntimeError(f"stream {self.request_id!r} finished twice")
        self._finished = True
        if self._event is not None:
            self._event.set()

    # ------------------------------------------------------------------
    def get_nowait(self) -> TokenChunk | None:
        """Pop the oldest undrained chunk, or ``None`` if none is waiting."""
        if not self._pending:
            return None
        return self._pending.popleft()

    def drain(self) -> list[TokenChunk]:
        """Pop and return every chunk that has arrived since the last drain."""
        out = list(self._pending)
        self._pending.clear()
        return out

    def __iter__(self):
        """Iterate over the currently-available chunks (non-blocking)."""
        while self._pending:
            yield self._pending.popleft()

    # -- async consumption ---------------------------------------------
    def __aiter__(self) -> "TokenStream":
        return self

    async def __anext__(self) -> TokenChunk:
        """Await the next chunk; stops when the stream is finished and dry.

        The engine is synchronous, so the event this waits on is only set
        by ``put``/``finish`` calls made between awaits — pump the engine
        from the same loop (or another thread) while consuming.
        """
        while True:
            if self._pending:
                return self._pending.popleft()
            if self._finished:
                raise StopAsyncIteration
            if self._event is None:
                self._event = asyncio.Event()
            self._event.clear()
            await self._event.wait()


@dataclass
class Request:
    """One client submission: prompt rows, decode budget, optional SLO.

    ``prompt`` is a ``[P, H]`` float64 array of hidden-state rows (``P >=
    1``); every prompt row is prefilled through the MoE layer, and the last
    prefill output seeds the decode state.  ``max_new_tokens`` decode steps
    then each emit one :class:`TokenChunk`.  ``deadline_steps``, when set,
    is the SLO: the request should complete within that many engine steps
    of its submission (misses are tracked, not enforced).
    """

    request_id: str
    prompt: np.ndarray
    max_new_tokens: int
    arrival: float = 0.0
    deadline_steps: int | None = None

    def __post_init__(self) -> None:
        self.prompt = np.asarray(self.prompt, dtype=np.float64)
        if self.prompt.ndim != 2 or self.prompt.shape[0] < 1:
            raise ValueError(
                f"prompt must be [P >= 1, H], got shape {self.prompt.shape}"
            )
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")


@dataclass
class RequestState:
    """Mutable lifecycle tracker for one submitted request.

    Owned by the engine/scheduler; clients keep the reference returned by
    ``submit`` and read the stream plus the per-request metrics off it.
    ``policy_drops`` / ``capacity_drops`` accumulate the drop attribution
    flowing from each step's :class:`~repro.runtime.StepTrace` (the slot →
    request mapping makes per-rank counts per-request counts).
    """

    request: Request
    stream: TokenStream
    status: RequestStatus = RequestStatus.QUEUED
    slot: int | None = None
    #: prompt rows already prefilled.
    cursor: int = 0
    tokens_emitted: int = 0
    #: current decode vector (None until prefill completes).
    hidden: np.ndarray | None = None
    submitted_step: int | None = None
    admitted_step: int | None = None
    first_token_step: int | None = None
    finished_step: int | None = None
    policy_drops: int = 0
    capacity_drops: int = 0
    #: wall-clock timestamps mirroring the step counters (for benchmarks).
    wall: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def request_id(self) -> str:
        """The wrapped request's id."""
        return self.request.request_id

    @property
    def prompt_remaining(self) -> int:
        """Prompt rows not yet prefilled."""
        return int(self.request.prompt.shape[0]) - self.cursor

    @property
    def done(self) -> bool:
        """Whether the decode budget has been fully emitted."""
        return self.tokens_emitted >= self.request.max_new_tokens

    @property
    def queue_steps(self) -> int | None:
        """Steps spent waiting for admission (None until admitted)."""
        if self.admitted_step is None or self.submitted_step is None:
            return None
        return self.admitted_step - self.submitted_step

    @property
    def ttft_steps(self) -> int | None:
        """Submission-to-first-token steps (None until the first token)."""
        if self.first_token_step is None or self.submitted_step is None:
            return None
        return self.first_token_step - self.submitted_step

    @property
    def latency_steps(self) -> int | None:
        """Submission-to-completion steps (None until terminal)."""
        if self.finished_step is None or self.submitted_step is None:
            return None
        return self.finished_step - self.submitted_step

    @property
    def deadline_missed(self) -> bool:
        """Whether the finished request blew its ``deadline_steps`` SLO."""
        deadline = self.request.deadline_steps
        latency = self.latency_steps
        return deadline is not None and latency is not None and latency > deadline

    # ------------------------------------------------------------------
    def service_steps(self, prefill_chunk: int) -> int:
        """Engine steps this request needs once admitted (for bounds)."""
        prefill = -(-int(self.request.prompt.shape[0]) // max(1, prefill_chunk))
        return prefill + self.request.max_new_tokens

    def next_rows(self, prefill_chunk: int) -> np.ndarray:
        """The rows this request contributes to the next step's slot batch.

        Prefill steps take up to ``prefill_chunk`` unconsumed prompt rows;
        once the prompt is exhausted, decode steps carry the single current
        hidden vector.  Prefill and decode rows are never mixed in one
        step, so the per-slot shape schedule is a pure function of the
        request — the keystone of batching invariance.
        """
        if self.prompt_remaining > 0:
            end = min(self.cursor + max(1, prefill_chunk), self.request.prompt.shape[0])
            return self.request.prompt[self.cursor : end]
        if self.hidden is None:  # pragma: no cover - engine invariant
            raise RuntimeError(f"request {self.request_id!r} has no decode state")
        return self.hidden[None, :]

    def summary(self) -> dict:
        """Per-request metrics row (what the SLO table aggregates)."""
        return {
            "request": self.request_id,
            "status": self.status.value,
            "queue_steps": self.queue_steps,
            "ttft_steps": self.ttft_steps,
            "latency_steps": self.latency_steps,
            "tokens": self.tokens_emitted,
            "policy_drops": self.policy_drops,
            "capacity_drops": self.capacity_drops,
            "deadline_missed": self.deadline_missed,
        }
