"""The serving loop: continuous batching over the rank-batched step runtime.

:class:`ServingEngine` turns the training-oriented
:class:`~repro.runtime.StepRuntime` into an inference engine.  Each engine
iteration (:meth:`ServingEngine.step`):

1. **admit** — the :class:`~repro.serving.scheduler.ContinuousBatchScheduler`
   retires nothing yet and admits queued requests into free slots (new
   requests join in-flight work; no batch barrier);
2. **pack** — every occupied slot contributes its next rows (a prefill
   chunk or the single decode vector) as that EP rank's batch; free slots
   contribute ``[0, H]`` — the runtime's ragged/zero-token path;
3. **run** — one ``runtime.run_step`` executes route → plan (through the
   plan cache, when attached) → dispatch → experts → combine for every
   slot at once;
4. **stream** — each decode slot's combined output row becomes one
   :class:`~repro.serving.request.TokenChunk` on the request's stream, the
   step's per-rank drop counts are attributed to the requests occupying
   those ranks, and completed requests retire (their slots free for the
   next step's admissions).

Serving pins the runtime's ``step`` salt (``route_salt``): exploration
noise and RBD pilot selection then depend only on ``(seed, salt)`` — not
on *when* a request happens to be scheduled — which, together with the
one-request-per-slot mapping and the runtime's batched-equals-sequential
bit-identity, makes each request's token stream a pure function of the
request itself.  ``tests/test_serving_properties.py`` proves exactly that:
tokens under continuous batching are bit-identical to serving the request
alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs import tracer as obs
from repro.obs.metrics import MetricsRegistry, log_buckets
from repro.runtime import StepRuntime, StepTrace

#: bucket bounds for the step-denominated serving latency histograms —
#: fine enough (24/decade) that registry quantiles track exact
#: percentiles within ~10%, the resolution the benchmark asserts.
STEP_BUCKETS = log_buckets(1.0, 4096.0, per_decade=24)
from repro.serving.queue import RequestQueue
from repro.serving.request import Request, RequestState, RequestStatus, TokenChunk
from repro.serving.scheduler import AdmissionPolicy, ContinuousBatchScheduler


def default_token_id(vector: np.ndarray) -> int:
    """Deterministic token digest of one combined output row.

    Stands in for the sample-from-logits step of a real LM head: any
    bit-exact function of the output vector works, and this one is cheap.
    """
    return int(abs(float(vector.sum())) * 1e6) % 50257


def default_next_hidden(hidden: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Deterministic decode recurrence: the next step's input vector.

    ``tanh`` keeps the state bounded; the ``roll`` breaks the fixed-point
    direction identity experts would otherwise converge to, so routing
    keeps moving across decode steps.
    """
    return np.tanh(np.roll(hidden, 1) + vector)


@dataclass
class ServeStepReport:
    """What one engine iteration did (returned by :meth:`ServingEngine.step`)."""

    step: int
    idle: bool
    admitted: tuple[str, ...]
    retired: tuple[str, ...]
    occupancy: tuple[str | None, ...]
    #: the runtime's step trace (None for idle steps).
    trace: StepTrace | None = None
    tokens_emitted: int = 0


@dataclass
class SchedulerDecision:
    """One row of the engine's decision log (determinism-comparable)."""

    step: int
    admitted: tuple[str, ...]
    retired: tuple[str, ...]
    occupancy: tuple[str | None, ...]
    rejected: tuple[str, ...] = field(default=())


class ServingEngine:
    """Continuous-batching MoE inference over a :class:`StepRuntime`.

    Parameters
    ----------
    runtime:
        The step runtime to drive.  Its dispatcher group size fixes the
        number of serving slots (one request per EP rank); its policy,
        capacity, plan cache, telemetry, and trace hooks all apply
        unchanged.
    admission:
        The :class:`~repro.serving.scheduler.AdmissionPolicy` (default
        FCFS — continuous batching).
    max_pending:
        Queue backlog bound; submissions beyond it are rejected.
    registry:
        :class:`~repro.obs.metrics.MetricsRegistry` for serving counters
        and latency histograms (a private one is created when omitted).
    route_salt:
        The fixed ``step`` value passed to every ``run_step``: keeps
        routing noise and RBD pilot selection schedule-independent so
        request outputs are batching-invariant.
    prefill_chunk:
        Prompt rows prefilled per step per request.
    monitor:
        Optional :class:`~repro.obs.monitor.Monitor`; when attached, the
        engine calls ``observe_step`` once per step *after* streaming, so
        monitoring reads the step's outcome and can never perturb it
        (token streams are bit-identical with monitoring on or off).
    """

    def __init__(
        self,
        runtime: StepRuntime,
        *,
        admission: AdmissionPolicy | None = None,
        max_pending: int | None = None,
        registry: MetricsRegistry | None = None,
        route_salt: int = 0,
        prefill_chunk: int = 4,
        token_fn=default_token_id,
        next_hidden_fn=default_next_hidden,
        monitor=None,
    ):
        if prefill_chunk < 1:
            raise ValueError("prefill_chunk must be >= 1")
        self.runtime = runtime
        self.num_slots = runtime.dispatcher.group.size
        self.hidden_size = runtime.policy.hidden_size
        self.route_salt = route_salt
        self.prefill_chunk = prefill_chunk
        self.token_fn = token_fn
        self.next_hidden_fn = next_hidden_fn
        self.queue = RequestQueue(max_pending=max_pending)
        self.scheduler = ContinuousBatchScheduler(self.num_slots, self.queue, admission)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.monitor = monitor
        self.step_index = 0
        #: every non-trivial scheduling decision, for determinism checks.
        self.decision_log: list[SchedulerDecision] = []
        self._empty = np.zeros((0, self.hidden_size), dtype=np.float64)
        reg = self.registry
        self._submitted = reg.counter("serving_requests_submitted").labels()
        self._rejected = reg.counter("serving_requests_rejected").labels()
        self._admitted = reg.counter("serving_requests_admitted").labels()
        self._completed = reg.counter("serving_requests_completed").labels()
        self._deadline_missed = reg.counter("serving_deadline_missed").labels()
        self._tokens = reg.counter("serving_tokens_emitted").labels()
        self._drops = reg.counter("serving_request_drops", "kind")
        #: why an SLO burned: dropped work (policy/capacity) or a blown
        #: deadline — the cause labels the dashboard and alerts attribute.
        self._slo_events = reg.counter("serving_slo_events", "cause")
        self._queue_hist = reg.histogram(
            "serving_queue_steps", buckets=STEP_BUCKETS
        ).labels()
        self._ttft_hist = reg.histogram(
            "serving_ttft_steps", buckets=STEP_BUCKETS
        ).labels()
        self._latency_hist = reg.histogram(
            "serving_latency_steps", buckets=STEP_BUCKETS
        ).labels()

    # ------------------------------------------------------------------
    @property
    def states(self) -> dict[str, RequestState]:
        """Every submitted request's state, keyed by id (the ledger)."""
        return self.queue.states

    @property
    def has_work(self) -> bool:
        """Whether anything is queued or in a slot."""
        return bool(len(self.queue)) or bool(self.scheduler.running)

    def submit(self, request: Request) -> RequestState:
        """Enqueue one request; returns its tracking state (maybe rejected)."""
        if request.prompt.shape[1] != self.hidden_size:
            raise ValueError(
                f"prompt hidden size {request.prompt.shape[1]} != engine "
                f"hidden size {self.hidden_size}"
            )
        state = self.queue.submit(request, step=self.step_index)
        state.wall["submitted"] = time.perf_counter()
        self._submitted.inc()
        if state.status is RequestStatus.REJECTED:
            self._rejected.inc()
        return state

    # ------------------------------------------------------------------
    def step(self) -> ServeStepReport:
        """Run one engine iteration: admit → pack → run → stream → retire."""
        with obs.span("serve_step", "serving", step=self.step_index) as sp:
            with obs.span("admit", "serving"):
                admitted = self.scheduler.admit(step=self.step_index)
            for state in admitted:
                state.wall["admitted"] = time.perf_counter()
                self._admitted.inc()
                self._queue_hist.observe(float(state.queue_steps or 0))
            running = self.scheduler.running
            occupancy = tuple(
                s.request_id if s is not None else None for s in self.scheduler.slots
            )
            if not running:
                report = ServeStepReport(
                    step=self.step_index,
                    idle=True,
                    admitted=tuple(s.request_id for s in admitted),
                    retired=(),
                    occupancy=occupancy,
                )
                sp.set(idle=True)
                if self.monitor is not None:
                    self.monitor.observe_step(self.step_index, wall=time.perf_counter())
                self.step_index += 1
                return report

            with obs.span("pack", "serving"):
                batches = [
                    slot_state.next_rows(self.prefill_chunk)
                    if slot_state is not None
                    else self._empty
                    for slot_state in self.scheduler.slots
                ]
            result = self.runtime.run_step(batches, step=self.route_salt)

            with obs.span("stream", "serving"):
                tokens_emitted = self._distribute(running, batches, result)
                self._attribute_drops(running, result.trace)
                retired = self._retire_done(running)

            decision = SchedulerDecision(
                step=self.step_index,
                admitted=tuple(s.request_id for s in admitted),
                retired=tuple(s.request_id for s in retired),
                occupancy=occupancy,
            )
            self.decision_log.append(decision)
            sp.set(
                active=len(running),
                admitted=len(decision.admitted),
                retired=len(decision.retired),
                tokens=tokens_emitted,
            )
            report = ServeStepReport(
                step=self.step_index,
                idle=False,
                admitted=decision.admitted,
                retired=decision.retired,
                occupancy=occupancy,
                trace=result.trace,
                tokens_emitted=tokens_emitted,
            )
        if self.monitor is not None:
            self.monitor.observe_step(self.step_index, wall=time.perf_counter())
        self.step_index += 1
        return report

    def run_until_drained(self, *, max_steps: int = 10_000) -> int:
        """Step until every submitted request is terminal; return steps run.

        Raises if ``max_steps`` elapse first — a serving loop that cannot
        drain a finite workload is a scheduler bug, not a timeout.
        """
        start = self.step_index
        while self.has_work:
            if self.step_index - start >= max_steps:
                raise RuntimeError(
                    f"workload not drained after {max_steps} steps "
                    f"({self.queue.conservation()})"
                )
            self.step()
        return self.step_index - start

    # ------------------------------------------------------------------
    def _distribute(self, running, batches, result) -> int:
        """Advance every occupied slot with its combined output rows."""
        now = time.perf_counter()
        tokens_emitted = 0
        for slot, state in running:
            rows = int(batches[slot].shape[0])
            outputs = result.outputs[slot]
            if state.status is RequestStatus.PREFILL:
                state.cursor += rows
                if state.prompt_remaining == 0:
                    state.hidden = outputs[-1].copy()
                    state.status = RequestStatus.DECODE
                    state.wall["prefill_done"] = now
                continue
            vector = outputs[0].copy()
            chunk = TokenChunk(
                index=state.tokens_emitted,
                token_id=self.token_fn(vector),
                vector=vector,
            )
            state.stream.put(chunk)
            if state.first_token_step is None:
                state.first_token_step = self.step_index
                state.wall["first_token"] = now
                self._ttft_hist.observe(float(state.ttft_steps or 0))
            state.tokens_emitted += 1
            tokens_emitted += 1
            self._tokens.inc()
            if not state.done:
                state.hidden = self.next_hidden_fn(state.hidden, vector)
        return tokens_emitted

    def _attribute_drops(self, running, trace: StepTrace) -> None:
        """Flow the step's per-rank drop counts onto the slots' requests."""
        policy_drops = trace.policy_drops_by_rank()
        capacity_drops = trace.capacity_drops_by_rank()
        telemetry = self.runtime.telemetry
        for slot, state in running:
            pol, cap = policy_drops[slot], capacity_drops[slot]
            if not pol and not cap:
                continue
            state.policy_drops += pol
            state.capacity_drops += cap
            if pol:
                self._drops.labels(kind="policy").inc(pol)
                self._slo_events.labels(cause="policy").inc(pol)
            if cap:
                self._drops.labels(kind="capacity").inc(cap)
                self._slo_events.labels(cause="capacity").inc(cap)
            if telemetry is not None:
                telemetry.attribute_drops(state.request_id, policy=pol, capacity=cap)

    def _retire_done(self, running) -> list[RequestState]:
        """Finish and unslot every request whose decode budget is spent."""
        retired = []
        tracer = obs.get_tracer()
        for slot, state in running:
            if state.status is not RequestStatus.DECODE or not state.done:
                continue
            state.status = RequestStatus.COMPLETED
            state.finished_step = self.step_index
            state.wall["finished"] = time.perf_counter()
            state.stream.finish()
            self.scheduler.retire(state)
            self._completed.inc()
            self._latency_hist.observe(float(state.latency_steps or 0))
            if state.deadline_missed:
                self._deadline_missed.inc()
                self._slo_events.labels(cause="deadline").inc()
            if tracer is not None:
                self._record_request_spans(tracer, state, slot)
            retired.append(state)
        return retired

    def _record_request_spans(self, tracer, state: RequestState, slot: int) -> None:
        """Stamp the retired request's lifecycle onto the tracer.

        One ``request``-category span covers submit → finish (its own
        Perfetto track, keyed by the ``request`` attribute), with
        queued / prefill / decode phase sub-spans from the wall-clock
        marks the engine left along the way.  Recording happens after the
        request's last token is already streamed, so it cannot perturb
        serving.
        """
        wall = state.wall
        submitted = wall.get("submitted")
        finished = wall.get("finished")
        if submitted is None or finished is None:  # pragma: no cover - defensive
            return
        admitted = wall.get("admitted", submitted)
        prefill_done = wall.get("prefill_done", admitted)
        request_id = state.request_id
        parent = tracer.record_span(
            "request",
            "request",
            start=submitted,
            end=finished,
            attrs={
                "request": request_id,
                "slot": slot,
                "tokens": state.tokens_emitted,
                "policy_drops": state.policy_drops,
                "capacity_drops": state.capacity_drops,
                "deadline_missed": state.deadline_missed,
                "submitted_step": state.submitted_step,
                "admitted_step": state.admitted_step,
                "first_token_step": state.first_token_step,
                "finished_step": state.finished_step,
                "queue_steps": state.queue_steps,
                "ttft_steps": state.ttft_steps,
                "latency_steps": state.latency_steps,
            },
        )
        for name, start, end in (
            ("queued", submitted, admitted),
            ("prefill", admitted, prefill_done),
            ("decode", prefill_done, finished),
        ):
            tracer.record_span(
                name,
                "request",
                start=start,
                end=end,
                attrs={"request": request_id},
                parent=parent,
            )


def make_serving_engine(
    *,
    router: str = "softmax-topk",
    dispatch: str = "flat",
    num_slots: int = 8,
    experts_per_rank: int = 1,
    top_k: int = 2,
    hidden_size: int = 16,
    capacity_factor: float | None = None,
    prefill_chunk: int = 4,
    seed: int = 0,
    plan_cache: bool = True,
    admission: AdmissionPolicy | None = None,
    max_pending: int | None = None,
    route_salt: int = 0,
    registry: MetricsRegistry | None = None,
    monitor=None,
) -> ServingEngine:
    """Build a fully wired serving engine over the simulated cluster.

    One-stop construction mirroring ``repro.obs.record_routing_run``: a
    :class:`~repro.comm.process_group.CommWorld` of ``num_slots`` ranks, a
    router policy, a dispatcher of the requested kind, telemetry + metrics
    publishing into one registry, and (by default) a
    :class:`~repro.routing.plan_cache.PlanCache` so steady-state decode
    steps resolve warm.  All randomness derives from ``seed``.
    """
    from repro.comm import CommWorld
    from repro.routing import PlanCache, make_dispatcher, make_policy
    from repro.routing.telemetry import RoutingTelemetry
    from repro.runtime import StepRuntime

    num_experts = num_slots * experts_per_rank
    reg = registry if registry is not None else MetricsRegistry()
    world = CommWorld(num_ranks=num_slots)
    world.stats.metrics = reg
    policy = make_policy(
        router,
        hidden_size,
        num_experts,
        top_k,
        rng=np.random.default_rng(seed),
        seed=seed,
    )
    dispatcher = make_dispatcher(
        world.world_group(), num_experts, kind=dispatch, seed=seed
    )
    telemetry = RoutingTelemetry(num_experts, metrics=reg)
    telemetry.comm_stats = world.stats
    capacity = None
    if capacity_factor is not None:
        capacity = StepRuntime.capacity_for(
            prefill_chunk, getattr(policy, "top_k", 1), num_experts, capacity_factor
        )
    runtime = StepRuntime(
        policy,
        dispatcher,
        capacity=capacity,
        telemetry=telemetry,
        plan_cache=PlanCache() if plan_cache else None,
    )
    return ServingEngine(
        runtime,
        admission=admission,
        max_pending=max_pending,
        registry=reg,
        route_salt=route_salt,
        prefill_chunk=prefill_chunk,
        monitor=monitor,
    )
