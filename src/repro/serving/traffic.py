"""Synthetic serving traffic: arrival processes, request factories, trace runner.

The serving benchmark needs repeatable heavy traffic.  This module
generates it in two open-loop flavors — Poisson arrivals (exponential
inter-arrival gaps at a chosen intensity) and a bursty trace (whole batches
landing at once, then silence) — turns the arrival schedule into concrete
:class:`~repro.serving.request.Request` objects, and drives a
:class:`~repro.serving.engine.ServingEngine` through the trace with
:func:`run_trace`: submissions happen when the engine's step counter
reaches each request's arrival step, independent of completions (open
loop), which is what actually stresses admission under load.

The resulting :class:`ServeReport` aggregates the per-request metrics into
the SLO table the benchmark prints and records: p50/p99 queue wait,
time-to-first-token, and end-to-end latency (all step-denominated, so two
runs of the same trace agree exactly), plus tokens/sec and deadline-miss
rate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.serving.engine import ServingEngine
from repro.serving.request import Request, RequestStatus


def poisson_arrivals(
    rng: np.random.Generator, num_requests: int, rate: float
) -> list[int]:
    """Open-loop Poisson arrival steps: ``rate`` requests per engine step.

    Inter-arrival gaps are exponential with mean ``1 / rate``; the returned
    list holds each request's (non-decreasing, integer) arrival step.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if rate <= 0:
        raise ValueError("rate must be positive")
    gaps = rng.exponential(1.0 / rate, size=num_requests)
    return np.floor(np.cumsum(gaps)).astype(int).tolist()


def bursty_arrivals(
    num_requests: int, *, burst_size: int, gap_steps: int
) -> list[int]:
    """Bursty arrival steps: ``burst_size`` requests land every ``gap_steps``.

    The adversarial counterpart to Poisson traffic — every burst
    oversubscribes the slots at once, so queueing (and the continuous vs
    static admission gap) is maximal.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if burst_size < 1 or gap_steps < 0:
        raise ValueError("burst_size must be >= 1 and gap_steps >= 0")
    return [(i // burst_size) * gap_steps for i in range(num_requests)]


def synth_requests(
    rng: np.random.Generator,
    arrivals: list[int],
    hidden_size: int,
    *,
    prompt_len: tuple[int, int] = (2, 8),
    max_new_tokens: tuple[int, int] = (2, 8),
    deadline_steps: int | None = None,
    prefix: str = "req",
) -> list[Request]:
    """Materialize one :class:`Request` per arrival step.

    Prompt lengths and decode budgets are drawn uniformly from the given
    inclusive ranges; prompt rows are standard-normal hidden states.  All
    randomness comes from ``rng``, so a trace is reproducible from its
    seed.
    """
    lo_p, hi_p = prompt_len
    lo_t, hi_t = max_new_tokens
    if lo_p < 1 or lo_t < 1:
        raise ValueError("prompt_len and max_new_tokens ranges start at >= 1")
    requests = []
    for i, arrival in enumerate(arrivals):
        rows = int(rng.integers(lo_p, hi_p + 1))
        budget = int(rng.integers(lo_t, hi_t + 1))
        requests.append(
            Request(
                request_id=f"{prefix}-{i:04d}",
                prompt=rng.standard_normal((rows, hidden_size)),
                max_new_tokens=budget,
                arrival=float(arrival),
                deadline_steps=deadline_steps,
            )
        )
    return requests


def _percentile(values: list[int | float], q: float) -> float:
    """Exact percentile of raw values — the tests' cross-check oracle.

    The report itself reads p50/p99 off the registry's bucketed
    histograms (:meth:`ServeReport.from_engine`); this exact computation
    stays only so the test/benchmark suites can assert the bucketed
    estimates agree within bucket resolution.
    """
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass
class ServeReport:
    """Aggregated outcome of one served trace (the SLO table's data)."""

    admission: str
    num_requests: int
    completed: int
    rejected: int
    steps: int
    wall_seconds: float
    tokens: int
    latency_p50: float
    latency_p99: float
    ttft_p50: float
    ttft_p99: float
    queue_p50: float
    queue_p99: float
    deadline_miss_rate: float
    policy_drops: int
    capacity_drops: int

    @property
    def tokens_per_second(self) -> float:
        """Decode throughput over the trace's wall time."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.tokens / self.wall_seconds

    @property
    def tokens_per_step(self) -> float:
        """Decode throughput per engine step (wall-clock independent)."""
        if self.steps <= 0:
            return 0.0
        return self.tokens / self.steps

    @classmethod
    def from_engine(
        cls, engine: ServingEngine, *, steps: int, wall_seconds: float
    ) -> "ServeReport":
        """Fold the engine's request ledger into one report.

        The p50/p99 figures are read straight off the registry's bucketed
        latency histograms (:meth:`~repro.obs.metrics.Histogram.quantile`)
        — the same numbers any metrics consumer sees — rather than being
        recomputed from the raw per-request lists; the serving benchmark
        asserts the bucketed estimates agree with the exact percentiles
        within bucket resolution.
        """
        states = list(engine.states.values())
        finished = [s for s in states if s.status is RequestStatus.COMPLETED]
        with_deadline = [
            s for s in finished if s.request.deadline_steps is not None
        ]
        miss_rate = (
            sum(1 for s in with_deadline if s.deadline_missed) / len(with_deadline)
            if with_deadline
            else 0.0
        )
        reg = engine.registry
        latency = reg.histogram("serving_latency_steps")
        ttft = reg.histogram("serving_ttft_steps")
        queue = reg.histogram("serving_queue_steps")
        return cls(
            admission=engine.scheduler.admission.name,
            num_requests=len(states),
            completed=len(finished),
            rejected=sum(
                1 for s in states if s.status is RequestStatus.REJECTED
            ),
            steps=steps,
            wall_seconds=wall_seconds,
            tokens=sum(s.tokens_emitted for s in finished),
            latency_p50=round(latency.quantile(0.50), 3),
            latency_p99=round(latency.quantile(0.99), 3),
            ttft_p50=round(ttft.quantile(0.50), 3),
            ttft_p99=round(ttft.quantile(0.99), 3),
            queue_p50=round(queue.quantile(0.50), 3),
            queue_p99=round(queue.quantile(0.99), 3),
            deadline_miss_rate=miss_rate,
            policy_drops=sum(s.policy_drops for s in states),
            capacity_drops=sum(s.capacity_drops for s in states),
        )

    def slo_row(self) -> dict:
        """One row of the printed SLO table (JSON-ready)."""
        return {
            "admission": self.admission,
            "requests": self.num_requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "steps": self.steps,
            "tokens": self.tokens,
            "tokens_per_step": round(self.tokens_per_step, 3),
            "tokens_per_sec": round(self.tokens_per_second, 1),
            "queue_p50": self.queue_p50,
            "queue_p99": self.queue_p99,
            "ttft_p50": self.ttft_p50,
            "ttft_p99": self.ttft_p99,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "deadline_miss_rate": round(self.deadline_miss_rate, 4),
            "policy_drops": self.policy_drops,
            "capacity_drops": self.capacity_drops,
        }


def format_slo_table(rows: list[dict], *, title: str = "serving SLO") -> str:
    """Render SLO rows as an aligned text table (benchmark output)."""
    if not rows:
        return f"{title}: (no rows)"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    header = "  ".join(c.rjust(widths[c]) for c in columns)
    lines = [f"== {title} ==", header]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(c, "")).rjust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def run_trace(
    engine: ServingEngine,
    requests: list[Request],
    *,
    max_steps: int = 100_000,
) -> ServeReport:
    """Drive the engine through an open-loop trace until it drains.

    Each request is submitted the first step the engine clock reaches its
    ``arrival`` value (arrival order, then list order — deterministic), the
    engine steps regardless of queue depth (open loop), and the trace ends
    when every submitted request is terminal.
    """
    ordered = sorted(
        range(len(requests)), key=lambda i: (requests[i].arrival, i)
    )
    start_step = engine.step_index
    start = time.perf_counter()
    cursor = 0
    while cursor < len(ordered) or engine.has_work:
        if engine.step_index - start_step >= max_steps:
            raise RuntimeError(f"trace not drained after {max_steps} steps")
        while cursor < len(ordered):
            request = requests[ordered[cursor]]
            if request.arrival > engine.step_index - start_step:
                break
            engine.submit(request)
            cursor += 1
        engine.step()
    wall = time.perf_counter() - start
    return ServeReport.from_engine(
        engine, steps=engine.step_index - start_step, wall_seconds=wall
    )
