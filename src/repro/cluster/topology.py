"""Hierarchical cluster topology.

A :class:`Topology` maps a flat rank id to its position in the machine
hierarchy (package, node, rack) and answers the question the communication
layer cares about most: *which link tier does a message between rank i and
rank j cross?*  Tiers are ordered from fastest to slowest:

``SELF < INTRA_PACKAGE < INTRA_NODE < INTER_NODE < CROSS_RACK``

On Frontier a package is one MI250X (two GCDs at 200 GB/s), a node holds 4
packages (8 GCDs, 50–100 GB/s between packages), nodes talk over Slingshot
(25 GB/s) and racks of 256 GCDs over the Dragonfly global links.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.config.hardware import SystemSpec


class LinkTier(enum.IntEnum):
    """Network tier crossed by a point-to-point transfer."""

    SELF = 0
    INTRA_PACKAGE = 1
    INTRA_NODE = 2
    INTER_NODE = 3
    CROSS_RACK = 4


@dataclass(frozen=True)
class RankLocation:
    """Where a rank lives in the machine hierarchy."""

    rank: int
    package: int
    node: int
    rack: int
    local_index: int  # index within the node


class Topology:
    """Rank-to-position mapping and tier queries for a :class:`SystemSpec`.

    Parameters
    ----------
    system:
        The hardware system description.
    num_ranks:
        Number of ranks actually used (defaults to every GPU in the system).
        Ranks are assigned to GPUs in order: rank 0..G-1 on node 0, etc.
    """

    def __init__(self, system: SystemSpec, num_ranks: int | None = None):
        self.system = system
        total = system.total_gpus
        if num_ranks is None:
            num_ranks = total
        if not (1 <= num_ranks <= total):
            raise ValueError(
                f"num_ranks={num_ranks} out of range for system with {total} GPUs"
            )
        self.num_ranks = num_ranks
        node_spec = system.node
        self.gpus_per_node = node_spec.gpus_per_node
        self.gpus_per_package = node_spec.gpus_per_package
        self.gpus_per_rack = system.gpus_per_rack

        ranks = np.arange(num_ranks)
        self._node_of = ranks // self.gpus_per_node
        self._package_of = ranks // self.gpus_per_package
        self._rack_of = ranks // self.gpus_per_rack
        self._local_of = ranks % self.gpus_per_node

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes spanned by the active ranks."""
        return int(self._node_of[-1]) + 1

    @property
    def num_racks(self) -> int:
        """Number of racks spanned by the active ranks."""
        return int(self._rack_of[-1]) + 1

    def location(self, rank: int) -> RankLocation:
        """Full location record for a rank."""
        self._check_rank(rank)
        return RankLocation(
            rank=rank,
            package=int(self._package_of[rank]),
            node=int(self._node_of[rank]),
            rack=int(self._rack_of[rank]),
            local_index=int(self._local_of[rank]),
        )

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        self._check_rank(rank)
        return int(self._node_of[rank])

    def rack_of(self, rank: int) -> int:
        """Rack index hosting ``rank``."""
        self._check_rank(rank)
        return int(self._rack_of[rank])

    def nodes_of(self, ranks) -> np.ndarray:
        """Vectorized node lookup for an array of ranks."""
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size and (ranks.min() < 0 or ranks.max() >= self.num_ranks):
            raise ValueError("rank out of range")
        return self._node_of[ranks]

    def tier(self, src: int, dst: int) -> LinkTier:
        """The slowest link tier crossed by a transfer from src to dst."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            return LinkTier.SELF
        if self._rack_of[src] != self._rack_of[dst]:
            return LinkTier.CROSS_RACK
        if self._node_of[src] != self._node_of[dst]:
            return LinkTier.INTER_NODE
        if self._package_of[src] != self._package_of[dst]:
            return LinkTier.INTRA_NODE
        return LinkTier.INTRA_PACKAGE

    def tier_matrix(self, ranks=None) -> np.ndarray:
        """Pairwise tier matrix (values of :class:`LinkTier`) for ``ranks``."""
        if ranks is None:
            ranks = np.arange(self.num_ranks)
        ranks = np.asarray(ranks, dtype=np.int64)
        node = self._node_of[ranks]
        package = self._package_of[ranks]
        rack = self._rack_of[ranks]
        n = ranks.size
        tiers = np.full((n, n), int(LinkTier.INTRA_PACKAGE), dtype=np.int8)
        tiers[package[:, None] != package[None, :]] = int(LinkTier.INTRA_NODE)
        tiers[node[:, None] != node[None, :]] = int(LinkTier.INTER_NODE)
        tiers[rack[:, None] != rack[None, :]] = int(LinkTier.CROSS_RACK)
        np.fill_diagonal(tiers, int(LinkTier.SELF))
        return tiers

    def ranks_on_node(self, node: int) -> list[int]:
        """All active ranks hosted on the given node."""
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} out of range")
        lo = node * self.gpus_per_node
        hi = min((node + 1) * self.gpus_per_node, self.num_ranks)
        return list(range(lo, hi))

    def same_node(self, src: int, dst: int) -> bool:
        """Whether two ranks share a node."""
        return self.node_of(src) == self.node_of(dst)

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.num_ranks):
            raise ValueError(f"rank {rank} out of range [0, {self.num_ranks})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.system.name}, ranks={self.num_ranks}, "
            f"nodes={self.num_nodes}, racks={self.num_racks})"
        )
