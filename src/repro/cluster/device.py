"""Simulated device with byte-accurate memory tracking.

The paper's headline claim — "10x larger trainable model under the same
hardware budget" — is fundamentally a statement about which configurations
fit in 64 GB of HBM per GCD.  :class:`MemoryTracker` provides named
allocations, peak tracking, and OOM detection so that both the functional
simulator (which allocates real numpy buffers) and the analytical memory
model (which only registers sizes) report trainability the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.hardware import GPUSpec


class DeviceOOMError(RuntimeError):
    """Raised when an allocation exceeds the device memory capacity."""

    def __init__(self, device: str, requested: int, in_use: int, capacity: int):
        self.device = device
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        super().__init__(
            f"OOM on {device}: requested {requested / 2**20:.1f} MiB with "
            f"{in_use / 2**20:.1f} MiB in use of {capacity / 2**20:.1f} MiB"
        )


@dataclass
class MemoryTracker:
    """Tracks named allocations against a byte capacity."""

    capacity_bytes: int
    name: str = "device"
    allocations: dict[str, int] = field(default_factory=dict)
    in_use_bytes: int = 0
    peak_bytes: int = 0

    def allocate(self, tag: str, nbytes: int) -> None:
        """Register an allocation of ``nbytes`` under ``tag``.

        Repeated allocations under the same tag accumulate.  Raises
        :class:`DeviceOOMError` if the capacity would be exceeded.
        """
        if nbytes < 0:
            raise ValueError(f"allocation size must be non-negative, got {nbytes}")
        nbytes = int(nbytes)
        if self.in_use_bytes + nbytes > self.capacity_bytes:
            raise DeviceOOMError(
                self.name, nbytes, self.in_use_bytes, self.capacity_bytes
            )
        self.allocations[tag] = self.allocations.get(tag, 0) + nbytes
        self.in_use_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.in_use_bytes)

    def free(self, tag: str) -> int:
        """Free every byte registered under ``tag``; returns the amount freed."""
        nbytes = self.allocations.pop(tag, 0)
        self.in_use_bytes -= nbytes
        return nbytes

    def free_all(self, prefix: str | None = None) -> int:
        """Free all allocations (optionally only those whose tag starts with
        ``prefix``); returns total bytes freed."""
        if prefix is None:
            freed = self.in_use_bytes
            self.allocations.clear()
            self.in_use_bytes = 0
            return freed
        freed = 0
        for tag in [t for t in self.allocations if t.startswith(prefix)]:
            freed += self.free(tag)
        return freed

    def would_fit(self, nbytes: int) -> bool:
        """Whether an extra allocation of ``nbytes`` would fit right now."""
        return self.in_use_bytes + int(nbytes) <= self.capacity_bytes

    @property
    def available_bytes(self) -> int:
        return self.capacity_bytes - self.in_use_bytes

    def breakdown(self) -> dict[str, float]:
        """Per-tag usage in GiB, sorted descending."""
        items = sorted(self.allocations.items(), key=lambda kv: -kv[1])
        return {tag: nbytes / 2**30 for tag, nbytes in items}

    def reset_peak(self) -> None:
        self.peak_bytes = self.in_use_bytes


class SimDevice:
    """One simulated GPU: a spec plus a memory tracker.

    The functional pipeline uses :meth:`alloc_array` so that the buffers it
    manipulates are also charged against device memory, giving end-to-end
    OOM behaviour on small configurations that mirrors the analytical model
    on large ones.
    """

    def __init__(self, rank: int, spec: GPUSpec):
        self.rank = rank
        self.spec = spec
        self.memory = MemoryTracker(
            capacity_bytes=spec.memory_bytes, name=f"{spec.name}[{rank}]"
        )

    def alloc(self, tag: str, nbytes: int) -> None:
        """Charge ``nbytes`` of device memory under ``tag``."""
        self.memory.allocate(tag, nbytes)

    def free(self, tag: str) -> int:
        """Release the allocation registered under ``tag``."""
        return self.memory.free(tag)

    def alloc_array(self, tag: str, array) -> None:
        """Charge the memory of an existing numpy array under ``tag``."""
        self.memory.allocate(tag, int(array.nbytes))

    @property
    def peak_gb(self) -> float:
        return self.memory.peak_bytes / 2**30

    @property
    def in_use_gb(self) -> float:
        return self.memory.in_use_bytes / 2**30

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimDevice(rank={self.rank}, spec={self.spec.name}, "
            f"in_use={self.in_use_gb:.2f} GiB, peak={self.peak_gb:.2f} GiB)"
        )
