"""Simulated HPC cluster substrate.

The cluster simulator provides three things the rest of the library builds
on:

* :mod:`repro.cluster.topology` — a hierarchical description of the machine
  (GCD → package → node → rack → system) with distance/tier queries between
  any two ranks.
* :mod:`repro.cluster.device` — a per-rank byte-accurate memory tracker with
  OOM detection, used both by the functional simulator and the analytical
  memory model.
* :mod:`repro.cluster.network` — the link/bandwidth model that converts a
  transfer between two ranks (or a collective traffic matrix) into time,
  including the Dragonfly cross-rack congestion behaviour the paper
  characterizes in Appendix D.
"""

from repro.cluster.topology import LinkTier, Topology
from repro.cluster.device import SimDevice, DeviceOOMError, MemoryTracker
from repro.cluster.network import NetworkModel, TransferEstimate

__all__ = [
    "LinkTier",
    "Topology",
    "SimDevice",
    "DeviceOOMError",
    "MemoryTracker",
    "NetworkModel",
    "TransferEstimate",
]
