"""Network link model: converting bytes into time.

The :class:`NetworkModel` answers two questions:

1. *Point-to-point*: how long does moving ``n`` bytes from rank ``i`` to
   rank ``j`` take?  ``time = latency(tier) + bytes / bandwidth(tier)``.
2. *Collective traffic matrix*: given a ``[P, P]`` matrix of bytes that an
   all-to-all wants to move, how long does the collective take?  We use the
   standard alpha-beta bottleneck model: every rank sends and receives its
   rows/columns concurrently, each link tier has its own bandwidth, and the
   collective finishes when the most loaded (rank, tier) pair finishes.
   This captures exactly the effect the paper exploits — redundant bytes on
   the 25 GB/s inter-node tier dominate, so removing them (RBD) or shrinking
   the payload (PFT, SSMB) shortens the critical path.

Cross-rack traffic is additionally subject to the congestion behaviour the
paper characterizes in Appendix D: beyond one rack (256 GCDs on Frontier),
a fraction of collectives hit slow outliers caused by contention with other
jobs.  The sampler reproduces the "most runs < 100 ms, frequent > 500 ms
outliers at 512/1024 GPUs" shape of Fig. 18.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import LinkTier, Topology


@dataclass(frozen=True)
class TransferEstimate:
    """Time estimate for a transfer or collective."""

    seconds: float
    bottleneck_tier: LinkTier
    bytes_by_tier: dict

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


class NetworkModel:
    """Alpha-beta cost model over a hierarchical topology."""

    def __init__(self, topology: Topology, *, seed: int | None = None):
        self.topology = topology
        system = topology.system
        node = system.node
        # GB/s -> bytes/s
        self._bandwidth = {
            LinkTier.SELF: float("inf"),
            LinkTier.INTRA_PACKAGE: node.intra_package_bw_gbps * 1e9,
            LinkTier.INTRA_NODE: node.intra_node_bw_gbps * 1e9,
            LinkTier.INTER_NODE: node.inter_node_bw_gbps * 1e9,
            LinkTier.CROSS_RACK: system.cross_rack_bw_gbps * 1e9,
        }
        # microseconds -> seconds
        self._latency = {
            LinkTier.SELF: 0.0,
            LinkTier.INTRA_PACKAGE: node.intra_node_latency_us * 1e-6 * 0.5,
            LinkTier.INTRA_NODE: node.intra_node_latency_us * 1e-6,
            LinkTier.INTER_NODE: node.inter_node_latency_us * 1e-6,
            LinkTier.CROSS_RACK: system.cross_rack_latency_us * 1e-6,
        }
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def bandwidth(self, tier: LinkTier) -> float:
        """Bytes per second available on a link of the given tier."""
        return self._bandwidth[tier]

    def latency(self, tier: LinkTier) -> float:
        """Per-message latency (seconds) on a link of the given tier."""
        return self._latency[tier]

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        """Time to move ``nbytes`` from ``src`` to ``dst``."""
        tier = self.topology.tier(src, dst)
        if tier == LinkTier.SELF:
            # On-device copy at HBM bandwidth.
            hbm = self.topology.system.node.gpu.memory_bandwidth_gbps * 1e9
            return nbytes / hbm
        return self._latency[tier] + nbytes / self._bandwidth[tier]

    # ------------------------------------------------------------------
    def alltoall_time(
        self,
        traffic_matrix: np.ndarray,
        ranks: np.ndarray | None = None,
        *,
        sample_congestion: bool = False,
    ) -> TransferEstimate:
        """Estimate the completion time of an all-to-all exchange.

        Parameters
        ----------
        traffic_matrix:
            ``[P, P]`` array; entry ``(i, j)`` is the number of bytes rank
            ``ranks[i]`` sends to rank ``ranks[j]``.
        ranks:
            Global rank ids of the participants (defaults to ``0..P-1``).
        sample_congestion:
            If True and the exchange crosses racks, sample a congestion
            multiplier from the outlier distribution instead of using the
            mean behaviour.
        """
        traffic = np.asarray(traffic_matrix, dtype=np.float64)
        if traffic.ndim != 2 or traffic.shape[0] != traffic.shape[1]:
            raise ValueError("traffic_matrix must be a square [P, P] array")
        p = traffic.shape[0]
        if ranks is None:
            ranks = np.arange(p)
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size != p:
            raise ValueError("ranks length must match the traffic matrix size")

        tiers = self.topology.tier_matrix(ranks)
        bytes_by_tier: dict[LinkTier, float] = {}
        worst_time = 0.0
        bottleneck = LinkTier.SELF
        for tier in LinkTier:
            mask = tiers == int(tier)
            tier_bytes = float(traffic[mask].sum())
            bytes_by_tier[tier] = tier_bytes
            if tier_bytes == 0.0 or tier == LinkTier.SELF:
                continue
            send_load = (traffic * mask).sum(axis=1)
            recv_load = (traffic * mask).sum(axis=0)
            per_rank = float(np.maximum(send_load, recv_load).max())
            bw = self._bandwidth[tier]
            lat = self._latency[tier]
            # Each rank exchanges with up to P-1 peers on this tier; latency
            # amortizes over pipelined messages, so charge one latency term
            # plus a small per-peer handshake.
            peers = max(1, int(mask.sum(axis=1).max()))
            t = lat + per_rank / bw + (peers - 1) * lat * 0.05
            if tier == LinkTier.CROSS_RACK and sample_congestion:
                t *= self._sample_congestion_factor()
            if t > worst_time:
                worst_time = t
                bottleneck = tier
        return TransferEstimate(
            seconds=worst_time, bottleneck_tier=bottleneck, bytes_by_tier=bytes_by_tier
        )

    def allgather_time(self, nbytes_per_rank: int, ranks: np.ndarray) -> TransferEstimate:
        """Ring all-gather estimate: every rank receives (P-1) chunks."""
        ranks = np.asarray(ranks, dtype=np.int64)
        p = ranks.size
        if p <= 1:
            return TransferEstimate(0.0, LinkTier.SELF, {})
        tiers = self.topology.tier_matrix(ranks)
        worst_tier = LinkTier(int(tiers.max()))
        bw = self._bandwidth[worst_tier]
        lat = self._latency[worst_tier]
        total = nbytes_per_rank * (p - 1)
        seconds = (p - 1) * lat + total / bw
        return TransferEstimate(seconds, worst_tier, {worst_tier: float(total)})

    def allreduce_time(self, nbytes: int, ranks: np.ndarray) -> TransferEstimate:
        """Ring all-reduce estimate (2(P-1)/P of the data over the worst tier)."""
        ranks = np.asarray(ranks, dtype=np.int64)
        p = ranks.size
        if p <= 1:
            return TransferEstimate(0.0, LinkTier.SELF, {})
        tiers = self.topology.tier_matrix(ranks)
        worst_tier = LinkTier(int(tiers.max()))
        bw = self._bandwidth[worst_tier]
        lat = self._latency[worst_tier]
        volume = 2.0 * nbytes * (p - 1) / p
        seconds = 2 * (p - 1) * lat + volume / bw
        return TransferEstimate(seconds, worst_tier, {worst_tier: float(volume)})

    def reduce_scatter_time(self, nbytes: int, ranks: np.ndarray) -> TransferEstimate:
        """Ring reduce-scatter estimate ((P-1)/P of the data over the worst tier).

        Exactly the reduce half of :meth:`allreduce_time`: ``P-1`` pipelined
        hops, each moving one ``nbytes / P`` chunk, so both the latency and
        the volume terms are half of the full all-reduce.  This is the cost
        ZeRO-2's bucketed gradient reduction pays per bucket.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        p = ranks.size
        if p <= 1:
            return TransferEstimate(0.0, LinkTier.SELF, {})
        tiers = self.topology.tier_matrix(ranks)
        worst_tier = LinkTier(int(tiers.max()))
        bw = self._bandwidth[worst_tier]
        lat = self._latency[worst_tier]
        volume = nbytes * (p - 1) / p
        seconds = (p - 1) * lat + volume / bw
        return TransferEstimate(seconds, worst_tier, {worst_tier: float(volume)})

    # ------------------------------------------------------------------
    def _sample_congestion_factor(self) -> float:
        """Sample a slowdown factor for a cross-rack collective."""
        system = self.topology.system
        if self._rng.random() < system.congestion_outlier_prob:
            # Outliers: heavy-tailed slowdown around the configured factor.
            return float(
                system.congestion_outlier_factor * (1.0 + self._rng.exponential(0.5))
            )
        return float(1.0 + abs(self._rng.normal(0.0, 0.1)))

    def congestion_factor(self, num_ranks: int) -> float:
        """Mean slowdown applied to collectives spanning ``num_ranks`` GPUs.

        Below one rack the factor is 1.  Beyond a rack the expected value of
        the outlier distribution is applied, growing mildly with the number
        of racks involved (more global links → more contention).
        """
        system = self.topology.system
        if num_ranks <= system.gpus_per_rack:
            return 1.0
        racks = -(-num_ranks // system.gpus_per_rack)
        p = system.congestion_outlier_prob
        mean_outlier = system.congestion_outlier_factor * 1.5
        base = (1.0 - p) * 1.0 + p * mean_outlier
        return float(base * (1.0 + 0.1 * (racks - 1)))
