"""Top-k gating for expert-specialized MoE layers.

The gate projects each token to per-expert logits (differentiably, on the
autograd substrate) and delegates *selection and dropping* to a pluggable
:class:`~repro.routing.policies.RouterPolicy` (§2, §4.1 of the paper; the
policy subsystem lives in :mod:`repro.routing.policies`).  The default
policy is the paper's softmax top-k router; the legacy
:class:`DropPolicy` enum is now a thin wrapper selecting that policy's
score-threshold knob, matching the subtle difference the paper discovered
while validating loss curves (§5.6):

* :attr:`DropPolicy.SCORE_THRESHOLD` — DeepSpeed-MoE behaviour: a token is
  dropped from an expert when its (pre-softmax) routing score is negative,
  regardless of whether the capacity is exceeded.
* :attr:`DropPolicy.CAPACITY_ONLY` — X-MoE behaviour: tokens are dropped
  only when they exceed the expert capacity, so more tokens survive.

The gate also computes the standard load-balancing auxiliary loss
(Switch-Transformer style), which both pipelines add to the LM loss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.routing.policies import RouterPolicy, RoutingDecision, SoftmaxTopKPolicy
from repro.tensor.autograd import Tensor
from repro.tensor import ops


class DropPolicy(enum.Enum):
    """Which tokens are eligible to be dropped by the dispatcher.

    A thin wrapper over the router-policy protocol: each member maps onto a
    :class:`~repro.routing.policies.SoftmaxTopKPolicy` configuration via
    :meth:`to_policy` (``SCORE_THRESHOLD`` sets the policy's
    ``score_threshold`` knob; ``CAPACITY_ONLY`` leaves all dropping to the
    capacity rule of PFT construction / padded dispatch).
    """

    CAPACITY_ONLY = "capacity-only"
    SCORE_THRESHOLD = "score-threshold"

    @property
    def drops_on_score(self) -> bool:
        """True when assignments with negative raw scores are dropped early."""
        return self is DropPolicy.SCORE_THRESHOLD

    def to_policy(
        self,
        hidden_size: int,
        num_experts: int,
        top_k: int,
        *,
        aux_loss_coef: float = 0.01,
    ) -> SoftmaxTopKPolicy:
        """The softmax top-k router policy this drop policy corresponds to."""
        return SoftmaxTopKPolicy(
            hidden_size,
            num_experts,
            top_k,
            score_threshold=self.drops_on_score,
            aux_loss_coef=aux_loss_coef,
        )


@dataclass
class GateOutput:
    """Everything downstream dispatch stages need from the gate.

    Attributes
    ----------
    logits:
        Raw router logits, ``[S, E]`` tensor (kept for the aux loss).
    probs:
        Softmax probabilities, ``[S, E]`` tensor (differentiable).
    top_experts:
        ``[S, k]`` integer array of selected expert ids per token.  For
        assignment-level policies (expert-choice) this is an ``[A, 1]``
        per-assignment column; ``decision`` is the authoritative form.
    top_scores:
        ``[S, k]`` float array of the corresponding probabilities
        (detached; combine weighting re-reads the differentiable ``probs``).
    drop_eligible:
        Boolean array aligned with ``top_experts``; ``True`` marks
        assignments the *policy* forcibly drops before any capacity rule is
        applied.  Invariant (asserted once, in :meth:`TopKGate.__call__`):
        a policy that does not drop early (``drops_early=False`` — e.g. the
        default softmax top-k under ``DropPolicy.CAPACITY_ONLY``) must emit
        an all-``False`` mask, because capacity-only dropping happens later,
        during PFT construction or padded dispatch; a policy that does drop
        early (``SCORE_THRESHOLD``'s negative-raw-score rule, switch-top-1's
        capacity-factor rule) decides those drops here, before any capacity
        is known downstream.
    aux_loss:
        Scalar tensor with the load-balancing auxiliary loss.
    decision:
        The full :class:`~repro.routing.policies.RoutingDecision` the policy
        produced (flat assignment arrays + telemetry fields).
    """

    logits: Tensor
    probs: Tensor
    top_experts: np.ndarray
    top_scores: np.ndarray
    drop_eligible: np.ndarray
    aux_loss: Tensor
    decision: RoutingDecision | None = None


class TopKGate:
    """Router: linear projection + softmax + policy-driven selection."""

    def __init__(
        self,
        hidden_size: int,
        num_experts: int,
        top_k: int,
        *,
        rng: np.random.Generator | None = None,
        drop_policy: DropPolicy = DropPolicy.CAPACITY_ONLY,
        aux_loss_coef: float = 0.01,
        policy: RouterPolicy | None = None,
    ):
        if not (1 <= top_k <= num_experts):
            raise ValueError(f"top_k={top_k} must be in [1, {num_experts}]")
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_experts = num_experts
        self.top_k = top_k
        self.drop_policy = drop_policy
        self.aux_loss_coef = aux_loss_coef
        std = 1.0 / np.sqrt(hidden_size)
        self.weight = Tensor(
            rng.normal(0.0, std, size=(hidden_size, num_experts)), requires_grad=True
        )
        if policy is None:
            policy = drop_policy.to_policy(
                hidden_size, num_experts, top_k, aux_loss_coef=aux_loss_coef
            )
        elif policy.num_experts != num_experts:
            raise ValueError("policy and gate disagree on the expert count")
        self.policy = policy
        self._auto_step = 0

    def parameters(self) -> list[Tensor]:
        return [self.weight]

    def __call__(self, tokens: Tensor, *, step: int | None = None) -> GateOutput:
        """Route ``tokens`` (a ``[S, H]`` tensor).

        ``step`` seeds the policy's exploration noise (``(seed, step)`` →
        one deterministic generator); the default policy ignores it.  When
        ``step`` is omitted the gate substitutes an internal per-call
        counter, so legacy step-less callers still get fresh noise each
        forward instead of a frozen perturbation.
        """
        if tokens.ndim != 2 or tokens.shape[1] != self.hidden_size:
            raise ValueError(
                f"expected [S, {self.hidden_size}] tokens, got {tokens.shape}"
            )
        if step is None:
            step = self._auto_step
            self._auto_step += 1
        logits = tokens @ self.weight
        probs = ops.softmax(logits, axis=-1)
        decision = self.policy.decide(logits.data, step=step, probs=probs.data)

        # The drop-eligibility invariant, asserted in exactly one place (see
        # GateOutput.drop_eligible): late-dropping policies must not mark
        # any assignment dropped.
        if not self.policy.drops_early and decision.dropped.any():
            raise AssertionError(
                f"policy {getattr(self.policy, 'name', type(self.policy).__name__)!r} "
                "declares drops_early=False but emitted dropped assignments; "
                "capacity-only dropping must defer to PFT construction"
            )

        if decision.top_experts is not None:
            top_experts = decision.top_experts
            top_scores = decision.top_scores
            drop_eligible = decision.drop_mask
        else:  # assignment-level policy: per-assignment columns
            top_experts = decision.expert_ids.reshape(-1, 1)
            top_scores = decision.scores.reshape(-1, 1)
            drop_eligible = decision.dropped.reshape(-1, 1)

        aux_loss = self._load_balancing_loss(probs, decision.expert_ids)
        return GateOutput(
            logits=logits,
            probs=probs,
            top_experts=top_experts,
            top_scores=top_scores,
            drop_eligible=drop_eligible,
            aux_loss=aux_loss,
            decision=decision,
        )

    # ------------------------------------------------------------------
    def _load_balancing_loss(self, probs: Tensor, top_experts: np.ndarray) -> Tensor:
        """Switch-Transformer load-balancing loss: ``E * sum(f_e * P_e)``.

        ``f_e`` is the fraction of (token, slot) assignments routed to expert
        ``e`` and ``P_e`` the mean router probability of expert ``e``.
        """
        counts = np.bincount(
            top_experts.reshape(-1), minlength=self.num_experts
        ).astype(np.float64)
        fraction = counts / max(1, top_experts.size)
        mean_probs = probs.mean(axis=0)  # [E]
        weighted = mean_probs * Tensor(fraction)
        return weighted.sum() * (self.aux_loss_coef * self.num_experts)

    # ------------------------------------------------------------------
    def expert_load(self, top_experts: np.ndarray) -> np.ndarray:
        """Tokens routed to each expert (histogram over all k slots)."""
        return np.bincount(top_experts.reshape(-1), minlength=self.num_experts)
