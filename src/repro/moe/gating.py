"""Top-k gating for expert-specialized MoE layers.

The gate projects each token to per-expert logits, applies a softmax, and
selects the ``k`` highest-scoring experts per token (§2, §4.1 of the paper).
Two token-dropping policies are provided, matching the subtle difference the
paper discovered while validating loss curves (§5.6):

* :attr:`DropPolicy.SCORE_THRESHOLD` — DeepSpeed-MoE behaviour: a token is
  dropped from an expert when its (pre-softmax) routing score is negative,
  regardless of whether the capacity is exceeded.
* :attr:`DropPolicy.CAPACITY_ONLY` — X-MoE behaviour: tokens are dropped
  only when they exceed the expert capacity, so more tokens survive.

The gate also computes the standard load-balancing auxiliary loss
(Switch-Transformer style), which both pipelines add to the LM loss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.tensor.autograd import Tensor
from repro.tensor import ops


class DropPolicy(enum.Enum):
    """Which tokens are eligible to be dropped by the dispatcher."""

    CAPACITY_ONLY = "capacity-only"
    SCORE_THRESHOLD = "score-threshold"


@dataclass
class GateOutput:
    """Everything downstream dispatch stages need from the gate.

    Attributes
    ----------
    logits:
        Raw router logits, ``[S, E]`` tensor (kept for the aux loss).
    probs:
        Softmax probabilities, ``[S, E]`` tensor (differentiable).
    top_experts:
        ``[S, k]`` integer array of selected expert ids per token.
    top_scores:
        ``[S, k]`` float array of the corresponding probabilities
        (detached; combine weighting re-reads the differentiable ``probs``).
    drop_eligible:
        ``[S, k]`` boolean array; ``True`` marks (token, slot) assignments
        that the SCORE_THRESHOLD policy forcibly drops.
    aux_loss:
        Scalar tensor with the load-balancing auxiliary loss.
    """

    logits: Tensor
    probs: Tensor
    top_experts: np.ndarray
    top_scores: np.ndarray
    drop_eligible: np.ndarray
    aux_loss: Tensor


class TopKGate:
    """Router: linear projection + softmax + top-k selection."""

    def __init__(
        self,
        hidden_size: int,
        num_experts: int,
        top_k: int,
        *,
        rng: np.random.Generator | None = None,
        drop_policy: DropPolicy = DropPolicy.CAPACITY_ONLY,
        aux_loss_coef: float = 0.01,
    ):
        if not (1 <= top_k <= num_experts):
            raise ValueError(f"top_k={top_k} must be in [1, {num_experts}]")
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_experts = num_experts
        self.top_k = top_k
        self.drop_policy = drop_policy
        self.aux_loss_coef = aux_loss_coef
        std = 1.0 / np.sqrt(hidden_size)
        self.weight = Tensor(
            rng.normal(0.0, std, size=(hidden_size, num_experts)), requires_grad=True
        )

    def parameters(self) -> list[Tensor]:
        return [self.weight]

    def __call__(self, tokens: Tensor) -> GateOutput:
        """Route ``tokens`` (a ``[S, H]`` tensor)."""
        if tokens.ndim != 2 or tokens.shape[1] != self.hidden_size:
            raise ValueError(
                f"expected [S, {self.hidden_size}] tokens, got {tokens.shape}"
            )
        logits = tokens @ self.weight
        probs = ops.softmax(logits, axis=-1)
        top_scores, top_experts = ops.topk(probs, self.top_k, axis=-1)

        if self.drop_policy is DropPolicy.SCORE_THRESHOLD:
            # DeepSpeed-MoE: assignments whose raw routing score is negative
            # are dropped outright even if capacity remains.
            raw = np.take_along_axis(logits.data, top_experts, axis=-1)
            drop_eligible = raw < 0.0
        else:
            drop_eligible = np.zeros_like(top_experts, dtype=bool)

        aux_loss = self._load_balancing_loss(probs, top_experts)
        return GateOutput(
            logits=logits,
            probs=probs,
            top_experts=top_experts,
            top_scores=top_scores,
            drop_eligible=drop_eligible,
            aux_loss=aux_loss,
        )

    # ------------------------------------------------------------------
    def _load_balancing_loss(self, probs: Tensor, top_experts: np.ndarray) -> Tensor:
        """Switch-Transformer load-balancing loss: ``E * sum(f_e * P_e)``.

        ``f_e`` is the fraction of (token, slot) assignments routed to expert
        ``e`` and ``P_e`` the mean router probability of expert ``e``.
        """
        s = probs.shape[0]
        counts = np.bincount(
            top_experts.reshape(-1), minlength=self.num_experts
        ).astype(np.float64)
        fraction = counts / max(1, top_experts.size)
        mean_probs = probs.mean(axis=0)  # [E]
        weighted = mean_probs * Tensor(fraction)
        return weighted.sum() * (self.aux_loss_coef * self.num_experts)

    # ------------------------------------------------------------------
    def expert_load(self, top_experts: np.ndarray) -> np.ndarray:
        """Tokens routed to each expert (histogram over all k slots)."""
        return np.bincount(top_experts.reshape(-1), minlength=self.num_experts)
