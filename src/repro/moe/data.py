"""Synthetic language-modelling data.

The paper trains on real corpora we do not have; the loss-validation
experiment only needs a learnable next-token distribution, so we generate
sequences from a first-order Markov chain over a Zipf-distributed vocabulary.
The chain has genuine structure (each token strongly prefers a small set of
successors), so the LM loss drops substantially during training, mirroring
the shape of Fig. 15.
"""

from __future__ import annotations

import numpy as np


def zipf_token_batch(
    rng: np.random.Generator, vocab_size: int, seq_length: int, *, alpha: float = 1.2
) -> np.ndarray:
    """A single sequence of Zipf-distributed token ids (no structure)."""
    if vocab_size <= 1:
        raise ValueError("vocab_size must be > 1")
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    probs = ranks**-alpha
    probs /= probs.sum()
    return rng.choice(vocab_size, size=seq_length, p=probs).astype(np.int64)


class SyntheticLMDataset:
    """Markov-chain synthetic corpus with Zipf-distributed marginals."""

    def __init__(
        self,
        vocab_size: int,
        seq_length: int,
        *,
        seed: int = 0,
        alpha: float = 1.1,
        branching: int = 4,
    ):
        if branching < 1:
            raise ValueError("branching must be >= 1")
        self.vocab_size = vocab_size
        self.seq_length = seq_length
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
        self._marginal = ranks**-alpha
        self._marginal /= self._marginal.sum()
        # Each token deterministically prefers `branching` successors chosen
        # at dataset-construction time: this is the learnable structure.
        self._successors = self._rng.integers(
            0, vocab_size, size=(vocab_size, branching)
        )
        self._successor_probs = np.full(branching, 0.9 / branching)

    def sample_sequence(self) -> np.ndarray:
        """Sample one ``[seq_length]`` token-id sequence."""
        seq = np.empty(self.seq_length, dtype=np.int64)
        seq[0] = self._rng.choice(self.vocab_size, p=self._marginal)
        for t in range(1, self.seq_length):
            prev = seq[t - 1]
            if self._rng.random() < 0.9:
                choice = self._rng.integers(0, self._successors.shape[1])
                seq[t] = self._successors[prev, choice]
            else:
                seq[t] = self._rng.choice(self.vocab_size, p=self._marginal)
        return seq

    def sample_batch(self, batch_size: int) -> np.ndarray:
        """Sample a ``[batch_size, seq_length]`` batch."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return np.stack([self.sample_sequence() for _ in range(batch_size)], axis=0)

    def __iter__(self):
        while True:
            yield self.sample_sequence()
