"""MoE model substrate: gating, experts, transformer blocks, synthetic data.

This package contains the *model* side of the reproduction — everything a
training system (the baselines in :mod:`repro.baselines` or X-MoE in
:mod:`repro.xmoe`) operates on:

* :mod:`repro.moe.gating` — top-k gating with load-balancing auxiliary loss
  and the two token-dropping policies the paper contrasts in §5.6.
* :mod:`repro.moe.experts` — banks of fine-grained expert FFNs.
* :mod:`repro.moe.blocks` — dense attention / FFN / layer-norm blocks.
* :mod:`repro.moe.transformer` — a small MoE transformer LM whose MoE layer
  implementation is pluggable (padded baseline vs padding-free X-MoE).
* :mod:`repro.moe.data` — synthetic Zipf-distributed language-modelling data.
"""

from repro.moe.gating import TopKGate, GateOutput, DropPolicy
from repro.moe.experts import ExpertBank
from repro.moe.blocks import Linear, LayerNorm, CausalSelfAttention, DenseFFN
from repro.moe.transformer import MoETransformerLM, TransformerConfig
from repro.moe.data import SyntheticLMDataset, zipf_token_batch

__all__ = [
    "TopKGate",
    "GateOutput",
    "DropPolicy",
    "ExpertBank",
    "Linear",
    "LayerNorm",
    "CausalSelfAttention",
    "DenseFFN",
    "MoETransformerLM",
    "TransformerConfig",
    "SyntheticLMDataset",
    "zipf_token_batch",
]
