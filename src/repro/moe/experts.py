"""Banks of fine-grained expert FFNs.

An :class:`ExpertBank` holds the weights of all (local) experts of one MoE
layer as stacked arrays ``w1: [E, H, F]`` and ``w2: [E, F, H]`` so that both
execution styles the paper compares can run on the same weights:

* **Padded batched matmul** (baseline): a single ``[E, C, H] @ [E, H, F]``
  batched GEMM over fixed-capacity buffers, zero-padding included.
* **Sequential GEMM** (X-MoE, §4.1.2): one GEMM per expert over exactly the
  tokens routed to it, no padding.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.autograd import Tensor
from repro.tensor import ops


class ExpertBank:
    """Weights and execution helpers for the experts of one MoE layer."""

    def __init__(
        self,
        num_experts: int,
        hidden_size: int,
        ffn_hidden_size: int,
        *,
        rng: np.random.Generator | None = None,
        activation: str = "silu",
    ):
        if num_experts <= 0:
            raise ValueError("num_experts must be positive")
        rng = rng or np.random.default_rng(0)
        self.num_experts = num_experts
        self.hidden_size = hidden_size
        self.ffn_hidden_size = ffn_hidden_size
        self.activation = activation
        std_in = 1.0 / np.sqrt(hidden_size)
        std_out = 1.0 / np.sqrt(ffn_hidden_size)
        self.w1 = Tensor(
            rng.normal(0.0, std_in, size=(num_experts, hidden_size, ffn_hidden_size)),
            requires_grad=True,
        )
        self.w2 = Tensor(
            rng.normal(0.0, std_out, size=(num_experts, ffn_hidden_size, hidden_size)),
            requires_grad=True,
        )

    def parameters(self) -> list[Tensor]:
        return [self.w1, self.w2]

    @property
    def params_per_expert(self) -> int:
        return 2 * self.hidden_size * self.ffn_hidden_size

    def _activate(self, x: Tensor) -> Tensor:
        if self.activation == "silu":
            return ops.silu(x)
        if self.activation == "relu":
            return ops.relu(x)
        if self.activation == "gelu":
            return ops.gelu(x)
        raise ValueError(f"unknown activation {self.activation!r}")

    # ------------------------------------------------------------------
    def forward_expert(self, expert_id: int, tokens: Tensor) -> Tensor:
        """Run a single expert's two-layer FFN over ``tokens`` ``[n, H]``."""
        if not (0 <= expert_id < self.num_experts):
            raise ValueError(f"expert_id {expert_id} out of range")
        h = tokens @ self.w1[expert_id]
        h = self._activate(h)
        return h @ self.w2[expert_id]

    def forward_padded(self, expert_inputs: Tensor) -> Tensor:
        """Batched execution over fixed-capacity buffers ``[E, C, H]``.

        Zero-padded rows produce zero outputs (before bias-free projections),
        reproducing the baseline's wasted FLOPs without changing results.
        """
        if expert_inputs.ndim != 3 or expert_inputs.shape[0] != self.num_experts:
            raise ValueError(
                f"expected [E={self.num_experts}, C, H] inputs, got {expert_inputs.shape}"
            )
        h = expert_inputs @ self.w1  # [E, C, F]
        h = self._activate(h)
        return h @ self.w2  # [E, C, H]

    def forward_sequential(
        self, tokens: Tensor, tokens_per_expert: np.ndarray
    ) -> Tensor:
        """Sequential-GEMM execution over a padding-free token buffer.

        ``tokens`` is ``[B, H]`` with tokens grouped by expert id (ascending)
        and ``tokens_per_expert[e]`` gives each group's length.  Only experts
        with at least one token launch a GEMM, exactly like the loop in
        §4.1.2 of the paper.
        """
        tokens_per_expert = np.asarray(tokens_per_expert, dtype=np.int64)
        if tokens_per_expert.size != self.num_experts:
            raise ValueError(
                f"tokens_per_expert has {tokens_per_expert.size} entries, "
                f"expected {self.num_experts}"
            )
        if tokens_per_expert.sum() != tokens.shape[0]:
            raise ValueError(
                f"tokens_per_expert sums to {tokens_per_expert.sum()} but buffer "
                f"has {tokens.shape[0]} rows"
            )
        offsets = np.concatenate([[0], np.cumsum(tokens_per_expert)])
        outputs: list[Tensor] = []
        for e in range(self.num_experts):
            lo, hi = int(offsets[e]), int(offsets[e + 1])
            if hi == lo:
                continue
            outputs.append(self.forward_expert(e, tokens[lo:hi]))
        if not outputs:
            return Tensor(np.zeros((0, self.hidden_size)))
        return ops.concat(outputs, axis=0)
