"""A small MoE transformer language model with pluggable MoE pipelines.

The model exists to reproduce the loss-validation experiment (Fig. 15):
trained twice with bit-identical weights and data but two different MoE
*pipelines* — the zero-padded DeepSpeed-MoE style pipeline and X-MoE's
padding-free PFT pipeline — the two loss curves must closely track each
other, with X-MoE slightly lower late in training because its capacity-only
dropping policy retains more tokens.

The MoE pipeline is injected via ``moe_layer_factory``: a callable that
receives the per-layer :class:`~repro.moe.gating.TopKGate` and
:class:`~repro.moe.experts.ExpertBank` (already initialized, so weights are
shared between pipeline choices) plus the capacity factor, and returns an
object with ``__call__(tokens) -> (output, aux_loss)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.moe.blocks import CausalSelfAttention, LayerNorm, Linear
from repro.moe.experts import ExpertBank
from repro.moe.gating import DropPolicy, TopKGate
from repro.routing.policies import ROUTER_POLICY_NAMES, make_policy
from repro.tensor import ops
from repro.tensor.autograd import Tensor


class MoELayerProtocol(Protocol):
    """Interface a MoE pipeline must implement to plug into the model."""

    def __call__(self, tokens: Tensor) -> tuple[Tensor, Tensor]:
        """Process ``[S, H]`` tokens; return ``(output [S, H], aux_loss)``."""

    def parameters(self) -> list[Tensor]:
        """Trainable parameters owned by the pipeline (gate + experts)."""


MoELayerFactory = Callable[[TopKGate, ExpertBank, float], MoELayerProtocol]


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture of the tiny validation transformer.

    ``router`` names a registered :mod:`repro.routing.policies` policy; the
    default ``"softmax-topk"`` reproduces the legacy gate bit for bit (with
    ``drop_policy`` selecting its score-threshold knob), while any other
    name routes every MoE layer through that policy instead.
    """

    vocab_size: int = 512
    hidden_size: int = 64
    ffn_hidden_size: int = 32
    num_experts: int = 8
    top_k: int = 2
    num_layers: int = 2
    seq_length: int = 64
    capacity_factor: float = 1.25
    drop_policy: DropPolicy = DropPolicy.CAPACITY_ONLY
    aux_loss_coef: float = 0.01
    router: str = "softmax-topk"
    router_seed: int = 0

    def __post_init__(self) -> None:
        if self.top_k > self.num_experts:
            raise ValueError("top_k cannot exceed num_experts")
        if min(
            self.vocab_size,
            self.hidden_size,
            self.ffn_hidden_size,
            self.num_layers,
            self.seq_length,
        ) <= 0:
            raise ValueError("all transformer dimensions must be positive")
        if self.router not in ROUTER_POLICY_NAMES:
            raise ValueError(
                f"unknown router policy {self.router!r}; "
                f"available: {sorted(ROUTER_POLICY_NAMES)}"
            )


class _TransformerLayer:
    """One pre-norm transformer layer with an MoE FFN."""

    def __init__(
        self,
        config: TransformerConfig,
        rng: np.random.Generator,
        moe_layer_factory: MoELayerFactory,
    ):
        self.ln1 = LayerNorm(config.hidden_size)
        self.attn = CausalSelfAttention(config.hidden_size, rng)
        self.ln2 = LayerNorm(config.hidden_size)
        if config.router == "softmax-topk":
            # None lets TopKGate build the DropPolicy-matched default policy,
            # keeping this path bit-identical to the pre-policy gate.
            policy = None
        else:
            policy = make_policy(
                config.router,
                config.hidden_size,
                config.num_experts,
                config.top_k,
                capacity_factor=config.capacity_factor,
                aux_loss_coef=config.aux_loss_coef,
                seed=config.router_seed,
            )
        gate = TopKGate(
            config.hidden_size,
            config.num_experts,
            config.top_k,
            rng=rng,
            drop_policy=config.drop_policy,
            aux_loss_coef=config.aux_loss_coef,
            policy=policy,
        )
        experts = ExpertBank(
            config.num_experts,
            config.hidden_size,
            config.ffn_hidden_size,
            rng=rng,
        )
        self.moe = moe_layer_factory(gate, experts, config.capacity_factor)

    def __call__(self, x: Tensor) -> tuple[Tensor, Tensor]:
        x = x + self.attn(self.ln1(x))
        moe_out, aux = self.moe(self.ln2(x))
        return x + moe_out, aux

    def parameters(self) -> list[Tensor]:
        params = self.ln1.parameters() + self.attn.parameters() + self.ln2.parameters()
        params += self.moe.parameters()
        return params


class MoETransformerLM:
    """Decoder-only MoE language model on the autograd substrate."""

    def __init__(
        self,
        config: TransformerConfig,
        moe_layer_factory: MoELayerFactory,
        *,
        seed: int = 0,
    ):
        self.config = config
        rng = np.random.default_rng(seed)
        self.embedding = Tensor(
            rng.normal(0.0, 0.02, size=(config.vocab_size, config.hidden_size)),
            requires_grad=True,
        )
        self.layers = [
            _TransformerLayer(config, rng, moe_layer_factory)
            for _ in range(config.num_layers)
        ]
        self.final_ln = LayerNorm(config.hidden_size)
        self.lm_head = Linear(config.hidden_size, config.vocab_size, rng)

    def parameters(self) -> list[Tensor]:
        params = [self.embedding]
        for layer in self.layers:
            params.extend(layer.parameters())
        params.extend(self.final_ln.parameters())
        params.extend(self.lm_head.parameters())
        return params

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def forward(self, token_ids: np.ndarray) -> tuple[Tensor, Tensor]:
        """Forward a ``[S]`` token-id sequence; returns (logits, total aux loss)."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 1:
            raise ValueError(f"expected a 1-D token sequence, got shape {token_ids.shape}")
        x = ops.embedding(self.embedding, token_ids)
        total_aux = Tensor(np.zeros(()))
        for layer in self.layers:
            x, aux = layer(x)
            total_aux = total_aux + aux
        x = self.final_ln(x)
        logits = self.lm_head(x)
        return logits, total_aux

    def loss(self, token_ids: np.ndarray) -> tuple[Tensor, float]:
        """Next-token LM loss over a sequence; returns (loss tensor, lm loss value)."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        inputs, targets = token_ids[:-1], token_ids[1:]
        logits, aux = self.forward(inputs)
        lm_loss = ops.cross_entropy(logits, targets)
        total = lm_loss + aux
        return total, float(lm_loss.data)
