"""Dense transformer building blocks (non-MoE parts of the model).

The MoE transformer used for the loss-validation experiment needs embedding,
layer norm, causal self-attention, and a dense FFN; these are implemented on
the autograd substrate with deterministic initialization so two pipelines
can share bit-identical dense weights.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.autograd import Tensor
from repro.tensor import ops
from repro.tensor.init import ones_init, zeros_init


class Linear:
    """Bias-free linear projection ``y = x @ W``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        std = 1.0 / np.sqrt(in_features)
        self.weight = Tensor(
            rng.normal(0.0, std, size=(in_features, out_features)), requires_grad=True
        )

    def __call__(self, x: Tensor) -> Tensor:
        return x @ self.weight

    def parameters(self) -> list[Tensor]:
        return [self.weight]


class LayerNorm:
    """Layer normalization with learnable scale and offset."""

    def __init__(self, hidden_size: int):
        self.weight = ones_init((hidden_size,))
        self.bias = zeros_init((hidden_size,))

    def __call__(self, x: Tensor) -> Tensor:
        return ops.layer_norm(x, self.weight, self.bias)

    def parameters(self) -> list[Tensor]:
        return [self.weight, self.bias]


class CausalSelfAttention:
    """Single-head causal self-attention over a ``[S, H]`` sequence.

    A single head keeps the tiny validation model cheap; the performance
    model accounts for full multi-head attention FLOPs separately, so this
    simplification does not affect any reported number.
    """

    def __init__(self, hidden_size: int, rng: np.random.Generator):
        self.hidden_size = hidden_size
        self.q_proj = Linear(hidden_size, hidden_size, rng)
        self.k_proj = Linear(hidden_size, hidden_size, rng)
        self.v_proj = Linear(hidden_size, hidden_size, rng)
        self.o_proj = Linear(hidden_size, hidden_size, rng)

    def __call__(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError(f"expected [S, H] input, got {x.shape}")
        s = x.shape[0]
        q = self.q_proj(x)
        k = self.k_proj(x)
        v = self.v_proj(x)
        scores = (q @ k.T) * (1.0 / np.sqrt(self.hidden_size))
        # Additive causal mask.
        mask = np.triu(np.full((s, s), -1e9), k=1)
        scores = scores + Tensor(mask)
        attn = ops.softmax(scores, axis=-1)
        out = attn @ v
        return self.o_proj(out)

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for proj in (self.q_proj, self.k_proj, self.v_proj, self.o_proj):
            params.extend(proj.parameters())
        return params


class DenseFFN:
    """Standard two-layer FFN used in non-MoE layers."""

    def __init__(self, hidden_size: int, ffn_hidden_size: int, rng: np.random.Generator):
        self.up = Linear(hidden_size, ffn_hidden_size, rng)
        self.down = Linear(ffn_hidden_size, hidden_size, rng)

    def __call__(self, x: Tensor) -> Tensor:
        return self.down(ops.silu(self.up(x)))

    def parameters(self) -> list[Tensor]:
        return self.up.parameters() + self.down.parameters()
