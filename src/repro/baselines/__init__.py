"""Baseline MoE training systems the paper compares against.

Each baseline reproduces the *algorithmic* behaviour of the corresponding
system's MoE layer — how tokens are dispatched, how much padding is
created, which dtype the combine buffer uses, how the model is sharded —
because those properties (not CUDA kernel details) are what the paper's
comparisons measure.

* :mod:`repro.baselines.deepspeed_moe` — GShard-style dense dispatch mask,
  fixed expert capacity with zero padding, even all-to-all, and the
  negative-score token-dropping policy (§5.6).
* :mod:`repro.baselines.tutel` — the Tutel variant: same padded pipeline
  plus the fp32 combine buffer it forces on AMD GPUs (Table 4) and an
  adaptive parallelism switch.
* :mod:`repro.baselines.ted` — DeepSpeed-TED: tensor-expert-data three-way
  sharding description used by the memory/throughput models.
* :mod:`repro.baselines.megablocks` — block-sparse dispatch that pads each
  expert's token group to a block-size multiple.
"""

from repro.baselines.deepspeed_moe import PaddedMoELayer, PaddedDispatchStats
from repro.baselines.tutel import TutelMoELayer
from repro.baselines.ted import TEDShardingModel
from repro.baselines.megablocks import MegablocksDispatcher, BlockPaddingStats

__all__ = [
    "PaddedMoELayer",
    "PaddedDispatchStats",
    "TutelMoELayer",
    "TEDShardingModel",
    "MegablocksDispatcher",
    "BlockPaddingStats",
]
