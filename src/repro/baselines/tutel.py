"""Tutel-style MoE layer.

Tutel uses the same capacity-padded pipeline as DeepSpeed-MoE but with two
behaviours that matter for the paper's measurements:

* On AMD GPUs its kernels force the combine buffer (``A_combine``) to
  float32, doubling that activation's memory relative to bf16 (Table 4
  attributes Tutel's 1.95 GB vs the 1.21 GB of X-MoE partly to this).
* It switches adaptively between data- and tensor-parallel execution of the
  experts depending on load; for the throughput model this translates into a
  modestly better achievable-FLOPs fraction than DeepSpeed-MoE (Fig. 9 shows
  Tutel as the strongest baseline).

Functionally the layer produces the same outputs as the padded baseline; the
numerical pipeline is shared via inheritance and only the accounting
constants change.
"""

from __future__ import annotations

from repro.baselines.deepspeed_moe import PaddedMoELayer
from repro.moe.experts import ExpertBank
from repro.moe.gating import TopKGate


class TutelMoELayer(PaddedMoELayer):
    """Padded MoE layer with Tutel's fp32-combine and adaptive execution."""

    #: Relative speedup of Tutel's fused kernels over the plain einsum
    #: pipeline, used by the throughput model (not by the functional path).
    kernel_efficiency_factor: float = 1.35

    def __init__(
        self,
        gate: TopKGate,
        experts: ExpertBank,
        capacity_factor: float = 1.25,
        *,
        on_amd: bool = True,
    ):
        # On AMD, Tutel's combine buffer is fp32 (4 bytes); elsewhere bf16.
        combine_bytes = 4 if on_amd else 2
        super().__init__(
            gate, experts, capacity_factor, combine_dtype_bytes=combine_bytes
        )
        self.on_amd = on_amd

    def combine_buffer_bytes(self) -> int:
        """Bytes of the combine-stage activation for the last forward call."""
        if self.last_stats is None:
            raise RuntimeError("call the layer before asking for buffer sizes")
        stats = self.last_stats
        return (
            stats.padded_slots * stats.hidden_size * self.combine_dtype_bytes
        )
