"""Megablocks-style block-sparse dispatcher.

Megablocks avoids token dropping by representing expert computation as
block-sparse matrix multiplication, but its kernels require each expert's
token group to be padded up to a multiple of the GEMM block size (typically
128 rows).  For conventional MoEs this padding is negligible; for
expert-specialized MoEs with hundreds of small experts the per-expert
groups are short, so rounding every group up to the block size re-creates a
large padding overhead (§2 "Existing MoE Training Frameworks").

:class:`MegablocksDispatcher` reproduces that accounting and provides a
functional grouped execution path so its outputs can be checked against the
padding-free pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.moe.experts import ExpertBank
from repro.moe.gating import TopKGate
from repro.tensor import ops
from repro.tensor.autograd import Tensor


@dataclass
class BlockPaddingStats:
    """Padding introduced by rounding expert groups to block multiples."""

    block_size: int
    real_rows: int
    padded_rows: int

    @property
    def padding_fraction(self) -> float:
        if self.padded_rows == 0:
            return 0.0
        return 1.0 - self.real_rows / self.padded_rows

    @property
    def wasted_rows(self) -> int:
        return self.padded_rows - self.real_rows


class MegablocksDispatcher:
    """Groups tokens by expert and pads every group to a block multiple."""

    def __init__(
        self,
        gate: TopKGate,
        experts: ExpertBank,
        capacity_factor: float = 1.25,
        *,
        block_size: int = 128,
    ):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if gate.num_experts != experts.num_experts:
            raise ValueError("gate and expert bank disagree on the expert count")
        self.gate = gate
        self.experts = experts
        self.block_size = block_size
        self.last_stats: BlockPaddingStats | None = None
        self._step = 0  # decorrelates router exploration noise across calls

    def parameters(self) -> list[Tensor]:
        return self.gate.parameters() + self.experts.parameters()

    # ------------------------------------------------------------------
    def plan(self, top_experts: np.ndarray) -> tuple[np.ndarray, np.ndarray, BlockPaddingStats]:
        """Sort ``[S, k]`` assignments by expert and compute block padding.

        Returns ``(sorted_token_idx, sorted_expert_idx, stats)``.
        """
        s, k = top_experts.shape
        token_idx = np.repeat(np.arange(s, dtype=np.int64), k)
        expert_idx = top_experts.reshape(-1).astype(np.int64)
        return self.plan_assignments(token_idx, expert_idx)

    def plan_assignments(
        self, token_idx: np.ndarray, expert_idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, BlockPaddingStats]:
        """Assignment-level :meth:`plan`: works for any router policy,
        including expert-choice routing's non-rectangular selections."""
        order = np.argsort(expert_idx, kind="stable")
        token_idx = token_idx[order]
        expert_idx = expert_idx[order]
        counts = np.bincount(expert_idx, minlength=self.gate.num_experts)
        padded_counts = (
            np.ceil(counts / self.block_size).astype(np.int64) * self.block_size
        )
        # Experts with zero tokens launch no blocks (no padding charged).
        padded_counts[counts == 0] = 0
        stats = BlockPaddingStats(
            block_size=self.block_size,
            real_rows=int(counts.sum()),
            padded_rows=int(padded_counts.sum()),
        )
        return token_idx, expert_idx, stats

    def __call__(self, tokens: Tensor) -> tuple[Tensor, Tensor]:
        """Functional forward (no-drop, block-padded grouped execution)."""
        gate_out = self.gate(tokens, step=self._step)
        self._step += 1
        s, h = tokens.shape
        if gate_out.decision is not None:
            # Megablocks itself never drops, but policy-level drops (switch
            # top-1's capacity rule) are routing decisions made upstream of
            # any dispatcher, so they are respected here too.  Empty for the
            # default policy, keeping the legacy path bit-identical.
            keep = ~gate_out.decision.dropped
            token_idx, expert_idx, stats = self.plan_assignments(
                gate_out.decision.token_ids[keep], gate_out.decision.expert_ids[keep]
            )
        else:
            token_idx, expert_idx, stats = self.plan(gate_out.top_experts)
        self.last_stats = stats

        counts = np.bincount(expert_idx, minlength=self.gate.num_experts)
        gathered = ops.gather_rows(tokens, token_idx)
        expert_out = self.experts.forward_sequential(gathered, counts)
        combine_weights = gate_out.probs[token_idx, expert_idx]
        output = ops.scatter_rows(expert_out, token_idx, s, weights=combine_weights)
        return output, gate_out.aux_loss

    # ------------------------------------------------------------------
    def padded_buffer_bytes(self, hidden_size: int, dtype_bytes: int = 2) -> int:
        """Bytes of the block-padded dispatch buffer for the last call."""
        if self.last_stats is None:
            raise RuntimeError("call the dispatcher before asking for buffer sizes")
        return self.last_stats.padded_rows * hidden_size * dtype_bytes
