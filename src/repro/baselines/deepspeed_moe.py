"""DeepSpeed-MoE / GShard style zero-padded MoE layer.

This is the conventional pipeline of §3.1 and Appendix B.1: the gate builds
a dense dispatch mapping, every expert gets a fixed-capacity ``C`` buffer,
unused slots are zero-padded, excess tokens are dropped, and the padded
``[E, C, H]`` buffers travel through an *even* all-to-all, the batched
expert GEMM, and a second even all-to-all.  Two properties matter for the
reproduction:

* the zero padding inflates both activation memory and communication volume
  (the padded buffer is ``E*C*H`` regardless of how many tokens are real);
* the token-dropping policy drops an assignment whose raw routing score is
  negative even if capacity remains (§5.6), which is why its loss curve sits
  slightly above X-MoE's.

:class:`PaddedMoELayer` is the single-process functional version used by the
loss-validation experiment and the kernel-level comparisons; the memory and
throughput models in :mod:`repro.xmoe` reuse its buffer-size accounting via
:class:`PaddedDispatchStats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.moe.experts import ExpertBank
from repro.moe.gating import GateOutput, TopKGate
from repro.tensor import ops
from repro.tensor.autograd import Tensor


@dataclass
class PaddedDispatchStats:
    """Bookkeeping from one padded dispatch."""

    num_tokens: int
    num_assignments: int
    capacity: int
    num_experts: int
    hidden_size: int
    kept_assignments: int
    dropped_by_score: int
    dropped_by_capacity: int
    dtype_bytes: int = 8

    @property
    def padded_slots(self) -> int:
        """Total expert-buffer slots allocated (``E * C``)."""
        return self.num_experts * self.capacity

    @property
    def padding_fraction(self) -> float:
        """Fraction of expert-buffer slots that hold zero padding."""
        if self.padded_slots == 0:
            return 0.0
        return 1.0 - self.kept_assignments / self.padded_slots

    @property
    def dispatch_buffer_bytes(self) -> int:
        """Bytes of the padded ``[E, C, H]`` dispatch buffer."""
        return self.padded_slots * self.hidden_size * self.dtype_bytes

    @property
    def dispatch_mask_bytes(self) -> int:
        """Bytes of the ``[S, E, C]`` dispatch mask the baseline materializes."""
        return self.num_tokens * self.num_experts * self.capacity * self.dtype_bytes

    @property
    def alltoall_bytes(self) -> int:
        """Bytes moved by one even all-to-all (the full padded buffer)."""
        return self.dispatch_buffer_bytes


def compute_capacity(num_tokens: int, top_k: int, num_experts: int, capacity_factor: float) -> int:
    """GShard expert capacity: ``ceil(c * S * k / E)``."""
    if num_tokens <= 0:
        raise ValueError("num_tokens must be positive")
    return max(1, math.ceil(capacity_factor * num_tokens * top_k / num_experts))


class PaddedMoELayer:
    """Single-process functional DeepSpeed-MoE style layer.

    Implements the :class:`~repro.moe.transformer.MoELayerProtocol` so it can
    be plugged into :class:`~repro.moe.transformer.MoETransformerLM`.
    """

    def __init__(
        self,
        gate: TopKGate,
        experts: ExpertBank,
        capacity_factor: float = 1.25,
        *,
        combine_dtype_bytes: int = 2,
    ):
        if gate.num_experts != experts.num_experts:
            raise ValueError("gate and expert bank disagree on the expert count")
        self.gate = gate
        self.experts = experts
        self.capacity_factor = capacity_factor
        self.combine_dtype_bytes = combine_dtype_bytes
        self.last_stats: PaddedDispatchStats | None = None
        self._step = 0  # decorrelates router exploration noise across calls

    def parameters(self) -> list[Tensor]:
        return self.gate.parameters() + self.experts.parameters()

    # ------------------------------------------------------------------
    def __call__(self, tokens: Tensor) -> tuple[Tensor, Tensor]:
        """Forward ``[S, H]`` tokens through gate → padded dispatch →
        batched experts → weighted combine."""
        gate_out = self.gate(tokens, step=self._step)
        self._step += 1
        s, h = tokens.shape
        e = self.gate.num_experts
        k = self.gate.top_k
        capacity = compute_capacity(s, k, e, self.capacity_factor)

        plan = self._plan_dispatch(gate_out, capacity)
        (token_idx, expert_idx, positions, dropped_score, dropped_cap) = plan

        dest_rows = expert_idx * capacity + positions
        gathered = ops.gather_rows(tokens, token_idx)
        dispatched_flat = ops.scatter_rows(gathered, dest_rows, e * capacity)
        dispatched = dispatched_flat.reshape(e, capacity, h)

        expert_out = self.experts.forward_padded(dispatched)
        expert_out_flat = expert_out.reshape(e * capacity, h)

        per_assignment = ops.gather_rows(expert_out_flat, dest_rows)
        combine_weights = gate_out.probs[token_idx, expert_idx]
        output = ops.scatter_rows(per_assignment, token_idx, s, weights=combine_weights)

        num_assignments = (
            gate_out.decision.num_assignments if gate_out.decision is not None else s * k
        )
        self.last_stats = PaddedDispatchStats(
            num_tokens=s,
            num_assignments=num_assignments,
            capacity=capacity,
            num_experts=e,
            hidden_size=h,
            kept_assignments=int(token_idx.size),
            dropped_by_score=int(dropped_score),
            dropped_by_capacity=int(dropped_cap),
        )
        return output, gate_out.aux_loss

    # ------------------------------------------------------------------
    def _plan_dispatch(self, gate_out: GateOutput, capacity: int):
        """Compute kept (token, expert, slot) assignments under the baseline's
        dropping rules: policy-level drops first (negative-score under the
        default router, capacity-factor under switch-top-1), then capacity in
        token order (GShard semantics).

        Works from the gate's :class:`RoutingDecision` when present — so any
        router policy, including assignment-level expert-choice routing, can
        drive the padded baseline; for the default policy the flat arrays
        equal the legacy ``[S, k]`` flattening bit for bit.
        """
        if gate_out.decision is not None:
            token_idx = gate_out.decision.token_ids
            expert_idx = gate_out.decision.expert_ids
            drop_score = gate_out.decision.dropped
        else:
            top_experts = gate_out.top_experts
            s, k = top_experts.shape
            token_idx = np.repeat(np.arange(s, dtype=np.int64), k)
            expert_idx = top_experts.reshape(-1).astype(np.int64)
            drop_score = gate_out.drop_eligible.reshape(-1)

        keep_after_score = ~drop_score
        dropped_score = int(drop_score.sum())

        token_idx = token_idx[keep_after_score]
        expert_idx = expert_idx[keep_after_score]

        # Position of each surviving assignment within its expert, in token
        # order (stable sort preserves token order inside each expert group).
        order = np.argsort(expert_idx, kind="stable")
        sorted_experts = expert_idx[order]
        counts = np.bincount(sorted_experts, minlength=self.gate.num_experts)
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        positions_sorted = np.arange(sorted_experts.size) - starts[sorted_experts]
        positions = np.empty_like(positions_sorted)
        positions[order] = positions_sorted

        within_capacity = positions < capacity
        dropped_cap = int((~within_capacity).sum())

        return (
            token_idx[within_capacity],
            expert_idx[within_capacity],
            positions[within_capacity],
            dropped_score,
            dropped_cap,
        )
