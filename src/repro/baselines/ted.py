"""DeepSpeed-TED: tensor-expert-data three-dimensional parallelism.

TED (Singh et al., ICS'23) combines ZeRO data parallelism, expert
parallelism, and Megatron-style tensor slicing of the expert FFNs.  The
paper's analysis (§4.3 and Appendix C.2) shows why this helps conventional
MoEs but not expert-specialized ones: TP slices the (already small) expert
intermediate dimension and the model states, but it does **not** reduce the
dominant ``A_dispatch`` / ``A_combine`` activations, because every TP rank
still holds a full copy of the input sequence.

:class:`TEDShardingModel` captures exactly that accounting so the memory
model can compare TED with SSMB (Fig. 13, Fig. 17, Eqs. 1–2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.model_config import MoEModelConfig
from repro.config.parallel_config import ParallelConfig


@dataclass(frozen=True)
class TEDShardingModel:
    """Per-device sharding factors under TED parallelism."""

    model: MoEModelConfig
    parallel: ParallelConfig

    @property
    def tp(self) -> int:
        return self.parallel.tp_size

    @property
    def ep(self) -> int:
        return self.parallel.ep_size

    # -- model state sharding -------------------------------------------
    def expert_params_per_device(self) -> float:
        """Expert parameters held per device: sliced by both EP and TP."""
        total = self.model.num_moe_layers * self.model.moe_layer_expert_params()
        return total / (self.ep * self.tp)

    def dense_params_per_device(self) -> float:
        """Non-expert parameters per device: sliced by TP."""
        dense = (
            self.model.num_layers * self.model.attention_params()
            + self.model.num_moe_layers * self.model.router_params()
            + self.model.num_dense_layers * self.model.dense_ffn_params()
            + self.model.embedding_params()
        )
        return dense / self.tp

    # -- activation sharding ---------------------------------------------
    def dispatch_activation_scale(self) -> float:
        """Scale factor applied to ``A_dispatch``/``A_combine`` per device.

        TED leaves these untouched: every TP rank duplicates the sequence, so
        the factor is 1.0 regardless of the TP degree.
        """
        return 1.0

    def interm_activation_scale(self) -> float:
        """Scale factor applied to the expert-FFN intermediate activations.

        TP slices the FFN hidden dimension, so the intermediates shrink by
        the TP degree.
        """
        return 1.0 / self.tp

    def extra_allreduce_bytes_per_layer(self, micro_tokens: int) -> float:
        """Extra TP all-reduce volume per MoE layer per micro-batch.

        Megatron-style TP needs an all-reduce of the ``[tokens, H]`` expert
        block output across the TP group (2(g-1)/g of the data).
        """
        if self.tp == 1:
            return 0.0
        payload = micro_tokens * self.model.hidden_size * self.model.dtype_bytes
        return 2.0 * payload * (self.tp - 1) / self.tp
