"""Calibration: scale the analytic models with measured micro-benchmarks.

The performance model's absolute numbers come from analytic constants
(kernel efficiencies, alpha-beta link parameters).  When the repo's own
micro-benchmarks have been run on the current machine, their JSON records
under ``benchmarks/results/`` carry *measured* seconds for the CPU-side
plan-construction work that the analytic model otherwise ignores entirely.
:func:`load_calibration` turns those records into a :class:`Calibration`
the evaluator folds into each candidate's step time:

* ``plan_build_seconds_per_assignment`` — measured dispatch-plan compile
  cost per (token, expert) assignment, per dispatch kind, from
  ``dispatch_plan_micro.json`` (the hierarchical planner reuses the RBD
  figure until it has its own record).
* ``route_seconds_per_assignment`` — measured batched route + PFT
  construction cost per assignment, from ``step_runtime_micro.json``
  (the :class:`repro.runtime.StepRuntime` micro-benchmark), pricing the
  CPU-side routing front half of every step.
* ``time_scale`` — a global multiplier on the modeled step time, taken
  from an optional ``model_time_scale`` key so a future measured-vs-modeled
  comparison can be fed back in.
* ``plan_cache_hit_rate`` / ``plan_cache_warm_cost_ratio`` — measured
  steady-state plan-cache behavior from ``plan_cache_micro.json``
  (the :class:`repro.routing.plan_cache.PlanCache` micro-benchmark):
  the fraction of steps that resolve warm and the relative cost of a warm
  resolve vs a cold build.  :meth:`Calibration.plan_overhead_seconds`
  discounts the per-step plan-build cost accordingly, so the evaluator
  stops over-charging workloads that would run against a warm cache.
* ``zero_overlap_ratio`` — measured fraction of the gradient-reduction
  communication the bucketed ZeRO reducer hides under backward compute,
  from the ``zero`` payload of ``zero_micro.json``
  (``benchmarks/test_zero_micro.py``).  The evaluator uses it to discount
  the performance model's fully-exposed ``grad_sync_time`` for candidates
  running ZeRO stage >= 1.

Records of different kinds merge: a results directory holding both the
dispatch-plan and the step-runtime record contributes both rates.
Everything degrades gracefully: a missing, unreadable, or partial record
is skipped with a warning (partially-written JSON happens when a benchmark
is interrupted mid-dump) and an empty directory yields
:meth:`Calibration.identity`, so the tuner never *requires* a benchmark
run.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path

#: default location of the micro-benchmark records (gitignored, machine-local).
DEFAULT_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


@dataclass(frozen=True)
class Calibration:
    """Measured corrections applied on top of the analytic cost models."""

    plan_build_seconds_per_assignment: dict[str, float] = field(default_factory=dict)
    route_seconds_per_assignment: float = 0.0
    time_scale: float = 1.0
    #: measured fraction of steps resolving warm against the plan cache
    #: (0.0 = no cache measured: full build cost charged every step).
    plan_cache_hit_rate: float = 0.0
    #: measured cost of a warm cache resolve relative to a cold plan build.
    plan_cache_warm_cost_ratio: float = 1.0
    #: measured fraction of gradient-reduction comm hidden under backward
    #: by the bucketed ZeRO reducer (0.0 = not measured: grad sync stays
    #: fully exposed, the analytic model's assumption).
    zero_overlap_ratio: float = 0.0
    source: str | None = None

    @classmethod
    def identity(cls) -> "Calibration":
        """The no-op calibration (analytic model used as-is)."""
        return cls()

    @property
    def is_identity(self) -> bool:
        """Whether this calibration changes nothing."""
        return (
            not self.plan_build_seconds_per_assignment
            and self.route_seconds_per_assignment == 0.0
            and self.time_scale == 1.0
            and self.plan_cache_hit_rate == 0.0
            and self.zero_overlap_ratio == 0.0
        )

    def grad_sync_exposed_fraction(self) -> float:
        """Fraction of modeled gradient-sync time left exposed per step.

        1.0 when no ZeRO micro-benchmark record was measured (the analytic
        model's fully-serial assumption); otherwise the complement of the
        measured overlap ratio, clamped to [0, 1].
        """
        ratio = min(max(self.zero_overlap_ratio, 0.0), 1.0)
        return 1.0 - ratio

    def route_overhead_seconds(self, assignments: float) -> float:
        """CPU-side routing (route + PFT) seconds for one step's assignments.

        Measured by ``benchmarks/test_step_runtime_micro.py`` as the batched
        :class:`repro.runtime.StepRuntime` front half; zero when that record
        has not been collected — like plan overhead, calibration only adds
        measured cost.
        """
        return self.route_seconds_per_assignment * assignments

    def plan_overhead_seconds(self, dispatch_kind: str, assignments: float) -> float:
        """CPU-side plan-build seconds for one plan over ``assignments`` rows.

        The hierarchical planner has no dedicated micro-benchmark record
        yet; it falls back to the RBD figure (both build two-stage split
        tables of comparable size), and anything unmeasured costs zero —
        calibration only ever *adds* measured overhead, never invents it.

        The measured plan-cache hit rate discounts the steady-state cost:
        a fraction ``hit_rate`` of steps pay only ``warm_cost_ratio`` of
        the cold build (hit rate 0 — no cache measured — charges the full
        build every step, exactly the pre-cache behavior).
        """
        per_assignment = self.plan_build_seconds_per_assignment.get(dispatch_kind)
        if per_assignment is None and dispatch_kind == "hier":
            per_assignment = self.plan_build_seconds_per_assignment.get("rbd")
        if per_assignment is None:
            return 0.0
        base = per_assignment * assignments
        hit_rate = min(max(self.plan_cache_hit_rate, 0.0), 1.0)
        ratio = max(self.plan_cache_warm_cost_ratio, 0.0)
        return base * ((1.0 - hit_rate) + hit_rate * ratio)


def _plan_cache_fields(record: dict) -> tuple[float, float] | None:
    """Extract ``(hit_rate, warm_cost_ratio)`` from a record, if present."""
    payload = record.get("plan_cache")
    if not isinstance(payload, dict):
        return None
    hit_rate = payload.get("hit_rate")
    ratio = payload.get("warm_cost_ratio")
    if not isinstance(hit_rate, (int, float)) or not 0.0 <= hit_rate <= 1.0:
        return None
    if not isinstance(ratio, (int, float)) or ratio < 0:
        return None
    return float(hit_rate), float(ratio)


def _zero_fields(record: dict, path: Path) -> float | None:
    """Extract the measured ZeRO overlap ratio from a record, if present.

    A record without a ``zero`` key is simply not a ZeRO record (returns
    ``None`` silently); a record *with* one that is malformed — wrong type,
    missing ``overlap_ratio``, value outside [0, 1] — is skipped with a
    warning so an interrupted benchmark dump never corrupts calibration.
    """
    payload = record.get("zero")
    if payload is None:
        return None
    if not isinstance(payload, dict):
        warnings.warn(
            f"skipping malformed zero payload in {path}: not a JSON object",
            stacklevel=2,
        )
        return None
    ratio = payload.get("overlap_ratio")
    if not isinstance(ratio, (int, float)) or not 0.0 <= ratio <= 1.0:
        warnings.warn(
            f"skipping malformed zero payload in {path}: "
            f"overlap_ratio {ratio!r} not in [0, 1]",
            stacklevel=2,
        )
        return None
    return float(ratio)


def _record_fields(
    path: Path,
) -> tuple[dict, float, float, tuple | None, float | None] | None:
    """Parse one JSON record into (plan rates, route rate, scale, cache).

    Understands the record shapes of the ``benchmarks/results/`` family:
    ``dispatch_plan_micro.json`` (per-kind plan-build seconds),
    ``step_runtime_micro.json`` (batched route + PFT seconds),
    ``plan_cache_micro.json`` (steady-state hit rate + warm cost ratio),
    and ``zero_micro.json`` (measured grad-reduction overlap ratio).
    Returns ``None`` when the file holds none of those; a malformed or
    partially-written file (interrupted benchmark dump, truncated JSON,
    non-object payload) is skipped with a warning instead of raising, so
    one bad record never takes down calibration for the rest.
    """
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        warnings.warn(
            f"skipping unreadable benchmark record {path}: {exc}",
            stacklevel=2,
        )
        return None
    if not isinstance(record, dict):
        warnings.warn(
            f"skipping malformed benchmark record {path}: not a JSON object",
            stacklevel=2,
        )
        return None
    seconds = record.get("seconds", {})
    workload = record.get("workload", {})
    if not isinstance(seconds, dict) or not isinstance(workload, dict):
        warnings.warn(
            f"skipping malformed benchmark record {path}: bad seconds/workload",
            stacklevel=2,
        )
        return None
    plan_cache = _plan_cache_fields(record)
    zero_ratio = _zero_fields(record, path)
    assignments = workload.get("assignments")
    if not isinstance(assignments, (int, float)) or assignments <= 0:
        if plan_cache is None and zero_ratio is None:
            return None
        assignments = 0.0
    per_assignment: dict[str, float] = {}
    route_rate = 0.0
    if assignments > 0:
        for kind, key in (("flat", "flat_plan_build"), ("rbd", "rbd_plan_build")):
            value = seconds.get(key)
            if isinstance(value, (int, float)) and value > 0:
                per_assignment[kind] = float(value) / float(assignments)
        route_value = seconds.get("batched_route_pft")
        if isinstance(route_value, (int, float)) and route_value > 0:
            route_rate = float(route_value) / float(assignments)
    if not per_assignment and not route_rate and plan_cache is None and zero_ratio is None:
        return None
    scale = record.get("model_time_scale", 1.0)
    if not isinstance(scale, (int, float)) or scale <= 0:
        scale = 1.0
    return per_assignment, route_rate, float(scale), plan_cache, zero_ratio


def load_calibration(path: str | Path | None = None) -> Calibration:
    """Load measured constants from ``benchmarks/results/`` (or a file).

    ``path`` may point at a specific JSON record or at a directory of them
    (the default: the repo's ``benchmarks/results/``).  Records of
    different kinds merge — the dispatch-plan record contributes plan-build
    rates, the step-runtime record the routing rate; within one kind the
    first usable record (sorted filename order) wins.  Returns
    :meth:`Calibration.identity` when nothing usable is found — the tuner
    works uncalibrated everywhere the benchmarks have not been run.
    """
    root = Path(path) if path is not None else DEFAULT_RESULTS_DIR
    if root.is_file():
        paths = [root]
    elif root.is_dir():
        paths = sorted(root.glob("*.json"))
    else:
        return Calibration.identity()

    plan_rates: dict[str, float] = {}
    route_rate = 0.0
    time_scale = 1.0
    cache_fields: tuple | None = None
    zero_ratio: float | None = None
    sources: list[str] = []
    for record_path in paths:
        fields = _record_fields(record_path)
        if fields is None:
            continue
        per_assignment, record_route, scale, record_cache, record_zero = fields
        used = False
        if per_assignment and not plan_rates:
            plan_rates = per_assignment
            used = True
        if record_route and not route_rate:
            route_rate = record_route
            used = True
        if record_cache is not None and cache_fields is None:
            cache_fields = record_cache
            used = True
        if record_zero is not None and zero_ratio is None:
            zero_ratio = record_zero
            used = True
        if used:
            # Any used record may carry model_time_scale; the first
            # *non-default* value wins (records without the key read 1.0).
            if time_scale == 1.0 and scale != 1.0:
                time_scale = scale
            sources.append(str(record_path))
    if not plan_rates and not route_rate and cache_fields is None and zero_ratio is None:
        return Calibration.identity()
    hit_rate, warm_ratio = cache_fields if cache_fields is not None else (0.0, 1.0)
    return Calibration(
        plan_build_seconds_per_assignment=plan_rates,
        route_seconds_per_assignment=route_rate,
        time_scale=time_scale,
        plan_cache_hit_rate=hit_rate,
        plan_cache_warm_cost_ratio=warm_ratio,
        zero_overlap_ratio=zero_ratio if zero_ratio is not None else 0.0,
        source="; ".join(sources),
    )
