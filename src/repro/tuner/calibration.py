"""Calibration: scale the analytic models with measured micro-benchmarks.

The performance model's absolute numbers come from analytic constants
(kernel efficiencies, alpha-beta link parameters).  When the repo's own
micro-benchmarks have been run on the current machine, their JSON records
under ``benchmarks/results/`` carry *measured* seconds for the CPU-side
plan-construction work that the analytic model otherwise ignores entirely.
:func:`load_calibration` turns those records into a :class:`Calibration`
the evaluator folds into each candidate's step time:

* ``plan_build_seconds_per_assignment`` — measured dispatch-plan compile
  cost per (token, expert) assignment, per dispatch kind, from
  ``dispatch_plan_micro.json`` (the hierarchical planner reuses the RBD
  figure until it has its own record).
* ``time_scale`` — a global multiplier on the modeled step time, taken
  from an optional ``model_time_scale`` key so a future measured-vs-modeled
  comparison can be fed back in.

Everything degrades gracefully: a missing, unreadable, or partial record
yields :meth:`Calibration.identity`, so the tuner never *requires* a
benchmark run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: default location of the micro-benchmark records (gitignored, machine-local).
DEFAULT_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


@dataclass(frozen=True)
class Calibration:
    """Measured corrections applied on top of the analytic cost models."""

    plan_build_seconds_per_assignment: dict[str, float] = field(default_factory=dict)
    time_scale: float = 1.0
    source: str | None = None

    @classmethod
    def identity(cls) -> "Calibration":
        """The no-op calibration (analytic model used as-is)."""
        return cls()

    @property
    def is_identity(self) -> bool:
        """Whether this calibration changes nothing."""
        return not self.plan_build_seconds_per_assignment and self.time_scale == 1.0

    def plan_overhead_seconds(self, dispatch_kind: str, assignments: float) -> float:
        """CPU-side plan-build seconds for one plan over ``assignments`` rows.

        The hierarchical planner has no dedicated micro-benchmark record
        yet; it falls back to the RBD figure (both build two-stage split
        tables of comparable size), and anything unmeasured costs zero —
        calibration only ever *adds* measured overhead, never invents it.
        """
        per_assignment = self.plan_build_seconds_per_assignment.get(dispatch_kind)
        if per_assignment is None and dispatch_kind == "hier":
            per_assignment = self.plan_build_seconds_per_assignment.get("rbd")
        if per_assignment is None:
            return 0.0
        return per_assignment * assignments


def _micro_record(path: Path) -> Calibration | None:
    """Parse one ``dispatch_plan_micro.json``-shaped record, or ``None``."""
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    seconds = record.get("seconds", {})
    workload = record.get("workload", {})
    assignments = workload.get("assignments")
    if not isinstance(assignments, (int, float)) or assignments <= 0:
        return None
    per_assignment: dict[str, float] = {}
    for kind, key in (("flat", "flat_plan_build"), ("rbd", "rbd_plan_build")):
        value = seconds.get(key)
        if isinstance(value, (int, float)) and value > 0:
            per_assignment[kind] = float(value) / float(assignments)
    if not per_assignment:
        return None
    scale = record.get("model_time_scale", 1.0)
    if not isinstance(scale, (int, float)) or scale <= 0:
        scale = 1.0
    return Calibration(
        plan_build_seconds_per_assignment=per_assignment,
        time_scale=float(scale),
        source=str(path),
    )


def load_calibration(path: str | Path | None = None) -> Calibration:
    """Load measured constants from ``benchmarks/results/`` (or a file).

    ``path`` may point at a specific JSON record or at a directory of them
    (the default: the repo's ``benchmarks/results/``).  Returns
    :meth:`Calibration.identity` when nothing usable is found — the tuner
    works uncalibrated everywhere the benchmarks have not been run.
    """
    root = Path(path) if path is not None else DEFAULT_RESULTS_DIR
    if root.is_file():
        return _micro_record(root) or Calibration.identity()
    if root.is_dir():
        for record_path in sorted(root.glob("*.json")):
            calibration = _micro_record(record_path)
            if calibration is not None:
                return calibration
    return Calibration.identity()
