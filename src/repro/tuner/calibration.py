"""Calibration: scale the analytic models with measured micro-benchmarks.

The performance model's absolute numbers come from analytic constants
(kernel efficiencies, alpha-beta link parameters).  When the repo's own
micro-benchmarks have been run on the current machine, their JSON records
under ``benchmarks/results/`` carry *measured* seconds for the CPU-side
plan-construction work that the analytic model otherwise ignores entirely.
:func:`load_calibration` turns those records into a :class:`Calibration`
the evaluator folds into each candidate's step time:

* ``plan_build_seconds_per_assignment`` — measured dispatch-plan compile
  cost per (token, expert) assignment, per dispatch kind, from
  ``dispatch_plan_micro.json`` (the hierarchical planner reuses the RBD
  figure until it has its own record).
* ``route_seconds_per_assignment`` — measured batched route + PFT
  construction cost per assignment, from ``step_runtime_micro.json``
  (the :class:`repro.runtime.StepRuntime` micro-benchmark), pricing the
  CPU-side routing front half of every step.
* ``time_scale`` — a global multiplier on the modeled step time, taken
  from an optional ``model_time_scale`` key so a future measured-vs-modeled
  comparison can be fed back in.

Records of different kinds merge: a results directory holding both the
dispatch-plan and the step-runtime record contributes both rates.
Everything degrades gracefully: a missing, unreadable, or partial record
yields :meth:`Calibration.identity`, so the tuner never *requires* a
benchmark run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: default location of the micro-benchmark records (gitignored, machine-local).
DEFAULT_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


@dataclass(frozen=True)
class Calibration:
    """Measured corrections applied on top of the analytic cost models."""

    plan_build_seconds_per_assignment: dict[str, float] = field(default_factory=dict)
    route_seconds_per_assignment: float = 0.0
    time_scale: float = 1.0
    source: str | None = None

    @classmethod
    def identity(cls) -> "Calibration":
        """The no-op calibration (analytic model used as-is)."""
        return cls()

    @property
    def is_identity(self) -> bool:
        """Whether this calibration changes nothing."""
        return (
            not self.plan_build_seconds_per_assignment
            and self.route_seconds_per_assignment == 0.0
            and self.time_scale == 1.0
        )

    def route_overhead_seconds(self, assignments: float) -> float:
        """CPU-side routing (route + PFT) seconds for one step's assignments.

        Measured by ``benchmarks/test_step_runtime_micro.py`` as the batched
        :class:`repro.runtime.StepRuntime` front half; zero when that record
        has not been collected — like plan overhead, calibration only adds
        measured cost.
        """
        return self.route_seconds_per_assignment * assignments

    def plan_overhead_seconds(self, dispatch_kind: str, assignments: float) -> float:
        """CPU-side plan-build seconds for one plan over ``assignments`` rows.

        The hierarchical planner has no dedicated micro-benchmark record
        yet; it falls back to the RBD figure (both build two-stage split
        tables of comparable size), and anything unmeasured costs zero —
        calibration only ever *adds* measured overhead, never invents it.
        """
        per_assignment = self.plan_build_seconds_per_assignment.get(dispatch_kind)
        if per_assignment is None and dispatch_kind == "hier":
            per_assignment = self.plan_build_seconds_per_assignment.get("rbd")
        if per_assignment is None:
            return 0.0
        return per_assignment * assignments


def _record_fields(path: Path) -> tuple[dict, float, float] | None:
    """Parse one JSON record into (plan rates, route rate, time scale).

    Understands both record shapes of the ``benchmarks/results/`` family:
    ``dispatch_plan_micro.json`` (per-kind plan-build seconds) and
    ``step_runtime_micro.json`` (batched route + PFT seconds).  Returns
    ``None`` when the file holds neither.
    """
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    seconds = record.get("seconds", {})
    workload = record.get("workload", {})
    assignments = workload.get("assignments")
    if not isinstance(assignments, (int, float)) or assignments <= 0:
        return None
    per_assignment: dict[str, float] = {}
    for kind, key in (("flat", "flat_plan_build"), ("rbd", "rbd_plan_build")):
        value = seconds.get(key)
        if isinstance(value, (int, float)) and value > 0:
            per_assignment[kind] = float(value) / float(assignments)
    route_rate = 0.0
    route_value = seconds.get("batched_route_pft")
    if isinstance(route_value, (int, float)) and route_value > 0:
        route_rate = float(route_value) / float(assignments)
    if not per_assignment and not route_rate:
        return None
    scale = record.get("model_time_scale", 1.0)
    if not isinstance(scale, (int, float)) or scale <= 0:
        scale = 1.0
    return per_assignment, route_rate, float(scale)


def load_calibration(path: str | Path | None = None) -> Calibration:
    """Load measured constants from ``benchmarks/results/`` (or a file).

    ``path`` may point at a specific JSON record or at a directory of them
    (the default: the repo's ``benchmarks/results/``).  Records of
    different kinds merge — the dispatch-plan record contributes plan-build
    rates, the step-runtime record the routing rate; within one kind the
    first usable record (sorted filename order) wins.  Returns
    :meth:`Calibration.identity` when nothing usable is found — the tuner
    works uncalibrated everywhere the benchmarks have not been run.
    """
    root = Path(path) if path is not None else DEFAULT_RESULTS_DIR
    if root.is_file():
        paths = [root]
    elif root.is_dir():
        paths = sorted(root.glob("*.json"))
    else:
        return Calibration.identity()

    plan_rates: dict[str, float] = {}
    route_rate = 0.0
    time_scale = 1.0
    sources: list[str] = []
    for record_path in paths:
        fields = _record_fields(record_path)
        if fields is None:
            continue
        per_assignment, record_route, scale = fields
        used = False
        if per_assignment and not plan_rates:
            plan_rates = per_assignment
            used = True
        if record_route and not route_rate:
            route_rate = record_route
            used = True
        if used:
            # Any used record may carry model_time_scale; the first
            # *non-default* value wins (records without the key read 1.0).
            if time_scale == 1.0 and scale != 1.0:
                time_scale = scale
            sources.append(str(record_path))
    if not plan_rates and not route_rate:
        return Calibration.identity()
    return Calibration(
        plan_build_seconds_per_assignment=plan_rates,
        route_seconds_per_assignment=route_rate,
        time_scale=time_scale,
        source="; ".join(sources),
    )
