"""Candidate enumeration: the parallel-plan search space.

A :class:`SearchSpace` turns a ``(SystemSpec, MoEModelConfig, token
budget)`` triple into the stream of :class:`TuningCandidate` objects the
evaluator scores.  Each candidate is one complete training plan — a
:class:`~repro.config.parallel_config.ParallelConfig` (EP/TP/ZeRO degrees,
SSMB, the dispatch strategy, placement order, micro-batch) plus the two
knobs that live on the model side (router policy and capacity factor).

Enumeration applies the *structural* constraints up front — divisibility of
world size by TP/EP, expert count by EP, global batch by DP, TP confined to
a node — plus any caller-supplied predicates.  Device-memory feasibility is
deliberately **not** checked here: that is the evaluator's pruning step,
driven by :class:`~repro.xmoe.memory_model.MoEMemoryModel`, so infeasible
candidates still show up (as prunes) in the tuning report's accounting.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.config.hardware import SystemSpec
from repro.config.model_config import MoEModelConfig
from repro.config.parallel_config import (
    DISPATCH_KINDS,
    ParallelConfig,
    PlacementOrder,
    ZeroStage,
)
from repro.routing.policies import ROUTER_POLICY_NAMES


@dataclass(frozen=True)
class TuningCandidate:
    """One complete training plan the tuner can score.

    ``parallel`` carries every layout decision (including the dispatch
    strategy, so :func:`~repro.xmoe.trainer.dispatcher_for_config` consumes
    it directly); ``router`` and ``capacity_factor`` override the model
    config via :meth:`model_for`, which is what
    :func:`~repro.xmoe.trainer.policy_for_config` consumes.
    """

    parallel: ParallelConfig
    router: str
    capacity_factor: float

    def model_for(self, base: MoEModelConfig) -> MoEModelConfig:
        """The model config this candidate trains: base + router/capacity."""
        return base.scaled(router=self.router, capacity_factor=self.capacity_factor)

    def describe(self) -> str:
        """One-line human-readable plan description."""
        return (
            f"{self.parallel.describe()} router={self.router} "
            f"cap={self.capacity_factor:g}"
        )


def _pow2_divisors(limit: int, bound: int) -> list[int]:
    """Powers of two up to ``bound`` that divide ``limit``."""
    out, d = [], 1
    while d <= bound:
        if limit % d == 0:
            out.append(d)
        d *= 2
    return out


@dataclass
class SearchSpace:
    """The cross-product of plan axes, filtered by structural constraints.

    Parameters
    ----------
    system:
        Cluster description (node shape decides which TP degrees stay
        intra-node and how many GPUs exist).
    model:
        Base model architecture; ``router`` / ``capacity_factor`` axes
        override its corresponding fields per candidate.
    tokens_per_step:
        The token budget per optimizer step.  Must be a multiple of the
        model's sequence length; the implied global batch size is
        ``tokens_per_step // seq_length`` sequences.
    world_size:
        GPUs to plan for (defaults to every GPU in ``system``).
    predicates:
        Extra constraint callables ``TuningCandidate -> bool``; a candidate
        failing any predicate is never emitted.

    The axis defaults cover EP (powers of two dividing both world size and
    expert count), TP (powers of two within a node), ZeRO {1, 2}, SSMB
    on/off for TP > 1, all three dispatch strategies, both placement
    orders, every registered router policy, and capacity factors
    {1.0, 1.25, 1.5}.
    """

    system: SystemSpec
    model: MoEModelConfig
    tokens_per_step: int
    world_size: int | None = None
    ep_options: list[int] | None = None
    tp_options: list[int] | None = None
    zero_options: list[ZeroStage] = field(
        default_factory=lambda: [ZeroStage.OPTIMIZER, ZeroStage.GRADIENTS]
    )
    dispatch_options: tuple[str, ...] = DISPATCH_KINDS
    placement_options: tuple[PlacementOrder, ...] = (
        PlacementOrder.DP_FIRST,
        PlacementOrder.EP_FIRST,
    )
    router_options: tuple[str, ...] = ROUTER_POLICY_NAMES
    capacity_factors: tuple[float, ...] = (1.0, 1.25, 1.5)
    micro_batch_options: tuple[int, ...] = (1,)
    predicates: list[Callable[[TuningCandidate], bool]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.world_size is None:
            self.world_size = self.system.total_gpus
        if not (1 <= self.world_size <= self.system.total_gpus):
            raise ValueError(
                f"world_size={self.world_size} out of range for "
                f"{self.system.name} ({self.system.total_gpus} GPUs)"
            )
        if self.tokens_per_step <= 0 or self.tokens_per_step % self.model.seq_length:
            raise ValueError(
                f"tokens_per_step={self.tokens_per_step} must be a positive "
                f"multiple of seq_length={self.model.seq_length}"
            )
        if self.ep_options is None:
            bound = min(self.world_size, self.model.num_experts)
            self.ep_options = [
                e
                for e in _pow2_divisors(self.world_size, bound)
                if self.model.num_experts % e == 0
            ]
        if self.tp_options is None:
            self.tp_options = _pow2_divisors(
                self.world_size, self.system.node.gpus_per_node
            )
        for router in self.router_options:
            if router not in ROUTER_POLICY_NAMES:
                raise ValueError(
                    f"unknown router policy {router!r}; "
                    f"available: {sorted(ROUTER_POLICY_NAMES)}"
                )

    # ------------------------------------------------------------------
    @property
    def global_batch_size(self) -> int:
        """Sequences per optimizer step implied by the token budget."""
        return self.tokens_per_step // self.model.seq_length

    def _structurally_valid(self, ep: int, tp: int, micro_batch: int) -> bool:
        """The divisibility constraints a layout must satisfy."""
        world = self.world_size
        if world % tp or world % ep:
            return False
        if self.model.num_experts % ep:
            return False
        dp = world // tp
        if self.global_batch_size % dp:
            return False
        if micro_batch * dp > self.global_batch_size:
            return False
        return True

    def candidates(self) -> Iterator[TuningCandidate]:
        """Yield every structurally valid candidate in the space."""
        for ep in self.ep_options:
            for tp in self.tp_options:
                for micro_batch in self.micro_batch_options:
                    if not self._structurally_valid(ep, tp, micro_batch):
                        continue
                    ssmb_options = (False, True) if tp > 1 else (False,)
                    for ssmb in ssmb_options:
                        yield from self._layout_candidates(ep, tp, micro_batch, ssmb)

    def _layout_candidates(
        self, ep: int, tp: int, micro_batch: int, ssmb: bool
    ) -> Iterator[TuningCandidate]:
        """Expand the per-layout axes (ZeRO, dispatch, placement, …)."""
        for zero in self.zero_options:
            for dispatch in self.dispatch_options:
                for placement in self.placement_options:
                    parallel = ParallelConfig(
                        world_size=self.world_size,
                        ep_size=ep,
                        tp_size=tp,
                        zero_stage=zero,
                        use_ssmb=ssmb,
                        dispatch=dispatch,
                        placement=placement,
                        micro_batch_size=micro_batch,
                        global_batch_size=self.global_batch_size,
                    )
                    for router in self.router_options:
                        for cap in self.capacity_factors:
                            candidate = TuningCandidate(
                                parallel=parallel,
                                router=router,
                                capacity_factor=cap,
                            )
                            if all(p(candidate) for p in self.predicates):
                                yield candidate

    def size(self) -> int:
        """Number of candidates the space enumerates (post-constraints)."""
        return sum(1 for _ in self.candidates())
