"""The tuner's output: a ranked report with a Pareto frontier.

A :class:`TuningReport` records everything one search produced: the ranked
feasible plans (fastest modeled step first), the pruning statistics, the
evaluator's memoization counters, and the Pareto frontier over the three
objectives the paper trades off — modeled step time, peak device memory,
and inter-node traffic.  The winning plan is directly consumable:
``report.best.candidate.parallel`` feeds
:func:`~repro.xmoe.trainer.dispatcher_for_config` and
``report.best_model_config()`` feeds
:func:`~repro.xmoe.trainer.policy_for_config`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.model_config import MoEModelConfig
from repro.tuner.evaluator import CandidateScore


def pareto_frontier(scores: list[CandidateScore]) -> list[CandidateScore]:
    """The non-dominated feasible scores (step time / memory / inter-node bytes).

    A score is on the frontier when no other feasible score is at least as
    good on all three minimized objectives and strictly better on one.
    Plans with *identical* objective vectors (candidates differing only in
    cost-inert axes) are deduplicated to one representative — the first in
    the given order, so on a ranked list the frontier keeps the ranking's
    preferred plan of each tied group.
    """
    feasible = []
    seen: set[tuple] = set()
    for s in scores:
        if not s.feasible:
            continue
        objectives = (s.step_seconds, s.peak_memory_gb, s.inter_node_gb_per_step)
        if objectives in seen:
            continue
        seen.add(objectives)
        feasible.append(s)
    return [
        s
        for s in feasible
        if not any(other.dominates(s) for other in feasible if other is not s)
    ]


@dataclass
class TuningReport:
    """Everything one auto-tuning search produced."""

    model: MoEModelConfig
    system_name: str
    world_size: int
    tokens_per_step: int
    ranked: list[CandidateScore]
    num_enumerated: int
    num_infeasible: int
    pareto: list[CandidateScore] = field(default_factory=list)
    evaluator_stats: dict = field(default_factory=dict)
    calibration_source: str | None = None
    elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------
    @property
    def num_feasible(self) -> int:
        """Candidates that survived the memory-model pruning."""
        return len(self.ranked)

    @property
    def best(self) -> CandidateScore:
        """The top-ranked (fastest modeled step) feasible plan."""
        if not self.ranked:
            raise ValueError(
                "no feasible candidate: every plan exceeded device memory"
            )
        return self.ranked[0]

    @property
    def worst(self) -> CandidateScore:
        """The slowest plan that still fits in memory (the ranking's tail)."""
        if not self.ranked:
            raise ValueError(
                "no feasible candidate: every plan exceeded device memory"
            )
        return self.ranked[-1]

    def best_parallel_config(self):
        """The winner's :class:`~repro.config.parallel_config.ParallelConfig`.

        Pass it straight to :func:`~repro.xmoe.trainer.dispatcher_for_config`
        (the dispatch strategy rides along on ``dispatch_kind``).
        """
        return self.best.candidate.parallel

    def best_model_config(self) -> MoEModelConfig:
        """The base model with the winner's router policy + capacity factor.

        Pass it straight to :func:`~repro.xmoe.trainer.policy_for_config`.
        """
        return self.best.candidate.model_for(self.model)

    # ------------------------------------------------------------------
    def table_rows(self, top: int = 10) -> list[dict]:
        """The ranking's head as printable rows (one dict per plan)."""
        pareto_ids = {id(s) for s in self.pareto}
        rows = []
        for rank, score in enumerate(self.ranked[:top], start=1):
            parallel = score.candidate.parallel
            rows.append(
                {
                    "rank": rank,
                    "ep": parallel.ep_size,
                    "tp": parallel.tp_size,
                    "zero": int(parallel.zero_stage),
                    "ssmb": "on" if parallel.use_ssmb else "off",
                    "dispatch": parallel.dispatch_kind,
                    "placement": parallel.placement.value,
                    "router": score.candidate.router,
                    "cap": score.candidate.capacity_factor,
                    "step_s": score.step_seconds,
                    "TF/GPU": score.tflops_per_gpu,
                    "mem_GB": score.peak_memory_gb,
                    "inter_GB": score.inter_node_gb_per_step,
                    "pareto": "*" if id(score) in pareto_ids else "",
                }
            )
        return rows

    def describe(self) -> str:
        """Multi-line human-readable summary of the search outcome."""
        lines = [
            f"auto-tune: {self.model.name} on {self.system_name} "
            f"({self.world_size} GPUs, {self.tokens_per_step} tokens/step)",
            f"  candidates : {self.num_enumerated} enumerated, "
            f"{self.num_feasible} feasible, {self.num_infeasible} pruned by memory",
            f"  pareto     : {len(self.pareto)} non-dominated plans",
            f"  evaluator  : {self.evaluator_stats}",
            f"  elapsed    : {self.elapsed_seconds:.2f}s",
        ]
        if self.calibration_source:
            lines.append(f"  calibrated : {self.calibration_source}")
        if self.ranked:
            best = self.best
            lines.append(f"  best plan  : {best.candidate.describe()}")
            lines.append(
                f"               step {best.step_seconds:.3f}s | "
                f"{best.tflops_per_gpu:.1f} TF/GPU | "
                f"{best.peak_memory_gb:.1f} GB | "
                f"{best.inter_node_gb_per_step:.2f} GB inter-node/step"
            )
        else:
            lines.append("  best plan  : none (every candidate exceeded device memory)")
        return "\n".join(lines)
