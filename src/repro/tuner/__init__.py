"""Offline auto-tuner: topology-aware parallel-plan search.

Four PRs of mechanisms — the routing-plan engine, pluggable router
policies, hierarchical dispatch, and the analytic cost/memory models —
become a decision-making system here: given a cluster, a model, and a
token budget, :func:`tune` enumerates every structurally valid
:class:`~repro.config.parallel_config.ParallelConfig` (EP/TP/ZeRO ×
dispatch ∈ {flat, rbd, hier} × router policy × capacity factor × placement
order), prunes the ones that cannot fit in device memory, prices the
survivors with the performance model (memoized, so the axes the models
are insensitive to cost nothing), and returns a ranked
:class:`~repro.tuner.report.TuningReport` with a Pareto frontier over
step time, peak memory, and inter-node traffic.

The winning plan is immediately runnable::

    report = tune(paper_config("small"), frontier_system(16))
    dispatcher = dispatcher_for_config(group, model.num_experts,
                                       report.best_parallel_config())
    policy = policy_for_config(report.best_model_config(),
                               report.best_parallel_config())

Entry points: :func:`tune` (library), ``python -m repro tune`` (CLI),
``examples/autotune_plan.py`` (walkthrough), and
``benchmarks/test_autotune.py`` (the acceptance benchmark).
"""

from __future__ import annotations

import time

from repro.config.hardware import SystemSpec
from repro.config.model_config import MoEModelConfig
from repro.obs import tracer as obs
from repro.tuner.calibration import Calibration, load_calibration
from repro.tuner.evaluator import CandidateScore, EvaluatorStats, MemoizingEvaluator
from repro.tuner.report import TuningReport, pareto_frontier
from repro.tuner.space import SearchSpace, TuningCandidate
from repro.xmoe.memory_model import SystemKind

__all__ = [
    "Calibration",
    "CandidateScore",
    "EvaluatorStats",
    "MemoizingEvaluator",
    "SearchSpace",
    "TuningCandidate",
    "TuningReport",
    "load_calibration",
    "pareto_frontier",
    "tune",
]


def tune(
    model: MoEModelConfig,
    system: SystemSpec,
    *,
    world_size: int | None = None,
    tokens_per_step: int | None = None,
    space: SearchSpace | None = None,
    kind: SystemKind = SystemKind.XMOE,
    calibration: Calibration | None = None,
) -> TuningReport:
    """Search the parallel-plan space and return the ranked report.

    ``space`` overrides the default :class:`~repro.tuner.space.SearchSpace`
    axes entirely (its system/model/budget win); otherwise the space is
    built from ``system``, ``model``, ``world_size`` (default: every GPU),
    and ``tokens_per_step`` (default: 1024 sequences' worth, the paper's
    global batch).  Pass a :class:`~repro.tuner.calibration.Calibration`
    (for example from :func:`~repro.tuner.calibration.load_calibration`)
    to fold measured micro-benchmark constants into the scoring.
    """
    if space is None:
        if tokens_per_step is None:
            tokens_per_step = 1024 * model.seq_length
        space = SearchSpace(
            system=system,
            model=model,
            tokens_per_step=tokens_per_step,
            world_size=world_size,
        )
    evaluator = MemoizingEvaluator(
        space.model, space.system, kind=kind, calibration=calibration
    )
    start = time.perf_counter()
    with obs.span("tuner.search", "tuner") as search_span:
        with obs.span("tuner.evaluate", "tuner") as eval_span:
            scores = evaluator.evaluate_all(space.candidates())
            eval_span.set(num_enumerated=len(scores), **evaluator.stats.as_dict())
        with obs.span("tuner.rank", "tuner") as rank_span:
            feasible = [s for s in scores if s.feasible]
            feasible.sort(key=lambda s: (s.step_seconds, s.peak_memory_gb))
            pareto = pareto_frontier(feasible)
            rank_span.set(num_feasible=len(feasible), pareto_size=len(pareto))
        search_span.set(world_size=space.world_size, tokens_per_step=space.tokens_per_step)
    elapsed = time.perf_counter() - start
    return TuningReport(
        model=space.model,
        system_name=space.system.name,
        world_size=space.world_size,
        tokens_per_step=space.tokens_per_step,
        ranked=feasible,
        num_enumerated=len(scores),
        num_infeasible=len(scores) - len(feasible),
        pareto=pareto,
        evaluator_stats=evaluator.stats.as_dict(),
        calibration_source=(
            evaluator.calibration.source
            if not evaluator.calibration.is_identity
            else None
        ),
        elapsed_seconds=elapsed,
    )
