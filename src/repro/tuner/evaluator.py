"""Candidate scoring: memory pruning + memoized analytic costing.

:class:`MemoizingEvaluator` turns a :class:`~repro.tuner.space.TuningCandidate`
into a :class:`CandidateScore` in two stages:

1. **Prune** — :class:`~repro.xmoe.memory_model.MoEMemoryModel` decides
   whether the plan fits in device HBM (``report().fits``, the exact
   predicate the trainability verdicts of Fig. 9 use).  Infeasible plans
   are never costed.
2. **Score** — :class:`~repro.xmoe.perf_model.MoEPerformanceModel` prices
   the step time (flat / RBD / hierarchical dispatch included, via
   ``dispatch_comm_estimates``), and the evaluator layers the optional
   :class:`~repro.tuner.calibration.Calibration` on top (measured
   plan-build overhead, measured ZeRO grad-sync overlap discount for
   stage >= 1 candidates, global time scale).

Both stages memoize on *cost signatures*: the subset of candidate fields
the analytic models actually read.  Router policy and placement order are
cost-inert in the current models (and the capacity factor is inert for
X-MoE's padding-free pipeline), so the many candidates that differ only in
those axes share one costed sub-plan — this is what lets the tuner rank
thousands of candidates in seconds.  ``stats`` exposes the hit/miss
counters the benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.hardware import SystemSpec
from repro.config.model_config import MoEModelConfig
from repro.tuner.calibration import Calibration
from repro.tuner.space import TuningCandidate
from repro.xmoe.memory_model import MoEMemoryModel, SystemKind
from repro.xmoe.perf_model import MoEPerformanceModel


@dataclass(frozen=True)
class CandidateScore:
    """The evaluator's verdict on one candidate plan.

    ``feasible`` is the memory-model verdict; every cost field is ``None``
    for infeasible plans (they are pruned before costing).  Byte totals are
    job-wide per optimizer step; time/memory breakdowns are per MoE layer
    and per device respectively.
    """

    candidate: TuningCandidate
    feasible: bool
    peak_memory_gb: float
    step_seconds: float | None = None
    tflops_per_gpu: float | None = None
    inter_node_gb_per_step: float | None = None
    plan_overhead_seconds: float = 0.0
    time_breakdown: dict[str, float] | None = None
    memory_breakdown: dict[str, float] | None = None

    def dominates(self, other: "CandidateScore") -> bool:
        """Pareto dominance: no worse on all three objectives, better on one.

        Objectives (all minimized): modeled step time, peak device memory,
        inter-node bytes per step.
        """
        if not (self.feasible and other.feasible):
            return False
        mine = (self.step_seconds, self.peak_memory_gb, self.inter_node_gb_per_step)
        theirs = (other.step_seconds, other.peak_memory_gb, other.inter_node_gb_per_step)
        return all(a <= b for a, b in zip(mine, theirs)) and mine != theirs


@dataclass
class EvaluatorStats:
    """Memoization counters (how much costing the caches saved)."""

    memory_hits: int = 0
    memory_misses: int = 0
    perf_hits: int = 0
    perf_misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of all lookups served from a cache."""
        total = self.memory_hits + self.memory_misses + self.perf_hits + self.perf_misses
        if total == 0:
            return 0.0
        return (self.memory_hits + self.perf_hits) / total

    def as_dict(self) -> dict[str, float]:
        """Counter values for reports and tables."""
        return {
            "memory_hits": self.memory_hits,
            "memory_misses": self.memory_misses,
            "perf_hits": self.perf_hits,
            "perf_misses": self.perf_misses,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _PerfEntry:
    """Cached outcome of one unique perf costing."""

    step_seconds: float
    plan_overhead_seconds: float
    inter_node_bytes_per_step: float
    time_breakdown: dict[str, float]


class MemoizingEvaluator:
    """Scores candidates against one (model, system, training-kind) triple."""

    def __init__(
        self,
        model: MoEModelConfig,
        system: SystemSpec,
        *,
        kind: SystemKind = SystemKind.XMOE,
        calibration: Calibration | None = None,
    ):
        self.model = model
        self.system = system
        self.kind = kind
        self.calibration = calibration or Calibration.identity()
        self.stats = EvaluatorStats()
        self._memory_cache: dict[tuple, object] = {}
        self._perf_cache: dict[tuple, _PerfEntry] = {}

    # ------------------------------------------------------------------
    # Cost signatures: the fields the analytic models actually read.
    # ------------------------------------------------------------------
    def _capacity_term(self, candidate: TuningCandidate) -> tuple:
        """Capacity factor enters the signature only when it affects cost.

        The padded baselines size buffers and all-to-alls by the capacity
        factor; X-MoE's padding-free pipeline does not, so for it the axis
        is cost-inert and excluded (candidates differing only in capacity
        share one costing).
        """
        if self.kind is SystemKind.XMOE:
            return ()
        return (candidate.capacity_factor,)

    def _memory_signature(self, candidate: TuningCandidate) -> tuple:
        p = candidate.parallel
        return (
            p.world_size,
            p.ep_size,
            p.tp_size,
            int(p.zero_stage),
            p.use_ssmb,
            p.micro_batch_size,
            p.activation_checkpointing,
        ) + self._capacity_term(candidate)

    def _perf_signature(self, candidate: TuningCandidate) -> tuple:
        p = candidate.parallel
        return self._memory_signature(candidate) + (
            p.global_batch_size,
            p.dispatch_kind,
        )

    # ------------------------------------------------------------------
    def evaluate(self, candidate: TuningCandidate) -> CandidateScore:
        """Prune by memory, then price the surviving plan (memoized)."""
        model = candidate.model_for(self.model)
        report = self._memory_report(candidate, model)
        if not report.fits:
            return CandidateScore(
                candidate=candidate,
                feasible=False,
                peak_memory_gb=report.total_gb,
            )
        entry = self._perf_entry(candidate, model)
        tokens_per_step = candidate.parallel.global_batch_size * model.seq_length
        flops = model.train_flops_per_token() * tokens_per_step
        tflops = flops / entry.step_seconds / candidate.parallel.world_size / 1e12
        return CandidateScore(
            candidate=candidate,
            feasible=True,
            peak_memory_gb=report.total_gb,
            step_seconds=entry.step_seconds,
            tflops_per_gpu=tflops,
            inter_node_gb_per_step=entry.inter_node_bytes_per_step / 2**30,
            plan_overhead_seconds=entry.plan_overhead_seconds,
            time_breakdown=dict(entry.time_breakdown),
            memory_breakdown={
                "model_states_gb": report.model_states_bytes / 2**30,
                "activation_gb": report.activation_bytes / 2**30,
            },
        )

    def evaluate_all(self, candidates) -> list[CandidateScore]:
        """Score an iterable of candidates in order."""
        return [self.evaluate(c) for c in candidates]

    # ------------------------------------------------------------------
    def _memory_report(self, candidate: TuningCandidate, model: MoEModelConfig):
        key = self._memory_signature(candidate)
        cached = self._memory_cache.get(key)
        if cached is not None:
            self.stats.memory_hits += 1
            return cached
        self.stats.memory_misses += 1
        report = MoEMemoryModel(
            model, candidate.parallel, self.system.node.gpu
        ).report(self.kind)
        self._memory_cache[key] = report
        return report

    def _perf_entry(self, candidate: TuningCandidate, model: MoEModelConfig) -> _PerfEntry:
        key = self._perf_signature(candidate)
        cached = self._perf_cache.get(key)
        if cached is not None:
            self.stats.perf_hits += 1
            return cached
        self.stats.perf_misses += 1
        parallel = candidate.parallel
        perf = MoEPerformanceModel(model, parallel, self.system, self.kind)

        plans_per_step = model.num_moe_layers * parallel.gradient_accumulation_steps
        # One dispatch plan covers the whole EP group, and the calibration
        # rates are measured per *group-wide* assignment — so charge the
        # group's total rows, not one device's share.  Routing (batched
        # route + PFT construction) runs once per plan, like the build.
        assignments = model.top_k * perf.tokens_per_device * parallel.ep_size
        overhead = plans_per_step * (
            self.calibration.plan_overhead_seconds(parallel.dispatch_kind, assignments)
            + self.calibration.route_overhead_seconds(assignments)
        )
        step_seconds = perf.iteration_time()
        exposed = self.calibration.grad_sync_exposed_fraction()
        if exposed < 1.0 and int(parallel.zero_stage) >= 1:
            # The bucketed ZeRO reducer overlaps gradient reduction with
            # backward compute; keep only the measured exposed fraction of
            # the analytic model's fully-serial grad-sync term.
            step_seconds -= perf.grad_sync_time() * (1.0 - exposed)
        step_seconds = step_seconds * self.calibration.time_scale + overhead

        # Dispatch + combine cross the node boundary once each per MoE layer
        # per micro-batch; scale one EP group's traffic to the whole job.
        ep_groups = max(1, parallel.world_size // parallel.ep_size)
        layer_inter = perf.dispatch_inter_node_bytes(parallel.dispatch_kind)
        inter_bytes = 2.0 * layer_inter * plans_per_step * ep_groups

        entry = _PerfEntry(
            step_seconds=step_seconds,
            plan_overhead_seconds=overhead,
            inter_node_bytes_per_step=inter_bytes,
            time_breakdown=perf.moe_layer_breakdown().as_dict(),
        )
        self._perf_cache[key] = entry
        return entry
