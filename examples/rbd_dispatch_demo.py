"""Redundancy-Bypassing Dispatch demo on the simulated Frontier cluster.

Builds a 16-rank (2-node) expert-parallel group, routes real token buffers
through the flat uneven all-to-all and through RBD's two-stage dispatch —
both are planners behind the same routing-plan engine
(:mod:`repro.routing`) — and shows (a) the outputs are bit-identical and
(b) RBD moves far fewer bytes over the slow inter-node links.

Run:  python examples/rbd_dispatch_demo.py
"""

import numpy as np

from repro.cluster.topology import LinkTier
from repro.comm import CommWorld
from repro.moe import TopKGate
from repro.tensor import Tensor
from repro.xmoe import DistributedMoEDispatcher, RBDDispatcher, build_pft


NUM_RANKS = 16
NUM_EXPERTS = 64
TOP_K = 8
TOKENS_PER_RANK = 128
HIDDEN = 64


def build_inputs(seed=0):
    rng = np.random.default_rng(seed)
    gate = TopKGate(HIDDEN, NUM_EXPERTS, TOP_K, rng=np.random.default_rng(seed + 1))
    tokens, pfts = [], []
    for _ in range(NUM_RANKS):
        toks = rng.normal(size=(TOKENS_PER_RANK, HIDDEN))
        gate_out = gate(Tensor(toks))
        pfts.append(build_pft(10**6, gate_out.top_experts, gate_out.top_scores, NUM_EXPERTS))
        tokens.append(toks)
    weights = (
        rng.normal(size=(NUM_EXPERTS, HIDDEN, 32)),
        rng.normal(size=(NUM_EXPERTS, 32, HIDDEN)),
    )
    return tokens, pfts, weights


def tier_bytes(world, ops):
    inter = intra = 0.0
    for event in world.stats.events:
        if event.op not in ops:
            continue
        for tier, nbytes in event.bytes_by_tier.items():
            if tier in (LinkTier.INTER_NODE, LinkTier.CROSS_RACK):
                inter += nbytes
            elif tier != LinkTier.SELF:
                intra += nbytes
    return inter, intra


def run(dispatcher_cls, label, tokens, pfts, weights, **kwargs):
    world = CommWorld(num_ranks=NUM_RANKS)
    group = world.world_group()
    dispatcher = dispatcher_cls(group, NUM_EXPERTS, **kwargs)
    inputs, state = dispatcher.dispatch(tokens, pfts)
    w1, w2 = weights
    per_w1 = [w1[dispatcher.experts_on_rank(r)] for r in range(NUM_RANKS)]
    per_w2 = [w2[dispatcher.experts_on_rank(r)] for r in range(NUM_RANKS)]
    outputs = dispatcher.run_experts(inputs, state, per_w1, per_w2)
    combined = dispatcher.combine(outputs, state, [TOKENS_PER_RANK] * NUM_RANKS)
    ops = {"dispatch_a2a", "rbd_s1_a2a", "rbd_s2_a2a"}
    inter, intra = tier_bytes(world, ops)
    print(f"{label:>12s}: inter-node {inter / 2**20:7.2f} MiB | "
          f"intra-node {intra / 2**20:7.2f} MiB")
    return combined, dispatcher


def main():
    print("=== Redundancy-Bypassing Dispatch on 2 Frontier nodes (16 GCDs) ===")
    print(f"{NUM_EXPERTS} experts, top-{TOP_K}, {TOKENS_PER_RANK} tokens per rank\n")
    tokens, pfts, weights = build_inputs()

    flat_out, _ = run(DistributedMoEDispatcher, "flat a2a", tokens, pfts, weights)
    rbd_out, rbd = run(RBDDispatcher, "RBD", tokens, pfts, weights, seed=7)

    bit_identical = all(
        np.array_equal(flat_out[r], rbd_out[r]) for r in range(NUM_RANKS)
    )
    print(f"\nmeasured redundancy rate : {rbd.last_stats['redundancy_rate']:.1%}")
    print(f"pilot tokens             : {int(rbd.last_stats['pilots'])}")
    print(f"local replica tokens     : {int(rbd.last_stats['replicas'])}")
    print(f"outputs bit-identical    : {bit_identical}")
    print("\nRBD sends only one pilot copy of each token per destination node")
    print("across the slow inter-node links and rebuilds the replicas locally.")
    print("Both paths fold the combine sums in the same order, so the expert")
    print("inputs and the final outputs are exactly — not just nearly — equal.")


if __name__ == "__main__":
    main()
