"""Dispatch-strategy demo on the simulated Frontier cluster.

Builds a 16-rank (2-node) expert-parallel group, routes real token buffers
through the flat uneven all-to-all and through the selected alternative
strategy — all planners behind the same routing-plan engine
(:mod:`repro.routing`) — and shows (a) the outputs are bit-identical and
(b) the alternative moves far fewer bytes over the slow inter-node links.

Flags
-----
``--dispatch {rbd,hier}``
    The strategy compared against the flat oracle (mirrors
    ``ParallelConfig.dispatch``).  ``rbd`` is the paper's two-stage
    redundancy-bypassing dispatch (random pilots, replicas rebuilt on the
    destination node); ``hier`` is the two-hop hierarchical dispatch
    (intra-node gather onto a per-node leader, one leader-to-leader
    inter-node exchange, intra-node scatter).
``--seed N``
    Seed for the token/routing workload and RBD's pilot selection
    (default 0).

Run:  python examples/rbd_dispatch_demo.py [--dispatch rbd|hier] [--seed 0]
"""

import argparse

import numpy as np

from repro.cluster.topology import LinkTier
from repro.comm import CommWorld
from repro.moe import TopKGate
from repro.routing import DISPATCH_OPS, make_dispatcher
from repro.tensor import Tensor
from repro.xmoe import build_pft


NUM_RANKS = 16
NUM_EXPERTS = 64
TOP_K = 8
TOKENS_PER_RANK = 128
HIDDEN = 64


def build_inputs(seed=0):
    rng = np.random.default_rng(seed)
    gate = TopKGate(HIDDEN, NUM_EXPERTS, TOP_K, rng=np.random.default_rng(seed + 1))
    tokens, pfts = [], []
    for _ in range(NUM_RANKS):
        toks = rng.normal(size=(TOKENS_PER_RANK, HIDDEN))
        gate_out = gate(Tensor(toks))
        pfts.append(build_pft(10**6, gate_out.top_experts, gate_out.top_scores, NUM_EXPERTS))
        tokens.append(toks)
    weights = (
        rng.normal(size=(NUM_EXPERTS, HIDDEN, 32)),
        rng.normal(size=(NUM_EXPERTS, 32, HIDDEN)),
    )
    return tokens, pfts, weights


def tier_bytes(world, ops):
    inter = intra = 0.0
    for event in world.stats.events:
        if event.op not in ops:
            continue
        for tier, nbytes in event.bytes_by_tier.items():
            if tier in (LinkTier.INTER_NODE, LinkTier.CROSS_RACK):
                inter += nbytes
            elif tier != LinkTier.SELF:
                intra += nbytes
    return inter, intra


def run(kind, tokens, pfts, weights, seed=0):
    world = CommWorld(num_ranks=NUM_RANKS)
    group = world.world_group()
    dispatcher = make_dispatcher(group, NUM_EXPERTS, kind=kind, seed=seed)
    inputs, plan = dispatcher.dispatch(tokens, pfts)
    w1, w2 = weights
    per_w1 = [w1[dispatcher.experts_on_rank(r)] for r in range(NUM_RANKS)]
    per_w2 = [w2[dispatcher.experts_on_rank(r)] for r in range(NUM_RANKS)]
    outputs = dispatcher.run_experts(inputs, plan, per_w1, per_w2)
    combined = dispatcher.combine(outputs, plan, [TOKENS_PER_RANK] * NUM_RANKS)
    inter, intra = tier_bytes(world, set(DISPATCH_OPS[kind]))
    print(f"{kind:>12s}: inter-node {inter / 2**20:7.2f} MiB | "
          f"intra-node {intra / 2**20:7.2f} MiB")
    return combined, plan


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dispatch",
        choices=("rbd", "hier"),
        default="rbd",
        help="dispatch strategy compared against the flat oracle",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload/pilot seed")
    args = parser.parse_args()

    print("=== Dispatch strategies on 2 Frontier nodes (16 GCDs) ===")
    print(f"{NUM_EXPERTS} experts, top-{TOP_K}, {TOKENS_PER_RANK} tokens per rank\n")
    tokens, pfts, weights = build_inputs(seed=args.seed)

    flat_out, _ = run("flat", tokens, pfts, weights)
    alt_out, plan = run(args.dispatch, tokens, pfts, weights, seed=args.seed + 7)

    bit_identical = all(
        np.array_equal(flat_out[r], alt_out[r]) for r in range(NUM_RANKS)
    )
    print(f"\nmeasured redundancy rate : {plan.redundancy:.1%}")
    print(f"rows sent in stage 1     : {plan.sent_rows()}")
    print(f"locally served rows      : {plan.num_replicas}")
    print(f"outputs bit-identical    : {bit_identical}")
    if args.dispatch == "rbd":
        print("\nRBD sends only one pilot copy of each token per destination node")
        print("across the slow inter-node links and rebuilds the replicas locally.")
    else:
        print("\nHierarchical dispatch gathers tokens onto per-node leaders, sends")
        print("one deduplicated copy per (token, node) in a single aggregated")
        print("leader-to-leader exchange, then scatters to the expert ranks.")
    print("All planners fold the combine sums in the same order, so the expert")
    print("inputs and the final outputs are exactly — not just nearly — equal.")


if __name__ == "__main__":
    main()
