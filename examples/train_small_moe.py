"""Loss-validation example (Fig. 15, scaled down).

Trains the same tiny MoE transformer twice on the same synthetic data:
once with the DeepSpeed-MoE style zero-padded pipeline (negative-score
token dropping) and once with X-MoE's padding-free pipeline (capacity-only
dropping), then prints the two loss curves side by side and validates the
trained router's dispatch traffic over the simulated cluster — the
validation executes through the shared rank-batched
:class:`repro.runtime.StepRuntime` (via ``run_routing_validation``), not a
per-rank routing loop.

Flags
-----
``--steps N``
    Training steps for both pipelines (default 60).
``--router {softmax-topk,switch-top1,noisy-topk,expert-choice}``
    The routing regime: the default ``softmax-topk`` reproduces the
    paper's comparison (the two pipelines differ only by drop policy),
    while the others run both pipelines under that policy instead —
    routing is an experimental axis, not a constant (see
    ``repro.routing.policies``).
``--dispatch {flat,rbd,hier}``
    The dispatch strategy used by the post-training routing validation
    (mirrors ``ParallelConfig.dispatch``): flat uneven all-to-all,
    redundancy-bypassing dispatch, or hierarchical two-hop dispatch.

Run:  python examples/train_small_moe.py [--steps 60] [--router softmax-topk]
      [--dispatch flat]
"""

import argparse

import numpy as np

from repro.baselines import PaddedMoELayer
from repro.moe import (
    DropPolicy,
    MoETransformerLM,
    SyntheticLMDataset,
    TransformerConfig,
)
from repro.routing import DISPATCH_KINDS, ROUTER_POLICY_NAMES
from repro.tensor import Adam
from repro.xmoe import PaddingFreeMoELayer
from repro.xmoe.trainer import run_routing_validation


def make_config(drop_policy: DropPolicy, router: str) -> TransformerConfig:
    return TransformerConfig(
        vocab_size=128,
        hidden_size=32,
        ffn_hidden_size=16,
        num_experts=8,
        top_k=2,
        num_layers=2,
        seq_length=64,
        capacity_factor=1.5,
        drop_policy=drop_policy,
        router=router,
    )


def train(model: MoETransformerLM, steps: int, data_seed: int) -> list[float]:
    dataset = SyntheticLMDataset(128, 64, seed=data_seed)
    optimizer = Adam(model.parameters(), lr=3e-3)
    losses = []
    for step in range(steps):
        sequence = dataset.sample_sequence()
        optimizer.zero_grad()
        loss, lm_loss = model.loss(sequence)
        loss.backward()
        optimizer.step()
        losses.append(lm_loss)
    return losses


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=60)
    parser.add_argument(
        "--router",
        choices=sorted(ROUTER_POLICY_NAMES),
        default="softmax-topk",
        help="router policy both pipelines train with",
    )
    parser.add_argument(
        "--dispatch",
        choices=DISPATCH_KINDS,
        default="flat",
        help="dispatch strategy for the post-training routing validation",
    )
    args = parser.parse_args()

    # The score-threshold vs capacity-only contrast is a property of the
    # default softmax router; other policies decide their own drops, so both
    # pipelines share the same drop policy under them.
    ds_drop = (
        DropPolicy.SCORE_THRESHOLD
        if args.router == "softmax-topk"
        else DropPolicy.CAPACITY_ONLY
    )
    deepspeed_model = MoETransformerLM(
        make_config(ds_drop, args.router),
        lambda gate, experts, cap: PaddedMoELayer(gate, experts, cap),
        seed=21,
    )
    xmoe_model = MoETransformerLM(
        make_config(DropPolicy.CAPACITY_ONLY, args.router),
        lambda gate, experts, cap: PaddingFreeMoELayer(gate, experts, cap),
        seed=21,
    )
    print(f"router policy    : {args.router}")
    print(f"model parameters : {xmoe_model.num_parameters():,}")
    print(f"training both pipelines for {args.steps} steps on identical data...\n")

    ds_losses = train(deepspeed_model, args.steps, data_seed=5)
    xmoe_losses = train(xmoe_model, args.steps, data_seed=5)

    print(f"{'step':>5} | {'DeepSpeed-MoE':>14} | {'X-MoE':>8}")
    print("-" * 35)
    for step in range(0, args.steps, max(1, args.steps // 15)):
        print(f"{step:>5} | {ds_losses[step]:>14.4f} | {xmoe_losses[step]:>8.4f}")

    diff = np.abs(np.array(ds_losses) - np.array(xmoe_losses))
    corr = np.corrcoef(ds_losses, xmoe_losses)[0, 1]
    print(f"\nmean |loss difference| : {diff.mean():.4f}")
    print(f"curve correlation      : {corr:.4f}")
    if args.router == "softmax-topk":
        print("\nAs in Fig. 15, the padding-free pipeline tracks the baseline's")
        print("convergence; small residual differences come from the different")
        print("token-dropping rules (X-MoE retains more tokens).")
    else:
        print(f"\nBoth pipelines route with {args.router!r}; differences come")
        print("from the padded pipeline's GShard capacity rule on top of the")
        print("policy's own dropping.")

    # Validate the routing regime's dispatch traffic over a simulated
    # 2-node EP group with the selected strategy (the `--dispatch` axis).
    telemetry = run_routing_validation(
        args.router,
        num_ranks=16,
        num_experts=16,
        top_k=2,
        hidden_size=32,
        tokens_per_rank=64,
        steps=2,
        dispatch=args.dispatch,
    )
    summary = telemetry.summary()
    print(f"\nrouting validation ({args.dispatch} dispatch, 16 ranks / 2 nodes):")
    print(f"  inter-node dispatch MB : {summary['inter_node_mb']:.3f}")
    print(f"  intra-node dispatch MB : {summary['intra_node_mb']:.3f}")
    print(f"  balance entropy        : {summary['balance_entropy']:.4f}")


if __name__ == "__main__":
    main()
