"""Memory planning: Table 4, Fig. 13, and the SSMB-vs-TED decision rule.

Prints the per-MoE-layer activation memory of each training system for the
Large (201B) model, the SSMB memory saving as a function of the TP degree,
and which published MoE architectures prefer SSMB over TED (Fig. 17).

Run:  python examples/memory_planning.py
"""

from repro.analysis import tradeoff_table
from repro.config import ParallelConfig, paper_config
from repro.xmoe.memory_model import MoEMemoryModel, SystemKind
from repro.xmoe.ssmb import ssmb_activation_saving_bytes, ssmb_beats_ted


def main():
    model = paper_config("large")
    parallel = ParallelConfig(
        world_size=256, ep_size=64, micro_batch_size=1, global_batch_size=1024
    )
    memory = MoEMemoryModel(model, parallel)

    print("=== Table 4: per-MoE-layer activation memory (Large model, EP=64) ===")
    for kind in (SystemKind.DEEPSPEED_MOE, SystemKind.TUTEL, SystemKind.XMOE, SystemKind.THEORETICAL):
        total = memory.moe_layer_activations(kind).total() / 2**30
        print(f"  {kind.value:<15s}: {total:5.2f} GB")

    print("\n=== Fig. 13: SSMB memory saving vs TP degree ===")
    for tp in (1, 2, 4):
        base = parallel.with_overrides(tp_size=tp)
        with_ssmb = MoEMemoryModel(model, base.with_overrides(use_ssmb=True)).report(SystemKind.XMOE)
        without = MoEMemoryModel(model, base.with_overrides(use_ssmb=False)).report(SystemKind.XMOE)
        saving_eq1 = ssmb_activation_saving_bytes(
            model.seq_length, model.hidden_size, model.top_k, model.capacity_factor, tp
        )
        print(
            f"  TP={tp}: {without.total_gb:6.1f} GB -> {with_ssmb.total_gb:6.1f} GB "
            f"(Eq. 1 predicted activation saving per layer: {saving_eq1 / 2**30:.2f} GB)"
        )

    print("\n=== Fig. 17: which published MoEs prefer SSMB over TED? ===")
    table = tradeoff_table(seq_lengths=(2048, 4096, 8192))
    header = f"  {'model':<15s}" + "".join(f"  S={s:<6d}" for s in (2048, 4096, 8192))
    print(header)
    for name, verdicts in table.items():
        row = f"  {name:<15s}"
        for s in (2048, 4096, 8192):
            row += f"  {'SSMB' if verdicts[s] else 'TED ':<8s}"
        print(row)

    print("\nDecision rule (paper §4.3): SSMB wins when k / H_FFN > 2 / (c * S).")
    print(f"For the Large model at S=4096: SSMB advantaged = {ssmb_beats_ted(model)}")


if __name__ == "__main__":
    main()
