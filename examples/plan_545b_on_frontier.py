"""Plan training of the 545B "Super" DeepSeek-style MoE on 1024 Frontier GCDs.

Reproduces the planning decisions behind Fig. 9's headline result: sweep
EP / TP / ZeRO configurations for each training system, check which fit in
64 GB per GCD, and report the best trainable configuration and its modelled
throughput.  Also prints the EP-first vs DP-first placement analysis.

Run:  python examples/plan_545b_on_frontier.py
"""

from repro.cluster import Topology
from repro.config import ParallelConfig, frontier_system, paper_config
from repro.xmoe import plan_placement, sweep_best_config
from repro.xmoe.memory_model import MoEMemoryModel, SystemKind


def main():
    model = paper_config("super")
    system = frontier_system(num_nodes=128)  # 1024 GCDs
    print("=== Planning the 545B 'Super' model on 1024 MI250X GCDs ===")
    print(f"total parameters    : {model.total_params() / 1e9:.1f} B")
    print(f"activated per token : {model.activated_params() / 1e9:.1f} B")
    print(f"experts / top-k     : {model.num_experts} / {model.top_k}\n")

    print("Sweeping EP, TP, and ZeRO stage for each training system:")
    for kind in (SystemKind.DEEPSPEED_MOE, SystemKind.DEEPSPEED_TED, SystemKind.TUTEL, SystemKind.XMOE):
        result = sweep_best_config(model, 1024, kind, system)
        print("  " + result.describe())

    best = sweep_best_config(model, 1024, SystemKind.XMOE, system)
    if not best.oom:
        print("\nBest X-MoE configuration:")
        print(f"  {best.parallel.describe()}")
        print(f"  peak memory per GCD : {best.peak_memory_gb:.1f} GB (of 64 GB)")
        print(f"  iteration time      : {best.iteration_seconds:.1f} s")
        print(f"  throughput          : {best.tflops_per_gpu:.1f} TFLOPs/GPU "
              f"({best.aggregated_pflops:.2f} PFLOPs aggregate)")

        memory = MoEMemoryModel(model, best.parallel, system.node.gpu)
        layer = memory.moe_layer_activations(SystemKind.XMOE)
        print("\nPer-MoE-layer activation breakdown (per device):")
        for name, value in layer.as_dict().items():
            print(f"  {name:<18s}: {value / 2**30:.3f} GB")

    print("\nEP-first vs DP-first placement (Appendix C.1), 64-GPU subgroup:")
    topo = Topology(frontier_system(num_nodes=8), 64)
    parallel = ParallelConfig(world_size=64, ep_size=8, global_batch_size=64)
    ep_first, dp_first, recommended = plan_placement(model, parallel, topo)
    print(f"  EP-first : a2a {ep_first.ep_alltoall_seconds:.3f}s + "
          f"allreduce {ep_first.dp_allreduce_seconds:.3f}s")
    print(f"  DP-first : a2a {dp_first.ep_alltoall_seconds:.3f}s + "
          f"allreduce {dp_first.dp_allreduce_seconds:.3f}s")
    print(f"  recommended placement: {recommended.value}")


if __name__ == "__main__":
    main()
