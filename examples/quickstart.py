"""Quickstart: run one expert-specialized MoE layer with the padded baseline
and with X-MoE's padding-free pipeline, and compare outputs, memory, and
padding.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import PaddedMoELayer
from repro.moe import ExpertBank, TopKGate
from repro.tensor import Tensor
from repro.xmoe import PaddingFreeMoELayer


def build_layer_pair(hidden=64, experts=32, top_k=6, ffn_hidden=16, seed=0):
    """Two MoE layers (padded / padding-free) sharing bit-identical weights."""
    layers = []
    for cls in (PaddedMoELayer, PaddingFreeMoELayer):
        gate = TopKGate(hidden, experts, top_k, rng=np.random.default_rng(seed))
        bank = ExpertBank(experts, hidden, ffn_hidden, rng=np.random.default_rng(seed + 1))
        # A generous capacity factor so no token is dropped: the two
        # pipelines are then numerically identical and the padded buffers
        # clearly show how much of their space is zero padding.
        layers.append(cls(gate, bank, capacity_factor=2.0))
    return layers


def main():
    rng = np.random.default_rng(42)
    seq_len, hidden = 256, 64
    padded, padding_free = build_layer_pair(hidden=hidden)

    tokens = Tensor(rng.normal(size=(seq_len, hidden)))
    out_padded, _ = padded(tokens)
    out_pfree, _ = padding_free(tokens)

    print("=== X-MoE quickstart: one expert-specialized MoE layer ===")
    print(f"tokens: {seq_len} x {hidden}, experts: 32, top-k: 6, capacity factor 2.0\n")

    ps = padded.last_stats
    fs = padding_free.last_stats
    print("DeepSpeed-MoE style (zero-padded) pipeline:")
    print(f"  expert capacity C                : {ps.capacity}")
    print(f"  padded buffer slots (E*C)        : {ps.padded_slots}")
    print(f"  real routed tokens               : {ps.kept_assignments}")
    print(f"  padding fraction                 : {ps.padding_fraction:.1%}")
    print(f"  dispatch buffer + mask (KiB)     : "
          f"{(ps.dispatch_buffer_bytes + ps.dispatch_mask_bytes) / 1024:.0f}")

    print("\nX-MoE padding-free (PFT) pipeline:")
    print(f"  routed tokens in PFT buffer      : {fs.num_routed_tokens}")
    print(f"  padding fraction                 : {fs.padding_fraction:.1%}")
    print(f"  dispatch buffer + ERI (KiB)      : "
          f"{(fs.dispatch_buffer_bytes + padding_free.last_pft.eri_bytes()) / 1024:.0f}")

    max_diff = np.abs(out_padded.data - out_pfree.data).max()
    print(f"\nMax |output difference| between pipelines: {max_diff:.2e}")
    print("The two pipelines are numerically identical; X-MoE just never")
    print("materializes or communicates the zero padding.")


if __name__ == "__main__":
    main()
