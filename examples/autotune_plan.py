"""Auto-tune a parallel plan and run the winner end to end.

The tuner searches every structurally valid combination of EP/TP/ZeRO
degrees, dispatch strategy (flat / RBD / hierarchical), router policy,
capacity factor, and placement order for a model + cluster + token budget,
prunes plans that exceed device memory, and ranks the survivors by modeled
step time (with a Pareto frontier over step time, peak memory, and
inter-node traffic).

The winning plan is not just a table row: its ``ParallelConfig`` feeds
``dispatcher_for_config`` and its model override feeds
``policy_for_config``, so the second half of this script routes real
tokens through the tuned configuration on the simulated cluster — one
``StepRuntime.run_step`` call drives the whole rank-batched
route/dispatch/combine pipeline.

Run:  PYTHONPATH=src python examples/autotune_plan.py [--model large]
"""

import argparse

import numpy as np

from repro.comm import CommWorld
from repro.config import frontier_system, paper_config
from repro.runtime import StepRuntime
from repro.tuner import load_calibration, tune
from repro.xmoe import dispatcher_for_config, policy_for_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="large", help="paper config name")
    parser.add_argument("--nodes", type=int, default=32, help="Frontier nodes")
    args = parser.parse_args()

    model = paper_config(args.model)
    system = frontier_system(num_nodes=args.nodes)
    print(f"=== Auto-tuning {model.name} on {args.nodes * 8} MI250X GCDs ===\n")

    calibration = load_calibration()
    report = tune(model, system, calibration=calibration)
    print(report.describe())

    print("\nTop of the ranking (* = Pareto-optimal):")
    for row in report.table_rows(8):
        print(
            f"  #{row['rank']:<2} ep={row['ep']:<3} tp={row['tp']} "
            f"zero={row['zero']} ssmb={row['ssmb']:<3} {row['dispatch']:<4} "
            f"{row['placement']:<8} {row['router']:<12} cap={row['cap']:<4} "
            f"step={row['step_s']:.2f}s mem={row['mem_GB']:.1f}GB {row['pareto']}"
        )

    print(f"\nPareto frontier ({len(report.pareto)} plans):")
    for score in report.pareto[:6]:
        print(
            f"  {score.candidate.describe()} | step {score.step_seconds:.2f}s "
            f"| {score.peak_memory_gb:.1f} GB | "
            f"{score.inter_node_gb_per_step:.1f} GB inter-node/step"
        )

    # ------------------------------------------------------------------
    # The winner is runnable: route real tokens through the tuned plan.
    # ------------------------------------------------------------------
    plan = report.best_parallel_config()
    tuned_model = report.best_model_config()
    print(f"\nDriving the winner end to end: {report.best.candidate.describe()}")

    # A scaled-down functional stand-in: the plan's EP group (same dispatch
    # strategy, same router policy) over the simulated cluster, with a small
    # hidden size so the demo runs in milliseconds.
    hidden = 64
    tokens_per_rank = 32
    world = CommWorld(num_ranks=plan.ep_size, system=system)
    group = world.world_group()
    dispatcher = dispatcher_for_config(group, tuned_model.num_experts, plan)
    policy = policy_for_config(
        tuned_model.scaled(hidden_size=hidden), plan, rng=np.random.default_rng(0)
    )

    tokens = [
        np.random.default_rng(rank).normal(size=(tokens_per_rank, hidden))
        for rank in range(plan.ep_size)
    ]
    result = StepRuntime(policy, dispatcher).run_step(tokens, step=0)
    routed = sum(int(buf.shape[0]) for buf in result.expert_inputs)
    print(
        f"  dispatched {routed} rows over {plan.ep_size} ranks "
        f"({result.plan.kind} plan), combine returned "
        f"{sum(o.shape[0] for o in result.outputs)} token rows — plan is live."
    )


if __name__ == "__main__":
    main()
