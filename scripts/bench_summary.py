#!/usr/bin/env python3
"""Aggregate ``benchmarks/results/*.json`` into one trajectory table.

Every micro-benchmark in ``benchmarks/`` leaves a JSON record behind
(gitignored, machine-local) with a ``seconds`` block and one or more
``speedup*`` figures.  This script collects them all into a single table —
benchmark name, key metric, measured speedup — so the perf trajectory of
the repo on the current machine is readable at a glance instead of spread
over half a dozen files.  Plan-cache records additionally surface their
steady-state hit rate, the figure :func:`repro.tuner.load_calibration`
folds into tuner scoring.

Malformed or partially-written records (an interrupted benchmark dump)
are skipped with a note, mirroring the tuner's own warn-and-skip loader.

Run:  python scripts/bench_summary.py [--results-dir DIR]
Exits 0 even when no records exist (nothing measured is not an error).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
DEFAULT_RESULTS_DIR = REPO / "benchmarks" / "results"


def summarize_record(name: str, record: dict) -> list[tuple[str, str, str]]:
    """Rows ``(benchmark, metric, value)`` for one parsed record."""
    rows: list[tuple[str, str, str]] = []
    for key in sorted(record):
        if not key.startswith("speedup"):
            continue
        value = record[key]
        if isinstance(value, (int, float)):
            rows.append((name, key, f"{value:.2f}x"))
        elif isinstance(value, dict):
            for sub in sorted(value):
                sub_value = value[sub]
                if isinstance(sub_value, (int, float)):
                    rows.append((name, f"{key}[{sub}]", f"{sub_value:.2f}x"))
    plan_cache = record.get("plan_cache")
    if isinstance(plan_cache, dict):
        hit_rate = plan_cache.get("hit_rate")
        if isinstance(hit_rate, (int, float)):
            rows.append((name, "plan_cache.hit_rate", f"{hit_rate:.1%}"))
        ratio = plan_cache.get("warm_cost_ratio")
        if isinstance(ratio, (int, float)):
            rows.append((name, "plan_cache.warm_cost_ratio", f"{ratio:.3f}"))
    return rows


def collect_rows(results_dir: Path) -> tuple[list[tuple[str, str, str]], list[str]]:
    """All summary rows plus the names of records that had to be skipped."""
    rows: list[tuple[str, str, str]] = []
    skipped: list[str] = []
    for path in sorted(results_dir.glob("*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            skipped.append(path.name)
            continue
        if not isinstance(record, dict):
            skipped.append(path.name)
            continue
        rows.extend(summarize_record(path.stem, record))
    return rows, skipped


def format_table(rows: list[tuple[str, str, str]]) -> str:
    """Render rows as an aligned three-column text table."""
    headers = ("benchmark", "metric", "value")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(3)
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines += [" | ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: print the trajectory table for one results dir."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=DEFAULT_RESULTS_DIR,
        help="directory of benchmark JSON records (default: benchmarks/results)",
    )
    args = parser.parse_args(argv)
    if not args.results_dir.is_dir():
        print(f"no results directory at {args.results_dir} — nothing measured yet")
        return 0
    rows, skipped = collect_rows(args.results_dir)
    if rows:
        print(format_table(rows))
    else:
        print(f"no benchmark records under {args.results_dir} — run benchmarks/ first")
    for name in skipped:
        print(f"note: skipped malformed record {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
